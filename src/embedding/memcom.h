// MEmCom — the paper's contribution (Algorithms 2 and 3).
//
//   emb(i) = U[i mod m] ⊙ V[i]          (no bias,  Algorithm 2)
//   emb(i) = U[i mod m] ⊙ V[i] + W[i]   (with bias, Algorithm 3)
//
// U ∈ R^{m×e} is a hashed (shared) table; V, W ∈ R^{v×1} hold one scalar
// per vocabulary entry and are broadcast across the e-dimensional row.
// Because U and V are trained jointly, every entity retains a unique
// embedding while parameter count drops from v·e to m·e + v (+v).
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class MemcomEmbedding : public EmbeddingLayer {
 public:
  // `hash_size` is m. V is initialized to 1 and W to 0, so an untrained
  // MEmCom layer behaves exactly like naive hashing; training then
  // separates entities that share a bucket.
  MemcomEmbedding(Index vocab, Index hash_size, Index embed_dim, Rng& rng,
                  bool with_bias);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override;
  std::string name() const override {
    return with_bias_ ? "memcom_bias" : "memcom";
  }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return shared_.value.dim(1); }

  Index hash_size() const { return shared_.value.dim(0); }
  bool with_bias() const { return with_bias_; }

  Param& shared_table() { return shared_; }
  Param& multiplier() { return multiplier_; }
  Param& bias() { return bias_; }

  // Scalar multiplier for entity i (A.4 uniqueness analysis reads these).
  float multiplier_of(std::int32_t id) const {
    return multiplier_.value[static_cast<Index>(id)];
  }

 private:
  Index vocab_;
  bool with_bias_;
  Param shared_;      // U: [m, e]
  Param multiplier_;  // V: [v, 1]
  Param bias_;        // W: [v, 1] (allocated only when with_bias_)
  IdBatch cached_input_;
};

}  // namespace memcom
