#include "ondevice/format.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ondevice/memory_meter.h"

namespace memcom {
namespace {

class FormatTest : public ::testing::Test {
 protected:
  std::string temp_path() {
    path_ = std::filesystem::temp_directory_path() /
            ("memcom_format_test_" + std::to_string(counter_++) + ".mcm");
    return path_.string();
  }
  void TearDown() override {
    if (!path_.empty()) {
      std::filesystem::remove(path_);
    }
  }
  std::filesystem::path path_;
  static int counter_;
};
int FormatTest::counter_ = 0;

TEST_F(FormatTest, WriteReadRoundTripF32) {
  const std::string path = temp_path();
  Rng rng(161);
  const Tensor a = Tensor::randn({8, 4}, rng);
  const Tensor b = Tensor::randn({3}, rng);
  ModelWriter writer(path);
  writer.set_metadata("arch", "ranking");
  writer.set_metadata_int("vocab", 1234);
  writer.add_tensor("alpha", a);
  writer.add_tensor("beta", b);
  const std::uint64_t written = writer.finish();
  EXPECT_GT(written, a.numel() * 4u);

  const MmapModel model(path);
  EXPECT_EQ(model.file_size(), written);
  EXPECT_EQ(model.metadata_value("arch"), "ranking");
  EXPECT_EQ(model.metadata_int("vocab"), 1234);
  EXPECT_TRUE(model.has_tensor("alpha"));
  EXPECT_FALSE(model.has_tensor("gamma"));
  EXPECT_TRUE(model.load_tensor("alpha").equals(a));
  EXPECT_TRUE(model.load_tensor("beta").equals(b));
  EXPECT_EQ(model.tensor_names().size(), 2u);
}

TEST_F(FormatTest, QuantizedTensorsRoundTripWithinBound) {
  const std::string path = temp_path();
  Rng rng(162);
  const Tensor t = Tensor::randn({32, 8}, rng, 0.2f);
  ModelWriter writer(path);
  writer.add_tensor("w32", t, DType::kF32);
  writer.add_tensor("w16", t, DType::kF16);
  writer.add_tensor("w8", t, DType::kI8);
  writer.add_tensor("w4", t, DType::kI4);
  writer.finish();

  const MmapModel model(path);
  EXPECT_TRUE(model.load_tensor("w32").equals(t));
  EXPECT_TENSOR_NEAR(model.load_tensor("w16"), t, 0.001f);
  const TensorEntry& e8 = model.entry("w8");
  EXPECT_TENSOR_NEAR(model.load_tensor("w8"), t, e8.scale * 0.5f + 1e-6f);
  const TensorEntry& e4 = model.entry("w4");
  EXPECT_TENSOR_NEAR(model.load_tensor("w4"), t, e4.scale * 0.5f + 1e-6f);
  // Stored sizes shrink with precision.
  EXPECT_GT(model.entry("w32").byte_size, model.entry("w16").byte_size);
  EXPECT_GT(model.entry("w16").byte_size, model.entry("w8").byte_size);
  EXPECT_GT(model.entry("w8").byte_size, model.entry("w4").byte_size);
}

TEST_F(FormatTest, BlobsAreAligned) {
  const std::string path = temp_path();
  Rng rng(163);
  ModelWriter writer(path);
  writer.add_tensor("a", Tensor::randn({5}, rng));
  writer.add_tensor("b", Tensor::randn({7}, rng));
  writer.add_tensor("c", Tensor::randn({11}, rng));
  writer.finish();
  const MmapModel model(path);
  for (const std::string& name : model.tensor_names()) {
    EXPECT_EQ(model.entry(name).offset % 64, 0u) << name;
  }
}

TEST_F(FormatTest, DuplicateTensorNameRejected) {
  ModelWriter writer(temp_path());
  writer.add_tensor("x", Tensor({2}));
  EXPECT_THROW(writer.add_tensor("x", Tensor({3})), std::runtime_error);
}

TEST_F(FormatTest, DoubleFinishRejected) {
  ModelWriter writer(temp_path());
  writer.add_tensor("x", Tensor({2}));
  writer.finish();
  EXPECT_THROW(writer.finish(), std::runtime_error);
}

TEST_F(FormatTest, MissingTensorAndMetadataThrow) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.add_tensor("x", Tensor({2}));
  writer.finish();
  const MmapModel model(path);
  EXPECT_THROW(model.entry("y"), std::runtime_error);
  EXPECT_THROW(model.metadata_value("nope"), std::runtime_error);
  EXPECT_THROW(model.load_tensor("y"), std::runtime_error);
}

TEST_F(FormatTest, MissingFileThrows) {
  EXPECT_THROW(MmapModel missing("/nonexistent/path/model.mcm"),
               std::runtime_error);
}

TEST_F(FormatTest, CorruptMagicRejected) {
  const std::string path = temp_path();
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTM" << std::string(64, '\0');
  }
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, PayloadPointerIsZeroCopyView) {
  const std::string path = temp_path();
  const Tensor t = Tensor::from_vector({2}, {1.5f, -2.5f});
  ModelWriter writer(path);
  writer.add_tensor("x", t);
  writer.finish();
  const MmapModel model(path);
  const TensorEntry& entry = model.entry("x");
  const float* view = reinterpret_cast<const float*>(model.payload(entry));
  EXPECT_EQ(view[0], 1.5f);
  EXPECT_EQ(view[1], -2.5f);
}

TEST(MemoryMeterUnit, PageCountingAndReset) {
  MemoryMeter meter(4096);
  meter.touch(0, 1);          // page 0
  meter.touch(4095, 2);       // pages 0 and 1
  meter.touch(4096 * 10, 1);  // page 10
  EXPECT_EQ(meter.touched_pages(), 3);
  EXPECT_EQ(meter.weight_resident_bytes(), 3 * 4096);
  meter.note_activation_bytes(1000);
  meter.note_activation_bytes(500);  // peak keeps the max
  EXPECT_EQ(meter.activation_peak_bytes(), 1000);
  EXPECT_EQ(meter.total_resident_bytes(), 3 * 4096 + 1000);
  meter.reset();
  EXPECT_EQ(meter.touched_pages(), 0);
  EXPECT_EQ(meter.activation_peak_bytes(), 0);
}

TEST(MemoryMeterUnit, ReadaheadAddsTrailingPages) {
  MemoryMeter meter(4096, /*readahead_pages=*/2);
  meter.touch(0, 1);
  EXPECT_EQ(meter.touched_pages(), 3);  // page 0 plus 2 readahead
}

TEST(MemoryMeterUnit, ZeroLengthTouchIgnored) {
  MemoryMeter meter(4096);
  meter.touch(100, 0);
  EXPECT_EQ(meter.touched_pages(), 0);
}

TEST(MemoryMeterUnit, DistinctPagesForLookupVsStream) {
  // The Table 3 mechanism in miniature: a 1000-row x 64-float table.
  const Index row_bytes = 64 * 4;
  MemoryMeter lookup(4096);
  for (const Index row : {3, 700, 999}) {  // three lookups
    lookup.touch(row * row_bytes, row_bytes);
  }
  MemoryMeter stream(4096);
  stream.touch(0, 1000 * row_bytes);  // one-hot path streams everything
  EXPECT_LT(lookup.weight_resident_bytes(), stream.weight_resident_bytes());
  EXPECT_EQ(stream.weight_resident_bytes(),
            ((1000 * row_bytes + 4095) / 4096) * 4096);
}

}  // namespace
}  // namespace memcom
