// Ahead-of-time compiled plans (ondevice/plan.h): build / serialize / decode
// round trip, PlanBuffer ownership semantics, checksum behaviour, and the
// hardening contract — every corruption of a v3 plan section (truncation,
// checksum mismatch, identity skew, hostile declared sizes, misalignment)
// must decode as kStale with a diagnosable reason and fall back to a full
// compile that serves BIT-IDENTICAL logits. A bad plan section may never
// take down a loadable model, and may never perturb a logit.
#include "ondevice/plan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "ondevice/engine.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// Recomputes the trailing checksum of the plan section at [offset,
// offset+size) so structural corruptions survive the checksum gate and
// prove the CHECKS BEHIND IT fire, not just the checksum.
void reseal_plan(std::vector<std::uint8_t>& file, std::uint64_t offset,
                 std::uint64_t size) {
  const std::uint64_t sum =
      plan_checksum(file.data() + offset, static_cast<std::size_t>(size - 8));
  std::memcpy(file.data() + offset + size - 8, &sum, 8);
}

std::vector<std::vector<std::int32_t>> small_corpus() {
  return {{}, {1}, {5, 0, 17, 0, 42}, {7, 7, 7, 7}, {1, 2, 3, 4, 5, 6, 7, 8}};
}

class PlanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(const std::string& tag, bool emit_plan,
                           TechniqueKind kind = TechniqueKind::kMemcom,
                           const std::string& model_name = "aot",
                           std::uint64_t model_version = 3) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 150;
    config.embedding.embed_dim = 16;
    config.embedding.knob = kind == TechniqueKind::kFactorized ? 8 : 24;
    config.arch = ModelArch::kClassification;
    config.output_vocab = 24;
    config.seed = 20240;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_plan_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string(), DType::kI8, model_name, model_version,
                     /*group_size=*/0, emit_plan);
    return p.string();
  }

  // Asserts the corrupted file decodes as kStale with `reason_substr`, the
  // fallback loader still serves, and its logits match a forced compile of
  // the same (tensor-intact) file bit-for-bit.
  void expect_stale_fallback_identical(const std::string& path,
                                       const std::string& reason_substr) {
    auto mapped = std::make_shared<const MmapModel>(path);
    const PlanDecodeResult decoded = decode_plan(*mapped);
    ASSERT_EQ(decoded.status, PlanStatus::kStale) << reason_substr;
    EXPECT_NE(decoded.reason.find(reason_substr), std::string::npos)
        << "actual reason: " << decoded.reason;
    auto fallback = std::make_shared<const CompiledModel>(mapped);
    EXPECT_FALSE(fallback->plan_adopted());
    EXPECT_NE(fallback->plan_fallback_reason().find(reason_substr),
              std::string::npos)
        << fallback->plan_fallback_reason();
    auto forced = std::make_shared<const CompiledModel>(
        mapped, PlanPolicy::kNeverAdopt);
    InferenceEngine a(fallback, tflite_profile());
    InferenceEngine b(forced, tflite_profile());
    for (const auto& history : small_corpus()) {
      const Tensor got = a.run(history).logits;
      const Tensor want = b.run(history).logits;
      ASSERT_EQ(got.numel(), want.numel());
      for (Index c = 0; c < want.numel(); ++c) {
        EXPECT_EQ(got[c], want[c]) << reason_substr << " logit " << c;
      }
    }
  }

  std::vector<std::filesystem::path> paths_;
};

// --- PlanBuffer semantics ---------------------------------------------------

TEST(PlanBufferUnit, OwnedBufferCopiesAndReportsNotZeroCopy) {
  PlanBuffer buffer = PlanBuffer::owned({1.0f, 2.5f, -3.0f});
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.byte_size(), 12u);
  EXPECT_FALSE(buffer.empty());
  EXPECT_FALSE(buffer.zero_copy());
  EXPECT_EQ(buffer[1], 2.5f);
}

TEST(PlanBufferUnit, ViewBufferAliasesAndReportsZeroCopy) {
  const float backing[4] = {0.5f, 1.5f, 2.5f, 3.5f};
  PlanBuffer buffer = PlanBuffer::view(backing, 4);
  EXPECT_TRUE(buffer.zero_copy());
  EXPECT_EQ(buffer.data(), backing);
  EXPECT_EQ(buffer[3], 3.5f);
}

TEST(PlanBufferUnit, DefaultBufferIsEmpty) {
  PlanBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.zero_copy());
}

TEST(PlanBufferUnit, MoveTransfersOwnedStorageWithoutDangling) {
  PlanBuffer a = PlanBuffer::owned(std::vector<float>(1024, 7.0f));
  PlanBuffer b = std::move(a);
  // The moved-to buffer must point into ITS OWN storage, not the moved-from
  // shell's — this is the reason PlanBuffer is move-only.
  EXPECT_EQ(b.size(), 1024u);
  for (std::size_t i = 0; i < b.size(); i += 257) {
    EXPECT_EQ(b[i], 7.0f);
  }
}

// --- Checksum ---------------------------------------------------------------

TEST(PlanChecksumUnit, SensitiveToEveryBytePosition) {
  std::vector<std::uint8_t> bytes(37);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 11 + 3);
  }
  const std::uint64_t base = plan_checksum(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x40;
    EXPECT_NE(plan_checksum(bytes.data(), bytes.size()), base) << i;
    bytes[i] ^= 0x40;
  }
  EXPECT_EQ(plan_checksum(bytes.data(), bytes.size()), base);
}

TEST(PlanChecksumUnit, LengthBoundRejectsZeroExtension) {
  // Trailing zeros change the checksum even though the word padding zero-
  // fills: a truncation that lands on zero bytes must not alias.
  std::vector<std::uint8_t> bytes(16, 0xAB);
  const std::uint64_t base = plan_checksum(bytes.data(), bytes.size());
  bytes.push_back(0);
  EXPECT_NE(plan_checksum(bytes.data(), bytes.size()), base);
}

// --- Round trip -------------------------------------------------------------

TEST_F(PlanTest, DecodeRoundTripsBuildBitExactly) {
  const std::string path = export_model("roundtrip", /*emit_plan=*/true);
  const MmapModel model(path);
  ASSERT_TRUE(model.has_plan_section());
  EXPECT_EQ(model.format_version(), 3u);
  EXPECT_EQ(model.plan_offset() % 64, 0u);

  const PlanDecodeResult decoded = decode_plan(model);
  ASSERT_EQ(decoded.status, PlanStatus::kValid) << decoded.reason;
  const CompiledPlan& got = decoded.plan;
  const CompiledPlan want = build_plan(model);

  EXPECT_EQ(got.model_name, "aot");
  EXPECT_EQ(got.model_version, 3u);
  EXPECT_EQ(got.arch, want.arch);
  EXPECT_EQ(got.technique, want.technique);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.vocab, want.vocab);
  EXPECT_EQ(got.embed_dim, want.embed_dim);
  EXPECT_EQ(got.hash_size, want.hash_size);
  EXPECT_EQ(got.hidden_dim, want.hidden_dim);
  EXPECT_EQ(got.output_dim, want.output_dim);
  ASSERT_EQ(got.handles.size(), want.handles.size());
  for (std::size_t i = 0; i < want.handles.size(); ++i) {
    EXPECT_EQ(got.handles[i].name, want.handles[i].name) << i;
    EXPECT_EQ(got.handles[i].index, want.handles[i].index) << i;
  }
  // The decoded buffers view the mapping (the cold-start win), and are
  // bit-identical to what the in-process builder produces.
  EXPECT_TRUE(got.zero_copy);
  const struct { const PlanBuffer* a; const PlanBuffer* b; } pairs[] = {
      {&got.bn1_scale, &want.bn1_scale}, {&got.bn1_shift, &want.bn1_shift},
      {&got.bn2_scale, &want.bn2_scale}, {&got.bn2_shift, &want.bn2_shift},
      {&got.dense1_bias, &want.dense1_bias}, {&got.out_bias, &want.out_bias},
      {&got.projection, &want.projection},
  };
  for (const auto& [a, b] : pairs) {
    ASSERT_EQ(a->size(), b->size());
    if (!a->empty()) {
      EXPECT_TRUE(a->zero_copy());
      EXPECT_FALSE(b->zero_copy());
      EXPECT_EQ(std::memcmp(a->data(), b->data(), a->byte_size()), 0);
    }
  }
}

TEST_F(PlanTest, FactorizedPlanCarriesProjectionAndFactorDim) {
  const std::string path = export_model("factorized", /*emit_plan=*/true,
                                        TechniqueKind::kFactorized);
  const MmapModel model(path);
  const PlanDecodeResult decoded = decode_plan(model);
  ASSERT_EQ(decoded.status, PlanStatus::kValid) << decoded.reason;
  EXPECT_EQ(decoded.plan.kind, Technique::kFactorized);
  EXPECT_EQ(decoded.plan.factor_dim, 8);
  EXPECT_EQ(decoded.plan.projection.size(),
            static_cast<std::size_t>(8 * decoded.plan.embed_dim));
}

TEST_F(PlanTest, SerializeDecodeIsDeterministic) {
  const std::string path = export_model("determinism", /*emit_plan=*/true);
  const MmapModel model(path);
  const std::vector<std::uint8_t> a = serialize_plan(build_plan(model));
  const std::vector<std::uint8_t> b = serialize_plan(build_plan(model));
  EXPECT_EQ(a, b);
  // And it is byte-identical to the section the writer embedded: the
  // fallback-equals-adoption guarantee is structural, not statistical.
  ASSERT_EQ(model.plan_size(), a.size());
  EXPECT_EQ(std::memcmp(model.plan_data(), a.data(), a.size()), 0);
}

// --- Adoption ---------------------------------------------------------------

TEST_F(PlanTest, AdoptedPlanServesBitIdenticalToFullCompile) {
  const std::string path = export_model("adopt", /*emit_plan=*/true);
  auto mapped = std::make_shared<const MmapModel>(path);
  auto adopted = std::make_shared<const CompiledModel>(mapped);
  EXPECT_TRUE(adopted->plan_adopted());
  EXPECT_TRUE(adopted->plan_fallback_reason().empty());
  auto compiled = std::make_shared<const CompiledModel>(
      mapped, PlanPolicy::kNeverAdopt);
  EXPECT_FALSE(compiled->plan_adopted());
  EXPECT_EQ(compiled->plan_fallback_reason(), "plan adoption disabled");
  InferenceEngine a(adopted, tflite_profile());
  InferenceEngine b(compiled, tflite_profile());
  for (const auto& history : small_corpus()) {
    const Tensor got = a.run(history).logits;
    const Tensor want = b.run(history).logits;
    ASSERT_EQ(got.numel(), want.numel());
    for (Index c = 0; c < want.numel(); ++c) {
      EXPECT_EQ(got[c], want[c]) << c;
    }
  }
}

TEST_F(PlanTest, PlanlessFileDecodesAbsentAndCompiles) {
  const std::string path = export_model("planless", /*emit_plan=*/false);
  auto mapped = std::make_shared<const MmapModel>(path);
  EXPECT_FALSE(mapped->has_plan_section());
  EXPECT_EQ(decode_plan(*mapped).status, PlanStatus::kAbsent);
  const CompiledModel compiled(*mapped);
  EXPECT_FALSE(compiled.plan_adopted());
  EXPECT_EQ(compiled.plan_fallback_reason(), "no plan section");
}

// --- Hardening: every corruption is kStale + bit-identical fallback ---------

TEST_F(PlanTest, TruncatedPlanSectionFallsBack) {
  const std::string path = export_model("truncated", /*emit_plan=*/true);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  // Cut mid-section: the v3 header still declares the full size, so the
  // section now reaches past EOF — flagged leniently at open, stale at
  // decode, and the tensors (all before the plan) keep serving.
  std::filesystem::resize_file(path, offset + size / 2);
  {
    const MmapModel model(path);  // must NOT throw
    EXPECT_TRUE(model.has_plan_section());
    EXPECT_EQ(model.plan_data(), nullptr);
  }
  expect_stale_fallback_identical(path, "out of file bounds");
}

TEST_F(PlanTest, ChecksumMismatchFallsBack) {
  const std::string path = export_model("checksum", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  bytes[offset + size / 2] ^= 0x01;  // single bit, mid-section
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "checksum mismatch");
}

TEST_F(PlanTest, ModelVersionSkewFallsBack) {
  const std::string path = export_model("verskew", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  std::string name;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
    name = model.model_name();
  }
  // The plan's own model_version u64 sits right after the fixed prefix and
  // the model_name string (u64 length + bytes); bump it and re-seal,
  // simulating a plan from a different refresh of the model spliced in.
  const std::uint64_t version_at = offset + 16 + 8 + name.size();
  std::uint64_t version = 0;
  std::memcpy(&version, bytes.data() + version_at, 8);
  ASSERT_EQ(version, 3u);
  ++version;
  std::memcpy(bytes.data() + version_at, &version, 8);
  reseal_plan(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "model_version skew");
}

// Walks the serialized plan header with the same primitives the decoder
// uses and returns the absolute file position of the first buffer-table
// (count, offset) pair.
std::uint64_t buffer_table_position(const std::vector<std::uint8_t>& bytes,
                                    std::uint64_t plan_offset,
                                    std::uint64_t plan_size) {
  std::istringstream is(std::string(
      reinterpret_cast<const char*>(bytes.data() + plan_offset),
      static_cast<std::size_t>(plan_size)));
  is.ignore(16);       // magic, format, endian, flags
  read_string(is);     // model_name
  read_u64(is);        // model_version
  read_string(is);     // arch
  read_string(is);     // technique
  for (int i = 0; i < 6; ++i) {
    read_i64(is);      // dims
  }
  const std::uint64_t handles = read_u64(is);
  for (std::uint64_t i = 0; i < handles; ++i) {
    read_string(is);
    read_u64(is);
  }
  read_u64(is);        // buffer count
  return plan_offset + static_cast<std::uint64_t>(is.tellg());
}

TEST_F(PlanTest, OversizedDeclaredBufferFallsBack) {
  const std::string path = export_model("oversized", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  const std::uint64_t table = buffer_table_position(bytes, offset, size);
  // Declare the first buffer (bn1_scale, always present) absurdly large and
  // re-seal: the checksum now passes, so only the overflow-safe bounds
  // check stands between the loader and a wild read.
  const std::uint64_t huge = 1ULL << 60;
  std::memcpy(bytes.data() + table, &huge, 8);
  reseal_plan(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "out of section bounds");
}

TEST_F(PlanTest, MisalignedBufferOffsetFallsBack) {
  const std::string path = export_model("misaligned", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  const std::uint64_t table = buffer_table_position(bytes, offset, size);
  std::uint64_t buf_offset = 0;
  std::memcpy(&buf_offset, bytes.data() + table + 8, 8);
  buf_offset += 4;  // still in bounds, no longer 64-aligned
  std::memcpy(bytes.data() + table + 8, &buf_offset, 8);
  reseal_plan(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "misaligned");
}

TEST_F(PlanTest, ClearedScalarPredequantFlagFallsBack) {
  const std::string path = export_model("flags", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  // A future writer that drops the scalar-predequant guarantee clears the
  // flag; this reader must refuse rather than risk kernel-dependent logits.
  const std::uint32_t flags = 0;
  std::memcpy(bytes.data() + offset + 12, &flags, 4);
  reseal_plan(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "not scalar-predequantized");
}

TEST_F(PlanTest, BadPlanMagicFallsBack) {
  const std::string path = export_model("magic", /*emit_plan=*/true);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    offset = model.plan_offset();
    size = model.plan_size();
  }
  bytes[offset] ^= 0xFF;
  reseal_plan(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_fallback_identical(path, "bad plan magic");
}

}  // namespace
}  // namespace memcom
