#include "embedding/memcom.h"

#include "embedding/hashing.h"

namespace memcom {

MemcomEmbedding::MemcomEmbedding(Index vocab, Index hash_size, Index embed_dim,
                                 Rng& rng, bool with_bias)
    : vocab_(vocab),
      with_bias_(with_bias),
      shared_("memcom.shared", embedding_init(hash_size, embed_dim, rng)),
      multiplier_("memcom.multiplier", Tensor::full({vocab, 1}, 1.0f)),
      bias_("memcom.bias",
            with_bias ? Tensor({vocab, 1}) : Tensor({0, 1})) {
  check(hash_size > 0 && hash_size <= vocab,
        "memcom: hash size must be in (0, vocab]");
  shared_.sparse = true;
  multiplier_.sparse = true;
  bias_.sparse = true;
}

ParamRefs MemcomEmbedding::params() {
  if (with_bias_) {
    return {&shared_, &multiplier_, &bias_};
  }
  return {&shared_, &multiplier_};
}

Tensor MemcomEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  const Index e = output_dim();
  const Index m = hash_size();
  Tensor out({input.batch, input.length, e});
  const float* shared = shared_.value.data();
  const float* mult = multiplier_.value.data();
  const float* bias = with_bias_ ? bias_.value.data() : nullptr;
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const float* row = shared + j * e;
    const float x_mult = mult[id];
    const float x_bias = bias != nullptr ? bias[id] : 0.0f;
    float* dst = o + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] = row[c] * x_mult + x_bias;  // broadcast multiply (+ bias)
    }
  }
  return out;
}

void MemcomEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(0) == cached_input_.batch &&
            grad_out.dim(1) == cached_input_.length &&
            grad_out.dim(2) == output_dim(),
        "memcom: bad grad shape " + grad_out.shape_string());
  const Index e = output_dim();
  const Index m = hash_size();
  const float* g = grad_out.data();
  const float* shared = shared_.value.data();
  const float* mult = multiplier_.value.data();
  float* g_shared = shared_.grad.data();
  float* g_mult = multiplier_.grad.data();
  float* g_bias = with_bias_ ? bias_.grad.data() : nullptr;
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    const Index j = mod_hash(id, m);
    const float* src = g + i * e;
    const float* urow = shared + j * e;
    const float x_mult = mult[id];
    float* udst = g_shared + j * e;
    double dot = 0.0;
    double total = 0.0;
    for (Index c = 0; c < e; ++c) {
      udst[c] += src[c] * x_mult;          // dL/dU[j] = g ⊙ V[i]
      dot += static_cast<double>(src[c]) * urow[c];  // dL/dV[i] = <g, U[j]>
      total += src[c];                      // dL/dW[i] = sum(g)
    }
    g_mult[id] += static_cast<float>(dot);
    if (g_bias != nullptr) {
      g_bias[id] += static_cast<float>(total);
    }
    shared_.mark_touched(j);
    multiplier_.mark_touched(static_cast<Index>(id));
    if (with_bias_) {
      bias_.mark_touched(static_cast<Index>(id));
    }
  }
}

}  // namespace memcom
