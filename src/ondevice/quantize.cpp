#include "ondevice/quantize.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/check.h"

namespace memcom {

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kI8:
      return "i8";
    case DType::kI4:
      return "i4";
    case DType::kI4G:
      return "i4g";
  }
  return "?";
}

bool dtype_is_grouped(DType dtype) { return dtype == DType::kI4G; }

DType dtype_from_bits(int bits) {
  switch (bits) {
    case 32:
      return DType::kF32;
    case 16:
      return DType::kF16;
    case 8:
      return DType::kI8;
    case 4:
      return DType::kI4;
    default:
      check(false, "unsupported quantization bit width");
      return DType::kF32;  // unreachable
  }
}

int dtype_bits(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 32;
    case DType::kF16:
      return 16;
    case DType::kI8:
      return 8;
    case DType::kI4:
    case DType::kI4G:
      return 4;
  }
  return 0;
}

namespace {
void check_group_size(DType dtype, Index group_size) {
  if (dtype == DType::kI4G) {
    check(group_size > 0 && group_size % 8 == 0,
          "i4g group size must be a positive multiple of 8");
  } else {
    check(group_size == 0, "group size is only meaningful for i4g");
  }
}
}  // namespace

std::size_t i4g_group_count(std::size_t count, Index group_size) {
  check_group_size(DType::kI4G, group_size);
  const std::size_t g = static_cast<std::size_t>(group_size);
  return (count + g - 1) / g;
}

std::size_t i4g_scales_bytes(std::size_t count, Index group_size) {
  return i4g_group_count(count, group_size) * sizeof(float);
}

std::size_t packed_byte_size(DType dtype, std::size_t count,
                             Index group_size) {
  check_group_size(dtype, group_size);
  switch (dtype) {
    case DType::kF32:
      return count * 4;
    case DType::kF16:
      return count * 2;
    case DType::kI8:
      return count;
    case DType::kI4:
      return (count + 1) / 2;
    case DType::kI4G:
      return i4g_scales_bytes(count, group_size) + (count + 1) / 2;
  }
  return 0;
}

std::uint16_t f32_to_f16(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  std::int32_t exponent =
      static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent >= 31) {  // overflow -> inf (or NaN passthrough)
    const bool is_nan = ((bits >> 23) & 0xFF) == 0xFF && mantissa != 0;
    return static_cast<std::uint16_t>(sign | 0x7C00u | (is_nan ? 0x200u : 0));
  }
  if (exponent <= 0) {  // subnormal or zero
    if (exponent < -10) {
      return static_cast<std::uint16_t>(sign);
    }
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;
    std::uint32_t sub = mantissa >> shift;
    // round to nearest even
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (sub & 1u) != 0)) {
      ++sub;
    }
    return static_cast<std::uint16_t>(sign | sub);
  }
  std::uint16_t half = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13));
  // round to nearest even on the 13 dropped bits
  const std::uint32_t rem = mantissa & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) {
    ++half;  // may carry into the exponent, which is correct behaviour
  }
  return half;
}

float f16_to_f32(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1F;
  const std::uint32_t mantissa = half & 0x3FFu;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // zero
    } else {
      // subnormal: normalize
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 31) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

namespace {
// Symmetric signed range per integer dtype.
int qmax_for(DType dtype) { return dtype == DType::kI8 ? 127 : 7; }

std::int8_t quantize_value(float x, float inv_scale, int qmax) {
  const float scaled = x * inv_scale;
  const int q = static_cast<int>(std::lround(scaled));
  return static_cast<std::int8_t>(std::clamp(q, -qmax, qmax));
}
}  // namespace

namespace {
// Packs `n` values as 4-bit two's-complement nibbles, low nibble first. An
// odd count leaves the final byte's high nibble zero — the "phantom nibble"
// tests/test_quantize.cpp pins, so packed_byte_size and round-trips agree
// by contract rather than by accident.
void pack_nibbles(const float* src, std::size_t n, float inv_scale,
                  std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; i += 2) {
    const std::uint8_t lo = static_cast<std::uint8_t>(
        quantize_value(src[i], inv_scale, 7) & 0x0F);
    std::uint8_t hi = 0;
    if (i + 1 < n) {
      hi = static_cast<std::uint8_t>(quantize_value(src[i + 1], inv_scale, 7) &
                                     0x0F);
    }
    dst[i / 2] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
}
}  // namespace

QuantizedTensor quantize(const Tensor& tensor, DType dtype,
                         Index group_size) {
  if (dtype == DType::kI4G && group_size == 0) {
    group_size = kI4GroupDefault;
  }
  check_group_size(dtype, group_size);
  QuantizedTensor out;
  out.dtype = dtype;
  out.shape = tensor.shape();
  out.group_size = group_size;
  const std::size_t n = static_cast<std::size_t>(tensor.numel());
  out.payload.resize(packed_byte_size(dtype, n, group_size));
  if (dtype == DType::kI4G) {
    // Per-group symmetric quantization: each group of `group_size` flat
    // elements gets its own scale from its own abs-max, so one outlier no
    // longer flattens the whole tensor to the same coarse grid.
    const std::size_t groups = i4g_group_count(n, group_size);
    auto* scales = reinterpret_cast<float*>(out.payload.data());
    std::uint8_t* packed = out.payload.data() + groups * sizeof(float);
    const std::size_t g_elems = static_cast<std::size_t>(group_size);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t begin = g * g_elems;
      const std::size_t len = std::min(g_elems, n - begin);
      float abs_max = 0.0f;
      for (std::size_t i = begin; i < begin + len; ++i) {
        abs_max = std::max(abs_max, std::fabs(tensor.data()[i]));
      }
      const float scale = abs_max > 0.0f ? abs_max / 7.0f : 1.0f;
      scales[g] = scale;
      // group_size is even, so every group starts on a byte boundary.
      pack_nibbles(tensor.data() + begin, len, 1.0f / scale,
                   packed + begin / 2);
    }
    return out;
  }
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(out.payload.data(), tensor.data(), n * 4);
      break;
    }
    case DType::kF16: {
      auto* dst = reinterpret_cast<std::uint16_t*>(out.payload.data());
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = f32_to_f16(tensor.data()[i]);
      }
      break;
    }
    case DType::kI8:
    case DType::kI4: {
      const int qmax = qmax_for(dtype);
      const float abs_max = tensor.abs_max();
      out.scale = abs_max > 0.0f ? abs_max / static_cast<float>(qmax) : 1.0f;
      const float inv_scale = 1.0f / out.scale;
      if (dtype == DType::kI8) {
        auto* dst = reinterpret_cast<std::int8_t*>(out.payload.data());
        for (std::size_t i = 0; i < n; ++i) {
          dst[i] = quantize_value(tensor.data()[i], inv_scale, qmax);
        }
      } else {
        pack_nibbles(tensor.data(), n, inv_scale, out.payload.data());
      }
      break;
    }
    case DType::kI4G:
      break;  // handled above
  }
  return out;
}

void dequantize_span(DType dtype, float scale, const std::uint8_t* payload,
                     Index offset, Index count, float* out) {
  switch (dtype) {
    case DType::kF32: {
      std::memcpy(out, reinterpret_cast<const float*>(payload) + offset,
                  static_cast<std::size_t>(count) * 4);
      break;
    }
    case DType::kF16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(payload);
      for (Index i = 0; i < count; ++i) {
        out[i] = f16_to_f32(src[offset + i]);
      }
      break;
    }
    case DType::kI8: {
      const auto* src = reinterpret_cast<const std::int8_t*>(payload);
      for (Index i = 0; i < count; ++i) {
        out[i] = static_cast<float>(src[offset + i]) * scale;
      }
      break;
    }
    case DType::kI4: {
      for (Index i = 0; i < count; ++i) {
        const Index j = offset + i;
        const std::uint8_t byte = payload[j / 2];
        std::uint8_t nibble =
            (j % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
        // sign-extend 4-bit two's complement
        const int value =
            (nibble & 0x8) != 0 ? static_cast<int>(nibble) - 16
                                : static_cast<int>(nibble);
        out[i] = static_cast<float>(value) * scale;
      }
      break;
    }
    case DType::kI4G:
      check(false,
            "dequantize_span: i4g needs the grouped overload "
            "(dequantize_span_i4g)");
      break;
  }
}

void dequantize_span_i4g(const float* group_scales,
                         const std::uint8_t* packed, Index group_size,
                         Index offset, Index count, float* out) {
  for (Index i = 0; i < count; ++i) {
    const Index j = offset + i;
    const std::uint8_t byte = packed[j / 2];
    const std::uint8_t nibble =
        (j % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
    const int value = (nibble & 0x8) != 0 ? static_cast<int>(nibble) - 16
                                          : static_cast<int>(nibble);
    out[i] = static_cast<float>(value) * group_scales[j / group_size];
  }
}

Tensor dequantize(const QuantizedTensor& quantized) {
  Tensor out(quantized.shape);
  if (quantized.dtype == DType::kI4G) {
    const std::size_t scales_bytes = i4g_scales_bytes(
        static_cast<std::size_t>(out.numel()), quantized.group_size);
    dequantize_span_i4g(
        reinterpret_cast<const float*>(quantized.payload.data()),
        quantized.payload.data() + scales_bytes, quantized.group_size, 0,
        out.numel(), out.data());
    return out;
  }
  dequantize_span(quantized.dtype, quantized.scale, quantized.payload.data(),
                  0, out.numel(), out.data());
  return out;
}

float quantization_error_bound(DType dtype, float scale, float abs_max) {
  switch (dtype) {
    case DType::kF32:
      return 0.0f;
    case DType::kF16:
      // Relative error of 2^-11 on the magnitude.
      return abs_max * 0x1.0p-11f + 1e-8f;
    case DType::kI8:
    case DType::kI4:
    case DType::kI4G:
      return scale * 0.5f + 1e-8f;
  }
  return 0.0f;
}

}  // namespace memcom
