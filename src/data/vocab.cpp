#include "data/vocab.h"

#include <algorithm>

#include "core/check.h"
#include "core/serialize.h"

namespace memcom {

void VocabBuilder::add(const std::string& token, Index count) {
  check(count > 0, "vocab: count must be positive");
  check(!token.empty(), "vocab: empty token");
  counts_[token] += count;
}

Vocab VocabBuilder::freeze(Index max_tokens, Index reserved) const {
  check(reserved >= 0, "vocab: negative reserved range");
  std::vector<std::pair<std::string, Index>> sorted(counts_.begin(),
                                                    counts_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return a.second > b.second;  // most frequent first
              }
              return a.first < b.first;  // deterministic tie-break
            });
  if (max_tokens > 0 &&
      static_cast<std::size_t>(max_tokens) < sorted.size()) {
    sorted.resize(static_cast<std::size_t>(max_tokens));
  }
  Vocab vocab;
  vocab.reserved_ = reserved;
  vocab.tokens_.reserve(sorted.size());
  vocab.counts_.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    vocab.tokens_.push_back(sorted[i].first);
    vocab.counts_.push_back(sorted[i].second);
    vocab.token_to_id_[sorted[i].first] =
        vocab.first_token_id() + static_cast<Index>(i);
  }
  return vocab;
}

Index Vocab::id_of(const std::string& token) const {
  const auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnknownId : it->second;
}

const std::string& Vocab::token_of(Index id) const {
  const Index index = id - first_token_id();
  check(index >= 0 && index < static_cast<Index>(tokens_.size()),
        "vocab: id out of token range");
  return tokens_[static_cast<std::size_t>(index)];
}

Index Vocab::count_of(const std::string& token) const {
  const Index id = id_of(token);
  if (id == kUnknownId) {
    return 0;
  }
  return counts_[static_cast<std::size_t>(id - first_token_id())];
}

std::vector<std::int32_t> Vocab::encode(
    const std::vector<std::string>& tokens, Index length) const {
  check(length > 0, "vocab: encode length must be positive");
  std::vector<std::int32_t> ids;
  ids.reserve(static_cast<std::size_t>(length));
  for (const std::string& token : tokens) {
    if (static_cast<Index>(ids.size()) == length) {
      break;
    }
    const Index id = id_of(token);
    if (id != kUnknownId) {
      ids.push_back(static_cast<std::int32_t>(id));
    }
  }
  ids.resize(static_cast<std::size_t>(length), 0);  // pad id 0
  return ids;
}

void Vocab::save(std::ostream& os) const {
  write_u64(os, 0x4D43564FULL);  // "OVCM" tag
  write_i64(os, reserved_);
  write_u64(os, tokens_.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    write_string(os, tokens_[i]);
    write_i64(os, counts_[i]);
  }
}

Vocab Vocab::load(std::istream& is) {
  check(read_u64(is) == 0x4D43564FULL, "vocab: bad file tag");
  Vocab vocab;
  vocab.reserved_ = read_i64(is);
  const std::uint64_t count = read_u64(is);
  vocab.tokens_.reserve(count);
  vocab.counts_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string token = read_string(is);
    const Index occurrences = read_i64(is);
    vocab.token_to_id_[token] =
        vocab.first_token_id() + static_cast<Index>(i);
    vocab.tokens_.push_back(std::move(token));
    vocab.counts_.push_back(occurrences);
  }
  return vocab;
}

}  // namespace memcom
