// Table 3 — inference time (ms) and memory footprint (MB), batch 1, FP32.
//
// Paper setup (§5.3): MEmCom (no bias) vs Weinberger's feature hashing,
// identical trunks, hash size fixed at 10K, embedding dim 256, on an
// iPhone 12 Pro (CoreML: all / cpuOnly / cpuAndGPU) and a Pixel 2 (TF-Lite
// CPU), average of 1000 runs.
//
// We simulate the devices (see src/ondevice/device_profile.h). Absolute
// numbers are NOT comparable to the paper's phones; the orderings are:
//   * MEmCom beats Weinberger on every compute unit;
//   * MEmCom memory is a small fraction of Weinberger's (mmap lookup
//     touches O(history) pages vs the whole table);
//   * Weinberger on the TF-Lite interpreter is pathologically slow
//     (paper: ~31 ms vs ~1 ms on CoreML).
#include <filesystem>

#include "bench_common.h"
#include "ondevice/engine.h"

using namespace memcom;
using namespace memcom::bench;

namespace {

struct PaperRow {
  const char* dataset;
  double memcom_coreml_all_ms, weinberger_coreml_all_ms;
  double memcom_tflite_ms, weinberger_tflite_ms;
  double memcom_coreml_all_mb, weinberger_coreml_all_mb;
};
// Reference values transcribed from Table 3 (CoreML "all" and TF-Lite CPU).
constexpr PaperRow kPaperRows[] = {
    {"newsgroup", 0.21, 0.89, 0.18, 30.96, 3.23, 27.57},
    {"movielens", 0.07, 0.90, 0.05, 30.84, 2.60, 27.60},
    {"millionsongs", 0.07, 0.91, 0.07, 30.60, 2.70, 27.80},
    {"google_local", 3.49, 1.19, 0.40, 30.91, 5.34, 10.00},
    {"netflix", 1.22, 1.32, 1.22, 31.40, 8.65, 10.60},
    {"games", 3.42, 2.51, 4.40, 34.60, 5.39, 13.20},
    {"arcade", 0.06, 1.14, 0.01, 30.90, 3.63, 10.20},
};

const PaperRow* paper_row(const std::string& dataset) {
  for (const PaperRow& row : kPaperRows) {
    if (dataset == row.dataset) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  // Paper's Table 3 settings: e=256, hash size 10K (we keep the hash size
  // vocab-relative at our scaled vocab sizes), batch 1, FP32, L=128.
  const Index embed_dim = flags.get_int("embed-dim", 256);
  const Index seq_len = flags.get_int("seq-len", 128);

  print_header(
      "Table 3: on-device inference time (ms) and memory footprint (MB)",
      "paper: MEmCom 0.06-3.5 ms / 2.5-8.7 MB vs Weinberger 0.9-2.6 ms /\n"
      "       10-38 MB on CoreML; 30+ ms on the TF-Lite interpreter.\n"
      "       Simulated devices: orderings reproduce, absolutes do not.");

  const auto profiles = table3_profiles();
  TextTable table({"dataset", "technique", "coreml/all ms", "coreml/cpuOnly ms",
                   "coreml/cpuAndGPU ms", "tflite/CPU ms", "coreml/all MB",
                   "tflite/CPU MB"});

  for (const DatasetSpec& base_spec : datasets_from_flags(
           flags, {"newsgroup", "movielens", "millionsongs", "google_local",
                   "netflix", "games", "arcade"})) {
    DatasetSpec spec = base_spec;
    spec.seq_len = seq_len;
    // Both models share the trunk; §5.3 uses "the same fixed hash size" for
    // both techniques.
    const Index vocab = spec.input_vocab();
    const Index hash = std::min<Index>(flags.get_int("hash", 10000),
                                       std::max<Index>(8, vocab / 2));

    // A realistic history (ids within vocab, zipf-ish, padded tail).
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len), 0);
    Rng rng(42);
    const Index real_tokens = seq_len - seq_len / 8;
    for (Index i = 0; i < real_tokens; ++i) {
      history[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          1 + rng.uniform_index(vocab - 1));
    }

    for (const TechniqueKind kind :
         {TechniqueKind::kMemcom, TechniqueKind::kWeinberger}) {
      ModelConfig config;
      config.embedding = {kind, vocab, embed_dim, hash};
      // §5.3 benchmarks the models "described in section 5.1", i.e. the
      // classification network.
      config.arch = ModelArch::kClassification;
      config.output_vocab = spec.output_vocab;
      RecModel model(config);
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("table3_" + spec.name + "_" + technique_name(kind) + ".mcm"))
              .string();
      model.export_mcm(path, DType::kF32);

      const MmapModel mapped(path);
      std::vector<std::string> row = {spec.name, technique_name(kind)};
      std::vector<std::string> memory_cells;
      for (const DeviceProfile& profile : profiles) {
        InferenceEngine engine(mapped, profile);
        const LatencyStats stats =
            engine.benchmark(history, static_cast<int>(scale.runs));
        row.push_back(format_float(stats.mean_ms, 3));
        if (profile.label() == "coreml/all" ||
            profile.label() == "tflite/CPU") {
          memory_cells.push_back(
              format_float(engine.resident_megabytes(), 2));
        }
      }
      row.insert(row.end(), memory_cells.begin(), memory_cells.end());
      table.add_row(std::move(row));
      std::filesystem::remove(path);
    }
    if (const PaperRow* paper = paper_row(spec.name)) {
      std::cout << "[" << spec.name << "] paper reference (coreml/all, "
                << "tflite ms | coreml, weinberger-vs-memcom MB): memcom "
                << paper->memcom_coreml_all_ms << "/"
                << paper->memcom_tflite_ms << " ms, "
                << paper->memcom_coreml_all_mb << " MB;  weinberger "
                << paper->weinberger_coreml_all_ms << "/"
                << paper->weinberger_tflite_ms << " ms, "
                << paper->weinberger_coreml_all_mb << " MB\n";
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nshape checks: memcom < weinberger on tflite ms (paper "
               "~30x);\nmemcom MB << weinberger MB (mmap page granularity).\n";
  return 0;
}
