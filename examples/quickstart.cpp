// Quickstart: compress a recommendation model's embedding with MEmCom.
//
// Trains the paper's pointwise ranking network twice on a MovieLens-like
// synthetic dataset — once with a full embedding table and once with
// MEmCom at 16x embedding compression — and compares parameter counts and
// ranking quality.
//
//   ./quickstart [--epochs N] [--embed-dim E]
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "repro/sweep.h"
#include "repro/trainer.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  TrainConfig train;
  train.epochs = flags.get_int("epochs", 3);
  train.batch_size = 64;
  train.learning_rate = 2e-3;

  std::cout << "== MEmCom quickstart ==\n";
  std::cout << "dataset: synthetic MovieLens stand-in (Table 2 geometry)\n";
  const SyntheticDataset data(movielens_spec(), /*seed=*/42);
  std::cout << "  input vocab=" << data.input_vocab()
            << " output vocab=" << data.output_vocab()
            << " train=" << data.train().size()
            << " eval=" << data.eval().size() << "\n\n";

  // 1. Uncompressed baseline.
  ModelConfig base_config;
  base_config.embedding = {TechniqueKind::kFull, data.input_vocab(), embed_dim,
                           0};
  base_config.arch = ModelArch::kRanking;
  base_config.output_vocab = data.output_vocab();
  RecModel baseline(base_config);
  std::cout << "training uncompressed baseline ("
            << baseline.param_count() << " params)...\n";
  const EvalResult base_eval = train_and_evaluate(baseline, data, train);

  // 2. MEmCom at ~16x embedding compression (hash size = vocab / 16).
  ModelConfig memcom_config = base_config;
  memcom_config.embedding.kind = TechniqueKind::kMemcom;
  memcom_config.embedding.knob = data.input_vocab() / 16;
  RecModel compressed(memcom_config);
  std::cout << "training MEmCom model (" << compressed.param_count()
            << " params, hash size=" << memcom_config.embedding.knob
            << ")...\n\n";
  const EvalResult memcom_eval = train_and_evaluate(compressed, data, train);

  TextTable table({"model", "params", "compression", "nDCG@32", "nDCG loss"});
  table.add_row({"uncompressed", std::to_string(baseline.param_count()),
                 "1.0x", format_float(base_eval.ndcg, 4), "--"});
  const double ratio = static_cast<double>(baseline.param_count()) /
                       static_cast<double>(compressed.param_count());
  table.add_row({"memcom", std::to_string(compressed.param_count()),
                 format_ratio(ratio), format_float(memcom_eval.ndcg, 4),
                 format_percent(relative_loss_percent(base_eval.ndcg,
                                                      memcom_eval.ndcg))});
  std::cout << table.to_string();
  std::cout << "\nMEmCom keeps a unique embedding per movie: emb(i) = "
               "U[i mod m] * V[i].\n";
  return 0;
}
