#include "embedding/mixed_dim.h"

namespace memcom {

std::vector<std::pair<Index, Index>> MixedDimEmbedding::block_layout(
    Index vocab, Index head_block, Index embed_dim) {
  check(head_block > 0 && head_block <= vocab,
        "mixed_dim: head block must be in (0, vocab]");
  std::vector<std::pair<Index, Index>> layout;  // (rows, width)
  Index covered = 0;
  Index rows = head_block;
  Index width = embed_dim;
  while (covered < vocab) {
    rows = std::min(rows, vocab - covered);
    layout.emplace_back(rows, width);
    covered += rows;
    rows *= 4;
    width = std::max<Index>(2, width / 2);
  }
  return layout;
}

MixedDimEmbedding::MixedDimEmbedding(Index vocab, Index head_block,
                                     Index embed_dim, Rng& rng)
    : vocab_(vocab), embed_dim_(embed_dim) {
  Index first = 0;
  Index index = 0;
  for (const auto& [rows, width] : block_layout(vocab, head_block, embed_dim)) {
    Block block;
    block.first_id = first;
    block.table = Param("mixed_dim.block" + std::to_string(index) + ".table",
                        embedding_init(rows, width, rng));
    block.table.sparse = true;
    if (width < embed_dim) {
      block.projection =
          Param("mixed_dim.block" + std::to_string(index) + ".projection",
                Tensor::glorot(width, embed_dim, rng));
    } else {
      block.projection = Param(
          "mixed_dim.block" + std::to_string(index) + ".projection",
          Tensor({0, 0}));
    }
    first += rows;
    ++index;
    blocks_.push_back(std::move(block));
  }
}

Index MixedDimEmbedding::param_formula(Index vocab, Index head_block,
                                       Index embed_dim) {
  Index total = 0;
  for (const auto& [rows, width] : block_layout(vocab, head_block, embed_dim)) {
    total += rows * width;
    if (width < embed_dim) {
      total += width * embed_dim;
    }
  }
  return total;
}

Index MixedDimEmbedding::block_of(std::int32_t id) const {
  for (std::size_t b = blocks_.size(); b-- > 0;) {
    if (static_cast<Index>(id) >= blocks_[b].first_id) {
      return static_cast<Index>(b);
    }
  }
  return 0;
}

ParamRefs MixedDimEmbedding::params() {
  ParamRefs refs;
  for (Block& block : blocks_) {
    refs.push_back(&block.table);
    if (block.projection.numel() > 0) {
      refs.push_back(&block.projection);
    }
  }
  return refs;
}

Tensor MixedDimEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_);
  cached_input_ = input;
  cached_narrow_.assign(static_cast<std::size_t>(input.size()), {});
  Tensor out({input.batch, input.length, embed_dim_});
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const Block& block = blocks_[static_cast<std::size_t>(block_of(id))];
    const Index width = block.table.value.dim(1);
    const Index row = static_cast<Index>(id) - block.first_id;
    const float* src = block.table.value.data() + row * width;
    float* dst = o + i * embed_dim_;
    if (block.projection.numel() == 0) {
      for (Index c = 0; c < embed_dim_; ++c) {
        dst[c] = src[c];
      }
    } else {
      cached_narrow_[static_cast<std::size_t>(i)].assign(src, src + width);
      const float* proj = block.projection.value.data();
      for (Index c = 0; c < embed_dim_; ++c) {
        dst[c] = 0.0f;
      }
      for (Index k = 0; k < width; ++k) {
        const float f = src[k];
        const float* prow = proj + k * embed_dim_;
        for (Index c = 0; c < embed_dim_; ++c) {
          dst[c] += f * prow[c];
        }
      }
    }
  }
  return out;
}

void MixedDimEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == embed_dim_,
        "mixed_dim: bad grad shape");
  const float* g = grad_out.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const std::int32_t id = cached_input_.ids[static_cast<std::size_t>(i)];
    Block& block = blocks_[static_cast<std::size_t>(block_of(id))];
    const Index width = block.table.value.dim(1);
    const Index row = static_cast<Index>(id) - block.first_id;
    const float* src = g + i * embed_dim_;
    float* table_grad = block.table.grad.data() + row * width;
    block.table.mark_touched(row);
    if (block.projection.numel() == 0) {
      for (Index c = 0; c < embed_dim_; ++c) {
        table_grad[c] += src[c];
      }
    } else {
      // dTable = g P^T ; dP = narrow^T g
      const float* proj = block.projection.value.data();
      float* proj_grad = block.projection.grad.data();
      const std::vector<float>& narrow =
          cached_narrow_[static_cast<std::size_t>(i)];
      for (Index k = 0; k < width; ++k) {
        const float* prow = proj + k * embed_dim_;
        float* pgrow = proj_grad + k * embed_dim_;
        double acc = 0.0;
        const float nk = narrow[static_cast<std::size_t>(k)];
        for (Index c = 0; c < embed_dim_; ++c) {
          acc += static_cast<double>(src[c]) * prow[c];
          pgrow[c] += nk * src[c];
        }
        table_grad[k] += static_cast<float>(acc);
      }
    }
  }
}

}  // namespace memcom
