#include "core/ops.h"

#include <cmath>

namespace memcom {

namespace {
void check_2d(const Tensor& t, const char* name) {
  check(t.ndim() == 2, std::string(name) + " must be 2-D, got " +
                           t.shape_string());
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul a");
  check_2d(b, "matmul b");
  check_eq(a.dim(1), b.dim(0), "matmul inner dimension");
  Tensor out({a.dim(0), b.dim(1)});
  matmul_accumulate(a, b, out);
  return out;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  const Index m = a.dim(0);
  const Index k = a.dim(1);
  const Index n = b.dim(1);
  check(out.ndim() == 2 && out.dim(0) == m && out.dim(1) == n,
        "matmul_accumulate: bad output shape");
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  // ikj order: streams through b and out rows; good cache behaviour for the
  // small row-major matrices used here.
  for (Index i = 0; i < m; ++i) {
    for (Index kk = 0; kk < k; ++kk) {
      const float aik = ap[i * k + kk];
      if (aik == 0.0f) {
        continue;  // one-hot / sparse rows are common in this codebase
      }
      const float* brow = bp + kk * n;
      float* orow = op + i * n;
      for (Index j = 0; j < n; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_tn a");
  check_2d(b, "matmul_tn b");
  check_eq(a.dim(0), b.dim(0), "matmul_tn shared dimension");
  const Index k = a.dim(0);
  const Index m = a.dim(1);
  const Index n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  for (Index kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (Index i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) {
        continue;
      }
      float* orow = op + i * n;
      for (Index j = 0; j < n; ++j) {
        orow[j] += aki * brow[j];
      }
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_nt a");
  check_2d(b, "matmul_nt b");
  check_eq(a.dim(1), b.dim(1), "matmul_nt shared dimension");
  const Index m = a.dim(0);
  const Index n = a.dim(1);
  const Index k = b.dim(0);
  Tensor out({m, k});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  for (Index i = 0; i < m; ++i) {
    const float* arow = ap + i * n;
    for (Index j = 0; j < k; ++j) {
      const float* brow = bp + j * n;
      double acc = 0.0;
      for (Index t = 0; t < n; ++t) {
        acc += static_cast<double>(arow[t]) * static_cast<double>(brow[t]);
      }
      op[i * k + j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  check_2d(a, "transpose");
  const Index m = a.dim(0);
  const Index n = a.dim(1);
  Tensor out({n, m});
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      out.at2(j, i) = a.at2(i, j);
    }
  }
  return out;
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  check_2d(x, "add_row_bias x");
  check(bias.ndim() == 1, "bias must be 1-D");
  check_eq(x.dim(1), bias.dim(0), "bias length");
  const Index rows = x.dim(0);
  const Index cols = x.dim(1);
  const float* bp = bias.data();
  float* xp = x.data();
  for (Index r = 0; r < rows; ++r) {
    float* row = xp + r * cols;
    for (Index c = 0; c < cols; ++c) {
      row[c] += bp[c];
    }
  }
}

Tensor column_sums(const Tensor& grad) {
  check_2d(grad, "column_sums");
  const Index rows = grad.dim(0);
  const Index cols = grad.dim(1);
  Tensor out({cols});
  const float* gp = grad.data();
  float* op = out.data();
  for (Index r = 0; r < rows; ++r) {
    const float* row = gp + r * cols;
    for (Index c = 0; c < cols; ++c) {
      op[c] += row[c];
    }
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.axpy_(-1.0f, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_2d(logits, "softmax_rows");
  const Index rows = logits.dim(0);
  const Index cols = logits.dim(1);
  Tensor out({rows, cols});
  for (Index r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (Index c = 1; c < cols; ++c) {
      mx = std::max(mx, in[c]);
    }
    double denom = 0.0;
    for (Index c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (Index c = 0; c < cols; ++c) {
      o[c] *= inv;
    }
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  check_2d(logits, "log_softmax_rows");
  const Index rows = logits.dim(0);
  const Index cols = logits.dim(1);
  Tensor out({rows, cols});
  const Tensor lse = logsumexp_rows(logits);
  for (Index r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    const float z = lse[r];
    for (Index c = 0; c < cols; ++c) {
      o[c] = in[c] - z;
    }
  }
  return out;
}

Tensor logsumexp_rows(const Tensor& logits) {
  check_2d(logits, "logsumexp_rows");
  const Index rows = logits.dim(0);
  const Index cols = logits.dim(1);
  check(cols > 0, "logsumexp of empty rows");
  Tensor out({rows});
  for (Index r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float mx = in[0];
    for (Index c = 1; c < cols; ++c) {
      mx = std::max(mx, in[c]);
    }
    double acc = 0.0;
    for (Index c = 0; c < cols; ++c) {
      acc += std::exp(static_cast<double>(in[c]) - mx);
    }
    out[r] = mx + static_cast<float>(std::log(acc));
  }
  return out;
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

Tensor weighted_sum_middle(const Tensor& x, const Tensor& weights) {
  check(x.ndim() == 3, "weighted_sum_middle expects [B,L,E]");
  check(weights.ndim() == 2, "weights must be [B,L]");
  const Index b = x.dim(0);
  const Index l = x.dim(1);
  const Index e = x.dim(2);
  check_eq(b, weights.dim(0), "batch");
  check_eq(l, weights.dim(1), "length");
  Tensor out({b, e});
  for (Index bi = 0; bi < b; ++bi) {
    float* orow = out.data() + bi * e;
    for (Index li = 0; li < l; ++li) {
      const float w = weights.at2(bi, li);
      if (w == 0.0f) {
        continue;
      }
      const float* xrow = x.data() + (bi * l + li) * e;
      for (Index ei = 0; ei < e; ++ei) {
        orow[ei] += w * xrow[ei];
      }
    }
  }
  return out;
}

}  // namespace memcom
