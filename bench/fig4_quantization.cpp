// Figure 4 (Appendix A.2) — accuracy vs floating-point precision.
//
// Paper setup: MEmCom models from A.1, weights linearly quantized with
// CoreML to 32/16/8 bits (and lower); y = accuracy loss vs the fp32 model.
//
// Paper shape: fp16 is lossless on every dataset except Google Local;
// int8 costs ~0.13%; below 8 bits accuracy drops significantly.
#include <filesystem>

#include "bench_common.h"
#include "ondevice/quantize.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Figure 4: accuracy vs weight precision (MEmCom models, linear quant)",
      "paper: fp16 lossless (except Google Local); int8 ~0.13% loss;\n"
      "       4-bit drops significantly on all datasets (appendix A.2)");

  TextTable table({"dataset", "bits", "metric", "loss vs fp32"});
  for (const DatasetSpec& spec : datasets_from_flags(
           flags, {"movielens", "netflix", "google_local", "arcade"})) {
    const SyntheticDataset data(spec, /*seed=*/4000 + train.seed);
    const ModelArch arch = ModelArch::kRanking;
    ModelConfig config;
    config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), embed_dim,
                        std::max<Index>(8, data.input_vocab() / 10)};
    config.arch = arch;
    config.output_vocab = data.output_vocab();
    config.seed = train.seed;
    RecModel model(config);
    std::cout << "[" << spec.name << "] training memcom model ("
              << model.param_count() << " params)...\n";
    const EvalResult fp32_eval = train_and_evaluate(model, data, train);
    const double fp32_metric = fp32_eval.primary(arch);

    // The ladder ends with two 4-bit rungs: per-tensor i4 (the paper's
    // "below 8 bits drops significantly") and groupwise i4g, whose
    // per-group scales recover most of that loss at the same bit width.
    struct Rung {
      const char* label;
      DType dtype;
    };
    for (const Rung& rung : {Rung{"32", DType::kF32}, Rung{"16", DType::kF16},
                             Rung{"8", DType::kI8}, Rung{"4", DType::kI4},
                             Rung{"4g", DType::kI4G}}) {
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("fig4_" + spec.name + "_" + rung.label + ".mcm"))
              .string();
      model.export_mcm(path, rung.dtype);
      ModelConfig quant_config = config;
      RecModel quantized(quant_config);
      quantized.load_mcm(path);
      const EvalResult eval = evaluate_model(quantized, data, train.ndcg_k);
      const double metric = eval.primary(arch);
      table.add_row({spec.name, rung.label,
                     format_float(metric, 4),
                     format_percent(
                         relative_loss_percent(fp32_metric, metric))});
      std::cout << "  " << rung.label << "-bit: " << format_float(metric, 4)
                << " (" << format_percent(
                              relative_loss_percent(fp32_metric, metric))
                << ")\n";
      std::filesystem::remove(path);
    }
  }
  std::cout << "\n" << table.to_string();
  return 0;
}
