// Figure 6 (Appendix A.1) — tuning the embedding size under a fixed model
// size budget.
//
// Paper setup: fix the MEmCom model size (half the baseline for the public
// datasets, 20 MB for Games/Arcade); sweep the number of embeddings m and
// binary-search the embedding size e that exactly meets the budget (the
// model size also depends on the output vocabulary); plot accuracy per
// (m, e) point.
//
// Paper shape: the optimum m is roughly vocab/10 for MillionSongs,
// MovieLens, Netflix, Games, Arcade — but NOT for Google Local, whose
// review distribution is much flatter (geographic constraints).
#include "bench_common.h"

using namespace memcom;
using namespace memcom::bench;

namespace {

// Largest e such that the MEmCom model with (m, e) fits the budget.
Index fit_embed_dim(Index vocab, Index m, ModelArch arch, Index output_vocab,
                    Index budget_params) {
  Index lo = 2;
  Index hi = 1024;
  while (lo < hi) {
    const Index mid = (lo + hi + 1) / 2;
    const EmbeddingConfig emb = {TechniqueKind::kMemcom, vocab, mid, m};
    if (model_param_count(emb, arch, output_vocab) <= budget_params) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);
  const Index baseline_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Figure 6: embedding size vs number of embeddings at fixed model size",
      "paper: optimal #embeddings ~= vocab/10 on MillionSongs/MovieLens/\n"
      "       Netflix/Games/Arcade; NOT on the flat Google Local (A.1)");

  for (const DatasetSpec& spec : datasets_from_flags(
           flags, {"movielens", "netflix", "google_local"})) {
    const SyntheticDataset data(spec, /*seed=*/6000 + train.seed);
    const ModelArch arch = ModelArch::kRanking;
    const Index vocab = data.input_vocab();

    // Budget: half the uncompressed baseline (the paper's public-dataset
    // choice).
    const EmbeddingConfig base_emb = {TechniqueKind::kFull, vocab,
                                      baseline_dim, 0};
    const Index budget =
        model_param_count(base_emb, arch, data.output_vocab()) / 2;
    std::cout << "[" << spec.name << "] vocab=" << vocab
              << " budget=" << budget << " params (= baseline/2)\n";

    TextTable table({"num_embeddings (m)", "vocab/m", "embed dim (e)",
                     "params", "nDCG@32"});
    double best_metric = -1.0;
    Index best_m = 0;
    for (Index divisor : {2, 5, 10, 20, 40, 80}) {
      const Index m = std::max<Index>(8, vocab / divisor);
      const Index e = fit_embed_dim(vocab, m, arch, data.output_vocab(),
                                    budget);
      if (e < 2) {
        continue;
      }
      ModelConfig config;
      config.embedding = {TechniqueKind::kMemcom, vocab, e, m};
      config.arch = arch;
      config.output_vocab = data.output_vocab();
      config.seed = train.seed;
      RecModel model(config);
      const EvalResult eval = train_and_evaluate(model, data, train);
      table.add_row({std::to_string(m), std::to_string(divisor),
                     std::to_string(e), std::to_string(model.param_count()),
                     format_float(eval.ndcg, 4)});
      std::cout << "  m=" << m << " (vocab/" << divisor << ") e=" << e
                << " ndcg=" << format_float(eval.ndcg, 4) << "\n";
      if (eval.ndcg > best_metric) {
        best_metric = eval.ndcg;
        best_m = divisor;
      }
    }
    std::cout << table.to_string();
    std::cout << "optimum at vocab/" << best_m << " (paper: ~vocab/10 "
              << (spec.name == "google_local" ? "does NOT hold here — flat "
                                                "popularity"
                                              : "expected")
              << ")\n\n";
  }
  return 0;
}
