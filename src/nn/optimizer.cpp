#include "nn/optimizer.h"

#include <cmath>

#include "core/check.h"

namespace memcom {

void Optimizer::step(const ParamRefs& params) {
  begin_step();
  for (Param* p : params) {
    if (p->sparse && !p->touched_rows.empty() && p->value.ndim() == 2) {
      p->finalize_touched();
      const Index cols = p->value.dim(1);
      for (const Index row : p->touched_rows) {
        update_span(*p, row * cols, cols);
      }
    } else {
      update_span(*p, 0, p->numel());
    }
  }
}

void Optimizer::zero_grad(const ParamRefs& params) {
  for (Param* p : params) {
    p->zero_grad();
  }
}

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {
  check(momentum >= 0.0 && momentum < 1.0, "sgd momentum out of range");
}

void Sgd::update_span(Param& p, Index offset, Index count) {
  float* value = p.value.data() + offset;
  const float* grad = p.grad.data() + offset;
  const float lr = static_cast<float>(lr_);
  if (momentum_ == 0.0) {
    for (Index i = 0; i < count; ++i) {
      value[i] -= lr * grad[i];
    }
    return;
  }
  auto [it, inserted] = velocity_.try_emplace(&p);
  if (inserted) {
    it->second = Tensor(p.value.shape());
  }
  float* vel = it->second.data() + offset;
  const float mom = static_cast<float>(momentum_);
  for (Index i = 0; i < count; ++i) {
    vel[i] = mom * vel[i] + grad[i];
    value[i] -= lr * vel[i];
  }
}

Adagrad::Adagrad(double lr, double epsilon)
    : Optimizer(lr), epsilon_(epsilon) {}

void Adagrad::update_span(Param& p, Index offset, Index count) {
  auto [it, inserted] = accum_.try_emplace(&p);
  if (inserted) {
    it->second = Tensor(p.value.shape());
  }
  float* value = p.value.data() + offset;
  const float* grad = p.grad.data() + offset;
  float* acc = it->second.data() + offset;
  const float lr = static_cast<float>(lr_);
  const float eps = static_cast<float>(epsilon_);
  for (Index i = 0; i < count; ++i) {
    acc[i] += grad[i] * grad[i];
    value[i] -= lr * grad[i] / (std::sqrt(acc[i]) + eps);
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::update_span(Param& p, Index offset, Index count) {
  auto [it, inserted] = state_.try_emplace(&p);
  if (inserted) {
    it->second.m = Tensor(p.value.shape());
    it->second.v = Tensor(p.value.shape());
  }
  float* value = p.value.data() + offset;
  const float* grad = p.grad.data() + offset;
  float* m = it->second.m.data() + offset;
  float* v = it->second.v.data() + offset;

  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float lr = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  for (Index i = 0; i < count; ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * grad[i];
    v[i] = b2 * v[i] + (1.0f - b2) * grad[i] * grad[i];
    value[i] -= lr * m[i] / (std::sqrt(v[i]) + eps);
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& kind, double lr) {
  if (kind == "sgd") {
    return std::make_unique<Sgd>(lr);
  }
  if (kind == "adam") {
    return std::make_unique<Adam>(lr);
  }
  if (kind == "adagrad") {
    return std::make_unique<Adagrad>(lr);
  }
  check(false, "unknown optimizer kind: " + kind);
  return nullptr;  // unreachable
}

}  // namespace memcom
