// Multi-threaded serving harness over the on-device inference engine.
//
// The deployment story the ROADMAP targets is a fleet of request-serving
// workers sharing one read-only weight file: the .mcm is mmap'd once, and
// every worker thread owns a private InferenceEngine (scratch arena + memory
// meter) compiled against the shared mapping. Workers pull requests from a
// lock-free atomic cursor, so the harness measures genuine lookup-path
// throughput with zero cross-thread synchronization on the hot path.
//
// Reported numbers: aggregate QPS (wall clock of the whole drain) and the
// per-request wall-latency distribution (p50/p95/p99 via LatencyStats).
// Logits are bit-identical to sequential InferenceEngine::run() — the
// parity tests in tests/test_serving.cpp enforce this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tensor.h"
#include "ondevice/engine.h"

namespace memcom {

struct ServingReport {
  int threads = 0;
  std::uint64_t requests = 0;  // total forwards executed
  double wall_ms = 0;          // wall clock of the whole drain
  double qps = 0;              // requests / wall seconds
  LatencyStats latency;        // per-request wall latency (ms)
};

class ServingHarness {
 public:
  // Compiles `threads` independent engines against the shared model. The
  // model must outlive the harness.
  ServingHarness(const MmapModel& model, const DeviceProfile& profile,
                 int threads);

  // Drains `requests` (repeated `repeat` times) across the worker pool.
  // When `logits_out` is non-null it is resized to [requests, output_dim]
  // and filled with each request's logits (first repetition).
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, Tensor* logits_out = nullptr);

  int threads() const { return static_cast<int>(engines_.size()); }
  Index output_dim() const { return engines_.front()->output_dim(); }
  const InferenceEngine& engine(int i) const { return *engines_[i]; }

  // Peak resident footprint across workers (each worker meters its own
  // touches; the weight pages are shared, so the fleet-wide footprint is
  // the max, not the sum).
  double max_resident_megabytes() const;

 private:
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
};

}  // namespace memcom
