// Figure 1 — compression vs. accuracy tradeoff (classification).
//
// Paper setup (§5.1): Newsgroup, Games, Arcade; the classification network
// of Code 1; x-axis = whole-model compression ratio, y-axis = % accuracy
// loss vs the uncompressed baseline; techniques = MEmCom (±bias),
// quotient-remainder (mult/concat), naive & double hashing, factorized
// embedding, reduce-dim, truncate-rare; hash ladder 100K..1K.
//
// Expected shape (paper): MEmCom has the lowest accuracy loss at every
// compression ratio; only factorized embedding is competitive on
// Newsgroup; truncate_rare is strong on Arcade but MEmCom beats it ~2x.
#include "bench_common.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  const TrainConfig train = train_config_from(scale, flags);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Figure 1: compression vs accuracy (classification)",
      "paper: MEmCom dominates all techniques on Newsgroup/Games/Arcade;\n"
      "       truncate_rare strong on Arcade but MEmCom ~2x better (sec 5.1)");

  for (const DatasetSpec& spec :
       datasets_from_flags(flags, {"newsgroup", "games", "arcade"})) {
    const SyntheticDataset data(spec, /*seed=*/1000 + train.seed);
    const SweepResult result = run_compression_sweep(
        data, ModelArch::kClassification, figure_techniques(), train,
        embed_dim, scale.ladder_levels, &std::cout);
    std::cout << "\n";
    print_sweep(result, "accuracy", std::cout);

    // Per-compression-bucket winner, the quantity the figure communicates.
    std::cout << "best technique per point (lowest accuracy loss):\n";
    for (std::size_t level = 0;
         level < static_cast<std::size_t>(scale.ladder_levels); ++level) {
      const TechniqueSeries* best_series = nullptr;
      const SweepPoint* best_point = nullptr;
      for (const TechniqueSeries& series : result.series) {
        if (level >= series.points.size()) {
          continue;
        }
        const SweepPoint& point = series.points[level];
        if (best_point == nullptr ||
            point.relative_loss_pct < best_point->relative_loss_pct) {
          best_point = &point;
          best_series = &series;
        }
      }
      if (best_point != nullptr) {
        std::cout << "  level " << level << " (ratio ~"
                  << format_ratio(best_point->compression_ratio)
                  << "): " << technique_name(best_series->kind) << " at "
                  << format_percent(best_point->relative_loss_pct)
                  << " loss\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
