// Cross-technique differential test harness.
//
// Every inference entry point — run(), run_view(), run_batch(),
// ServingHarness::serve(), and the AsyncServer micro-batching pipeline —
// must produce BIT-IDENTICAL logits for every Technique enum value over a
// seeded corpus of edge-case histories, with the hot-row cache detached,
// cold, and warm. This is the contract that lets future fast-path /
// scheduling / caching changes land without re-litigating numerical parity:
// if a change perturbs a single logit bit anywhere, this suite names the
// technique, the path, the request, and the logit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/sampling.h"
#include "ondevice/plan.h"
#include "ondevice/registry.h"
#include "ondevice/serving.h"
#include "ondevice/topk.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

constexpr Index kVocab = 150;
constexpr Index kEmbedDim = 16;
constexpr Index kMaxLen = 32;
constexpr std::size_t kCacheBudget = 32 * 1024;

// Every value of the engine's Technique enum, via the registry kinds that
// compile to it. If the enum grows, this list (and the exhaustive switch in
// engine.cpp) must grow with it.
const TechniqueKind kAllEngineTechniques[] = {
    TechniqueKind::kFull,        TechniqueKind::kReduceDim,
    TechniqueKind::kTruncateRare, TechniqueKind::kNaiveHash,
    TechniqueKind::kWeinberger,  TechniqueKind::kMemcom,
    TechniqueKind::kMemcomBias,  TechniqueKind::kQrMult,
    TechniqueKind::kQrConcat,    TechniqueKind::kDoubleHash,
    TechniqueKind::kFactorized,
};

// Seeded corpus of edge-case histories: empty, length-1, all-duplicate ids,
// all-padding, maximum length, and Zipf-skewed draws (the distribution the
// hot-row cache is designed for — duplicates across requests are the point).
std::vector<std::vector<std::int32_t>> edge_case_corpus() {
  std::vector<std::vector<std::int32_t>> corpus;
  corpus.push_back({});                            // empty
  corpus.push_back({1});                           // length-1, first real id
  corpus.push_back({static_cast<std::int32_t>(kVocab - 1)});  // last id
  corpus.push_back(std::vector<std::int32_t>(8, 7));          // all-duplicate
  corpus.push_back(std::vector<std::int32_t>(6, 0));          // all padding
  {
    std::vector<std::int32_t> dense(static_cast<std::size_t>(kMaxLen));
    for (Index t = 0; t < kMaxLen; ++t) {  // max length, full id sweep
      dense[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(1 + (t * 37) % (kVocab - 1));
    }
    corpus.push_back(std::move(dense));
  }
  corpus.push_back({5, 0, 17, 0, 42, 0});  // interleaved padding
  Rng rng(2024);
  const AliasSampler zipf(zipf_weights(kVocab - 1, 1.1));
  for (int i = 0; i < 8; ++i) {  // skewed Zipf traffic
    std::vector<std::int32_t> history(
        static_cast<std::size_t>(4 + rng.uniform_index(kMaxLen - 4)), 0);
    for (auto& id : history) {
      id = static_cast<std::int32_t>(1 + zipf.sample(rng));
    }
    corpus.push_back(std::move(history));
  }
  return corpus;
}

class DifferentialTest : public ::testing::TestWithParam<TechniqueKind> {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, DType dtype,
                           std::uint64_t version = 1, bool emit_plan = false,
                           bool emit_index = false, Index index_clusters = 0) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = kVocab;
    config.embedding.embed_dim = kEmbedDim;
    switch (kind) {
      case TechniqueKind::kFactorized:
      case TechniqueKind::kReduceDim:
        config.embedding.knob = 8;
        break;
      case TechniqueKind::kFull:
        config.embedding.knob = 0;
        break;
      default:
        config.embedding.knob = 24;
    }
    config.arch = ModelArch::kClassification;
    config.output_vocab = 24;
    config.seed = 99177;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_diff_" + std::string(technique_name(kind)) + "_" +
              dtype_name(dtype) + "_v" + std::to_string(version) +
              (emit_plan ? "_plan" : "") + (emit_index ? "_idx" : "") + ".mcm");
    paths_.push_back(p);
    // Same seed each version: the weights are bit-identical, so the
    // post-swap path below can demand bit-identical logits; the version
    // stamp is what changes.
    model.export_mcm(p.string(), dtype, "diff", version, /*group_size=*/0,
                     emit_plan, emit_index, index_clusters);
    return p.string();
  }

  std::vector<std::filesystem::path> paths_;
};

// Reference logits: sequential run() on a dedicated engine.
std::vector<Tensor> reference_logits(
    const MmapModel& model,
    const std::vector<std::vector<std::int32_t>>& corpus) {
  InferenceEngine engine(model, tflite_profile());
  std::vector<Tensor> out;
  out.reserve(corpus.size());
  for (const auto& history : corpus) {
    out.push_back(engine.run(history).logits);
  }
  return out;
}

void expect_bit_identical(const float* actual, const Tensor& expected,
                          const std::string& path, std::size_t request) {
  for (Index c = 0; c < expected.numel(); ++c) {
    // EXPECT_EQ on floats: bit-identical is the contract, not "close".
    EXPECT_EQ(actual[static_cast<std::size_t>(c)], expected[c])
        << path << " request " << request << " logit " << c;
  }
}

void check_all_paths(const MmapModel& model,
                     const std::vector<std::vector<std::int32_t>>& corpus,
                     const std::vector<Tensor>& expected,
                     const std::string& tag, const std::string& path,
                     const std::string& swap_path) {
  // --- run_view -----------------------------------------------------------
  {
    InferenceEngine engine(model, tflite_profile());
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      const InferenceView view = engine.run_view(corpus[r]);
      expect_bit_identical(view.logits, expected[r], tag + "/run_view", r);
    }
  }
  // --- run_batch ----------------------------------------------------------
  {
    InferenceEngine engine(model, tflite_profile());
    BatchResult batch = engine.run_batch(corpus);
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      expect_bit_identical(&batch.logits.at2(static_cast<Index>(r), 0),
                           expected[r], tag + "/run_batch", r);
    }
  }
  // --- ServingHarness (closed loop, threaded) -----------------------------
  {
    ServingHarness harness(model, tflite_profile(), 3);
    Tensor served;
    harness.serve(corpus, 1, &served);
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      expect_bit_identical(&served.at2(static_cast<Index>(r), 0), expected[r],
                           tag + "/harness", r);
    }
  }
  // --- AsyncServer (micro-batching pipeline), cache off -------------------
  {
    AsyncServerConfig config;
    config.threads = 2;
    config.max_batch = 4;
    config.max_delay_us = 100.0;
    config.queue_capacity = 8;
    AsyncServer server(model, tflite_profile(), config);
    Tensor served;
    server.serve(corpus, 1, 0.0, &served);
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      expect_bit_identical(&served.at2(static_cast<Index>(r), 0), expected[r],
                           tag + "/async", r);
    }
  }
  // --- AsyncServer, SHARDED scheduler (work-stealing path) ----------------
  // Same corpus through shards=threads with deadlines + SLO flush armed:
  // batch composition and execution placement differ completely from the
  // single-queue drain above, yet every logit must stay bit-identical.
  {
    AsyncServerConfig config;
    config.threads = 3;
    config.shards = 3;
    config.max_batch = 4;
    config.max_delay_us = 100.0;
    config.deadline_us = 1e6;  // generous: exercises the deadline plumbing
    config.queue_capacity = 9;
    AsyncServer server(model, tflite_profile(), config);
    Tensor served;
    server.serve(corpus, 1, 0.0, &served);
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      expect_bit_identical(&served.at2(static_cast<Index>(r), 0), expected[r],
                           tag + "/async_sharded", r);
    }
  }
  // --- Hot-row cache: cold pass then warm pass ----------------------------
  {
    InferenceEngine engine(model, tflite_profile());
    const bool attached = engine.enable_row_cache(kCacheBudget);
    EXPECT_EQ(attached, !engine.uses_onehot_path()) << tag;
    for (std::size_t r = 0; r < corpus.size(); ++r) {  // cold
      const InferenceView view = engine.run_view(corpus[r]);
      expect_bit_identical(view.logits, expected[r], tag + "/cache_cold", r);
    }
    const RowCacheStats after_cold = engine.row_cache_stats();
    for (std::size_t r = 0; r < corpus.size(); ++r) {  // warm
      const InferenceView view = engine.run_view(corpus[r]);
      expect_bit_identical(view.logits, expected[r], tag + "/cache_warm", r);
    }
    if (attached) {
      const RowCacheStats after_warm = engine.row_cache_stats();
      // The corpus is Zipf-skewed and fits the budget: the warm pass must
      // actually hit (otherwise this test isn't exercising the cache).
      EXPECT_GT(after_warm.hits, after_cold.hits) << tag;
      EXPECT_GT(after_warm.resident_bytes, 0u) << tag;
      EXPECT_LE(after_warm.resident_bytes, after_warm.capacity_bytes) << tag;
    }
  }
  // --- AsyncServer with the cache enabled, two drains (cold + warm) -------
  {
    AsyncServerConfig config;
    config.threads = 2;
    config.max_batch = 8;
    config.max_delay_us = 50.0;
    config.queue_capacity = 16;
    config.cache_budget_bytes = kCacheBudget;
    AsyncServer server(model, tflite_profile(), config);
    for (int pass = 0; pass < 2; ++pass) {
      Tensor served;
      server.serve(corpus, 1, 0.0, &served);
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        expect_bit_identical(
            &served.at2(static_cast<Index>(r), 0), expected[r],
            tag + "/async_cached_pass" + std::to_string(pass), r);
      }
    }
  }
  // --- ModelRegistry-served, then again after a hot swap ------------------
  // swap_path carries the SAME weights under a higher declared version, so
  // the post-swap drain must reproduce every logit bit — the swap machinery
  // (version pinning, context re-bind, cold cache rebuild) may not perturb
  // a single bit anywhere.
  {
    ModelRegistry registry;
    registry.load("diff", path);
    AsyncServerConfig config;
    config.threads = 2;
    config.max_batch = 4;
    config.max_delay_us = 50.0;
    config.queue_capacity = 16;
    config.cache_budget_bytes = kCacheBudget;
    AsyncServer server(registry, "diff", tflite_profile(), config);
    {
      Tensor served;
      server.serve(corpus, 1, 0.0, &served);
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        expect_bit_identical(&served.at2(static_cast<Index>(r), 0),
                             expected[r], tag + "/registry", r);
      }
    }
    registry.swap("diff", swap_path);
    {
      Tensor served;
      server.serve(corpus, 1, 0.0, &served);
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        expect_bit_identical(&served.at2(static_cast<Index>(r), 0),
                             expected[r], tag + "/post_swap", r);
      }
    }
  }
}

TEST_P(DifferentialTest, AllPathsBitIdenticalF32) {
  const TechniqueKind kind = GetParam();
  const std::string path = export_model(kind, DType::kF32);
  const std::string swap_path = export_model(kind, DType::kF32, 2);
  const MmapModel model(path);
  const auto corpus = edge_case_corpus();
  const auto expected = reference_logits(model, corpus);
  check_all_paths(model, corpus, expected,
                  std::string(technique_name(kind)) + "/f32", path,
                  swap_path);
}

TEST_P(DifferentialTest, AllPathsBitIdenticalQuantizedI8) {
  const TechniqueKind kind = GetParam();
  const std::string path = export_model(kind, DType::kI8);
  const std::string swap_path = export_model(kind, DType::kI8, 2);
  const MmapModel model(path);
  const auto corpus = edge_case_corpus();
  const auto expected = reference_logits(model, corpus);
  check_all_paths(model, corpus, expected,
                  std::string(technique_name(kind)) + "/i8", path,
                  swap_path);
}

// 4-bit groupwise rows through every serving path: the sub-byte codec this
// PR adds must satisfy the same bit-identity contract as i8.
TEST_P(DifferentialTest, AllPathsBitIdenticalQuantizedI4G) {
  const TechniqueKind kind = GetParam();
  const std::string path = export_model(kind, DType::kI4G);
  const std::string swap_path = export_model(kind, DType::kI4G, 2);
  const MmapModel model(path);
  const auto corpus = edge_case_corpus();
  const auto expected = reference_logits(model, corpus);
  check_all_paths(model, corpus, expected,
                  std::string(technique_name(kind)) + "/i4g", path,
                  swap_path);
}

// Kernel-family differential: the SAME model compiled with the scalar
// reference (MEMCOM_DISABLE_SIMD=1 at compile time) and with the dispatched
// SIMD family must produce bit-identical logits on every technique × dtype.
// This is the tentpole's bit-exactness contract at the whole-engine level;
// the per-kernel version lives in tests/test_kernels.cpp.
TEST_P(DifferentialTest, ScalarAndDispatchedKernelsBitIdentical) {
  const TechniqueKind kind = GetParam();
  const auto corpus = edge_case_corpus();
  for (const DType dtype : {DType::kF32, DType::kF16, DType::kI8,
                            DType::kI4G}) {
    const std::string path = export_model(kind, dtype);
    const MmapModel model(path);
    ::setenv("MEMCOM_DISABLE_SIMD", "1", 1);
    std::vector<Tensor> scalar_logits;
    {
      InferenceEngine engine(model, tflite_profile());
      EXPECT_STREQ(engine.compiled().kernel_name(), "scalar");
      for (const auto& history : corpus) {
        scalar_logits.push_back(engine.run(history).logits);
      }
    }
    ::unsetenv("MEMCOM_DISABLE_SIMD");
    InferenceEngine dispatched(model, tflite_profile());
    for (std::size_t r = 0; r < corpus.size(); ++r) {
      const InferenceView view = dispatched.run_view(corpus[r]);
      expect_bit_identical(view.logits, scalar_logits[r],
                           std::string(technique_name(kind)) + "/" +
                               dtype_name(dtype) + "/scalar_vs_" +
                               dispatched.compiled().kernel_name(),
                           r);
    }
  }
}

// Plan-adoption differential: a v3 plan-bearing export served through
// {adopted plan, forced full compile, fallback after mid-section corruption}
// must produce BIT-IDENTICAL logits for every technique and dtype. This is
// the tentpole contract of the ahead-of-time plan work: adoption is a pure
// cold-start optimization, invisible in every logit bit, and a damaged plan
// degrades to the compile path rather than to wrong answers.
TEST_P(DifferentialTest, PlanAdoptedAndFallbackBitIdentical) {
  const TechniqueKind kind = GetParam();
  const auto corpus = edge_case_corpus();
  for (const DType dtype : {DType::kF32, DType::kI8, DType::kI4G}) {
    const std::string path =
        export_model(kind, dtype, /*version=*/1, /*emit_plan=*/true);
    const std::string tag =
        std::string(technique_name(kind)) + "/" + dtype_name(dtype);
    auto mapped = std::make_shared<const MmapModel>(path);
    ASSERT_TRUE(mapped->has_plan_section()) << tag;

    // Reference: forced full compile of the same mapping.
    auto forced = std::make_shared<const CompiledModel>(
        mapped, PlanPolicy::kNeverAdopt);
    EXPECT_FALSE(forced->plan_adopted()) << tag;
    std::vector<Tensor> expected;
    {
      InferenceEngine engine(forced, tflite_profile());
      for (const auto& history : corpus) {
        expected.push_back(engine.run(history).logits);
      }
    }

    // Leg 1: the plan actually adopts, and serves identically.
    {
      auto adopted = std::make_shared<const CompiledModel>(mapped);
      EXPECT_TRUE(adopted->plan_adopted()) << tag << ": "
          << adopted->plan_fallback_reason();
      InferenceEngine engine(adopted, tflite_profile());
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        const InferenceView view = engine.run_view(corpus[r]);
        expect_bit_identical(view.logits, expected[r], tag + "/plan_adopt",
                             r);
      }
    }

    // Leg 2: flip one byte mid-plan — adoption must refuse (checksum) and
    // the fallback compile must serve the same bits as the reference.
    {
      const std::string corrupt = path + ".corrupt";
      paths_.push_back(corrupt);
      std::filesystem::copy_file(
          path, corrupt, std::filesystem::copy_options::overwrite_existing);
      const std::uint64_t flip_at =
          mapped->plan_offset() + mapped->plan_size() / 2;
      std::fstream f(corrupt,
                     std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(static_cast<std::streamoff>(flip_at));
      char byte = 0;
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(flip_at));
      f.put(static_cast<char>(byte ^ 0x01));
      f.close();
      auto fallback = std::make_shared<const CompiledModel>(
          std::make_shared<const MmapModel>(corrupt));
      EXPECT_FALSE(fallback->plan_adopted()) << tag;
      EXPECT_NE(fallback->plan_fallback_reason().find("checksum"),
                std::string::npos)
          << tag << ": " << fallback->plan_fallback_reason();
      InferenceEngine engine(fallback, tflite_profile());
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        const InferenceView view = engine.run_view(corpus[r]);
        expect_bit_identical(view.logits, expected[r],
                             tag + "/plan_fallback", r);
      }
    }
  }
}

// Kernel-independence of the serialized plan: EMIT the file while the
// scalar family is forced, then ADOPT it with dispatch enabled. The plan's
// pre-dequantized buffers came from the scalar reference, so the dispatched
// adopter must reproduce the scalar-compiled logits bit-for-bit — one fleet
// artifact serves every device's kernel family. (The CI sanitizer matrix
// runs this whole suite under both MEMCOM_DISABLE_SIMD settings, covering
// the emit-under-one-leg / adopt-under-the-other pairing both ways.)
TEST_P(DifferentialTest, PlanEmittedUnderScalarAdoptsUnderDispatch) {
  const TechniqueKind kind = GetParam();
  const auto corpus = edge_case_corpus();
  // Save/restore rather than blind unsetenv: the sanitizer CI legs run the
  // suite with MEMCOM_DISABLE_SIMD pre-set, and must stay that way after.
  const char* saved = std::getenv("MEMCOM_DISABLE_SIMD");
  ::setenv("MEMCOM_DISABLE_SIMD", "1", 1);
  const std::string path =
      export_model(kind, DType::kI8, /*version=*/1, /*emit_plan=*/true);
  std::vector<Tensor> scalar_logits;
  {
    const MmapModel model(path);
    InferenceEngine engine(model, tflite_profile());
    EXPECT_STREQ(engine.compiled().kernel_name(), "scalar");
    EXPECT_TRUE(engine.compiled().plan_adopted());
    for (const auto& history : corpus) {
      scalar_logits.push_back(engine.run(history).logits);
    }
  }
  if (saved == nullptr) {
    ::unsetenv("MEMCOM_DISABLE_SIMD");
  } else {
    ::setenv("MEMCOM_DISABLE_SIMD", saved, 1);
  }
  auto adopted = std::make_shared<const CompiledModel>(
      std::make_shared<const MmapModel>(path));
  EXPECT_TRUE(adopted->plan_adopted())
      << adopted->plan_fallback_reason();
  InferenceEngine dispatched(adopted, tflite_profile());
  for (std::size_t r = 0; r < corpus.size(); ++r) {
    const InferenceView view = dispatched.run_view(corpus[r]);
    expect_bit_identical(view.logits, scalar_logits[r],
                         std::string(technique_name(kind)) +
                             "/plan_scalar_emit_vs_" +
                             dispatched.compiled().kernel_name(),
                         r);
  }
}

// Session/top-k differential: the SAME interleaved session trace served
// with the scalar reference kernels and with the dispatched family, through
// a 1-shard and a 3-shard scheduler, must produce IDENTICAL top-k id lists
// for every event. The session capacity is ample, so no eviction occurs and
// shard placement (which differs completely between the configs) cannot be
// visible in the results — any divergence means either a kernel broke the
// dot bit-identity contract or session affinity let two updates reorder.
TEST_P(DifferentialTest, SessionTopKInvariantAcrossKernelsAndShards) {
  const TechniqueKind kind = GetParam();
  std::vector<SessionEvent> events;
  Rng rng(31337);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      events.push_back(
          {s, static_cast<std::int32_t>(1 + rng.uniform_index(kVocab - 1))});
    }
  }
  const Index k = 6;
  struct ServerShape {
    const char* tag;
    bool scalar;
    int threads;
    int shards;
  };
  for (const DType dtype : {DType::kF32, DType::kI8, DType::kI4G}) {
    const std::string path = export_model(kind, dtype);
    const MmapModel model(path);
    std::vector<std::vector<Index>> reference;
    for (const ServerShape shape :
         {ServerShape{"scalar/1shard", true, 1, 1},
          ServerShape{"dispatched/1shard", false, 1, 1},
          ServerShape{"scalar/3shard", true, 3, 3},
          ServerShape{"dispatched/3shard", false, 3, 3}}) {
      if (shape.scalar) {
        ::setenv("MEMCOM_DISABLE_SIMD", "1", 1);
      }
      std::vector<std::vector<Index>> topk;
      {
        AsyncServerConfig config;
        config.threads = shape.threads;
        config.shards = shape.shards;
        config.max_batch = 4;
        config.max_delay_us = 100.0;
        config.session_capacity = 64;  // ample: zero evictions
        config.session_history = 16;
        AsyncServer server(model, tflite_profile(), config);
        const ServingReport report = server.serve_sessions(events, k, &topk);
        EXPECT_EQ(report.shed, 0u) << shape.tag;
        EXPECT_EQ(report.session_evictions, 0u) << shape.tag;
      }
      if (shape.scalar) {
        ::unsetenv("MEMCOM_DISABLE_SIMD");
      }
      if (reference.empty()) {
        reference = std::move(topk);
        for (const auto& ids : reference) {
          EXPECT_EQ(ids.size(), static_cast<std::size_t>(k));
        }
        continue;
      }
      ASSERT_EQ(topk.size(), reference.size()) << shape.tag;
      for (std::size_t i = 0; i < topk.size(); ++i) {
        EXPECT_EQ(topk[i], reference[i])
            << technique_name(kind) << "/" << dtype_name(dtype) << "/"
            << shape.tag << " event " << i;
      }
    }
  }
}

// Pruned-scan anchor: with every cluster probed, the clustered pruned scan
// must reproduce the exact full-catalog top-k BIT-IDENTICALLY — per
// technique, per dtype, per kernel family, per shard count. The exact leg
// (nprobe=0) of each shape is the reference; the full-probe leg (nprobe ==
// num_clusters) rides the same serving path through PrunedCatalogScorer and
// must not perturb a single id. Any divergence means the index permutation
// dropped/duplicated an item or the pruned per-column replay broke the
// dot-product bit-identity contract.
TEST_P(DifferentialTest, PrunedFullProbeMatchesExactScanEverywhere) {
  const TechniqueKind kind = GetParam();
  constexpr Index kClusters = 5;
  std::vector<SessionEvent> events;
  Rng rng(90210);
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      events.push_back(
          {s, static_cast<std::int32_t>(1 + rng.uniform_index(kVocab - 1))});
    }
  }
  const Index k = 6;
  struct ServerShape {
    const char* tag;
    bool scalar;
    int threads;
    int shards;
  };
  // Save/restore MEMCOM_DISABLE_SIMD: the sanitizer CI legs pre-set it.
  const char* saved = std::getenv("MEMCOM_DISABLE_SIMD");
  for (const DType dtype : {DType::kF32, DType::kI8, DType::kI4G}) {
    const std::string path =
        export_model(kind, dtype, /*version=*/1, /*emit_plan=*/false,
                     /*emit_index=*/true, kClusters);
    const MmapModel model(path);
    {
      // The v4 section must actually adopt for every technique x dtype —
      // otherwise the pruned legs below silently fall back to the exact
      // scan and this test proves nothing.
      const CompiledModel compiled(model);
      ASSERT_TRUE(compiled.has_catalog_index())
          << technique_name(kind) << "/" << dtype_name(dtype) << ": "
          << compiled.index_fallback_reason();
      ASSERT_EQ(compiled.catalog_index().clusters, kClusters);
    }
    std::vector<std::vector<Index>> reference;
    for (const ServerShape shape :
         {ServerShape{"scalar/1shard", true, 1, 1},
          ServerShape{"dispatched/1shard", false, 1, 1},
          ServerShape{"scalar/3shard", true, 3, 3},
          ServerShape{"dispatched/3shard", false, 3, 3}}) {
      for (const Index nprobe : {Index{0}, kClusters}) {
        if (shape.scalar) {
          ::setenv("MEMCOM_DISABLE_SIMD", "1", 1);
        }
        std::vector<std::vector<Index>> topk;
        ServingReport report;
        {
          AsyncServerConfig config;
          config.threads = shape.threads;
          config.shards = shape.shards;
          config.max_batch = 4;
          config.max_delay_us = 100.0;
          config.session_capacity = 64;  // ample: zero evictions
          config.session_history = 16;
          config.nprobe = nprobe;
          AsyncServer server(model, tflite_profile(), config);
          report = server.serve_sessions(events, k, &topk);
          EXPECT_EQ(report.shed, 0u) << shape.tag;
        }
        if (shape.scalar) {
          if (saved == nullptr) {
            ::unsetenv("MEMCOM_DISABLE_SIMD");
          } else {
            ::setenv("MEMCOM_DISABLE_SIMD", saved, 1);
          }
        }
        const std::string tag = std::string(technique_name(kind)) + "/" +
                                dtype_name(dtype) + "/" + shape.tag +
                                "/nprobe" + std::to_string(nprobe);
        if (nprobe > 0) {
          // Full probe still walks the clustered path: every catalog row
          // is scanned, so the pruned fraction must be exactly zero.
          EXPECT_EQ(report.scanned_rows, report.catalog_rows) << tag;
          EXPECT_EQ(report.pruned_fraction, 0.0) << tag;
        }
        if (reference.empty()) {
          reference = std::move(topk);
          for (const auto& ids : reference) {
            EXPECT_EQ(ids.size(), static_cast<std::size_t>(k));
          }
          continue;
        }
        ASSERT_EQ(topk.size(), reference.size()) << tag;
        for (std::size_t i = 0; i < topk.size(); ++i) {
          EXPECT_EQ(topk[i], reference[i]) << tag << " event " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, DifferentialTest,
    ::testing::ValuesIn(kAllEngineTechniques),
    [](const ::testing::TestParamInfo<TechniqueKind>& info) {
      return std::string(technique_name(info.param));
    });

// Eviction churn isolation at the serving layer: one "pinned" session is
// touched every round (never the LRU victim) while a stream of throwaway
// sessions churns a tiny store. After the storm, the pinned session's next
// top-k must equal a sequential engine run over its exact in-order history
// — on both the 1-shard and the 3-shard scheduler.
TEST(DifferentialSession, EvictionChurnNeverCorruptsASurvivor) {
  ModelConfig mc;
  mc.embedding.kind = TechniqueKind::kMemcom;
  mc.embedding.vocab = kVocab;
  mc.embedding.embed_dim = kEmbedDim;
  mc.embedding.knob = 24;
  mc.arch = ModelArch::kClassification;
  mc.output_vocab = 24;
  mc.seed = 7744;
  RecModel rec(mc);
  const auto p = std::filesystem::temp_directory_path() /
                 "memcom_diff_session_churn.mcm";
  rec.export_mcm(p.string(), DType::kI4G, "churn");
  {
    const MmapModel model(p.string());
    InferenceEngine reference(model, tflite_profile());
    for (const int shards : {1, 3}) {
      AsyncServerConfig config;
      config.threads = shards;
      config.shards = shards;
      // 6 slots per shard; 4 one-shot noise sessions per round keep the
      // pinned session (re-touched every round) at worst 5th of 6 in its
      // shard's LRU order — churned constantly, never the victim.
      config.session_capacity = static_cast<Index>(6 * shards);
      config.session_history = 8;
      AsyncServer server(model, tflite_profile(), config);
      const std::uint64_t pinned = 1000;
      std::vector<std::int32_t> pinned_history;
      std::future<AsyncResult> last;
      for (int round = 0; round < 10; ++round) {
        const std::int32_t item = static_cast<std::int32_t>(1 + round * 11);
        pinned_history.push_back(item);
        last = server.submit_next_item(AsyncServer::kDefaultModelId, pinned,
                                       item, /*k=*/5);
        // Flood with one-shot sessions to force evictions around the
        // pinned one.
        std::vector<std::future<AsyncResult>> noise;
        for (std::uint64_t j = 0; j < 4; ++j) {
          noise.push_back(server.submit_next_item(
              AsyncServer::kDefaultModelId,
              static_cast<std::uint64_t>(round) * 100 + j,
              static_cast<std::int32_t>(1 + j), /*k=*/2));
        }
        for (auto& f : noise) {
          ASSERT_EQ(f.get().status, RequestStatus::kOk);
        }
      }
      const AsyncResult result = last.get();
      ASSERT_EQ(result.status, RequestStatus::kOk);
      EXPECT_GT(server.evicted_sessions(), 0u) << shards << " shard(s)";
      if (pinned_history.size() > 8) {
        pinned_history.erase(
            pinned_history.begin(),
            pinned_history.end() - 8);  // ring keeps the newest 8
      }
      const Tensor logits = reference.run(pinned_history).logits;
      const std::vector<ScoredId> expect =
          topk_select(logits.data(), logits.numel(), 5);
      ASSERT_EQ(result.top_ids.size(), expect.size()) << shards << " shard(s)";
      for (std::size_t j = 0; j < expect.size(); ++j) {
        EXPECT_EQ(result.top_ids[j], expect[j].id)
            << shards << " shard(s) pos " << j;
      }
    }
  }
  std::filesystem::remove(p);
}

// The memory metering of the UNCACHED path must be unaffected by the cache
// machinery existing at all: byte-identical to an engine that never had the
// hook (this pins the PR-2 accounting).
TEST(DifferentialMetering, UncachedMeteringUnchangedByCacheHook) {
  for (const TechniqueKind kind : kAllEngineTechniques) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = kVocab;
    config.embedding.embed_dim = kEmbedDim;
    config.embedding.knob =
        (kind == TechniqueKind::kFactorized ||
         kind == TechniqueKind::kReduceDim)
            ? 8
            : (kind == TechniqueKind::kFull ? 0 : 24);
    config.arch = ModelArch::kRanking;
    config.output_vocab = 12;
    config.seed = 5150;
    RecModel model(config);
    const auto p = std::filesystem::temp_directory_path() /
                   ("memcom_diff_meter_" +
                    std::string(technique_name(kind)) + ".mcm");
    model.export_mcm(p.string());
    {
      const MmapModel mapped(p.string());
      const auto corpus = edge_case_corpus();
      InferenceEngine uncached(mapped, tflite_profile());
      InferenceEngine cached(mapped, tflite_profile());
      cached.enable_row_cache(kCacheBudget);
      for (const auto& history : corpus) {
        uncached.run_view(history);
        cached.run_view(history);
        cached.run_view(history);  // warm re-run must add no pages either
      }
      EXPECT_EQ(uncached.meter().touched_pages(),
                cached.meter().touched_pages())
          << technique_name(kind);
      EXPECT_EQ(uncached.meter().weight_resident_bytes(),
                cached.meter().weight_resident_bytes())
          << technique_name(kind);
      EXPECT_EQ(uncached.meter().activation_peak_bytes(),
                cached.meter().activation_peak_bytes())
          << technique_name(kind);
    }
    std::filesystem::remove(p);
  }
}

}  // namespace
}  // namespace memcom
