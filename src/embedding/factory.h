// Technique registry and factory. Benches and examples construct every
// compression technique through this one entry point, so sweeps can iterate
// `all_techniques()` exactly like the paper's figure legends.
#pragma once

#include <string>
#include <vector>

#include "embedding/embedding.h"

namespace memcom {

enum class TechniqueKind {
  kFull,          // uncompressed baseline
  kMemcom,        // Algorithm 2 (no bias)   — our approach
  kMemcomBias,    // Algorithm 3 (with bias) — our approach
  kQrMult,        // quotient-remainder, elementwise-multiply composition
  kQrConcat,      // quotient-remainder, concatenation composition
  kNaiveHash,
  kDoubleHash,
  kFactorized,    // factorized embedding parameterization (low rank)
  kReduceDim,     // plain narrower embedding
  kTruncateRare,  // drop unpopular entities
  kHashedNets,    // Chen et al. weight-bucket hashing (extension)
  kWeinberger,    // feature hashing with sign (Table 3 comparator)
  kMixedDim,      // mixed-dimension embeddings (Ginart et al., see sec 5)
  kTtRec,         // TT-Rec tensor-train embedding (Yin et al., see sec 5)
};

struct EmbeddingConfig {
  TechniqueKind kind = TechniqueKind::kFull;
  Index vocab = 0;
  Index embed_dim = 64;
  // Per-technique compression knob:
  //   hashed techniques (memcom/qr/naive/double/weinberger): hash size m
  //   factorized: hidden dim h | reduce_dim: reduced width
  //   truncate_rare: number of kept entities | hashed_nets: bucket count
  //   mixed_dim: head-block size | tt_rec: tensor-train rank
  Index knob = 0;
};

EmbeddingPtr make_embedding(const EmbeddingConfig& config, Rng& rng);

std::string technique_name(TechniqueKind kind);
TechniqueKind technique_from_string(const std::string& name);

// The techniques swept in Figures 1-3 (paper legend order).
std::vector<TechniqueKind> figure_techniques();
// Every implemented technique.
std::vector<TechniqueKind> all_techniques();

// Analytic parameter count of just the embedding stage (validated against
// allocated storage in the tests).
Index embedding_param_formula(const EmbeddingConfig& config);

}  // namespace memcom
