// Multi-tenant serving walkthrough: the production shape of the paper's
// deployment story. Two compressed models (different techniques, different
// output spaces) are trained, exported with deployment identity, published
// in a ModelRegistry, and served together by ONE AsyncServer that forms
// per-model micro-batches. Mid-traffic, a retrained v2 of one model is
// hot-swapped in with zero downtime: in-flight batches finish on v1, new
// batches ride v2, and v1's plan + mmap are released when the last holder
// drains.
//
//   ./multi_tenant_serving [--epochs 1] [--requests 200]
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "ondevice/registry.h"
#include "ondevice/serving.h"
#include "repro/trainer.h"

using namespace memcom;

namespace {

std::string train_and_export(const SyntheticDataset& data,
                             TechniqueKind kind, Index output_vocab,
                             const TrainConfig& train,
                             const std::string& name,
                             std::uint64_t version, std::uint64_t seed) {
  ModelConfig config;
  config.embedding = {kind, data.input_vocab(), 32,
                      std::max<Index>(8, data.input_vocab() / 16)};
  config.arch = ModelArch::kRanking;
  config.output_vocab = output_vocab;
  config.seed = seed;
  RecModel model(config);
  train_and_evaluate(model, data, train);
  const std::string path = "/tmp/memcom_" + name + "_v" +
                           std::to_string(version) + ".mcm";
  model.export_mcm(path, DType::kF32, name, version);
  std::cout << "exported " << path << " (" << technique_name(kind) << ", v"
            << version << ")\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 1);
  const int request_count = static_cast<int>(flags.get_int("requests", 200));

  std::cout << "== multi-tenant serving with zero-downtime hot swap ==\n\n";
  const SyntheticDataset data(movielens_spec(), /*seed=*/5);

  // Two tenants: a MEmCom ranker and a QR ranker, plus a retrained v2 of
  // the first (a later seed stands in for "yesterday's model, refreshed").
  const std::string ranker_v1 = train_and_export(
      data, TechniqueKind::kMemcom, data.output_vocab(), train, "ranker", 1,
      /*seed=*/21);
  const std::string ranker_v2 = train_and_export(
      data, TechniqueKind::kMemcom, data.output_vocab(), train, "ranker", 2,
      /*seed=*/22);
  const std::string related_v1 = train_and_export(
      data, TechniqueKind::kQrMult, data.output_vocab(), train, "related", 1,
      /*seed=*/23);

  ModelRegistry registry;
  registry.load("ranker", ranker_v1);
  registry.load("related", related_v1);
  std::cout << "\nregistry holds " << registry.size()
            << " models; compile-once plan bytes: "
            << registry.plan_resident_bytes() << "\n\n";

  // Interleaved traffic for both tenants.
  Rng rng(3);
  std::vector<RoutedRequest> requests;
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(16);
    for (auto& id : history) {
      id = static_cast<std::int32_t>(
          1 + rng.uniform_index(data.input_vocab() - 1));
    }
    requests.push_back(
        RoutedRequest{i % 2 == 0 ? "ranker" : "related", std::move(history)});
  }

  AsyncServerConfig config;
  config.threads = 2;
  config.max_batch = 8;
  config.max_delay_us = 200.0;
  config.queue_capacity = 64;
  config.cache_budget_bytes = 64 * 1024;
  AsyncServer server(registry, "ranker", tflite_profile(), config);

  const auto print_report = [](const char* title,
                               const ServingReport& report) {
    TextTable table({"model", "version", "requests", "modeled qps", "p50 ms",
                     "hit%"});
    for (const ModelReport& model : report.per_model) {
      table.add_row({model.model_id, std::to_string(model.version),
                     std::to_string(model.requests),
                     format_float(model.modeled_qps, 0),
                     format_float(model.latency.p50_ms, 4),
                     model.cache.enabled
                         ? format_float(model.cache.hit_rate() * 100.0, 1)
                         : "off"});
    }
    std::cout << title << "\n" << table.to_string() << "\n";
  };

  print_report("drain 1 — both tenants on v1:", server.serve(requests, 2));

  // Zero-downtime refresh: publish ranker v2 while the server stays up.
  // (Under live traffic, in-flight micro-batches would finish on v1; the
  // hot-swap stress test exercises exactly that interleaving.)
  registry.swap("ranker", ranker_v2);
  std::cout << "hot-swapped ranker to v" << registry.version("ranker")
            << " — no restart, no dropped request\n\n";

  print_report("drain 2 — ranker serves v2, related untouched:",
               server.serve(requests, 2));

  std::remove(ranker_v1.c_str());
  std::remove(ranker_v2.c_str());
  std::remove(related_v1.c_str());
  return 0;
}
