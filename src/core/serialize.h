// Little-endian binary (de)serialization primitives used by model
// checkpointing and the on-device .mcm format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/tensor.h"

namespace memcom {

void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_i64(std::ostream& os, std::int64_t v);
void write_f32(std::ostream& os, float v);
void write_string(std::ostream& os, const std::string& s);
void write_f32_array(std::ostream& os, const float* data, std::size_t count);

std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
std::int64_t read_i64(std::istream& is);
float read_f32(std::istream& is);
std::string read_string(std::istream& is);
void read_f32_array(std::istream& is, float* data, std::size_t count);

// Tensor = shape + raw data.
void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

}  // namespace memcom
