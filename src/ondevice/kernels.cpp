#include "ondevice/kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define MEMCOM_KERNELS_X86 1
#endif

namespace memcom {

ByteSpan packed_byte_span(Index offset, Index count, int bits) {
  // Cover bits [offset*bits, (offset+count)*bits) rounded OUT to bytes.
  // Computing the length as ceil(count*bits/8) would drop the partial byte
  // a mid-byte start adds (i4 offset=1 count=2 spans two bytes, not one).
  const Index first_bit = offset * static_cast<Index>(bits);
  const Index last_bit = (offset + count) * static_cast<Index>(bits);
  ByteSpan span;
  span.offset = first_bit / 8;
  span.length = (last_bit + 7) / 8 - span.offset;
  return span;
}

namespace {

// Dequant chunk for dot_span: both families stream a compressed row through
// this many floats of stack at a time. Must be a multiple of 8 so every
// chunk boundary is lane-aligned (element (done+i) mod 8 == i mod 8).
constexpr Index kDotChunk = 256;

// The pinned reduction of the dot kernels' 8 striped lanes. Shared by the
// scalar and AVX2 bodies so the final sum order can never drift apart.
inline float reduce8(const float lane[8]) {
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar reference family. These bodies ARE the contract: every other
// family must reproduce them bit-for-bit (except the opt-in fused axpy).
// ---------------------------------------------------------------------------
namespace scalar {

void dequant_span(const SpanSrc& src, Index offset, Index count, float* out) {
  if (src.dtype == DType::kI4G) {
    dequantize_span_i4g(src.group_scales, src.packed, src.group_size, offset,
                        count, out);
    return;
  }
  dequantize_span(src.dtype, src.scale, src.payload, offset, count, out);
}

void acc_add(float* acc, const float* row, Index n) {
  for (Index i = 0; i < n; ++i) {
    acc[i] += row[i];
  }
}

void acc_scale_add(float* acc, const float* row, float m, Index n) {
  for (Index i = 0; i < n; ++i) {
    acc[i] += row[i] * m;
  }
}

void acc_scale_bias_add(float* acc, const float* row, float m, float b,
                        Index n) {
  for (Index i = 0; i < n; ++i) {
    acc[i] += row[i] * m + b;
  }
}

void acc_mult_add(float* acc, const float* a, const float* b, Index n) {
  for (Index i = 0; i < n; ++i) {
    acc[i] += a[i] * b[i];
  }
}

void axpy(float* y, float a, const float* x, Index n) {
  for (Index i = 0; i < n; ++i) {
    y[i] += a * x[i];
  }
}

// 8-lane striped accumulation (see the KernelSet contract): element i lands
// in lane i&7, which is exactly the lane an 8-wide vector accumulator would
// give it, so the AVX2 body below is bit-identical by construction.
float dot(const float* a, const float* b, Index n) {
  float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (Index i = 0; i < n; ++i) {
    lane[i & 7] += a[i] * b[i];
  }
  return reduce8(lane);
}

float dot_span(const SpanSrc& src, Index offset, Index count,
               const float* vec) {
  float buf[kDotChunk];
  float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  Index done = 0;
  while (done < count) {
    const Index chunk = std::min<Index>(kDotChunk, count - done);
    dequant_span(src, offset + done, chunk, buf);
    for (Index i = 0; i < chunk; ++i) {
      lane[(done + i) & 7] += buf[i] * vec[done + i];
    }
    done += chunk;
  }
  return reduce8(lane);
}

}  // namespace scalar

namespace {

const KernelSet kScalar = {
    "scalar",           scalar::dequant_span,       scalar::acc_add,
    scalar::acc_scale_add, scalar::acc_scale_bias_add, scalar::acc_mult_add,
    scalar::axpy,       scalar::dot,                scalar::dot_span,
};

}  // namespace

const KernelSet& scalar_kernels() { return kScalar; }

// ---------------------------------------------------------------------------
// AVX2 family (x86-64, runtime-dispatched via cpuid — nothing here assumes
// -mavx2 at compile time; each function carries its own target attribute).
// Element-wise kernels perform exactly the scalar per-element expression in
// 8 lanes: mul and add stay separate instructions, so results are
// bit-identical. Only axpy_fma fuses them, behind MEMCOM_ENABLE_FMA=1.
// ---------------------------------------------------------------------------
#if MEMCOM_KERNELS_X86
namespace avx2 {

__attribute__((target("avx2"))) void acc_add(float* acc, const float* row,
                                             Index n) {
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(acc + i);
    const __m256 r = _mm256_loadu_ps(row + i);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(a, r));
  }
  for (; i < n; ++i) {
    acc[i] += row[i];
  }
}

__attribute__((target("avx2"))) void acc_scale_add(float* acc,
                                                   const float* row, float m,
                                                   Index n) {
  const __m256 vm = _mm256_set1_ps(m);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(acc + i);
    const __m256 r = _mm256_loadu_ps(row + i);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(a, _mm256_mul_ps(r, vm)));
  }
  for (; i < n; ++i) {
    acc[i] += row[i] * m;
  }
}

__attribute__((target("avx2"))) void acc_scale_bias_add(float* acc,
                                                        const float* row,
                                                        float m, float b,
                                                        Index n) {
  const __m256 vm = _mm256_set1_ps(m);
  const __m256 vb = _mm256_set1_ps(b);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(acc + i);
    const __m256 r = _mm256_loadu_ps(row + i);
    const __m256 term = _mm256_add_ps(_mm256_mul_ps(r, vm), vb);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(a, term));
  }
  for (; i < n; ++i) {
    acc[i] += row[i] * m + b;
  }
}

__attribute__((target("avx2"))) void acc_mult_add(float* acc, const float* a,
                                                  const float* b, Index n) {
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256 vy = _mm256_loadu_ps(acc + i);
    _mm256_storeu_ps(acc + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vb)));
  }
  for (; i < n; ++i) {
    acc[i] += a[i] * b[i];
  }
}

__attribute__((target("avx2"))) void axpy(float* y, float a, const float* x,
                                          Index n) {
  const __m256 va = _mm256_set1_ps(a);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) {
    y[i] += a * x[i];
  }
}

// Fused dense MAC: one rounding per element instead of two. NOT bit-exact
// vs scalar — |diff| <= ulp(|a*x|)/2 per element — which is why it is
// opt-in (MEMCOM_ENABLE_FMA=1) and documented in tests/test_kernels.cpp.
__attribute__((target("avx2,fma"))) void axpy_fma(float* y, float a,
                                                  const float* x, Index n) {
  const __m256 va = _mm256_set1_ps(a);
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, vx, vy));
  }
  for (; i < n; ++i) {
    y[i] = std::fma(a, x[i], y[i]);
  }
}

// 8 int8 lanes -> 8 floats * scale. cvtepi32_ps + mul rounds exactly like
// `float(int8) * scale`, so this is bit-identical to the scalar path.
__attribute__((target("avx2"))) inline __m256 dequant8_i8(
    const std::int8_t* src, __m256 vscale) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src));
  const __m256i ints = _mm256_cvtepi8_epi32(bytes);
  return _mm256_mul_ps(_mm256_cvtepi32_ps(ints), vscale);
}

// 4 packed bytes -> 8 nibbles -> 8 floats * scale. The caller guarantees
// the first of the 8 elements sits on a byte boundary (even element index).
__attribute__((target("avx2"))) inline __m256 dequant8_i4(
    const std::uint8_t* src, __m256 vscale) {
  std::uint32_t word;
  std::memcpy(&word, src, 4);
  const __m128i bytes = _mm_cvtsi32_si128(static_cast<int>(word));
  const __m128i lo_mask = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(bytes, lo_mask);
  const __m128i hi =
      _mm_and_si128(_mm_srli_epi16(bytes, 4), lo_mask);
  // Interleave -> element order lo0,hi0,lo1,hi1,... then sign-extend the
  // 4-bit two's complement via (x ^ 8) - 8 on the byte lanes.
  __m128i nibbles = _mm_unpacklo_epi8(lo, hi);
  const __m128i eight = _mm_set1_epi8(0x08);
  nibbles = _mm_sub_epi8(_mm_xor_si128(nibbles, eight), eight);
  const __m256i ints = _mm256_cvtepi8_epi32(nibbles);
  return _mm256_mul_ps(_mm256_cvtepi32_ps(ints), vscale);
}

__attribute__((target("avx2,f16c"))) void dequant_span_impl(
    const SpanSrc& src, Index offset, Index count, float* out) {
  switch (src.dtype) {
    case DType::kF32: {
      std::memcpy(out, reinterpret_cast<const float*>(src.payload) + offset,
                  static_cast<std::size_t>(count) * 4);
      return;
    }
    case DType::kF16: {
      const auto* half =
          reinterpret_cast<const std::uint16_t*>(src.payload) + offset;
      Index i = 0;
      for (; i + 8 <= count; i += 8) {
        __m128i h;
        std::memcpy(&h, half + i, 16);
        _mm256_storeu_ps(out + i, _mm256_cvtph_ps(h));
      }
      for (; i < count; ++i) {
        out[i] = f16_to_f32(half[i]);
      }
      return;
    }
    case DType::kI8: {
      const auto* bytes =
          reinterpret_cast<const std::int8_t*>(src.payload) + offset;
      const __m256 vscale = _mm256_set1_ps(src.scale);
      Index i = 0;
      for (; i + 8 <= count; i += 8) {
        _mm256_storeu_ps(out + i, dequant8_i8(bytes + i, vscale));
      }
      for (; i < count; ++i) {
        out[i] = static_cast<float>(bytes[i]) * src.scale;
      }
      return;
    }
    case DType::kI4: {
      const __m256 vscale = _mm256_set1_ps(src.scale);
      Index i = 0;
      // Peel a mid-byte start so the vector body always begins on a byte
      // boundary.
      if ((offset & 1) != 0 && i < count) {
        dequantize_span(DType::kI4, src.scale, src.payload, offset, 1, out);
        ++i;
      }
      for (; i + 8 <= count; i += 8) {
        _mm256_storeu_ps(out + i,
                         dequant8_i4(src.payload + (offset + i) / 2, vscale));
      }
      if (i < count) {
        dequantize_span(DType::kI4, src.scale, src.payload, offset + i,
                        count - i, out + i);
      }
      return;
    }
    case DType::kI4G: {
      const Index g = src.group_size;
      Index i = 0;
      // Peel until 8-aligned within the tensor; group_size is a multiple
      // of 8, so aligned 8-blocks never straddle a group (one scale per
      // block) and always start on a byte boundary.
      const Index misalign = (offset + i) & 7;
      if (misalign != 0) {
        const Index peel = std::min<Index>(8 - misalign, count - i);
        dequantize_span_i4g(src.group_scales, src.packed, g, offset + i,
                            peel, out + i);
        i += peel;
      }
      for (; i + 8 <= count; i += 8) {
        const Index j = offset + i;
        const __m256 vscale = _mm256_set1_ps(src.group_scales[j / g]);
        _mm256_storeu_ps(out + i, dequant8_i4(src.packed + j / 2, vscale));
      }
      if (i < count) {
        dequantize_span_i4g(src.group_scales, src.packed, g, offset + i,
                            count - i, out + i);
      }
      return;
    }
  }
  check(false, "avx2 dequant_span: unknown dtype");
}

// The vector accumulator IS the 8 striped lanes of the contract: lane j of
// vacc collects elements with index ≡ j (mod 8) in increasing order, the
// tail continues scalar into the extracted lanes (the vector body leaves i
// 8-aligned, so i&7 is the right lane), and reduce8 pins the final sum
// order. mul and add stay separate — no FMA — so this matches scalar::dot
// bit-for-bit.
__attribute__((target("avx2"))) float dot(const float* a, const float* b,
                                          Index n) {
  __m256 vacc = _mm256_setzero_ps();
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    vacc = _mm256_add_ps(vacc, _mm256_mul_ps(va, vb));
  }
  float lane[8];
  _mm256_storeu_ps(lane, vacc);
  for (; i < n; ++i) {
    lane[i & 7] += a[i] * b[i];
  }
  return reduce8(lane);
}

__attribute__((target("avx2,f16c"))) float dot_span(const SpanSrc& src,
                                                    Index offset, Index count,
                                                    const float* vec) {
  float buf[kDotChunk];
  __m256 vacc = _mm256_setzero_ps();
  Index done = 0;
  // Full 8-blocks through the vector accumulator; chunks are multiples of
  // 8, so lanes stay aligned across chunk boundaries. The dequant is this
  // family's own bit-identical dequant_span_impl, so every per-element
  // product equals the scalar one.
  while (done + 8 <= count) {
    const Index chunk =
        std::min<Index>(kDotChunk, (count - done) & ~Index{7});
    dequant_span_impl(src, offset + done, chunk, buf);
    for (Index i = 0; i < chunk; i += 8) {
      const __m256 vr = _mm256_loadu_ps(buf + i);
      const __m256 vq = _mm256_loadu_ps(vec + done + i);
      vacc = _mm256_add_ps(vacc, _mm256_mul_ps(vr, vq));
    }
    done += chunk;
  }
  float lane[8];
  _mm256_storeu_ps(lane, vacc);
  if (done < count) {
    dequant_span_impl(src, offset + done, count - done, buf);
    for (Index i = 0; done + i < count; ++i) {
      lane[(done + i) & 7] += buf[i] * vec[done + i];
    }
  }
  return reduce8(lane);
}

}  // namespace avx2

namespace {

const KernelSet kAvx2 = {
    "avx2",             avx2::dequant_span_impl,  avx2::acc_add,
    avx2::acc_scale_add, avx2::acc_scale_bias_add, avx2::acc_mult_add,
    avx2::axpy,         avx2::dot,                avx2::dot_span,
};

// Same set with the FUSED dense MAC swapped in (documented tolerance).
const KernelSet kAvx2Fma = {
    "avx2+fma",         avx2::dequant_span_impl,  avx2::acc_add,
    avx2::acc_scale_add, avx2::acc_scale_bias_add, avx2::acc_mult_add,
    avx2::axpy_fma,     avx2::dot,                avx2::dot_span,
};

}  // namespace
#endif  // MEMCOM_KERNELS_X86

// ---------------------------------------------------------------------------
// NEON family (aarch64): a stub registered behind the same dispatch table.
// Every entry currently forwards to the scalar reference — the selection
// machinery, name reporting, and differential coverage run on ARM builds
// today; tuned NEON bodies can replace the forwards without touching any
// caller.
// ---------------------------------------------------------------------------
#if defined(__aarch64__)
namespace {

const KernelSet kNeonStub = {
    "neon-stub",        scalar::dequant_span,       scalar::acc_add,
    scalar::acc_scale_add, scalar::acc_scale_bias_add, scalar::acc_mult_add,
    scalar::axpy,       scalar::dot,                scalar::dot_span,
};

}  // namespace
#endif

namespace {

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

}  // namespace

const KernelSet& select_kernels() {
  if (env_flag("MEMCOM_DISABLE_SIMD")) {
    return kScalar;
  }
#if MEMCOM_KERNELS_X86
  // f16c ships with every AVX2 part, but the dequant kernel uses it, so
  // check rather than assume.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c")) {
    if (env_flag("MEMCOM_ENABLE_FMA") && __builtin_cpu_supports("fma")) {
      return kAvx2Fma;
    }
    return kAvx2;
  }
#elif defined(__aarch64__)
  return kNeonStub;
#endif
  return kScalar;
}

}  // namespace memcom
