// The HotRowCache fixed-budget contract: total slot capacity never exceeds
// the configured budget, even when a table's rows are wider than its
// per-table share — such tables get zero slots and are bypassed (this PR's
// satellite bugfix; the old code forced one slot per table and silently
// blew the budget).
#include "ondevice/hot_row_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "embedding/id_batch.h"
#include "ondevice/engine.h"
#include "repro/model.h"

namespace memcom {
namespace {

constexpr std::size_t kKeyBytes = sizeof(std::uint64_t);

std::size_t slot_bytes(Index elems) {
  return kKeyBytes + static_cast<std::size_t>(elems) * sizeof(float);
}

TEST(HotRowCacheBudget, CapacityNeverExceedsBudget) {
  // Three tables, shares of 100 bytes each: widths 4 (fits), 16 (fits),
  // 64 (slot costs 264 bytes > share -> zero slots).
  const HotRowCache cache(300, {4, 16, 64});
  EXPECT_LE(cache.stats().capacity_bytes, 300u);
}

TEST(HotRowCacheBudget, OversizedRowTableIsBypassed) {
  // One table whose single slot (8 + 256*4 = 1032 bytes) exceeds the whole
  // budget. The old max(1, ...) forced a slot anyway.
  HotRowCache cache(512, {256});
  EXPECT_EQ(cache.stats().capacity_bytes, 0u);
  EXPECT_EQ(cache.slot_count(), 0u);
  // Bypass: no slab pointer, and the traffic counters stay untouched so
  // hit_rate keeps describing tables that CAN cache.
  EXPECT_EQ(cache.lookup(0, 3), nullptr);
  EXPECT_EQ(cache.fill(0, 3), nullptr);
  const RowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(HotRowCacheBudget, MixedWidthsCacheOnlyTheTablesThatFit) {
  // memcom-shaped partitions: wide shared rows + width-1 multipliers. With
  // a budget whose per-table share fits only the narrow table, the wide one
  // must be bypassed while the narrow one still caches.
  const Index wide = 128;  // slot = 8 + 512 = 520 bytes
  const std::size_t budget = 800;  // share = 400: too small for wide rows
  HotRowCache cache(budget, {wide, 1});
  EXPECT_LE(cache.stats().capacity_bytes, budget);
  EXPECT_EQ(cache.fill(0, 7), nullptr);  // wide: bypassed
  float* slot = cache.fill(1, 7);        // narrow: real slot
  ASSERT_NE(slot, nullptr);
  *slot = 42.0f;
  const float* hit = cache.lookup(1, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42.0f);
  // Narrow share 400 bytes / 12-byte slots = 33 slots.
  EXPECT_EQ(cache.slot_count(), 400u / slot_bytes(1));
}

TEST(HotRowCacheBudget, EveryTableFittingKeepsOldBehavior) {
  HotRowCache cache(4096, {8, 8});
  // share 2048 / slot 40 -> 51 slots each.
  EXPECT_EQ(cache.slot_count(), 2u * (2048u / slot_bytes(8)));
  EXPECT_LE(cache.stats().capacity_bytes, 4096u);
  EXPECT_EQ(cache.lookup(0, 5), nullptr);  // cold miss IS counted here
  EXPECT_EQ(cache.stats().misses, 1u);
}

// Engine-level: a budget too small for the embedding rows must not change
// logits — the bypass serves every read straight from the mapping.
TEST(HotRowCacheBudget, TinyBudgetEngineStillBitIdentical) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcomBias, /*vocab=*/150,
                      /*embed_dim=*/32, /*knob=*/16};
  config.arch = ModelArch::kRanking;
  config.output_vocab = 24;
  config.seed = 7;
  RecModel model(config);
  const std::string path =
      (std::filesystem::temp_directory_path() / "hot_row_budget.mcm").string();
  model.export_mcm(path, DType::kI8);

  const MmapModel mapped(path);
  InferenceEngine plain(mapped, tflite_profile());
  InferenceEngine tiny(mapped, tflite_profile());
  // 300 bytes across {32, 1, 1}-wide partitions: the 32-wide shared rows
  // cost 136 bytes/slot > the 100-byte share — bypassed; the width-1
  // multiplier and bias tables still cache.
  ASSERT_TRUE(tiny.enable_row_cache(300));
  ASSERT_LE(tiny.row_cache_stats().capacity_bytes, 300u);

  const std::vector<std::int32_t> history = {3, 11, 3, 25, kPadId, 7};
  const InferenceView a = plain.run_view(history);
  const std::vector<float> expected(a.logits, a.logits + a.dim);
  for (int pass = 0; pass < 3; ++pass) {  // cold + warm passes
    const InferenceView b = tiny.run_view(history);
    ASSERT_EQ(a.dim, b.dim);
    for (Index i = 0; i < a.dim; ++i) {
      EXPECT_EQ(expected[static_cast<std::size_t>(i)], b.logits[i]) << i;
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace memcom
