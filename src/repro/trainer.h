// Training / evaluation loops for the experiment harness: softmax training
// for the classification and pointwise-ranking experiments, RankNet pair
// training for Figure 3, and a DP-SGD variant for Appendix A.3.
#pragma once

#include <ostream>

#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"
#include "repro/model.h"

namespace memcom {

struct TrainConfig {
  Index epochs = 2;
  Index batch_size = 64;
  double learning_rate = 2e-3;
  std::string optimizer = "adam";
  std::uint64_t seed = 99;
  Index ndcg_k = 32;
  // Use only this fraction of the training split (quick-bench knob).
  double train_fraction = 1.0;
  bool verbose = false;
  std::ostream* log = nullptr;
};

struct EvalResult {
  double accuracy = 0;
  double top5_accuracy = 0;
  double ndcg = 0;
  double mrr = 0;
  double mean_loss = 0;

  // The figure's y-metric for the given architecture: accuracy for
  // classification (Figure 1), nDCG for ranking (Figures 2/3/5).
  double primary(ModelArch arch) const {
    return arch == ModelArch::kClassification ? accuracy : ndcg;
  }
};

// Softmax training of a RecModel; returns the evaluation-split metrics.
EvalResult train_and_evaluate(RecModel& model, const SyntheticDataset& data,
                              const TrainConfig& config);

// Forward-only evaluation on the eval split.
EvalResult evaluate_model(RecModel& model, const SyntheticDataset& data,
                          Index ndcg_k);

// DP-SGD training (per-example clipping, Gaussian noise). noise_multiplier
// == 0 degenerates to clipped SGD, the Figure 5 x-origin.
EvalResult train_dp_and_evaluate(RecModel& model, const SyntheticDataset& data,
                                 const TrainConfig& config, double clip_norm,
                                 double noise_multiplier);

// RankNet pairwise training (Figure 3); returns eval nDCG@k. Negative items
// are popularity-sampled, matching how the paper ranks "any list of items
// available in the output vocabulary".
struct PairwiseResult {
  double ndcg = 0;
  double pairwise_accuracy = 0;
  double mean_loss = 0;
};
PairwiseResult train_pairwise_and_evaluate(PairwiseRankModel& model,
                                           const SyntheticDataset& data,
                                           const TrainConfig& config);

}  // namespace memcom
