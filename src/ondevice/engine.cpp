#include "ondevice/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  // Nearest-rank: the smallest sample with at least p% of samples <= it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  const std::size_t idx = rank > 0 ? rank - 1 : 0;
  return sorted[std::min(idx, sorted.size() - 1)];
}
}  // namespace

LatencyStats latency_stats_from_samples(std::vector<double> samples_ms) {
  LatencyStats stats;
  stats.runs = static_cast<int>(samples_ms.size());
  if (samples_ms.empty()) {
    return stats;
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.min_ms = samples_ms.front();
  stats.max_ms = samples_ms.back();
  double total = 0.0;
  for (const double s : samples_ms) {
    total += s;
  }
  stats.mean_ms = total / static_cast<double>(samples_ms.size());
  stats.p50_ms = percentile(samples_ms, 50.0);
  stats.p95_ms = percentile(samples_ms, 95.0);
  stats.p99_ms = percentile(samples_ms, 99.0);
  return stats;
}

InferenceEngine::InferenceEngine(const MmapModel& model, DeviceProfile profile)
    : compiled_(std::make_shared<const CompiledModel>(model)),
      context_(compiled_, std::move(profile)) {}

InferenceEngine::InferenceEngine(std::shared_ptr<const CompiledModel> compiled,
                                 DeviceProfile profile)
    : compiled_(std::move(compiled)), context_(compiled_, std::move(profile)) {
  // A null plan is rejected by the context_ member's constructor above.
}

InferenceResult InferenceEngine::run(const std::vector<std::int32_t>& history) {
  const InferenceView view = run_view(history);
  InferenceResult result;
  result.embedding_ms = view.embedding_ms;
  result.total_ms = view.total_ms;
  result.op_count = view.op_count;
  result.logits = Tensor::from_vector(
      {view.dim}, std::vector<float>(view.logits, view.logits + view.dim));
  return result;
}

LatencyStats InferenceEngine::benchmark(
    const std::vector<std::int32_t>& history, int runs) {
  check(runs > 0, "engine: runs must be positive");
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(run_view(history).total_ms);
  }
  return latency_stats_from_samples(std::move(samples));
}

}  // namespace memcom
