// TT-Rec (Yin et al. 2021): tensor-train factorization of the embedding
// table, referenced by the paper's §5: "The results for TT-Rec were similar
// to 'factorized embedding' for all datasets; likely because both these
// approaches have large number of shared parameters."
//
// Two-core tensor train: factor the vocabulary as v <= v1 * v2 and the
// embedding width as e = e1 * e2. Cores:
//   G1 in R^{v1 x e1 x r}     (indexed by i1 = i / v2)
//   G2 in R^{v2 x r x e2}     (indexed by i2 = i % v2)
// and  emb(i)[a * e2 + b] = sum_r G1[i1, a, r] * G2[i2, r, b].
//
// Parameter count v1*e1*r + v2*r*e2 vs v*e; the rank r is the compression
// knob.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class TtRecEmbedding : public EmbeddingLayer {
 public:
  TtRecEmbedding(Index vocab, Index rank, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&core1_, &core2_}; }
  std::string name() const override { return "tt_rec"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return e1_ * e2_; }

  Index rank() const { return rank_; }
  Index v1() const { return v1_; }
  Index v2() const { return v2_; }
  Index e1() const { return e1_; }
  Index e2() const { return e2_; }

  static Index param_formula(Index vocab, Index rank, Index embed_dim);

 private:
  // Factors n into (a, b) with a*b >= n and a, b as balanced as possible.
  static std::pair<Index, Index> balanced_factors(Index n);

  Index vocab_;
  Index rank_;
  Index v1_, v2_, e1_, e2_;
  Param core1_;  // [v1, e1 * r] rows flattened
  Param core2_;  // [v2, r * e2] rows flattened
  IdBatch cached_input_;
};

}  // namespace memcom
