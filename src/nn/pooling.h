// Mask-aware average pooling over the sequence axis.
//
// The paper's Keras model uses AveragePooling1D(pool_size=input_length),
// i.e. a mean over all positions. Our datasets pad short histories with id 0
// ("The id 0 is reserved for padding", §5.1), so we pool only over real
// positions; with no padding this is exactly the paper's layer.
#pragma once

#include "core/tensor.h"

namespace memcom {

class MaskedAveragePool {
 public:
  // x: [B, L, E]; mask: [B, L] with 1 for real tokens, 0 for padding.
  // Returns [B, E] means over unmasked positions (zero vector if a row is
  // fully masked).
  Tensor forward(const Tensor& x, const Tensor& mask);

  // grad_out: [B, E]; returns [B, L, E].
  Tensor backward(const Tensor& grad_out) const;

 private:
  Tensor weights_;  // [B, L]: 1/count for kept positions, 0 otherwise
  Index embed_dim_ = 0;
};

// Builds the [B, L] mask tensor from integer ids (pad id -> 0, else 1).
Tensor mask_from_ids(const std::vector<std::int32_t>& ids, Index batch,
                     Index length, std::int32_t pad_id = 0);

}  // namespace memcom
