// Discrete sampling utilities: alias-method sampler and Zipf (power-law)
// weights. The synthetic dataset generator uses these to reproduce the
// skewed category popularity the paper calls out as central to embedding
// compression ("commonly used categories ... are typically power law
// distributed", §4 property 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace memcom {

// Walker's alias method: O(n) build, O(1) sample from a fixed discrete
// distribution.
class AliasSampler {
 public:
  // Weights must be non-negative with a positive sum; they are normalized
  // internally.
  explicit AliasSampler(const std::vector<double>& weights);

  Index sample(Rng& rng) const;

  Index size() const { return static_cast<Index>(prob_.size()); }

  // Probability of outcome i (reconstructed from the alias table; used in
  // tests to verify the table encodes the input distribution exactly).
  double probability(Index i) const;

 private:
  std::vector<double> prob_;   // acceptance probability per bucket
  std::vector<Index> alias_;   // alternative outcome per bucket
  std::vector<double> norm_;   // normalized input weights (for probability())
};

// weights[i] ∝ 1 / (i+1)^alpha for i in [0, n). alpha=0 is uniform; typical
// recommendation catalogs are alpha ≈ 0.8–1.2.
std::vector<double> zipf_weights(Index n, double alpha);

// Samples k distinct indices from `scores` via Gumbel-top-k, i.e. a weighted
// sample without replacement proportional to exp(scores). Returns indices in
// sampled order. Equal perturbed keys break deterministically toward the
// lower index (same contract as ondevice topk_select), so a fixed Rng seed
// yields a fixed output even when keys collide.
std::vector<Index> gumbel_top_k(const std::vector<float>& scores, Index k,
                                Rng& rng);

}  // namespace memcom
