// mcm_bench — latency + serving-throughput benchmark for exported .mcm
// models, driven through the zero-allocation inference fast path.
//
//   ./mcm_bench model.mcm [--runs 1000] [--threads 4] [--requests 256]
//               [--repeat 8] [--seq-len 32] [--profile coreml|tflite]
//               [--async] [--max-batch 8] [--max-delay-us 200]
//               [--queue-cap 256] [--cache-kb 0] [--arrival-qps 0]
//               [--shards 1] [--deadline-us 0] [--shed]
//               [--session] [--topk K] [--nprobe N] [--clusters N]
//   ./mcm_bench model.mcm --cold-start N
//   ./mcm_bench --models a.mcm,b.mcm [--swap-after N] [serving flags above]
//
// Prints the single-input latency distribution (mean/min/p50/p95/p99/max,
// the paper's §5.3 metric) and the multi-threaded serving report (QPS,
// per-request wall latency percentiles). With --async it also drives the
// open-loop micro-batching pipeline and reports the queue-wait vs
// service-time split, modeled-device QPS, and the hot-row cache hit rate.
//
// With --models the tool loads every file into a ModelRegistry, drives
// interleaved multi-tenant traffic through one AsyncServer, and prints the
// per-model breakdown. --swap-after N hot-swaps the FIRST model (its file
// re-published as a new version) once N requests have completed — a live
// demonstration of zero-downtime swap under traffic. Files that declare
// identity metadata must declare a higher model_version to be accepted.
//
// Scheduler knobs (both async modes): --shards N runs the sharded
// scheduler (per-shard queue + batch former, work-stealing workers;
// requires N <= threads), --deadline-us D attaches a completion deadline
// to every request (SLO-driven early flush + miss accounting), and --shed
// enables admission control (requests are refused with a shed status once
// a shard's queue-wait estimate exceeds the deadline).
//
// --session drives the session-based next-item workload instead of replayed
// histories: events touch Zipf-less round-robin sessions through
// submit_next_item, each response carrying the top --topk item ids ranked
// over the full output catalog (single-model mode only). --nprobe N turns
// the ranking into the clustered PRUNED scan (N probed clusters per
// request) through the model's catalog index — the file's v4 section when
// it carries one, or an index built in process when --clusters N is given
// — and adds scanned-bytes / pruned-fraction / recall@k columns (recall
// measured against an exact-scan replay of the same events).
//
// --cold-start N replaces the benchmark with the fleet boot path: N times,
// load the file from scratch through to the first inference and report the
// p50/p95 split into mmap / validate / adopt-or-compile / first-inference
// phases. Plan-bearing (v3) files get two legs — the plan-adoption fast
// path and a forced full compile (PlanPolicy::kNeverAdopt) — so the table
// shows exactly what the serialized plan saves; plan-less files report the
// compile leg alone.
#include <algorithm>
#include <atomic>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/catalog_index.h"
#include "ondevice/clock.h"
#include "ondevice/plan.h"
#include "ondevice/registry.h"
#include "ondevice/serving.h"

using namespace memcom;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

std::vector<std::vector<std::int32_t>> random_requests(Index vocab,
                                                       Index seq_len,
                                                       int count,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len));
    for (auto& id : history) {
      id = static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string models_flag = flags.get_string("models", "");
  if (flags.positional().empty() && models_flag.empty()) {
    std::cerr << "usage: mcm_bench <model.mcm> [--runs N] [--threads N] "
                 "[--requests N] [--repeat N] [--seq-len L] "
                 "[--profile coreml|tflite] [--async] [--max-batch N] "
                 "[--max-delay-us U] [--queue-cap N] [--cache-kb K] "
                 "[--arrival-qps Q] [--shards N] [--deadline-us D] "
                 "[--shed] [--session] [--topk K] [--nprobe N] "
                 "[--clusters N] [--cold-start N]\n"
                 "       mcm_bench --models a.mcm,b.mcm [--swap-after N] "
                 "[serving flags]\n";
    return 2;
  }
  const int runs = static_cast<int>(flags.get_int("runs", 1000));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const int request_count = static_cast<int>(flags.get_int("requests", 256));
  const int repeat = static_cast<int>(flags.get_int("repeat", 8));
  const Index seq_len = flags.get_int("seq-len", 32);
  const bool async = flags.get_bool("async", false);
  const Index max_batch = flags.get_int("max-batch", 8);
  const double max_delay_us = flags.get_double("max-delay-us", 200.0);
  const Index queue_cap = flags.get_int("queue-cap", 256);
  const Index cache_kb = flags.get_int("cache-kb", 0);
  const double arrival_qps = flags.get_double("arrival-qps", 0.0);
  const int shards = static_cast<int>(flags.get_int("shards", 1));
  const double deadline_us = flags.get_double("deadline-us", 0.0);
  const bool shed = flags.get_bool("shed", false);
  const bool session = flags.get_bool("session", false);
  const Index top_k = flags.get_int("topk", 10);
  if (runs < 1 || threads < 1 || request_count < 1 || repeat < 1 ||
      seq_len < 1) {
    std::cerr << "mcm_bench: --runs/--threads/--requests/--repeat/--seq-len "
                 "must all be positive\n";
    return 2;
  }
  if (max_batch < 1 || queue_cap < 1 || max_delay_us < 0.0 || cache_kb < 0 ||
      arrival_qps < 0.0) {
    std::cerr << "mcm_bench: --max-batch/--queue-cap must be positive; "
                 "--max-delay-us/--cache-kb/--arrival-qps non-negative\n";
    return 2;
  }
  if (shards < 1 || shards > threads) {
    std::cerr << "mcm_bench: --shards must satisfy 1 <= shards <= threads\n";
    return 2;
  }
  if (queue_cap < shards) {
    std::cerr << "mcm_bench: --queue-cap must be at least --shards (it is "
                 "the TOTAL admission bound, split across shards)\n";
    return 2;
  }
  if (deadline_us < 0.0) {
    std::cerr << "mcm_bench: --deadline-us must be non-negative\n";
    return 2;
  }
  if (shed && deadline_us <= 0.0) {
    std::cerr << "mcm_bench: --shed needs --deadline-us > 0 (admission "
                 "control sheds against a deadline)\n";
    return 2;
  }
  if (top_k < 1) {
    std::cerr << "mcm_bench: --topk must be positive\n";
    return 2;
  }
  if (flags.has("topk") && !session) {
    std::cerr << "mcm_bench: --topk only ranks the --session workload\n";
    return 2;
  }
  const Index nprobe = flags.get_int("nprobe", 0);
  const Index clusters = flags.get_int("clusters", 0);
  if (flags.has("nprobe") && !session) {
    std::cerr << "mcm_bench: --nprobe only prunes the --session workload\n";
    return 2;
  }
  if (flags.has("nprobe") && nprobe < 1) {
    std::cerr << "mcm_bench: --nprobe must be positive\n";
    return 2;
  }
  if (flags.has("clusters")) {
    if (!session) {
      std::cerr << "mcm_bench: --clusters only applies to the --session "
                   "workload\n";
      return 2;
    }
    if (clusters < 1) {
      std::cerr << "mcm_bench: --clusters must be positive\n";
      return 2;
    }
    if (!flags.has("nprobe")) {
      std::cerr << "mcm_bench: --clusters needs --nprobe (an index without "
                   "a probe count never prunes)\n";
      return 2;
    }
    if (nprobe > clusters) {
      std::cerr << "mcm_bench: --nprobe must not exceed --clusters\n";
      return 2;
    }
  }
  if (session && !models_flag.empty()) {
    std::cerr << "mcm_bench: --session drives the single-model mode, not "
                 "--models\n";
    return 2;
  }
  const std::int64_t cold_start = flags.get_int("cold-start", 0);
  if (flags.has("cold-start") && cold_start < 1) {
    std::cerr << "mcm_bench: --cold-start must be positive\n";
    return 2;
  }
  if (cold_start > 0 && !models_flag.empty()) {
    std::cerr << "mcm_bench: --cold-start drives the single-model mode, not "
                 "--models\n";
    return 2;
  }
  const std::string profile_name = flags.get_string("profile", "tflite");
  if (profile_name != "tflite" && profile_name != "coreml") {
    std::cerr << "mcm_bench: unknown --profile " << profile_name
              << " (expected coreml|tflite)\n";
    return 2;
  }
  const DeviceProfile profile =
      profile_name == "tflite" ? tflite_profile() : coreml_profile("all");
  const std::int64_t swap_after = flags.get_int("swap-after", 0);
  if (swap_after < 0) {
    std::cerr << "mcm_bench: --swap-after must be non-negative\n";
    return 2;
  }

  // ---- Multi-tenant mode: a registry of models behind one AsyncServer ----
  if (!models_flag.empty()) {
    const std::vector<std::string> model_paths = split_csv(models_flag);
    if (model_paths.empty()) {
      std::cerr << "mcm_bench: --models needs at least one path\n";
      return 2;
    }
    ModelRegistry registry;
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < model_paths.size(); ++i) {
      std::string id = std::filesystem::path(model_paths[i]).stem().string();
      if (registry.has_model(id)) {
        id.push_back('#');
        id += std::to_string(i);
      }
      registry.load(id, model_paths[i]);
      ids.push_back(std::move(id));
      const auto compiled = registry.acquire(ids.back());
      std::cout << "loaded " << ids.back() << " v" << registry.version(ids.back())
                << ": technique=" << compiled->technique()
                << " arch=" << compiled->architecture()
                << " vocab=" << compiled->vocab()
                << " e=" << compiled->embed_dim()
                << (compiled->model_name().empty()
                        ? std::string()
                        : "  (declares " + compiled->model_name() + " v" +
                              std::to_string(compiled->model_version()) + ")")
                << "\n";
    }
    std::cout << "profile=" << profile.label() << "  kernel dispatch="
              << registry.acquire(ids.front())->kernel_name()
              << "  plan bytes (all models, compiled once): "
              << registry.plan_resident_bytes() << "\n\n";

    // Interleaved traffic: request i goes to model i % M, with per-model
    // histories drawn from that model's vocabulary.
    std::vector<std::vector<std::vector<std::int32_t>>> per_model_requests;
    for (std::size_t m = 0; m < ids.size(); ++m) {
      per_model_requests.push_back(random_requests(
          registry.acquire(ids[m])->vocab(), seq_len, request_count,
          17 + m));
    }
    std::vector<RoutedRequest> routed;
    routed.reserve(static_cast<std::size_t>(request_count) * ids.size());
    for (int i = 0; i < request_count; ++i) {
      for (std::size_t m = 0; m < ids.size(); ++m) {
        routed.push_back(RoutedRequest{
            ids[m], per_model_requests[m][static_cast<std::size_t>(i)]});
      }
    }

    AsyncServerConfig config;
    config.threads = threads;
    config.shards = shards;
    config.max_batch = max_batch;
    config.max_delay_us = max_delay_us;
    config.deadline_us = deadline_us;
    config.shed = shed;
    config.queue_capacity = static_cast<std::size_t>(queue_cap);
    config.cache_budget_bytes = static_cast<std::size_t>(cache_kb) * 1024;
    AsyncServer server(registry, ids.front(), profile, config);

    // Optional hot swap under traffic: once N requests completed, republish
    // the first model's file as its next version.
    std::atomic<bool> stop{false};
    std::string swap_note;
    std::thread swapper;
    if (swap_after > 0) {
      swapper = std::thread([&] {
        while (!stop.load() && server.completed_requests() <
                                   static_cast<std::uint64_t>(swap_after)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        // Re-check the THRESHOLD, not the stop flag: the drain can finish
        // (setting stop) in the same instant the threshold is crossed, and
        // a legitimately reached threshold must still swap.
        if (server.completed_requests() <
            static_cast<std::uint64_t>(swap_after)) {
          return;
        }
        try {
          const std::uint64_t version =
              registry.swap(ids.front(), model_paths.front());
          swap_note = "hot-swapped " + ids.front() + " to v" +
                      std::to_string(version) + " after " +
                      std::to_string(server.completed_requests()) +
                      " completed requests (in-flight batches finished on "
                      "the old version)";
        } catch (const std::exception& e) {
          swap_note = std::string("swap rejected: ") + e.what();
        }
      });
    }

    const ServingReport report = server.serve(routed, repeat, arrival_qps);
    stop.store(true);
    if (swapper.joinable()) {
      swapper.join();
    }
    if (!swap_note.empty()) {
      std::cout << swap_note << "\n\n";
    }

    TextTable overall({"threads", "shards", "models", "requests", "qps",
                       "goodput", "modeled qps", "p50 ms", "mean batch",
                       "shed%", "miss%", "steals", "hit%"});
    overall.add_row(
        {std::to_string(report.threads), std::to_string(report.shards),
         std::to_string(ids.size()), std::to_string(report.requests),
         format_float(report.qps, 0), format_float(report.goodput_qps, 0),
         format_float(report.modeled_qps, 0),
         format_float(report.latency.p50_ms, 4),
         format_float(report.mean_batch, 1),
         format_float(report.shed_rate * 100.0, 1),
         format_float(report.deadline_miss_rate * 100.0, 1),
         std::to_string(report.steals),
         report.cache.enabled
             ? format_float(report.cache.hit_rate() * 100.0, 1)
             : "off"});
    std::cout << "multi-tenant serving (" << ids.size() << " models, "
              << "interleaved traffic):\n"
              << overall.to_string() << "\n";

    TextTable per_model({"model", "version", "requests", "modeled qps",
                         "p50 ms", "p95 ms", "hit%"});
    for (const ModelReport& model : report.per_model) {
      per_model.add_row(
          {model.model_id, std::to_string(model.version),
           std::to_string(model.requests),
           format_float(model.modeled_qps, 0),
           format_float(model.latency.p50_ms, 4),
           format_float(model.latency.p95_ms, 4),
           model.cache.enabled
               ? format_float(model.cache.hit_rate() * 100.0, 1)
               : "off"});
    }
    std::cout << "per-model breakdown:\n" << per_model.to_string();
    return 0;
  }

  const std::string path = flags.positional()[0];
  const MmapModel model(path);
  const Index vocab = model.metadata_int("vocab");
  std::cout << "model: " << path << "  technique="
            << model.metadata_value("technique")
            << " arch=" << model.metadata_value("arch") << " vocab=" << vocab
            << " e=" << model.metadata_int("embed_dim")
            << "  profile=" << profile.label() << "\n\n";

  // ---- Cold-start mode: load -> first inference, phase by phase --------
  if (cold_start > 0) {
    // One fixed request: the first inference a freshly booted process runs.
    Rng cold_rng(17);
    std::vector<std::int32_t> first_request(
        static_cast<std::size_t>(seq_len));
    for (auto& id : first_request) {
      id = static_cast<std::int32_t>(1 + cold_rng.uniform_index(vocab - 1));
    }

    struct ColdLeg {
      const char* label;
      PlanPolicy policy;
      std::vector<double> mmap_ms, validate_ms, build_ms, infer_ms, total_ms;
      std::string verdict;
    };
    std::vector<ColdLeg> legs;
    {
      const PlanDecodeResult probe = decode_plan(model);
      if (probe.status == PlanStatus::kValid) {
        legs.push_back({"plan-adopt", PlanPolicy::kAdoptIfPresent,
                        {}, {}, {}, {}, {}, ""});
        legs.push_back({"full-compile", PlanPolicy::kNeverAdopt,
                        {}, {}, {}, {}, {}, ""});
        std::cout << "cold start (" << cold_start
                  << " iterations): plan section present and valid\n";
      } else {
        legs.push_back({"full-compile", PlanPolicy::kAdoptIfPresent,
                        {}, {}, {}, {}, {}, ""});
        std::cout << "cold start (" << cold_start << " iterations): "
                  << (probe.status == PlanStatus::kAbsent
                          ? std::string("no plan section")
                          : "plan stale — " + probe.reason)
                  << "\n";
      }
    }
    for (ColdLeg& leg : legs) {
      for (std::int64_t i = 0; i < cold_start; ++i) {
        const SteadyClock::time_point t_total = SteadyClock::now();
        const MmapModel cold(path);
        leg.mmap_ms.push_back(elapsed_ms(t_total));
        // Standalone validation timing; the CompiledModel constructor
        // repeats it internally on the adopt leg, so "adopt-or-compile"
        // below includes its own validate pass (what a loader pays).
        const SteadyClock::time_point t_validate = SteadyClock::now();
        const PlanDecodeResult decoded = decode_plan(cold);
        (void)decoded;
        leg.validate_ms.push_back(elapsed_ms(t_validate));
        const SteadyClock::time_point t_build = SteadyClock::now();
        const auto compiled =
            std::make_shared<const CompiledModel>(cold, leg.policy);
        leg.build_ms.push_back(elapsed_ms(t_build));
        const SteadyClock::time_point t_infer = SteadyClock::now();
        InferenceEngine engine(compiled, profile);
        engine.run_view(first_request);
        leg.infer_ms.push_back(elapsed_ms(t_infer));
        leg.total_ms.push_back(elapsed_ms(t_total));
        leg.verdict = compiled->plan_adopted()
                          ? "adopted"
                          : compiled->plan_fallback_reason();
      }
    }

    TextTable cold_table({"leg", "runs", "mmap p50", "validate p50",
                          "adopt-or-compile p50", "p95", "first-infer p50",
                          "total p50", "total p95", "plan"});
    for (ColdLeg& leg : legs) {
      const LatencyStats mmap = latency_stats_from_samples(leg.mmap_ms);
      const LatencyStats validate =
          latency_stats_from_samples(leg.validate_ms);
      const LatencyStats build = latency_stats_from_samples(leg.build_ms);
      const LatencyStats infer = latency_stats_from_samples(leg.infer_ms);
      const LatencyStats total = latency_stats_from_samples(leg.total_ms);
      cold_table.add_row({leg.label, std::to_string(cold_start),
                          format_float(mmap.p50_ms, 4),
                          format_float(validate.p50_ms, 4),
                          format_float(build.p50_ms, 4),
                          format_float(build.p95_ms, 4),
                          format_float(infer.p50_ms, 4),
                          format_float(total.p50_ms, 4),
                          format_float(total.p95_ms, 4), leg.verdict});
    }
    std::cout << "load -> first-inference phases (ms):\n"
              << cold_table.to_string();
    return 0;
  }

  Rng rng(17);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(request_count));
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len));
    for (auto& id : history) {
      id = static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }

  // Single-input latency (the paper's Table 3 metric).
  InferenceEngine engine(model, profile);
  std::cout << "kernel dispatch: " << engine.compiled().kernel_name()
            << " (set MEMCOM_DISABLE_SIMD=1 to force the scalar "
               "reference)\n\n";
  const LatencyStats stats = engine.benchmark(requests.front(), runs);
  TextTable latency({"runs", "mean ms", "min ms", "p50 ms", "p95 ms",
                     "p99 ms", "max ms", "resident MB"});
  latency.add_row({std::to_string(stats.runs), format_float(stats.mean_ms, 4),
                   format_float(stats.min_ms, 4),
                   format_float(stats.p50_ms, 4),
                   format_float(stats.p95_ms, 4),
                   format_float(stats.p99_ms, 4),
                   format_float(stats.max_ms, 4),
                   format_float(engine.resident_megabytes(), 2)});
  std::cout << "single-input latency (" << runs << " runs):\n"
            << latency.to_string() << "\n";

  // Threaded serving throughput.
  TextTable serving({"threads", "requests", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "wall ms"});
  std::vector<int> thread_counts = {1};
  if (threads > 1) {
    thread_counts.push_back(threads);
  }
  for (const int t : thread_counts) {
    ServingHarness harness(model, profile, t);
    harness.serve(requests, 1);  // warm-up
    const ServingReport report = harness.serve(requests, repeat);
    serving.add_row({std::to_string(report.threads),
                     std::to_string(report.requests),
                     format_float(report.qps, 0),
                     format_float(report.latency.p50_ms, 4),
                     format_float(report.latency.p95_ms, 4),
                     format_float(report.latency.p99_ms, 4),
                     format_float(report.wall_ms, 1)});
  }
  std::cout << "serving throughput:\n" << serving.to_string();

  if (async) {
    AsyncServerConfig config;
    config.threads = threads;
    config.shards = shards;
    config.max_batch = max_batch;
    config.max_delay_us = max_delay_us;
    config.deadline_us = deadline_us;
    config.shed = shed;
    config.queue_capacity = static_cast<std::size_t>(queue_cap);
    config.cache_budget_bytes = static_cast<std::size_t>(cache_kb) * 1024;
    AsyncServer server(model, profile, config);
    server.serve(requests, 1);  // warm-up (also warms the row cache)
    const ServingReport report = server.serve(requests, repeat, arrival_qps);
    TextTable table({"threads", "shards", "batch<=", "offered", "qps",
                     "goodput", "modeled qps", "p50 ms", "wait p50 ms",
                     "wait p95 ms", "svc p50 ms", "mean batch", "shed%",
                     "miss%", "hit%"});
    table.add_row(
        {std::to_string(report.threads), std::to_string(report.shards),
         std::to_string(max_batch),
         arrival_qps > 0 ? format_float(arrival_qps, 0) : "max",
         format_float(report.qps, 0), format_float(report.goodput_qps, 0),
         format_float(report.modeled_qps, 0),
         format_float(report.latency.p50_ms, 4),
         format_float(report.queue_wait.p50_ms, 4),
         format_float(report.queue_wait.p95_ms, 4),
         format_float(report.service.p50_ms, 4),
         format_float(report.mean_batch, 1),
         format_float(report.shed_rate * 100.0, 1),
         format_float(report.deadline_miss_rate * 100.0, 1),
         report.cache.enabled
             ? format_float(report.cache.hit_rate() * 100.0, 1)
             : "off"});
    std::cout << "\nasync micro-batching pipeline:\n" << table.to_string();
  }

  if (session) {
    AsyncServerConfig config;
    config.threads = threads;
    config.shards = shards;
    config.max_batch = max_batch;
    config.max_delay_us = max_delay_us;
    config.deadline_us = deadline_us;
    config.shed = shed;
    config.queue_capacity = static_cast<std::size_t>(queue_cap);
    config.cache_budget_bytes = static_cast<std::size_t>(cache_kb) * 1024;
    config.nprobe = nprobe;
    // Half as many session slots as distinct sessions: the tool always
    // demonstrates LRU eviction under churn, not just the hot path.
    const Index distinct_sessions =
        std::max<Index>(4, static_cast<Index>(request_count) / 2);
    config.session_capacity = std::max<Index>(shards, distinct_sessions / 2);

    // One shared plan behind a private registry so the pruned leg and the
    // exact recall-reference leg below serve the SAME CompiledModel.
    auto compiled =
        std::make_shared<CompiledModel>(model, PlanPolicy::kAdoptIfPresent);
    std::string index_note;
    if (clusters > 0) {
      CatalogIndexConfig index_config;
      index_config.clusters = clusters;
      compiled->attach_catalog_index(
          build_catalog_index_for_model(model, index_config));
      index_note =
          "built in-process (" + std::to_string(clusters) + " clusters)";
    } else if (compiled->has_catalog_index()) {
      index_note = "file-adopted (" +
                   std::to_string(compiled->catalog_index().clusters) +
                   " clusters)";
    } else {
      index_note =
          "none - exact scan (" + compiled->index_fallback_reason() + ")";
    }
    ModelRegistry session_registry;
    session_registry.publish(AsyncServer::kDefaultModelId, compiled);
    AsyncServer server(session_registry, AsyncServer::kDefaultModelId,
                       profile, config);

    // request_count * repeat events round-robin over the session pool, each
    // touching a fresh random item.
    Rng session_rng(29);
    std::vector<SessionEvent> events;
    events.reserve(static_cast<std::size_t>(request_count) *
                   static_cast<std::size_t>(repeat));
    for (int r = 0; r < repeat; ++r) {
      for (int i = 0; i < request_count; ++i) {
        SessionEvent event;
        event.session_id =
            static_cast<std::uint64_t>(i % distinct_sessions) + 1;
        event.item = static_cast<std::int32_t>(
            1 + session_rng.uniform_index(vocab - 1));
        events.push_back(event);
      }
    }

    server.serve_sessions(events, top_k);  // warm-up
    std::vector<std::vector<Index>> pruned_topk;
    const ServingReport report =
        server.serve_sessions(events, top_k, &pruned_topk);

    // Recall@k against an exact replay: a second server over the SAME plan
    // runs the identical event stream with pruning off. Session routing and
    // eviction are deterministic per event order, so row i of both drains
    // ranked the same history — the only difference is the scan.
    std::string recall_cell = "exact";
    if (nprobe > 0) {
      AsyncServerConfig exact_config = config;
      exact_config.nprobe = 0;
      AsyncServer exact_server(session_registry,
                               AsyncServer::kDefaultModelId, profile,
                               exact_config);
      exact_server.serve_sessions(events, top_k);  // mirror the warm-up
      std::vector<std::vector<Index>> exact_topk;
      exact_server.serve_sessions(events, top_k, &exact_topk);
      double overlap_sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t i = 0;
           i < exact_topk.size() && i < pruned_topk.size(); ++i) {
        if (exact_topk[i].empty()) {
          continue;  // shed
        }
        std::vector<Index> exact_ids = exact_topk[i];
        std::sort(exact_ids.begin(), exact_ids.end());
        std::size_t hit = 0;
        for (const Index id : pruned_topk[i]) {
          hit += std::binary_search(exact_ids.begin(), exact_ids.end(), id)
                     ? 1u
                     : 0u;
        }
        overlap_sum +=
            static_cast<double>(hit) / static_cast<double>(exact_ids.size());
        ++counted;
      }
      recall_cell = format_float(
          counted > 0 ? overlap_sum / static_cast<double>(counted) : 1.0, 4);
    }

    TextTable table({"threads", "shards", "top-k", "nprobe", "events", "qps",
                     "p50 ms", "p95 ms", "scan MB", "pruned%",
                     "recall@k", "active", "evicted", "shed%", "miss%"});
    table.add_row(
        {std::to_string(report.threads), std::to_string(report.shards),
         std::to_string(top_k),
         nprobe > 0 ? std::to_string(nprobe) : "exact",
         std::to_string(report.session_requests), format_float(report.qps, 0),
         format_float(report.session_latency.p50_ms, 4),
         format_float(report.session_latency.p95_ms, 4),
         format_float(static_cast<double>(report.scanned_bytes) /
                          (1024.0 * 1024.0),
                      1),
         format_float(report.pruned_fraction * 100.0, 1), recall_cell,
         std::to_string(report.active_sessions),
         std::to_string(report.session_evictions),
         format_float(report.shed_rate * 100.0, 1),
         format_float(report.deadline_miss_rate * 100.0, 1)});
    std::cout << "\nsession next-item serving (" << distinct_sessions
              << " sessions, capacity " << config.session_capacity
              << ", history " << config.session_history
              << ", full-catalog top-" << top_k << ", catalog index: "
              << index_note << "):\n"
              << table.to_string();
  }
  return 0;
}
