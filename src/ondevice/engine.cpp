#include "ondevice/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "embedding/factory.h"
#include "embedding/hashing.h"
#include "embedding/id_batch.h"
#include "ondevice/clock.h"

namespace memcom {

namespace {
using Clock = SteadyClock;

// The engine supports the lookup/one-hot subset of the technique registry;
// going through embedding/factory's TechniqueKind keeps the metadata-string
// mapping in one place, and this exhaustive switch forces an explicit
// supported/unsupported decision whenever the registry grows.
Technique compile_technique(const std::string& name) {
  switch (technique_from_string(name)) {
    case TechniqueKind::kFull: return Technique::kUncompressed;
    case TechniqueKind::kReduceDim: return Technique::kReduceDim;
    case TechniqueKind::kTruncateRare: return Technique::kTruncateRare;
    case TechniqueKind::kNaiveHash: return Technique::kNaiveHash;
    case TechniqueKind::kWeinberger: return Technique::kWeinberger;
    case TechniqueKind::kMemcom: return Technique::kMemcom;
    case TechniqueKind::kMemcomBias: return Technique::kMemcomBias;
    case TechniqueKind::kQrMult: return Technique::kQrMult;
    case TechniqueKind::kQrConcat: return Technique::kQrConcat;
    case TechniqueKind::kDoubleHash: return Technique::kDoubleHash;
    case TechniqueKind::kFactorized: return Technique::kFactorized;
    case TechniqueKind::kHashedNets:
    case TechniqueKind::kMixedDim:
    case TechniqueKind::kTtRec:
      break;
  }
  check(false, "engine: unsupported technique " + name);
  return Technique::kUncompressed;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  // Nearest-rank: the smallest sample with at least p% of samples <= it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  const std::size_t idx = rank > 0 ? rank - 1 : 0;
  return sorted[std::min(idx, sorted.size() - 1)];
}
}  // namespace

LatencyStats latency_stats_from_samples(std::vector<double> samples_ms) {
  LatencyStats stats;
  stats.runs = static_cast<int>(samples_ms.size());
  if (samples_ms.empty()) {
    return stats;
  }
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.min_ms = samples_ms.front();
  stats.max_ms = samples_ms.back();
  double total = 0.0;
  for (const double s : samples_ms) {
    total += s;
  }
  stats.mean_ms = total / static_cast<double>(samples_ms.size());
  stats.p50_ms = percentile(samples_ms, 50.0);
  stats.p95_ms = percentile(samples_ms, 95.0);
  stats.p99_ms = percentile(samples_ms, 99.0);
  return stats;
}

InferenceEngine::InferenceEngine(const MmapModel& model, DeviceProfile profile)
    : model_(model),
      profile_(std::move(profile)),
      meter_(profile_.page_size, profile_.readahead_pages) {
  arch_ = model_.metadata_value("arch");
  technique_ = model_.metadata_value("technique");
  vocab_ = model_.metadata_int("vocab");
  embed_dim_ = model_.metadata_int("embed_dim");
  hash_size_ = model_.metadata_int("knob");
  output_dim_ = model_.metadata_int("output_dim");
  hidden_dim_ =
      model_.has_metadata("hidden_dim") ? model_.metadata_int("hidden_dim") : 0;
  check(arch_ == "classification" || arch_ == "ranking",
        "engine: unknown architecture " + arch_);
  kind_ = compile_technique(technique_);
  embed_ops_ = embedding_stage_ops();
  has_hidden_ = arch_ == "classification";

  // --- Compile the execution plan: resolve every tensor name once. ---
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
      emb_a_ = resolve("emb.table");
      break;
    case Technique::kWeinberger:
      emb_a_ = resolve("emb.table");
      onehot_.resize(static_cast<std::size_t>(hash_size_), 0.0f);
      break;
    case Technique::kMemcom:
    case Technique::kMemcomBias:
      emb_a_ = resolve("emb.shared");
      emb_b_ = resolve("emb.multiplier");
      if (kind_ == Technique::kMemcomBias) {
        emb_c_ = resolve("emb.bias");
      }
      break;
    case Technique::kQrMult:
    case Technique::kQrConcat:
      emb_a_ = resolve("emb.remainder");
      emb_b_ = resolve("emb.quotient");
      break;
    case Technique::kDoubleHash:
      emb_a_ = resolve("emb.table_a");
      emb_b_ = resolve("emb.table_b");
      break;
    case Technique::kFactorized:
      emb_a_ = resolve("emb.factors");
      emb_b_ = resolve("emb.projection");
      factor_dim_ = emb_a_.entry->shape[1];
      predequantize(emb_b_, projection_);
      break;
  }

  bn1_ = resolve_batchnorm("bn1", embed_dim_);
  if (has_hidden_) {
    dense1_ = resolve_dense("dense1", embed_dim_, hidden_dim_);
    bn2_ = resolve_batchnorm("bn2", hidden_dim_);
  }
  out_ = resolve_dense("out", has_hidden_ ? hidden_dim_ : embed_dim_,
                       output_dim_);

  // --- Size the scratch arena once from model metadata. ---
  const Index e = embed_dim_;
  pooled_.resize(static_cast<std::size_t>(e), 0.0f);
  row_.resize(static_cast<std::size_t>(std::max(e, factor_dim_)), 0.0f);
  row2_.resize(static_cast<std::size_t>(
                   std::max({e, hidden_dim_, output_dim_})),
               0.0f);
  hidden_.resize(static_cast<std::size_t>(hidden_dim_), 0.0f);
  logits_.resize(static_cast<std::size_t>(output_dim_), 0.0f);
}

InferenceEngine::TensorRef InferenceEngine::resolve(
    const std::string& name) const {
  const TensorEntry& entry = model_.entry(name);
  TensorRef ref;
  ref.entry = &entry;
  ref.payload = model_.payload(entry);
  ref.dtype = entry.dtype;
  ref.scale = entry.scale;
  ref.element_bits = static_cast<std::size_t>(dtype_bits(entry.dtype));
  ref.file_offset = static_cast<Index>(entry.offset);
  if (entry.dtype == DType::kF32) {
    ref.f32 = reinterpret_cast<const float*>(ref.payload);
  }
  return ref;
}

void InferenceEngine::predequantize(const TensorRef& ref,
                                    std::vector<float>& out) {
  const Index n = ref.entry->numel();
  out.resize(static_cast<std::size_t>(n));
  dequantize_span(ref.dtype, ref.scale, ref.payload, 0, n, out.data());
}

InferenceEngine::BatchNormPlan InferenceEngine::resolve_batchnorm(
    const std::string& prefix, Index width) {
  BatchNormPlan plan;
  plan.gamma = resolve(prefix + ".gamma");
  plan.beta = resolve(prefix + ".beta");
  plan.mean = resolve(prefix + ".mean");
  plan.var = resolve(prefix + ".var");
  plan.width = width;
  std::vector<float> gamma, beta, mean, var;
  predequantize(plan.gamma, gamma);
  predequantize(plan.beta, beta);
  predequantize(plan.mean, mean);
  predequantize(plan.var, var);
  plan.scale.resize(static_cast<std::size_t>(width));
  plan.shift.resize(static_cast<std::size_t>(width));
  for (Index i = 0; i < width; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    plan.scale[s] = gamma[s] / std::sqrt(var[s] + 1e-5f);
    plan.shift[s] = beta[s] - mean[s] * plan.scale[s];
  }
  return plan;
}

InferenceEngine::DensePlan InferenceEngine::resolve_dense(
    const std::string& prefix, Index expect_in, Index expect_out) {
  DensePlan plan;
  plan.weight = resolve(prefix + ".weight");
  plan.bias_ref = resolve(prefix + ".bias");
  plan.in = plan.weight.entry->shape[0];
  plan.out = plan.weight.entry->shape[1];
  // The scratch buffers apply_dense reads/writes are sized from metadata, so
  // an inconsistent file must fail here, not overflow the arena at run time.
  check_eq(expect_in, plan.in, prefix + " input width");
  check_eq(expect_out, plan.out, prefix + " output width");
  predequantize(plan.bias_ref, plan.bias);
  return plan;
}

void InferenceEngine::touch(const TensorRef& ref, Index offset, Index count) {
  const Index byte_offset = static_cast<Index>(
      static_cast<std::size_t>(offset) * ref.element_bits / 8);
  const Index byte_len = static_cast<Index>(
      (static_cast<std::size_t>(count) * ref.element_bits + 7) / 8);
  meter_.touch(ref.file_offset + byte_offset, byte_len);
}

const float* InferenceEngine::fetch(const TensorRef& ref, Index offset,
                                    Index count, float* scratch) {
  touch(ref, offset, count);
  if (ref.f32 != nullptr) {
    return ref.f32 + offset;
  }
  dequantize_span(ref.dtype, ref.scale, ref.payload, offset, count, scratch);
  return scratch;
}

const float* InferenceEngine::fetch_row(const TensorRef& ref,
                                        std::size_t table, Index row,
                                        Index elems, float* scratch) {
  if (row_cache_ == nullptr) {
    return fetch(ref, row * elems, elems, scratch);
  }
  if (const float* hit = row_cache_->lookup(table, row)) {
    // Served from the cache slab: no page touch, no dequantize. The slab
    // holds exactly the floats the mmap read would have produced, so the
    // logits stay bit-identical either way.
    return hit;
  }
  touch(ref, row * elems, elems);
  float* slot = row_cache_->fill(table, row);
  if (ref.f32 != nullptr) {
    std::memcpy(slot, ref.f32 + row * elems,
                static_cast<std::size_t>(elems) * sizeof(float));
  } else {
    dequantize_span(ref.dtype, ref.scale, ref.payload, row * elems, elems,
                    slot);
  }
  return slot;
}

bool InferenceEngine::enable_row_cache(std::size_t budget_bytes) {
  // Technique-aware attachment: one partition per embedding tensor of the
  // compiled plan, each with that tensor's row width.
  std::vector<Index> widths;
  const Index e = embed_dim_;
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
      widths = {e};
      break;
    case Technique::kMemcom:
      widths = {e, 1};  // shared rows + per-entity multiplier
      break;
    case Technique::kMemcomBias:
      widths = {e, 1, 1};  // + per-entity bias
      break;
    case Technique::kQrMult:
      widths = {e, e};
      break;
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      widths = {e / 2, e / 2};
      break;
    case Technique::kFactorized:
      widths = {factor_dim_};  // the projection is pre-dequantized already
      break;
    case Technique::kWeinberger:
      // The one-hot path streams the entire table every forward; caching
      // individual rows cannot skip any work, so the cache is bypassed.
      return false;
  }
  row_cache_ = std::make_unique<HotRowCache>(budget_bytes, std::move(widths));
  return true;
}

void InferenceEngine::clear_row_cache() {
  if (row_cache_ != nullptr) {
    row_cache_->clear();
  }
}

RowCacheStats InferenceEngine::row_cache_stats() const {
  return row_cache_ != nullptr ? row_cache_->stats() : RowCacheStats{};
}

Index InferenceEngine::embedding_stage_ops() const {
  // The frameworks execute the WHOLE batch-1 embedding stage as a handful
  // of fused graph ops (gather per table + the composition op), not one op
  // per token — dispatch overhead must be charged accordingly.
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kNaiveHash:
    case Technique::kTruncateRare:
      return 1;  // gather
    case Technique::kMemcom:
      return 3;  // gather U, gather V, broadcast multiply
    case Technique::kMemcomBias:
      return 5;  // + gather W, broadcast add
    case Technique::kQrMult:
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      return 3;  // two gathers + compose
    case Technique::kFactorized:
      return 2;  // gather + projection matmul
    case Technique::kWeinberger:
      return 3;  // one_hot + matmul + reduce_sum (the un-fused §5.3 path)
  }
  return 1;
}

Index InferenceEngine::embed_pooled(const std::int32_t* ids, Index length) {
  const Index e = embed_dim_;
  std::fill(pooled_.begin(), pooled_.end(), 0.0f);
  float* pooled = pooled_.data();
  Index real = 0;
  for (Index t = 0; t < length; ++t) {
    const std::int32_t id = ids[t];
    if (id == kPadId) {
      continue;
    }
    ++real;
    switch (kind_) {
      case Technique::kUncompressed:
      case Technique::kReduceDim: {
        const float* row =
            fetch_row(emb_a_, kCacheTableA, id, e, row_.data());
        for (Index c = 0; c < e; ++c) {
          pooled[c] += row[c];
        }
        break;
      }
      case Technique::kTruncateRare: {
        const Index keep = hash_size_;
        const Index r = static_cast<Index>(id) <= keep ? id : keep + 1;
        const float* row = fetch_row(emb_a_, kCacheTableA, r, e, row_.data());
        for (Index c = 0; c < e; ++c) {
          pooled[c] += row[c];
        }
        break;
      }
      case Technique::kNaiveHash: {
        const float* row = fetch_row(emb_a_, kCacheTableA,
                                     mod_hash(id, hash_size_), e, row_.data());
        for (Index c = 0; c < e; ++c) {
          pooled[c] += row[c];
        }
        break;
      }
      case Technique::kMemcom:
      case Technique::kMemcomBias: {
        const float* row = fetch_row(emb_a_, kCacheTableA,
                                     mod_hash(id, hash_size_), e, row_.data());
        float mult = 0.0f;
        const float* mult_ptr = fetch_row(emb_b_, kCacheTableB, id, 1, &mult);
        const float m = *mult_ptr;
        if (kind_ == Technique::kMemcomBias) {
          float bias = 0.0f;
          const float* bias_ptr =
              fetch_row(emb_c_, kCacheTableC, id, 1, &bias);
          const float b = *bias_ptr;
          for (Index c = 0; c < e; ++c) {
            pooled[c] += row[c] * m + b;
          }
        } else {
          for (Index c = 0; c < e; ++c) {
            pooled[c] += row[c] * m;
          }
        }
        break;
      }
      case Technique::kQrMult: {
        const float* rem = fetch_row(emb_a_, kCacheTableA,
                                     mod_hash(id, hash_size_), e, row_.data());
        const float* quo =
            fetch_row(emb_b_, kCacheTableB, static_cast<Index>(id) / hash_size_,
                      e, row2_.data());
        for (Index c = 0; c < e; ++c) {
          pooled[c] += rem[c] * quo[c];
        }
        break;
      }
      case Technique::kQrConcat: {
        const Index half = e / 2;
        const float* rem =
            fetch_row(emb_a_, kCacheTableA, mod_hash(id, hash_size_), half,
                      row_.data());
        const float* quo =
            fetch_row(emb_b_, kCacheTableB, static_cast<Index>(id) / hash_size_,
                      half, row2_.data());
        for (Index c = 0; c < half; ++c) {
          pooled[c] += rem[c];
        }
        for (Index c = 0; c < half; ++c) {
          pooled[half + c] += quo[c];
        }
        break;
      }
      case Technique::kDoubleHash: {
        const Index half = e / 2;
        const float* a =
            fetch_row(emb_a_, kCacheTableA, mod_hash(id, hash_size_), half,
                      row_.data());
        const float* b =
            fetch_row(emb_b_, kCacheTableB, mixed_hash(id, hash_size_), half,
                      row2_.data());
        for (Index c = 0; c < half; ++c) {
          pooled[c] += a[c];
        }
        for (Index c = 0; c < half; ++c) {
          pooled[half + c] += b[c];
        }
        break;
      }
      case Technique::kFactorized: {
        const Index h = factor_dim_;
        const float* factors =
            fetch_row(emb_a_, kCacheTableA, id, h, row_.data());
        // Project: row2 = factors · P using the pre-dequantized projection;
        // the mmap range is still metered exactly like the streaming read.
        touch(emb_b_, 0, h * e);
        float* acc = row2_.data();
        std::fill(acc, acc + e, 0.0f);
        const float* proj = projection_.data();
        for (Index k = 0; k < h; ++k) {
          const float f = factors[k];
          const float* prow = proj + k * e;
          for (Index c = 0; c < e; ++c) {
            acc[c] += f * prow[c];
          }
        }
        for (Index c = 0; c < e; ++c) {
          pooled[c] += acc[c];
        }
        break;
      }
      case Technique::kWeinberger:
        // forward_scratch routes weinberger through embed_onehot_pooled;
        // keeping a shadow lookup formulation here would silently diverge.
        check(false, "engine: weinberger uses the one-hot path");
        break;
    }
  }
  return real;
}

void InferenceEngine::embed_onehot_pooled(const std::int32_t* ids,
                                          Index length) {
  const Index e = embed_dim_;
  const Index m = hash_size_;
  // Stage 1: hashed one-hot bag z in R^m (normalized so the result matches
  // the lookup path's masked average exactly).
  Index real = 0;
  for (Index t = 0; t < length; ++t) {
    if (ids[t] != kPadId) {
      ++real;
    }
  }
  std::fill(onehot_.begin(), onehot_.end(), 0.0f);
  const float inv = real > 0 ? 1.0f / static_cast<float>(real) : 0.0f;
  for (Index t = 0; t < length; ++t) {
    const std::int32_t id = ids[t];
    if (id == kPadId) {
      continue;
    }
    onehot_[static_cast<std::size_t>(mod_hash(id, m))] += sign_hash(id) * inv;
  }
  // Stage 2: z^T W — streams the ENTIRE table (this is the point of §5.3):
  // every row is read/dequantized regardless of z, so the simulated wall
  // time stays O(m·e) like the real un-fused one_hot->matmul, not O(nnz·e).
  // One full-range touch covers the same page set as the row-by-row reads.
  touch(emb_a_, 0, m * e);
  std::fill(pooled_.begin(), pooled_.end(), 0.0f);
  float* pooled = pooled_.data();
  float* row = row_.data();
  for (Index j = 0; j < m; ++j) {
    dequantize_span(emb_a_.dtype, emb_a_.scale, emb_a_.payload, j * e, e, row);
    const float z = onehot_[static_cast<std::size_t>(j)];
    if (z != 0.0f) {
      for (Index c = 0; c < e; ++c) {
        pooled[c] += z * row[c];
      }
    }
  }
}

void InferenceEngine::apply_batchnorm(const BatchNormPlan& bn, float* x) {
  const Index n = bn.width;
  touch(bn.gamma, 0, n);
  touch(bn.beta, 0, n);
  touch(bn.mean, 0, n);
  touch(bn.var, 0, n);
  const float* scale = bn.scale.data();
  const float* shift = bn.shift.data();
  for (Index i = 0; i < n; ++i) {
    x[i] = x[i] * scale[static_cast<std::size_t>(i)] +
           shift[static_cast<std::size_t>(i)];
  }
  ++op_count_;
}

void InferenceEngine::apply_dense(const DensePlan& dense, const float* x,
                                  float* y) {
  const Index in = dense.in;
  const Index out = dense.out;
  // One full-range touch covers the same pages as streaming every row.
  touch(dense.weight, 0, in * out);
  std::fill(y, y + out, 0.0f);
  if (dense.weight.f32 != nullptr) {
    // Unconditional MAC over every row: a real dense matmul kernel pays the
    // full in·out cost, so the modeled latency must not scale with post-ReLU
    // sparsity of x (zero rows contribute ±0 and leave y unchanged).
    const float* weight = dense.weight.f32;
    for (Index k = 0; k < in; ++k) {
      const float xv = x[k];
      const float* row = weight + k * out;
      for (Index c = 0; c < out; ++c) {
        y[c] += xv * row[c];
      }
    }
  } else {
    // Every weight row is dequantized regardless of activation sparsity, so
    // the modeled int8/f16 dense latency stays that of a real streaming
    // matmul kernel rather than scaling with post-ReLU zeros.
    for (Index k = 0; k < in; ++k) {
      dequantize_span(dense.weight.dtype, dense.weight.scale,
                      dense.weight.payload, k * out, out, row2_.data());
      const float xv = x[k];
      if (xv != 0.0f) {
        for (Index c = 0; c < out; ++c) {
          y[c] += xv * row2_[static_cast<std::size_t>(c)];
        }
      }
    }
  }
  touch(dense.bias_ref, 0, out);
  const float* bias = dense.bias.data();
  for (Index c = 0; c < out; ++c) {
    y[c] += bias[c];
  }
  ++op_count_;
}

InferenceEngine::RawForward InferenceEngine::forward_scratch(
    const std::int32_t* ids, Index length) {
  op_count_ = 0;
  activation_bytes_ = 0;
  const Index e = embed_dim_;

  RawForward raw;
  const auto start = Clock::now();

  // --- Embedding stage + masked average pooling ---
  if (uses_onehot_path()) {
    const auto onehot_start = Clock::now();
    embed_onehot_pooled(ids, length);
    // The profile's slowdown models the un-fused interpreter path.
    raw.onehot_extra_ms =
        elapsed_ms(onehot_start) * (profile_.onehot_slowdown - 1.0);
    activation_bytes_ += hash_size_ * 4;  // the dense one-hot vector
  } else {
    const Index real = embed_pooled(ids, length);
    if (real > 0) {
      const float inv = 1.0f / static_cast<float>(real);
      for (float& v : pooled_) {
        v *= inv;
      }
    }
    activation_bytes_ += length * e * 4;  // the [L, E] lookup output
  }
  op_count_ += embed_ops_;
  ++op_count_;  // pooling op
  raw.embed_ops = op_count_;
  raw.embed_compute_ms = elapsed_ms(start);

  // --- Trunk: ReLU -> BN [-> Dense(e/2)+ReLU -> BN] -> Dense(out) ---
  for (float& v : pooled_) {
    v = std::max(v, 0.0f);
  }
  ++op_count_;
  apply_batchnorm(bn1_, pooled_.data());
  const float* trunk = pooled_.data();
  if (has_hidden_) {
    apply_dense(dense1_, trunk, hidden_.data());
    for (float& v : hidden_) {
      v = std::max(v, 0.0f);
    }
    ++op_count_;
    apply_batchnorm(bn2_, hidden_.data());
    trunk = hidden_.data();
    activation_bytes_ += hidden_dim_ * 4;
  }
  apply_dense(out_, trunk, logits_.data());
  activation_bytes_ += output_dim_ * 4 + e * 4;
  meter_.note_activation_bytes(activation_bytes_);

  raw.compute_ms = elapsed_ms(start);
  raw.op_count = op_count_;
  return raw;
}

InferenceView InferenceEngine::run_view(const std::int32_t* ids,
                                        Index length) {
  const RowCacheStats before = row_cache_stats();
  const RawForward raw = forward_scratch(ids, length);
  InferenceView view;
  view.logits = logits_.data();
  view.dim = output_dim_;
  view.op_count = raw.op_count;
  if (before.enabled) {
    const RowCacheStats after = row_cache_stats();
    view.cache_hits = after.hits - before.hits;
    view.cache_misses = after.misses - before.misses;
  }
  view.embedding_ms = raw.embed_compute_ms + raw.onehot_extra_ms +
                      static_cast<double>(raw.embed_ops) *
                          profile_.per_op_dispatch_us / 1000.0;
  view.total_ms = raw.compute_ms + raw.onehot_extra_ms +
                  static_cast<double>(raw.op_count) *
                      profile_.per_op_dispatch_us / 1000.0;
  return view;
}

InferenceResult InferenceEngine::run(const std::vector<std::int32_t>& history) {
  const InferenceView view = run_view(history);
  InferenceResult result;
  result.embedding_ms = view.embedding_ms;
  result.total_ms = view.total_ms;
  result.op_count = view.op_count;
  result.logits = Tensor::from_vector(
      {view.dim}, std::vector<float>(view.logits, view.logits + view.dim));
  return result;
}

BatchResult InferenceEngine::run_batch(
    const std::vector<std::vector<std::int32_t>>& histories) {
  const RowCacheStats before = row_cache_stats();
  BatchResult result;
  result.batch = static_cast<Index>(histories.size());
  result.logits = Tensor({result.batch, output_dim_});
  double compute = 0.0;
  double embed_compute = 0.0;
  double onehot_extra = 0.0;
  Index embed_ops = 0;
  Index ops = 0;
  for (Index b = 0; b < result.batch; ++b) {
    const auto& history = histories[static_cast<std::size_t>(b)];
    const RawForward raw =
        forward_scratch(history.data(), static_cast<Index>(history.size()));
    std::memcpy(&result.logits.at2(b, 0), logits_.data(),
                static_cast<std::size_t>(output_dim_) * sizeof(float));
    compute += raw.compute_ms;
    embed_compute += raw.embed_compute_ms;
    onehot_extra += raw.onehot_extra_ms;
    embed_ops = raw.embed_ops;
    ops = raw.op_count;
  }
  // The frameworks dispatch ONE fused graph for the whole batch, so the
  // per-op overhead is charged once — this is the batching win.
  result.op_count = ops;
  result.embedding_ms = embed_compute + onehot_extra +
                        static_cast<double>(embed_ops) *
                            profile_.per_op_dispatch_us / 1000.0;
  result.total_ms = compute + onehot_extra +
                    static_cast<double>(ops) * profile_.per_op_dispatch_us /
                        1000.0;
  if (before.enabled) {
    const RowCacheStats after = row_cache_stats();
    result.cache_hits = after.hits - before.hits;
    result.cache_misses = after.misses - before.misses;
  }
  return result;
}

LatencyStats InferenceEngine::benchmark(
    const std::vector<std::int32_t>& history, int runs) {
  check(runs > 0, "engine: runs must be positive");
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(run_view(history).total_ms);
  }
  return latency_stats_from_samples(std::move(samples));
}

double InferenceEngine::resident_megabytes() const {
  // The cache slab is extra runtime memory the device pays for; its filled
  // bytes join the weight pages and activation peak in the footprint.
  const std::size_t cache_bytes =
      row_cache_ != nullptr ? row_cache_->stats().resident_bytes : 0;
  return static_cast<double>(meter_.total_resident_bytes() +
                             profile_.runtime_overhead_bytes +
                             static_cast<Index>(cache_bytes)) /
         (1024.0 * 1024.0);
}

}  // namespace memcom
