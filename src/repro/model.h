// The paper's evaluation networks with a pluggable embedding stage.
//
// RecModel reproduces the Keras snippet of §5 ("Code 1"):
//
//   classification: Embedding -> AveragePooling1D -> Flatten -> ReLU ->
//     Dropout -> BatchNorm -> Dense(e/2, relu) -> Dropout -> BatchNorm ->
//     Dense(num_labels, softmax)
//   (pointwise) ranking: same minus "the Dense layer following the Average
//     Pooling" (§5.2), i.e. ReLU -> Dropout -> BatchNorm -> Dense(labels).
//
// PairwiseRankModel is the RankNet siamese setup of §5.2 (Figure 3): a
// shared user tower scores two item ids; training maximizes the score
// difference via RankNetLoss.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "embedding/factory.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "ondevice/quantize.h"

namespace memcom {

enum class ModelArch { kClassification, kRanking };

struct ModelConfig {
  EmbeddingConfig embedding;
  ModelArch arch = ModelArch::kClassification;
  Index output_vocab = 0;
  double dropout = 0.1;
  std::uint64_t seed = 17;
};

class RecModel {
 public:
  explicit RecModel(const ModelConfig& config);

  // input: [B, L] ids; returns logits [B, output_vocab].
  Tensor forward(const IdBatch& input, bool training);
  // grad_logits: [B, output_vocab]; propagates through trunk, pooling, and
  // embedding.
  void backward(const Tensor& grad_logits);

  ParamRefs params();
  Index param_count();

  EmbeddingLayer& embedding() { return *embedding_; }
  const ModelConfig& config() const { return config_; }
  Index output_vocab() const { return config_.output_vocab; }

  // Serializes to the on-device .mcm format, quantizing every tensor to
  // `dtype`. The tensor names match what ondevice::InferenceEngine expects.
  // A non-empty `model_name` stamps deployment identity metadata
  // (ModelWriter::set_model_identity) with `model_version`, which the
  // serving-side ModelRegistry enforces to be monotonically increasing
  // across hot swaps; the defaults write a legacy file with no identity.
  // `group_size` only matters when `dtype` is kI4G (0 = kI4GroupDefault).
  // `emit_plan` appends the ahead-of-time compiled plan section (container
  // v3, see ondevice/plan.h) so fleet cold start is adopt instead of
  // compile; plan-less exports stay v1/v2 byte-identical. `emit_index`
  // appends the clustered catalog-index section (container v4, see
  // ondevice/catalog_index.h) enabling the pruned top-k scan;
  // `index_clusters` == 0 picks the ~sqrt(items) default.
  void export_mcm(const std::string& path, DType dtype = DType::kF32,
                  const std::string& model_name = "",
                  std::uint64_t model_version = 1, Index group_size = 0,
                  bool emit_plan = false, bool emit_index = false,
                  Index index_clusters = 0);

  // Loads (dequantized) weights back from an exported .mcm file. The model
  // must have been constructed with the same ModelConfig. Used by the A.2
  // quantization study to evaluate a quantized model through the normal
  // evaluation path, and usable as a checkpoint mechanism.
  void load_mcm(const std::string& path);

 private:
  // (name, value-tensor) pairs in the .mcm naming scheme; shared by export
  // and load.
  std::vector<std::pair<std::string, Tensor*>> named_tensors();

  ModelConfig config_;
  EmbeddingPtr embedding_;
  MaskedAveragePool pool_;
  Relu relu1_;
  std::unique_ptr<Dropout> dropout1_;
  std::unique_ptr<BatchNorm1d> bn1_;
  // Classification-only hidden block.
  std::unique_ptr<Dense> dense1_;
  Relu relu2_;
  std::unique_ptr<Dropout> dropout2_;
  std::unique_ptr<BatchNorm1d> bn2_;
  std::unique_ptr<Dense> out_;

  IdBatch cached_input_;
};

class PairwiseRankModel {
 public:
  // The user tower reuses RecModel's ranking trunk shape (embed -> pool ->
  // relu -> bn -> dense(e)); items live in their own [items, e] output
  // table with a per-item bias; score(u, i) = <tower(u), item_i> + b_i.
  PairwiseRankModel(const EmbeddingConfig& embedding_config, Index item_count,
                    double dropout, std::uint64_t seed);

  // Scores every (history, item) pair: histories [B, L], items [B].
  Tensor score(const IdBatch& histories, const std::vector<Index>& items,
               bool training);
  // Scores one history against ALL items (evaluation path): returns
  // [item_count].
  Tensor score_all(const IdBatch& single_history);

  // Pairwise backward: grads for the preferred / other arms of the last
  // score() call must be combined by the caller into per-arm score grads.
  // `items` and `grad_scores` must match the last score() invocation.
  void backward(const std::vector<Index>& items, const Tensor& grad_scores);

  // Combined convenience used by the trainer: runs both arms through one
  // stacked batch so layer caches stay coherent.
  float train_pair_batch(const IdBatch& histories,
                         const std::vector<Index>& preferred,
                         const std::vector<Index>& other, float* accuracy_out);

  ParamRefs params();
  Index param_count();
  EmbeddingLayer& embedding() { return *embedding_; }

 private:
  Tensor user_tower_forward(const IdBatch& histories, bool training);
  void user_tower_backward(const Tensor& grad_user);

  EmbeddingPtr embedding_;
  MaskedAveragePool pool_;
  Relu relu1_;
  std::unique_ptr<Dropout> dropout1_;
  std::unique_ptr<BatchNorm1d> bn1_;
  std::unique_ptr<Dense> proj_;
  Param item_table_;  // [items, e]
  Param item_bias_;   // [items]
  Tensor cached_user_;         // [B, e] tower output of the last score()
  std::vector<Index> cached_items_;
};

}  // namespace memcom
