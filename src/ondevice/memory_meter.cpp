#include "ondevice/memory_meter.h"

#include "core/check.h"

namespace memcom {

MemoryMeter::MemoryMeter(Index page_size_bytes, Index readahead_pages)
    : page_size_(page_size_bytes), readahead_pages_(readahead_pages) {
  check(page_size_bytes > 0, "memory meter: page size must be positive");
  check(readahead_pages >= 0, "memory meter: negative readahead");
}

void MemoryMeter::touch(Index offset_bytes, Index length_bytes) {
  if (length_bytes <= 0) {
    return;
  }
  const Index first = offset_bytes / page_size_;
  const Index last = (offset_bytes + length_bytes - 1) / page_size_;
  if (first >= memo_first_ && last + readahead_pages_ <= memo_last_) {
    return;  // interval (incl. its readahead) already fully resident
  }
  for (Index p = first; p <= last; ++p) {
    pages_.insert(p);
    // Model OS readahead: sequential faults pull a few extra pages.
    for (Index r = 1; r <= readahead_pages_; ++r) {
      pages_.insert(p + r);
    }
  }
  memo_first_ = first;
  memo_last_ = last + readahead_pages_;
}

void MemoryMeter::note_activation_bytes(Index bytes) {
  activation_peak_ = std::max(activation_peak_, bytes);
}

Index MemoryMeter::weight_resident_bytes() const {
  return static_cast<Index>(pages_.size()) * page_size_;
}

void MemoryMeter::reset() {
  pages_.clear();
  activation_peak_ = 0;
  memo_first_ = -1;
  memo_last_ = -2;
}

}  // namespace memcom
