// Optimizers: SGD (+momentum), Adagrad, Adam.
//
// All three support a sparse-row fast path: a Param flagged `sparse` with a
// non-empty `touched_rows` list is updated only on those rows (lazy updates,
// matching TensorFlow's LazyAdam / sparse Adagrad semantics). This is what
// keeps per-step cost proportional to the batch's embedding lookups rather
// than the vocabulary size.
#pragma once

#include <memory>
#include <unordered_map>

#include "nn/param.h"

namespace memcom {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients.
  void step(const ParamRefs& params);

  // Clears gradients (sparse params clear only their touched rows).
  static void zero_grad(const ParamRefs& params);

  virtual std::string name() const = 0;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}

  // Updates `count` contiguous elements starting at `offset` within the
  // param's value/grad/state storage.
  virtual void update_span(Param& p, Index offset, Index count) = 0;
  // Called once per step before any update_span (for e.g. Adam's step
  // counter).
  virtual void begin_step() {}

  double lr_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  std::string name() const override { return "sgd"; }

 protected:
  void update_span(Param& p, Index offset, Index count) override;

 private:
  double momentum_;
  std::unordered_map<const Param*, Tensor> velocity_;
};

class Adagrad : public Optimizer {
 public:
  explicit Adagrad(double lr, double epsilon = 1e-8);
  std::string name() const override { return "adagrad"; }

 protected:
  void update_span(Param& p, Index offset, Index count) override;

 private:
  double epsilon_;
  std::unordered_map<const Param*, Tensor> accum_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  std::string name() const override { return "adam"; }

 protected:
  void begin_step() override { ++step_count_; }
  void update_span(Param& p, Index offset, Index count) override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  long long step_count_ = 0;
  struct State {
    Tensor m;
    Tensor v;
  };
  std::unordered_map<const Param*, State> state_;
};

// Factory: "sgd", "adam", "adagrad".
std::unique_ptr<Optimizer> make_optimizer(const std::string& kind, double lr);

}  // namespace memcom
