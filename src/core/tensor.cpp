#include "core/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace memcom {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Index shape_numel(const Shape& shape) {
  Index n = 1;
  for (const Index d : shape) {
    check(d >= 0, "negative dimension in shape " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  check_eq(shape_numel(shape), static_cast<long long>(values.size()),
           "from_vector element count");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = rng.normal(0.0f, stddev);
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = rng.uniform(lo, hi);
  }
  return t;
}

Tensor Tensor::glorot(Index fan_in, Index fan_out, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return uniform({fan_in, fan_out}, rng, -limit, limit);
}

Index Tensor::dim(Index axis) const {
  const Index n = ndim();
  if (axis < 0) {
    axis += n;
  }
  check(axis >= 0 && axis < n,
        "axis out of range for shape " + shape_string());
  return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::at(Index i) {
  check(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(Index i) const {
  check(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

void Tensor::reshape(Shape new_shape) {
  check_eq(numel(), shape_numel(new_shape), "reshape element count");
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  check(same_shape(other), "add_: shape mismatch " + shape_string() + " vs " +
                               other.shape_string());
  const float* src = other.data();
  float* dst = data();
  const Index n = numel();
  for (Index i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  check(same_shape(other), "axpy_: shape mismatch");
  const float* src = other.data();
  float* dst = data();
  const Index n = numel();
  for (Index i = 0; i < n; ++i) {
    dst[i] += alpha * src[i];
  }
}

void Tensor::scale_(float alpha) {
  for (float& v : data_) {
    v *= alpha;
  }
}

void Tensor::mul_(const Tensor& other) {
  check(same_shape(other), "mul_: shape mismatch");
  const float* src = other.data();
  float* dst = data();
  const Index n = numel();
  for (Index i = 0; i < n; ++i) {
    dst[i] *= src[i];
  }
}

float Tensor::sum() const {
  double acc = 0.0;
  for (const float v : data_) {
    acc += v;
  }
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  check(!empty(), "mean of empty tensor");
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  check(!empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  check(!empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (const float v : data_) {
    acc += static_cast<double>(v) * static_cast<double>(v);
  }
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace memcom
