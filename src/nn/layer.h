// Layer abstraction: explicit forward/backward (Caffe-style), no autograd
// tape. Each layer caches what it needs from forward to compute backward;
// backward must be called after the matching forward.
#pragma once

#include <memory>
#include <string>

#include "core/tensor.h"
#include "nn/param.h"

namespace memcom {

class Layer {
 public:
  virtual ~Layer() = default;

  // x is [batch, features] (the trunk layers all operate on 2-D activations;
  // embedding lookup and pooling happen before the trunk, see
  // repro/model.h). `training` toggles dropout masks and batch-norm batch
  // statistics.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  // grad_out is dLoss/dOutput; returns dLoss/dInput and accumulates
  // parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual ParamRefs params() { return {}; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace memcom
