#include "ondevice/serving.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "core/check.h"
#include "ondevice/clock.h"

namespace memcom {

namespace {
using Clock = SteadyClock;
}  // namespace

ServingHarness::ServingHarness(const MmapModel& model,
                               const DeviceProfile& profile, int threads) {
  check(threads > 0, "serving: thread count must be positive");
  engines_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    engines_.push_back(std::make_unique<InferenceEngine>(model, profile));
  }
}

ServingReport ServingHarness::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    Tensor* logits_out) {
  check(repeat > 0, "serving: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  const Index dim = output_dim();
  if (logits_out != nullptr) {
    *logits_out = Tensor({static_cast<Index>(unique), dim});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  if (total == 0) {
    return report;
  }

  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::vector<double>> samples(engines_.size());
  // Reserve ~2× the fair share per worker: enough headroom for work-stealing
  // imbalance without pre-allocating threads×total samples on large drains.
  // A rare mid-drain realloc happens between timing windows, so it can only
  // nudge aggregate wall_ms/QPS, never an individual latency sample.
  const std::uint64_t per_worker = std::min(
      total, total / static_cast<std::uint64_t>(engines_.size()) * 2 + 64);
  for (auto& s : samples) {
    s.reserve(static_cast<std::size_t>(per_worker));
  }

  const auto run_worker = [&](std::size_t worker) {
    InferenceEngine& engine = *engines_[worker];
    std::vector<double>& lat = samples[worker];
    for (;;) {
      const std::uint64_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) {
        break;
      }
      const std::size_t r = static_cast<std::size_t>(i % unique);
      const auto& history = requests[r];
      const auto start = Clock::now();
      const InferenceView view = engine.run_view(history);
      lat.push_back(elapsed_ms(start));
      // Only the first repetition writes logits, so rows are written by
      // exactly one worker (repeat passes would produce identical bytes).
      if (logits_out != nullptr && i < unique) {
        std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), view.logits,
                    static_cast<std::size_t>(dim) * sizeof(float));
      }
    }
  };

  const auto wall_start = Clock::now();
  if (engines_.size() == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(engines_.size());
    for (std::size_t w = 0; w < engines_.size(); ++w) {
      workers.emplace_back(run_worker, w);
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  report.wall_ms = elapsed_ms(wall_start);

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (const auto& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  report.latency = latency_stats_from_samples(std::move(all));
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  return report;
}

double ServingHarness::max_resident_megabytes() const {
  double max_mb = 0.0;
  for (const auto& engine : engines_) {
    max_mb = std::max(max_mb, engine->resident_megabytes());
  }
  return max_mb;
}

}  // namespace memcom
