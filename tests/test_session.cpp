// SessionStore contract (src/ondevice/session.h):
//   * bounded ring per session — appends past history_capacity overwrite the
//     oldest item, snapshots come back oldest-first;
//   * capacity max_sessions with LRU eviction, counted in
//     evicted_sessions(); eviction scrubs the recycled slot so churn can
//     never leak one session's items into another;
//   * open-addressing map with backward-shift deletion stays correct under
//     collision-heavy id patterns;
//   * zero steady-state allocation: append_and_snapshot never grows `out`
//     beyond history_capacity.
#include "ondevice/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace memcom {
namespace {

std::vector<std::int32_t> snap(SessionStore& store, std::uint64_t id) {
  std::vector<std::int32_t> out;
  store.history(id, out);
  return out;
}

TEST(SessionStore, AppendBuildsHistoryOldestFirst) {
  SessionStore store(/*max_sessions=*/4, /*history_capacity=*/8);
  std::vector<std::int32_t> out;
  EXPECT_EQ(store.append_and_snapshot(42, 10, out), 1);
  EXPECT_EQ(out, (std::vector<std::int32_t>{10}));
  EXPECT_EQ(store.append_and_snapshot(42, 11, out), 2);
  EXPECT_EQ(store.append_and_snapshot(42, 12, out), 3);
  EXPECT_EQ(out, (std::vector<std::int32_t>{10, 11, 12}));
  EXPECT_TRUE(store.contains(42));
  EXPECT_FALSE(store.contains(43));
  EXPECT_EQ(store.active_sessions(), 1);
  EXPECT_EQ(store.evicted_sessions(), 0u);
}

TEST(SessionStore, RingOverwritesOldestAtCapacity) {
  SessionStore store(2, /*history_capacity=*/3);
  std::vector<std::int32_t> out;
  for (std::int32_t item = 0; item < 7; ++item) {
    store.append_and_snapshot(1, item, out);
  }
  // Items 0..6 through a 3-ring: only the newest 3 survive, oldest first.
  EXPECT_EQ(out, (std::vector<std::int32_t>{4, 5, 6}));
  EXPECT_EQ(snap(store, 1), (std::vector<std::int32_t>{4, 5, 6}));
  // Another wrap keeps sliding.
  store.append_and_snapshot(1, 7, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{5, 6, 7}));
}

TEST(SessionStore, HistoryOfUnknownSessionIsEmpty) {
  SessionStore store(2, 4);
  std::vector<std::int32_t> out = {1, 2, 3};
  EXPECT_EQ(store.history(99, out), 0);
  EXPECT_TRUE(out.empty());
}

TEST(SessionStore, LruEvictsLeastRecentlyTouched) {
  SessionStore store(/*max_sessions=*/3, 4);
  std::vector<std::int32_t> out;
  store.append_and_snapshot(1, 100, out);
  store.append_and_snapshot(2, 200, out);
  store.append_and_snapshot(3, 300, out);
  // Touch 1 so 2 becomes the LRU victim.
  store.append_and_snapshot(1, 101, out);
  store.append_and_snapshot(4, 400, out);  // evicts 2
  EXPECT_FALSE(store.contains(2));
  EXPECT_TRUE(store.contains(1));
  EXPECT_TRUE(store.contains(3));
  EXPECT_TRUE(store.contains(4));
  EXPECT_EQ(store.active_sessions(), 3);
  EXPECT_EQ(store.evicted_sessions(), 1u);
  // Survivors keep their exact histories.
  EXPECT_EQ(snap(store, 1), (std::vector<std::int32_t>{100, 101}));
  EXPECT_EQ(snap(store, 3), (std::vector<std::int32_t>{300}));
}

TEST(SessionStore, EvictedSlotIsScrubbedBeforeReuse) {
  SessionStore store(/*max_sessions=*/1, /*history_capacity=*/4);
  std::vector<std::int32_t> out;
  for (std::int32_t item = 0; item < 4; ++item) {
    store.append_and_snapshot(7, item, out);
  }
  // Session 8 evicts 7 and recycles its (full) slot. The first snapshot
  // must contain ONLY session 8's item — any leftover of 7's ring or
  // length would leak here.
  store.append_and_snapshot(8, 55, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{55}));
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.evicted_sessions(), 1u);
  // Re-creating 7 starts from scratch too.
  store.append_and_snapshot(7, 66, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{66}));
  EXPECT_EQ(store.evicted_sessions(), 2u);
}

TEST(SessionStore, ChurnNeverCorruptsSurvivors) {
  // Shadow-model fuzz: a plain map mirrors what each session's ring should
  // hold; heavy eviction churn (capacity 8, 64 distinct ids) must keep
  // every still-resident session's history exactly equal to the shadow.
  const Index cap = 8;
  const Index hist = 5;
  SessionStore store(cap, hist);
  std::map<std::uint64_t, std::vector<std::int32_t>> shadow;
  std::vector<std::int32_t> out;
  std::uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t id = next() % 64;
    const std::int32_t item = static_cast<std::int32_t>(next() % 1000);
    store.append_and_snapshot(id, item, out);
    std::vector<std::int32_t>& ring = shadow[id];
    ring.push_back(item);
    if (ring.size() > static_cast<std::size_t>(hist)) {
      ring.erase(ring.begin());
    }
    // The snapshot we just got must match the shadow — if this session was
    // previously evicted, the store restarted it, so restart the shadow
    // when the lengths disagree.
    if (out.size() != ring.size() ||
        !std::equal(out.begin(), out.end(), ring.end() - out.size())) {
      ring.assign(out.begin(), out.end());
    }
    EXPECT_LE(out.size(), static_cast<std::size_t>(hist));
    EXPECT_EQ(out.back(), item);
    // Spot-check every resident session against the shadow.
    if (step % 97 == 0) {
      for (const auto& [sid, expect] : shadow) {
        if (store.contains(sid)) {
          const std::vector<std::int32_t> got = snap(store, sid);
          ASSERT_EQ(got.size(), expect.size()) << "session " << sid;
          EXPECT_EQ(got, expect) << "session " << sid;
        }
      }
    }
    EXPECT_LE(store.active_sessions(), cap);
  }
  EXPECT_EQ(store.active_sessions(), cap);
  EXPECT_GT(store.evicted_sessions(), 0u);
}

TEST(SessionStore, CollisionHeavyIdsSurviveBackwardShiftDeletion) {
  // Ids chosen as multiples of a large power of two stress the probe
  // sequence (identical low bits pre-mix); constant churn exercises
  // backward-shift deletion with long collision runs.
  SessionStore store(/*max_sessions=*/4, 3);
  std::vector<std::int32_t> out;
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      const std::uint64_t id = (j + 1) << 32;
      store.append_and_snapshot(id, static_cast<std::int32_t>(round), out);
      EXPECT_EQ(out.back(), round);
    }
  }
  // Exactly 4 of the 8 ids resident; each resident history is consistent
  // (a suffix of the rounds it saw while resident).
  int resident = 0;
  for (std::uint64_t j = 0; j < 8; ++j) {
    const std::uint64_t id = (j + 1) << 32;
    if (store.contains(id)) {
      ++resident;
      const std::vector<std::int32_t> h = snap(store, id);
      ASSERT_FALSE(h.empty());
      EXPECT_EQ(h.back(), 49);
      EXPECT_TRUE(std::is_sorted(h.begin(), h.end()));
    }
  }
  EXPECT_EQ(resident, 4);
  EXPECT_EQ(store.active_sessions(), 4);
}

TEST(SessionStore, SnapshotNeverGrowsBeyondHistoryCapacity) {
  // Zero steady-state allocation: a caller that reserves history_capacity
  // once must never see `out` reallocate.
  SessionStore store(4, /*history_capacity=*/6);
  std::vector<std::int32_t> out;
  out.reserve(6);
  const std::size_t reserved = out.capacity();
  std::uint64_t state = 7;
  for (int step = 0; step < 500; ++step) {
    state = state * 2862933555777941757ull + 3037000493ull;
    store.append_and_snapshot(state % 9, static_cast<std::int32_t>(step), out);
    EXPECT_LE(out.size(), 6u);
    EXPECT_EQ(out.capacity(), reserved) << "snapshot reallocated at " << step;
  }
}

TEST(SessionStore, RejectsInvalidConstruction) {
  EXPECT_THROW(SessionStore(0, 4), std::runtime_error);
  EXPECT_THROW(SessionStore(4, 0), std::runtime_error);
}

}  // namespace
}  // namespace memcom
