// Per-thread mutable execution state over a shared CompiledModel.
//
// Everything a forward pass mutates lives here: the scratch arena, the
// page-granular MemoryMeter, the optional HotRowCache, and the per-op
// dispatch accounting. A context executes against exactly one CompiledModel
// at a time but can be re-bound (`bind()`) to a different plan — the
// mechanism behind zero-downtime hot swap: a serving worker keeps one
// context per model id and re-binds it whenever the ModelRegistry publishes
// a new version. Re-binding resizes the scratch arena (amortized: steady
// state on one plan never reallocates), resets the meter (the old version's
// page set is meaningless for the new mapping), and rebuilds the row cache
// cold (cached rows of the old version's weights must never serve the new
// version's traffic).
//
// The forward pass itself is the PR-2/PR-3 zero-allocation fast path,
// unchanged: no string lookups, no heap allocations, page-touch metering
// identical to the pre-split engine (tests/test_fastpath.cpp and
// tests/test_differential.cpp enforce both).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/tensor.h"
#include "ondevice/compiled_model.h"
#include "ondevice/device_profile.h"
#include "ondevice/hot_row_cache.h"
#include "ondevice/memory_meter.h"
#include "ondevice/topk.h"

namespace memcom {

// Allocation-free view over the context-owned logits scratch. Valid until
// the next run on the same context.
struct InferenceView {
  const float* logits = nullptr;
  Index dim = 0;
  double embedding_ms = 0;
  double total_ms = 0;
  Index op_count = 0;
  // Hot-row cache traffic of THIS forward (both zero when no cache is
  // attached or the technique bypasses it).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

// Batched forward: one fused-graph dispatch for the whole batch, so the
// per-op overhead is charged once instead of once per request.
struct BatchResult {
  Tensor logits;            // [batch, output_dim]
  double embedding_ms = 0;  // summed compute + one amortized dispatch
  double total_ms = 0;
  Index op_count = 0;       // fused graph ops dispatched for the batch
  Index batch = 0;
  // Hot-row cache traffic of THIS batch (zero without an attached cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Catalog-scan accounting, populated only for RANKED rows (top_k > 0).
  // An exact scan scores every catalog item; a pruned scan (nprobe > 0
  // with an adopted index) scores only the probed clusters' items, and
  // scanned_bytes is the ANALYTIC compressed payload of those columns plus
  // the centroid table. pruned fraction = 1 - scanned_rows/catalog_rows.
  std::uint64_t ranked_rows = 0;    // rows that went through top-k ranking
  std::uint64_t catalog_rows = 0;   // ranked_rows * catalog items
  std::uint64_t scanned_rows = 0;   // catalog items actually scored
  std::uint64_t scanned_bytes = 0;  // analytic compressed bytes read
};

class ExecutionContext {
 public:
  ExecutionContext(std::shared_ptr<const CompiledModel> compiled,
                   DeviceProfile profile);

  const CompiledModel& compiled() const { return *compiled_; }
  const std::shared_ptr<const CompiledModel>& compiled_ptr() const {
    return compiled_;
  }
  const DeviceProfile& profile() const { return profile_; }

  // Re-binds the context to a different plan (e.g. a hot-swapped model
  // version). No-op when `compiled` is the plan already bound. Otherwise:
  // scratch is resized for the new dims, the meter is reset, and an
  // attached row cache is rebuilt cold with the new plan's partitions.
  void bind(std::shared_ptr<const CompiledModel> compiled);

  InferenceView run_view(const std::int32_t* ids, Index length);
  InferenceView run_view(const std::vector<std::int32_t>& history) {
    return run_view(history.data(), static_cast<Index>(history.size()));
  }
  BatchResult run_batch(const std::vector<std::vector<std::int32_t>>& histories);
  // Batched forward + per-row top-k over the logits — the session
  // workload's full-catalog ranking (the output dense layer IS the
  // compressed catalog scan; see ondevice/topk.h for the deterministic
  // ordering contract). When `top_k` > 0, `topk_out` is resized to [batch]
  // and row b receives the best min(top_k, output_dim) ids of request b,
  // selected straight off the logits scratch before the next row
  // overwrites it. Ranking lives here so every serving path — worker
  // micro-batches, harness, bench — breaks ties identically.
  //
  // `nprobes` (optional, per row, parallel to `histories`) turns a row's
  // ranking into the CLUSTERED PRUNED scan when its value is > 0 AND the
  // bound plan carries an adopted catalog index: the trunk vector probes
  // the nprobe best centroids and only those clusters' catalog columns are
  // scored — every score it does produce is bit-identical to the exact
  // row's logit (see forward_pruned), so nprobe == clusters reproduces the
  // exact ranking exactly. 0 (or a missing/defective index) is the exact
  // full scan. Pruned rows fill result.logits with the probed entries only
  // (unprobed positions are 0): consumers of pruned rankings read
  // topk_out, not dense logits.
  BatchResult run_batch(const std::vector<std::vector<std::int32_t>>& histories,
                        Index top_k,
                        std::vector<std::vector<ScoredId>>* topk_out,
                        const std::vector<Index>* nprobes = nullptr);

  const MemoryMeter& meter() const { return meter_; }
  void reset_meter() { meter_.reset(); }
  double resident_megabytes() const;

  // Attaches a fixed-budget HotRowCache over the plan's lookup-path
  // embedding tensors. Returns false — and attaches nothing — for the
  // one-hot Weinberger path. The budget is remembered across bind().
  bool enable_row_cache(std::size_t budget_bytes);
  void clear_row_cache();
  bool row_cache_enabled() const { return row_cache_ != nullptr; }
  RowCacheStats row_cache_stats() const;

 private:
  // Raw (overhead-free) timings of one forward into the scratch arena.
  struct RawForward {
    double embed_compute_ms = 0;
    double compute_ms = 0;
    double onehot_extra_ms = 0;
    Index embed_ops = 0;
    Index op_count = 0;
  };

  void resize_scratch();
  bool attach_row_cache();

  // Meters the byte range covering `count` elements at element `offset`.
  void touch(const TensorRef& ref, Index offset, Index count);
  // Meters + returns a pointer to `count` floats at element `offset`:
  // zero-copy for fp32 tensors, dequantized into `scratch` otherwise.
  const float* fetch(const TensorRef& ref, Index offset, Index count,
                     float* scratch);
  // Row-gather hook: like fetch() for row `row` of `elems` floats, but
  // consults the hot-row cache first when one is attached. `table` selects
  // the cache partition (kCacheTableA/B/C).
  const float* fetch_row(const TensorRef& ref, std::size_t table, Index row,
                         Index elems, float* scratch);
  // fetch() minus the metering, for reads the caller already touched (the
  // zero-slot cache-partition bypass).
  const float* fetch_uncached(const TensorRef& ref, Index offset, Index count,
                              float* scratch);

  // Shared trunk (embedding → pooling → ReLU → bn1 [→ dense1 → ReLU →
  // bn2]); fills `raw`'s embed timings and compute-so-far, returns the
  // trunk activation both output stages score against.
  const float* forward_trunk(const std::int32_t* ids, Index length,
                             RawForward& raw);
  // Computes logits into logits_; returns raw timings. The code path
  // behind run_view() and exact run_batch() rows.
  RawForward forward_scratch(const std::int32_t* ids, Index length);
  // Pruned ranked forward: trunk → centroid probe → per-column replay of
  // only the probed clusters' catalog columns, each bit-identical to the
  // logit apply_dense would produce (same accumulation order, same
  // FMA-ness as the bound kernel family's axpy). Ranked result into
  // `ranked`; analytic scan counters accumulate into the two totals.
  RawForward forward_pruned(const std::int32_t* ids, Index length,
                            Index nprobe, Index top_k,
                            std::vector<ScoredId>* ranked,
                            std::uint64_t* scanned_rows,
                            std::uint64_t* scanned_bytes);
  // Pooled embedding into pooled_ (lookup path). Returns #real tokens.
  Index embed_pooled(const std::int32_t* ids, Index length);
  // Pooled embedding via the one-hot path (whole-table stream).
  void embed_onehot_pooled(const std::int32_t* ids, Index length);

  void apply_batchnorm(const BatchNormPlan& bn, float* x);
  // y[out] = x[in] * W[in,out] + b[out]
  void apply_dense(const DensePlan& dense, const float* x, float* y);

  // Cache partition tags for the plan's embedding tensors.
  static constexpr std::size_t kCacheTableA = 0;
  static constexpr std::size_t kCacheTableB = 1;
  static constexpr std::size_t kCacheTableC = 2;

  std::shared_ptr<const CompiledModel> compiled_;
  DeviceProfile profile_;
  MemoryMeter meter_;
  std::unique_ptr<HotRowCache> row_cache_;  // null = disabled
  std::size_t cache_budget_bytes_ = 0;      // sticky across bind()
  Index op_count_ = 0;
  Index activation_bytes_ = 0;

  // --- Scratch arena (sized per bound plan; reused by every run) ---
  std::vector<float> pooled_;
  std::vector<float> row_;      // embedding-row scratch (quantized gathers)
  std::vector<float> row2_;     // second gather / dense-row scratch
  std::vector<float> hidden_;
  std::vector<float> logits_;
  std::vector<float> onehot_;   // weinberger bag-of-words, size m
  std::vector<float> query_;    // pruned probe query [trunk; 1.0], in+1
};

}  // namespace memcom
