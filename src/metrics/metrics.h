// Evaluation metrics: accuracy / top-k accuracy for the classification
// experiments (Figure 1) and nDCG for the ranking experiments (Figures 2,
// 3, 5), plus the relative-loss transform the paper plots on its y-axes.
#pragma once

#include <vector>

#include "core/tensor.h"

namespace memcom {

// Fraction of rows where argmax(scores[r,:]) == labels[r].
double accuracy(const Tensor& scores, const std::vector<Index>& labels);

// Fraction of rows where labels[r] is among the k highest-scoring columns.
double topk_accuracy(const Tensor& scores, const std::vector<Index>& labels,
                     Index k);

// nDCG@k with a single relevant item per row (the paper's ranking setup:
// the held-out next interaction is the one relevant item). With one
// relevant item, DCG = 1/log2(rank+1) if rank < k else 0, and IDCG = 1, so
// nDCG@k = mean_r 1/log2(rank_r + 2).
double ndcg_at_k(const Tensor& scores, const std::vector<Index>& labels,
                 Index k);

// nDCG@k for graded relevance: per row, `relevance` lists (column, gain).
double ndcg_at_k_graded(
    const Tensor& scores,
    const std::vector<std::vector<std::pair<Index, double>>>& relevance,
    Index k);

// Mean reciprocal rank of the relevant column.
double mrr(const Tensor& scores, const std::vector<Index>& labels);

// The paper's y-axis: percentage loss relative to a baseline metric value
// (positive = worse than baseline).
double relative_loss_percent(double baseline, double value);

// Rank of `label` within scores[row,:] (0 = highest score), with PESSIMISTIC
// tie handling: every other column whose score ties the label's counts as
// ranked above it. This makes accuracy / topk_accuracy / ndcg@k / mrr
// invariant to how a scorer orders equal scores (quantized catalogs tie
// constantly, and different kernel families may emit ties in different
// orders); the reported metric is a worst-case lower bound under ties.
Index rank_of_label(const Tensor& scores, Index row, Index label);

}  // namespace memcom
