#include "core/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

namespace memcom {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  std::stringstream ss;
  write_u32(ss, 0xDEADBEEFu);
  write_u64(ss, 0x0123456789ABCDEFULL);
  write_i64(ss, -42);
  write_f32(ss, 3.25f);
  EXPECT_EQ(read_u32(ss), 0xDEADBEEFu);
  EXPECT_EQ(read_u64(ss), 0x0123456789ABCDEFULL);
  EXPECT_EQ(read_i64(ss), -42);
  EXPECT_EQ(read_f32(ss), 3.25f);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  write_string(ss, "hello world");
  write_string(ss, "");
  write_string(ss, std::string("\0binary\xff", 8));
  EXPECT_EQ(read_string(ss), "hello world");
  EXPECT_EQ(read_string(ss), "");
  EXPECT_EQ(read_string(ss), std::string("\0binary\xff", 8));
}

TEST(Serialize, F32ArrayRoundTrip) {
  std::stringstream ss;
  const std::vector<float> data = {1.0f, -2.5f, 3.75f, 0.0f};
  write_f32_array(ss, data.data(), data.size());
  std::vector<float> out(4);
  read_f32_array(ss, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST(Serialize, TensorRoundTripBitExact) {
  Rng rng(21);
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_TRUE(back.equals(t));
  EXPECT_EQ(back.shape(), t.shape());
}

TEST(Serialize, EmptyTensorRoundTrip) {
  const Tensor t({0, 4});
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.numel(), 0);
  EXPECT_EQ(back.shape(), (Shape{0, 4}));
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  write_u64(ss, 123);
  read_u64(ss);
  EXPECT_THROW(read_u64(ss), std::runtime_error);
}

TEST(Serialize, TruncatedTensorThrows) {
  Rng rng(22);
  const Tensor t = Tensor::randn({8, 8}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_tensor(cut), std::runtime_error);
}

TEST(Serialize, ImplausibleRankRejected) {
  std::stringstream ss;
  write_u64(ss, 1000);  // claimed rank
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(Serialize, MultipleTensorsSequential) {
  Rng rng(23);
  const Tensor a = Tensor::randn({4}, rng);
  const Tensor b = Tensor::randn({2, 2}, rng);
  std::stringstream ss;
  write_tensor(ss, a);
  write_tensor(ss, b);
  EXPECT_TRUE(read_tensor(ss).equals(a));
  EXPECT_TRUE(read_tensor(ss).equals(b));
}

}  // namespace
}  // namespace memcom
