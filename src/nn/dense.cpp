#include "nn/dense.h"

#include "core/ops.h"

namespace memcom {

Dense::Dense(Index in_features, Index out_features, Rng& rng,
             std::string layer_name)
    : name_(std::move(layer_name)),
      weight_(name_ + ".weight", Tensor::glorot(in_features, out_features, rng)),
      bias_(name_ + ".bias", Tensor({out_features})) {}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  check(x.ndim() == 2, name_ + ": input must be 2-D, got " + x.shape_string());
  check_eq(in_features(), x.dim(1), name_ + " input features");
  cached_input_ = x;
  Tensor y = matmul(x, weight_.value);
  add_row_bias(y, bias_.value);
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 2 && grad_out.dim(1) == out_features(),
        name_ + ": bad grad shape " + grad_out.shape_string());
  check(!cached_input_.empty(), name_ + ": backward before forward");
  // dW = x^T g, db = sum_rows g, dx = g W^T
  weight_.grad.add_(matmul_tn(cached_input_, grad_out));
  bias_.grad.add_(column_sums(grad_out));
  return matmul_nt(grad_out, weight_.value);
}

}  // namespace memcom
