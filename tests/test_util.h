// Shared gtest helpers for the MEmCom suites.
//
// Use EXPECT_TENSOR_NEAR (or ExpectTensorNear) instead of
// EXPECT_TRUE(a.allclose(b, tol)): on failure it reports the first offending
// index, both values, and the max abs diff, instead of a bare "false".
// SeededTest provides a per-test deterministic Rng so suites don't share
// random streams but stay reproducible run to run.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "core/rng.h"
#include "core/tensor.h"

namespace memcom {
namespace test {

inline constexpr float kTolStrict = 1e-6f;
inline constexpr float kTolDefault = 1e-5f;
inline constexpr float kTolLoose = 1e-4f;

inline ::testing::AssertionResult TensorNear(const Tensor& actual,
                                             const Tensor& expected,
                                             float tol = kTolDefault) {
  if (!actual.same_shape(expected)) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << actual.shape_string() << " vs "
           << expected.shape_string();
  }
  float max_diff = 0.0f;
  Index worst = -1;
  for (Index i = 0; i < actual.numel(); ++i) {
    // Stricter than Tensor::allclose, which silently accepts matched
    // non-finite pairs (|inf - inf| = NaN compares false against tol).
    if (!std::isfinite(actual[i]) || !std::isfinite(expected[i])) {
      return ::testing::AssertionFailure()
             << "non-finite value at flat index " << i
             << ": actual=" << actual[i] << " expected=" << expected[i];
    }
    const float diff = std::fabs(actual[i] - expected[i]);
    if (diff > tol && diff > max_diff) {
      max_diff = diff;
      worst = i;
    }
  }
  if (worst < 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "tensors differ (tol=" << tol << "): worst at flat index " << worst
         << ", actual=" << actual[worst] << " expected=" << expected[worst]
         << " |diff|=" << max_diff;
}

inline void ExpectTensorNear(const Tensor& actual, const Tensor& expected,
                             float tol = kTolDefault) {
  EXPECT_TRUE(TensorNear(actual, expected, tol));
}

// Test fixture with a deterministic Rng whose seed mixes the full test name,
// so every test gets an independent but reproducible stream.
class SeededTest : public ::testing::Test {
 protected:
  SeededTest() : rng_(SeedFromTestName()) {}

  static std::uint64_t SeedFromTestName() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = "memcom";
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "." + info->name();
    }
    // FNV-1a, 64-bit.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  Rng rng_;
};

}  // namespace test
}  // namespace memcom

#define EXPECT_TENSOR_NEAR(actual, expected, tol) \
  EXPECT_TRUE(::memcom::test::TensorNear((actual), (expected), (tol)))
