// Bringing your own data: build a frequency-sorted vocabulary from raw
// token streams (the convention MEmCom's `i mod m` hashing relies on),
// encode fixed-length histories, and train a compressed model on them.
//
// The "dataset" here is procedurally generated app-install logs with
// human-readable names, standing in for whatever strings a real product
// would log.
//
//   ./custom_tokens [--epochs 3]
#include <iostream>

#include "core/flags.h"
#include "core/sampling.h"
#include "core/table.h"
#include "data/vocab.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "repro/model.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Index epochs = flags.get_int("epochs", 3);
  constexpr Index kApps = 400;
  constexpr Index kUsers = 1500;
  constexpr Index kHistory = 12;
  constexpr Index kLabels = 24;

  // 1. Simulated raw logs: each user installed a Zipf-popular set of apps.
  Rng rng(2024);
  const AliasSampler popularity(zipf_weights(kApps, 1.0));
  auto app_name = [](Index i) { return "app_" + std::to_string(i); };

  std::vector<std::vector<std::string>> histories(kUsers);
  std::vector<Index> labels(kUsers);
  VocabBuilder builder;
  for (Index u = 0; u < kUsers; ++u) {
    std::uint64_t label_hash = 0;
    for (Index t = 0; t < kHistory; ++t) {
      const Index app = popularity.sample(rng);
      histories[static_cast<std::size_t>(u)].push_back(app_name(app));
      builder.add(app_name(app));
      label_hash = label_hash * 31 + static_cast<std::uint64_t>(app);
    }
    // A deterministic label derived from the installed set (stand-in for
    // "next app installed").
    labels[static_cast<std::size_t>(u)] =
        static_cast<Index>(label_hash % kLabels);
  }

  // 2. Freeze the frequency-sorted vocabulary and encode everything.
  const Vocab vocab = builder.freeze();
  std::cout << "== custom tokens ==\n"
            << "raw logs: " << kUsers << " users x " << kHistory
            << " installs; distinct apps seen: " << vocab.token_count()
            << "\n";
  std::cout << "most frequent app: '" << vocab.token_of(1) << "' ("
            << vocab.count_of(vocab.token_of(1)) << " installs)\n\n";

  IdBatch inputs(kUsers, kHistory);
  for (Index u = 0; u < kUsers; ++u) {
    const auto ids =
        vocab.encode(histories[static_cast<std::size_t>(u)], kHistory);
    for (Index t = 0; t < kHistory; ++t) {
      inputs.id(u, t) = ids[static_cast<std::size_t>(t)];
    }
  }

  // 3. Train a MEmCom-compressed classifier on the encoded histories.
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, vocab.size(), 32,
                      std::max<Index>(8, vocab.size() / 8)};
  config.arch = ModelArch::kClassification;
  config.output_vocab = kLabels;
  RecModel model(config);
  auto optimizer = make_optimizer("adam", 3e-3);
  const ParamRefs params = model.params();
  SoftmaxCrossEntropy loss;

  const Index batch_size = 64;
  for (Index epoch = 0; epoch < epochs; ++epoch) {
    double epoch_loss = 0.0;
    Index batches = 0;
    for (Index first = 0; first + batch_size <= kUsers;
         first += batch_size) {
      IdBatch batch(batch_size, kHistory);
      std::vector<Index> batch_labels(static_cast<std::size_t>(batch_size));
      for (Index b = 0; b < batch_size; ++b) {
        for (Index t = 0; t < kHistory; ++t) {
          batch.id(b, t) = inputs.id(first + b, t);
        }
        batch_labels[static_cast<std::size_t>(b)] =
            labels[static_cast<std::size_t>(first + b)];
      }
      const Tensor logits = model.forward(batch, true);
      epoch_loss += loss.forward(logits, batch_labels);
      ++batches;
      model.backward(loss.backward());
      optimizer->step(params);
      Optimizer::zero_grad(params);
    }
    std::cout << "epoch " << (epoch + 1) << ": mean loss "
              << format_float(epoch_loss / batches, 4) << "\n";
  }
  std::cout << "\nmodel: " << model.param_count() << " params vs "
            << vocab.size() * 32 + 32 * 16 + 16 * kLabels
            << "-ish uncompressed — same pipeline, your own tokens.\n";
  return 0;
}
