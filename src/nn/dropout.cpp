#include "nn/dropout.h"

namespace memcom {

Dropout::Dropout(double rate, Rng& rng)
    : rate_(rate), rng_(rng.split(0x1d7)) {
  check(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  last_training_ = training;
  if (!training || rate_ == 0.0) {
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Tensor(x.shape());
  Tensor y = x;
  float* m = mask_.data();
  float* p = y.data();
  const Index n = y.numel();
  for (Index i = 0; i < n; ++i) {
    const float keep = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    m[i] = keep;
    p[i] *= keep;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_training_ || rate_ == 0.0) {
    return grad_out;
  }
  check(grad_out.same_shape(mask_), "dropout: grad shape mismatch");
  Tensor gx = grad_out;
  gx.mul_(mask_);
  return gx;
}

}  // namespace memcom
