// Ahead-of-time compiled plans: the build / serialize / adopt split behind
// CompiledModel and the .mcm v3 plan section.
//
// Compiling a model is three separable phases:
//
//   * build_plan()     — pure plan construction from an open MmapModel:
//     technique resolution, tensor handles as STABLE DIRECTORY INDICES,
//     folded batchnorm scale/shift, pre-dequantized trunk buffers. No
//     pointers — the plan is position-independent data.
//   * serialize_plan() — the plan as a self-validating byte section
//     (identity + compatibility header, handle table, 64-byte-aligned f32
//     buffer regions, trailing checksum) that ModelWriter appends to make a
//     v3 file.
//   * decode_plan()    — the read side: validates a file's plan section
//     (magic/version/endianness, checksum, structural bounds, identity and
//     dimension agreement with the file's own metadata and directory) and
//     returns zero-copy buffer views into the mapping. Any mismatch yields
//     a STALE verdict with a reason — never an exception — so the loader
//     can fall back to build_plan() on the same file; the fallback is
//     bit-identical by construction because the writer produced the section
//     with that very function.
//
// Kernel-independence guarantee: plan buffers are always produced by the
// SCALAR reference dequantizer (PR-6 contract), so one serialized plan
// serves every kernel dispatch family — the adopting process picks its own
// family at load and still computes bit-identical logits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/format.h"
#include "ondevice/kernels.h"

namespace memcom {

// Compiled form of the "technique" metadata string; resolved once at plan
// build so the forward pass never compares strings.
enum class Technique : std::uint8_t {
  kUncompressed,
  kReduceDim,
  kTruncateRare,
  kNaiveHash,
  kWeinberger,
  kMemcom,
  kMemcomBias,
  kQrMult,
  kQrConcat,
  kDoubleHash,
  kFactorized,
};

// Maps the "technique" metadata string to the engine's enum (the
// lookup/one-hot subset of the full registry); throws on unsupported names.
Technique technique_from_metadata(const std::string& name);

// Fused-op count of the batch-1 embedding stage for `kind` (dispatch
// overhead the simulated device model charges per forward).
Index embedding_stage_ops(Technique kind);

// A pre-dequantized float buffer that either OWNS its storage (built
// in-process) or VIEWS a serialized plan section inside the file mapping
// (adopted, zero-copy). Consumers only ever use data()/size(), so the two
// origins are interchangeable; move-only because a view of a moved-from
// owner would dangle.
class PlanBuffer {
 public:
  PlanBuffer() = default;
  PlanBuffer(PlanBuffer&&) = default;
  PlanBuffer& operator=(PlanBuffer&&) = default;
  PlanBuffer(const PlanBuffer&) = delete;
  PlanBuffer& operator=(const PlanBuffer&) = delete;

  static PlanBuffer owned(std::vector<float> values);
  // `data` must stay mapped for the buffer's lifetime (the CompiledModel
  // keeps the MmapModel alive exactly as long as the plan).
  static PlanBuffer view(const float* data, std::size_t count);

  const float* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t byte_size() const { return size_ * sizeof(float); }
  float operator[](std::size_t i) const { return data_[i]; }
  // True when the buffer views the mmap'd plan section instead of owning a
  // heap copy — the cold-start win adoption is about.
  bool zero_copy() const { return data_ != nullptr && storage_.empty(); }

 private:
  std::vector<float> storage_;
  const float* data_ = nullptr;
  std::size_t size_ = 0;
};

// A tensor handle as a stable position in the file's directory: readers
// re-resolve `index` through MmapModel::entry_at() and verify the recorded
// name still lives there, turning handle resolution into pointer fixup.
struct PlanHandle {
  std::string name;
  std::uint64_t index = 0;
};

// The position-independent product of build_plan() / decode_plan().
struct CompiledPlan {
  // Identity + compatibility header.
  std::string model_name;            // empty for legacy-identity files
  std::uint64_t model_version = 0;   // 0 for legacy-identity files
  std::string arch;                  // "classification" | "ranking"
  std::string technique;
  Technique kind = Technique::kUncompressed;
  bool has_hidden = false;           // derived: arch == "classification"

  Index vocab = 0;
  Index embed_dim = 0;
  Index hash_size = 0;               // technique knob (m / h / keep / buckets)
  Index hidden_dim = 0;
  Index output_dim = 0;
  Index factor_dim = 0;              // factorized h (0 otherwise)

  // One handle per tensor the plan touches, in plan_tensor_roles() order.
  std::vector<PlanHandle> handles;

  // Pre-computed buffers (empty where the architecture has no such stage).
  PlanBuffer bn1_scale, bn1_shift;
  PlanBuffer bn2_scale, bn2_shift;
  PlanBuffer dense1_bias, out_bias;
  PlanBuffer projection;             // factorized: [h, e]

  // True when the buffers view a mmap'd plan section (adopted plan).
  bool zero_copy = false;
};

// The tensor names `kind` requires, in the fixed order handles are recorded
// and adopted in: embedding tensors, bn1, [dense1, bn2], out.
std::vector<std::string> plan_tensor_roles(Technique kind, bool has_hidden);

// Builds the plan from the file's metadata + directory, dequantizing with
// the scalar reference kernels. Throws (like CompiledModel always did) on a
// structurally broken model.
CompiledPlan build_plan(const MmapModel& model);

// Serializes `plan` into the byte section ModelWriter appends for v3 files.
std::vector<std::uint8_t> serialize_plan(const CompiledPlan& plan);

enum class PlanStatus : std::uint8_t {
  kAbsent,  // the file carries no plan section (v1/v2, or empty section)
  kValid,   // decoded, verified, ready to adopt
  kStale,   // present but unusable — `reason` says why; caller recompiles
};

struct PlanDecodeResult {
  PlanStatus status = PlanStatus::kAbsent;
  std::string reason;  // non-empty exactly when status == kStale
  CompiledPlan plan;   // populated exactly when status == kValid
};

// Validates and decodes `model`'s plan section. NEVER throws for a bad
// section: every defect (truncation, checksum mismatch, identity/dims skew,
// out-of-bounds buffer) comes back as kStale with a reason so the caller
// can fall back to build_plan().
PlanDecodeResult decode_plan(const MmapModel& model);

// Checksum over a plan section's bytes (FNV-1a over 8-byte words, length
// bound). Exposed so hardening tests can re-seal deliberately hostile
// sections and prove the structural checks fire, not just the checksum.
std::uint64_t plan_checksum(const std::uint8_t* data, std::size_t size);

// Resolves a directory entry + mapped payload into the kernel layer's codec
// view (i4g scales/nibble split done once). Shared by CompiledModel's
// handle resolution and build_plan's dequantization.
SpanSrc make_span_src(const TensorEntry& entry, const std::uint8_t* payload);

}  // namespace memcom
