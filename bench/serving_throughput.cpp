// Serving throughput benchmark: closed-loop batch-1 drain (ServingHarness)
// vs the open-loop async micro-batching pipeline (AsyncServer), per
// compression technique, with a micro-batch-size sweep and hot-row cache
// hit rates.
//
// Two QPS figures per row:
//   * qps          — real wall clock of the drain (bounded by host cores
//                    and, for paced runs, by the offered arrival rate);
//   * modeled_qps  — simulated-device throughput from the engines' modeled
//                    per-forward latency (compute + per-op dispatch). This
//                    is where micro-batching wins: a micro-batch of B pays
//                    the dispatch overhead once instead of B times.
//
// Unlike micro_lookup/micro_ops this does not need Google Benchmark — it is
// a plain binary driven by core/flags.h, so it builds everywhere the engine
// does. Besides the human-readable tables it writes a machine-readable
// BENCH_serving.json for CI trend tracking.
//
//   ./bench_serving_throughput                  # default scale
//   ./bench_serving_throughput --smoke          # tiny model, few iterations
//   ./bench_serving_throughput --threads 8 --requests 512 --repeat 16
//       --arrival-qps 20000 --cache-kb 128 --max-delay-us 200  (one line)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/sampling.h"
#include "core/table.h"
#include "ondevice/catalog_index.h"
#include "ondevice/clock.h"
#include "ondevice/engine.h"
#include "ondevice/plan.h"
#include "ondevice/quantize.h"
#include "ondevice/registry.h"
#include "ondevice/serving.h"
#include "repro/model.h"

using namespace memcom;

namespace {

struct ResultRow {
  std::string technique;
  std::string mode;  // "closed" | "async" | "multi" | "residency" | "sched"
  std::string dtype = "f32";
  int threads = 0;
  int shards = 0;            // scheduler shards (0 for closed-loop rows)
  Index max_batch = 1;       // micro-batch bound (1 for closed-loop)
  double offered_qps = 0;    // open-loop arrival rate (0 = unthrottled)
  double qps = 0;            // real wall-clock throughput
  double modeled_qps = 0;    // simulated-device throughput
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, mean_ms = 0;
  double queue_wait_p50_ms = 0, queue_wait_p95_ms = 0;
  double service_p50_ms = 0, service_p95_ms = 0;
  double mean_batch = 0;
  double cache_hit_rate = 0;
  double resident_mb = 0;
  // Deadline / admission-control accounting (0 outside the async pipeline).
  double shed_rate = 0;
  double deadline_miss_rate = 0;
  double goodput_qps = 0;  // deadline-met completions per wall second
  std::uint64_t late_arrivals = 0;
  // Session serving slice (0 outside "session" rows).
  Index top_k = 0;
  Index active_sessions = 0;
  std::uint64_t session_evictions = 0;
  // Clustered pruned-scan slice (0 when ranking scans the full catalog).
  Index nprobe = 0;
  double pruned_fraction = 0;
  std::uint64_t scanned_bytes = 0;
  // Cold-start slice (0 outside "cold" rows): load -> first-inference
  // phases, p50/p95 over repeated boots.
  bool plan_adopted = false;
  double mmap_p50_ms = 0;
  double validate_p50_ms = 0;
  double adopt_or_compile_p50_ms = 0;
  double adopt_or_compile_p95_ms = 0;
  double first_infer_p50_ms = 0;
  double total_p50_ms = 0;
  double total_p95_ms = 0;
};

ResultRow make_row(const std::string& technique, const std::string& mode,
                   Index max_batch, double offered_qps,
                   const ServingReport& report, double resident_mb) {
  ResultRow row;
  row.technique = technique;
  row.mode = mode;
  row.threads = report.threads;
  row.shards = report.shards;
  row.max_batch = max_batch;
  row.offered_qps = offered_qps;
  row.qps = report.qps;
  row.modeled_qps = report.modeled_qps;
  row.shed_rate = report.shed_rate;
  row.deadline_miss_rate = report.deadline_miss_rate;
  row.goodput_qps = report.goodput_qps;
  row.late_arrivals = report.late_arrivals;
  row.p50_ms = report.latency.p50_ms;
  row.p95_ms = report.latency.p95_ms;
  row.p99_ms = report.latency.p99_ms;
  row.mean_ms = report.latency.mean_ms;
  row.queue_wait_p50_ms = report.queue_wait.p50_ms;
  row.queue_wait_p95_ms = report.queue_wait.p95_ms;
  row.service_p50_ms = report.service.p50_ms;
  row.service_p95_ms = report.service.p95_ms;
  row.mean_batch = report.mean_batch;
  row.cache_hit_rate = report.cache.hit_rate();
  row.resident_mb = resident_mb;
  return row;
}

void write_json(const std::string& path, unsigned hardware_threads,
                const std::vector<ResultRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"hardware_threads\": " << hardware_threads
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"technique\": \"" << r.technique << "\", "
        << "\"mode\": \"" << r.mode << "\", "
        << "\"dtype\": \"" << r.dtype << "\", "
        << "\"threads\": " << r.threads << ", "
        << "\"shards\": " << r.shards << ", "
        << "\"max_batch\": " << r.max_batch << ", "
        << "\"offered_qps\": " << r.offered_qps << ", "
        << "\"qps\": " << r.qps << ", "
        << "\"modeled_qps\": " << r.modeled_qps << ", "
        << "\"p50_ms\": " << r.p50_ms << ", "
        << "\"p95_ms\": " << r.p95_ms << ", "
        << "\"p99_ms\": " << r.p99_ms << ", "
        << "\"mean_ms\": " << r.mean_ms << ", "
        << "\"queue_wait_p50_ms\": " << r.queue_wait_p50_ms << ", "
        << "\"queue_wait_p95_ms\": " << r.queue_wait_p95_ms << ", "
        << "\"service_p50_ms\": " << r.service_p50_ms << ", "
        << "\"service_p95_ms\": " << r.service_p95_ms << ", "
        << "\"mean_batch\": " << r.mean_batch << ", "
        << "\"cache_hit_rate\": " << r.cache_hit_rate << ", "
        << "\"shed_rate\": " << r.shed_rate << ", "
        << "\"deadline_miss_rate\": " << r.deadline_miss_rate << ", "
        << "\"goodput_qps\": " << r.goodput_qps << ", "
        << "\"late_arrivals\": " << r.late_arrivals << ", "
        << "\"top_k\": " << r.top_k << ", "
        << "\"active_sessions\": " << r.active_sessions << ", "
        << "\"session_evictions\": " << r.session_evictions << ", "
        << "\"nprobe\": " << r.nprobe << ", "
        << "\"pruned_fraction\": " << r.pruned_fraction << ", "
        << "\"scanned_bytes\": " << r.scanned_bytes << ", "
        << "\"plan_adopted\": " << (r.plan_adopted ? "true" : "false") << ", "
        << "\"mmap_p50_ms\": " << r.mmap_p50_ms << ", "
        << "\"validate_p50_ms\": " << r.validate_p50_ms << ", "
        << "\"adopt_or_compile_p50_ms\": " << r.adopt_or_compile_p50_ms
        << ", "
        << "\"adopt_or_compile_p95_ms\": " << r.adopt_or_compile_p95_ms
        << ", "
        << "\"first_infer_p50_ms\": " << r.first_infer_p50_ms << ", "
        << "\"total_p50_ms\": " << r.total_p50_ms << ", "
        << "\"total_p95_ms\": " << r.total_p95_ms << ", "
        << "\"resident_mb\": " << r.resident_mb << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const Index vocab = flags.get_int("vocab", smoke ? 2000 : 50000);
  const Index embed_dim = flags.get_int("embed-dim", smoke ? 32 : 128);
  const Index seq_len = flags.get_int("seq-len", smoke ? 16 : 64);
  const Index hash = flags.get_int("hash", std::max<Index>(8, vocab / 16));
  const int max_threads =
      static_cast<int>(flags.get_int("threads", smoke ? 2 : 4));
  const int request_count =
      static_cast<int>(flags.get_int("requests", smoke ? 64 : 256));
  const int repeat = static_cast<int>(flags.get_int("repeat", smoke ? 4 : 8));
  const double arrival_qps = flags.get_double("arrival-qps", 0.0);
  const double max_delay_us = flags.get_double("max-delay-us", 200.0);
  // SLO for the scheduler shoot-out section (enqueue -> completion budget).
  const double deadline_us = flags.get_double("deadline-us", 2000.0);
  const Index cache_kb = flags.get_int("cache-kb", smoke ? 64 : 256);
  const std::string json_path =
      flags.get_string("out", "BENCH_serving.json");

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::cout << "serving throughput: vocab=" << vocab << " e=" << embed_dim
            << " hash=" << hash << " L=" << seq_len
            << " requests=" << request_count << " repeat=" << repeat
            << " threads=1.." << max_threads << " cache=" << cache_kb
            << "KiB arrival=" << (arrival_qps > 0 ? arrival_qps : 0)
            << "qps (hardware threads: " << hw_threads << ")\n";
  if (hw_threads < static_cast<unsigned>(max_threads)) {
    std::cout << "NOTE: only " << hw_threads << " hardware thread(s) visible;"
              << " real wall-clock QPS cannot scale with threads here —"
              << " compare modeled_qps for the simulated-device story.\n";
  }
  std::cout << "\n";

  // A realistic request mix: random histories with a padded tail.
  Rng rng(7);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(request_count));
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len), 0);
    const Index real = seq_len - static_cast<Index>(rng.uniform_index(
                                     static_cast<Index>(seq_len / 4 + 1)));
    for (Index t = 0; t < real; ++t) {
      history[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }

  TextTable closed_table({"technique", "threads", "qps", "modeled qps",
                          "p50 ms", "p95 ms", "p99 ms", "resident MB"});
  TextTable async_table({"technique", "batch<=", "offered", "qps",
                         "modeled qps", "p50 ms", "wait p95", "svc p95",
                         "mean batch", "hit%", "resident MB"});
  std::vector<ResultRow> rows;

  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kQrMult,
        TechniqueKind::kNaiveHash}) {
    ModelConfig config;
    config.embedding = {kind, vocab, embed_dim, hash};
    config.arch = ModelArch::kClassification;
    config.output_vocab = smoke ? 32 : 256;
    config.seed = 99;
    RecModel model(config);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("serving_" + std::string(technique_name(kind)) + ".mcm"))
            .string();
    model.export_mcm(path, DType::kF32);
    const MmapModel mapped(path);

    // --- Closed-loop baseline (batch-1 atomic-cursor drain) --------------
    double closed_modeled_qps = 0.0;
    std::vector<int> thread_counts = {1};
    if (max_threads > 1) {
      thread_counts.push_back(max_threads);
    }
    for (const int threads : thread_counts) {
      ServingHarness harness(mapped, tflite_profile(), threads);
      // Warm the page cache / branch predictors before measuring.
      harness.serve(requests, 1);
      const ServingReport report = harness.serve(requests, repeat);
      if (threads == max_threads) {
        closed_modeled_qps = report.modeled_qps;
      }
      const ResultRow row =
          make_row(technique_name(kind), "closed", 1, 0.0, report,
                   harness.max_resident_megabytes());
      rows.push_back(row);
      closed_table.add_row(
          {row.technique, std::to_string(threads), format_float(row.qps, 0),
           format_float(row.modeled_qps, 0), format_float(row.p50_ms, 4),
           format_float(row.p95_ms, 4), format_float(row.p99_ms, 4),
           format_float(row.resident_mb, 2)});
    }

    // --- Async micro-batching sweep --------------------------------------
    for (const Index max_batch : {Index{1}, Index{8}, Index{32}}) {
      AsyncServerConfig server_config;
      server_config.threads = max_threads;
      server_config.max_batch = max_batch;
      server_config.max_delay_us = max_delay_us;
      server_config.queue_capacity =
          static_cast<std::size_t>(std::max<Index>(64, max_batch * 8));
      server_config.cache_budget_bytes =
          static_cast<std::size_t>(cache_kb) * 1024;
      AsyncServer server(mapped, tflite_profile(), server_config);
      server.serve(requests, 1);  // warm-up (also warms the row cache)
      const ServingReport report =
          server.serve(requests, repeat, arrival_qps);
      const ResultRow row =
          make_row(technique_name(kind), "async", max_batch, arrival_qps,
                   report, server.max_resident_megabytes());
      rows.push_back(row);
      async_table.add_row(
          {row.technique, std::to_string(max_batch),
           arrival_qps > 0 ? format_float(arrival_qps, 0) : "max",
           format_float(row.qps, 0), format_float(row.modeled_qps, 0),
           format_float(row.p50_ms, 4),
           format_float(row.queue_wait_p95_ms, 4),
           format_float(row.service_p95_ms, 4),
           format_float(row.mean_batch, 1),
           format_float(row.cache_hit_rate * 100.0, 1),
           format_float(row.resident_mb, 2)});
      if (max_batch >= 8 && closed_modeled_qps > 0.0) {
        std::cout << "[" << technique_name(kind) << "] async batch<="
                  << max_batch << " vs closed-loop batch-1 (both "
                  << max_threads << " threads): modeled "
                  << format_float(report.modeled_qps / closed_modeled_qps, 2)
                  << "x\n";
      }
    }
    std::filesystem::remove(path);
  }

  // --- Multi-tenant: two models behind ONE AsyncServer, interleaved ------
  // traffic routed per request through the ModelRegistry; the JSON gains a
  // "multi" row per model with its modeled QPS so CI tracks multi-tenant
  // throughput alongside the single-model sweeps.
  TextTable multi_table({"model", "requests", "modeled qps", "p50 ms",
                         "hit%"});
  {
    ModelRegistry registry;
    std::vector<std::string> ids;
    std::vector<std::string> model_paths;
    for (const TechniqueKind kind :
         {TechniqueKind::kMemcom, TechniqueKind::kQrMult}) {
      ModelConfig config;
      config.embedding = {kind, vocab, embed_dim, hash};
      config.arch = ModelArch::kClassification;
      config.output_vocab = smoke ? 32 : 256;
      config.seed = 423;
      RecModel model(config);
      const std::string id = technique_name(kind);
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("serving_multi_" + id + ".mcm"))
              .string();
      model.export_mcm(path, DType::kF32, "serving_" + id, 1);
      registry.load(id, path);
      ids.push_back(id);
      model_paths.push_back(path);
    }

    std::vector<RoutedRequest> routed;
    routed.reserve(requests.size() * ids.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      for (const std::string& id : ids) {
        routed.push_back(RoutedRequest{id, requests[i]});
      }
    }

    AsyncServerConfig server_config;
    server_config.threads = max_threads;
    server_config.max_batch = 8;
    server_config.max_delay_us = max_delay_us;
    server_config.queue_capacity = 128;
    server_config.cache_budget_bytes =
        static_cast<std::size_t>(cache_kb) * 1024;
    AsyncServer server(registry, ids.front(), tflite_profile(),
                       server_config);
    server.serve(routed, 1, 0.0);  // warm-up
    const ServingReport report = server.serve(routed, repeat, arrival_qps);
    for (const ModelReport& model : report.per_model) {
      ResultRow row;
      row.technique = model.model_id;
      row.mode = "multi";
      row.threads = report.threads;
      row.max_batch = 8;
      row.offered_qps = arrival_qps;
      // Per-model wall share of the drain; the modeled figure is the
      // per-model simulated-device throughput.
      row.qps = report.wall_ms > 0.0
                    ? static_cast<double>(model.requests) /
                          (report.wall_ms / 1000.0)
                    : 0.0;
      row.modeled_qps = model.modeled_qps;
      row.p50_ms = model.latency.p50_ms;
      row.p95_ms = model.latency.p95_ms;
      row.p99_ms = model.latency.p99_ms;
      row.mean_ms = model.latency.mean_ms;
      // Per-model figures, not whole-server ones: trend tooling reading a
      // model's row must see THAT tenant's batching and footprint.
      row.mean_batch = model.mean_batch;
      row.cache_hit_rate = model.cache.hit_rate();
      row.resident_mb = model.resident_mb;
      rows.push_back(row);
      multi_table.add_row(
          {model.model_id, std::to_string(model.requests),
           format_float(model.modeled_qps, 0),
           format_float(model.latency.p50_ms, 4),
           model.cache.enabled
               ? format_float(model.cache.hit_rate() * 100.0, 1)
               : "off"});
    }
    for (const std::string& path : model_paths) {
      std::filesystem::remove(path);
    }
  }

  // --- Scheduler shoot-out: single queue vs sharded vs sharded+SLO -------
  // Four tenants with a SKEWED mix (half the traffic on one model) behind
  // the same worker pool, all offered the SAME overload (1.5x the measured
  // single-queue capacity, absolute-timestamp pacing). Three schedulers:
  //   single       — shards=1, the PR-3 configuration (one global queue);
  //   sharded      — shards=threads, work stealing, no deadlines;
  //   sharded+slo  — sharded plus deadline_us + SLO flush + shedding.
  // The story BENCH_serving.json tracks: sharding cuts queue wait at equal
  // offered load, and admission control converts unbounded queueing into
  // bounded-latency goodput (shed% up, wait p95 and miss% down).
  TextTable sched_table({"scheduler", "shards", "offered", "qps", "goodput",
                         "wait p50 ms", "wait p95 ms", "shed%", "miss%",
                         "steals", "late"});
  {
    ModelRegistry registry;
    std::vector<std::string> ids;
    std::vector<std::string> model_paths;
    const int tenant_count = std::max(2, std::min(4, max_threads));
    for (int m = 0; m < tenant_count; ++m) {
      ModelConfig config;
      config.embedding = {TechniqueKind::kMemcom, vocab, embed_dim, hash};
      config.arch = ModelArch::kClassification;
      config.output_vocab = smoke ? 32 : 256;
      config.seed = 500 + m;
      RecModel model(config);
      const std::string id = "tenant" + std::to_string(m);
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("serving_sched_" + id + ".mcm"))
              .string();
      model.export_mcm(path, DType::kF32, "sched_" + id, 1);
      registry.load(id, path);
      ids.push_back(id);
      model_paths.push_back(path);
    }

    // Skewed mix: tenant0 takes half of all requests, the rest split the
    // other half — the shape that strands capacity without work stealing.
    std::vector<RoutedRequest> routed;
    routed.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::size_t tenant =
          i % 2 == 0 ? 0 : 1 + (i / 2) % (ids.size() - 1);
      routed.push_back(RoutedRequest{ids[tenant], requests[i]});
    }

    struct SchedVariant {
      const char* label;
      int shards;
      double deadline_us;
      bool shed;
    };
    const std::vector<SchedVariant> variants = {
        {"single", 1, 0.0, false},
        {"sharded", max_threads, 0.0, false},
        {"sharded+slo", max_threads, deadline_us, true},
    };
    const auto make_server_config = [&](const SchedVariant& v) {
      AsyncServerConfig server_config;
      server_config.threads = max_threads;
      server_config.shards = v.shards;
      server_config.max_batch = 8;
      server_config.max_delay_us = max_delay_us;
      server_config.deadline_us = v.deadline_us;
      server_config.shed = v.shed;
      server_config.queue_capacity = 256;
      server_config.cache_budget_bytes =
          static_cast<std::size_t>(cache_kb) * 1024;
      return server_config;
    };

    // Calibrate: an unthrottled single-queue drain measures capacity; every
    // variant is then offered 1.5x of it so the comparison is overload at
    // EQUAL offered load, not three different workloads.
    double offered = arrival_qps;
    if (offered <= 0.0) {
      AsyncServer calib(registry, ids.front(), tflite_profile(),
                        make_server_config(variants.front()));
      calib.serve(routed, 1, 0.0);  // warm-up
      const ServingReport base = calib.serve(routed, repeat, 0.0);
      offered = base.qps * 1.5;
    }

    for (const SchedVariant& v : variants) {
      AsyncServer server(registry, ids.front(), tflite_profile(),
                         make_server_config(v));
      server.serve(routed, 1, 0.0);  // warm-up
      const ServingReport report = server.serve(routed, repeat, offered);
      ResultRow row = make_row(v.label, "sched", 8, offered, report,
                               server.max_resident_megabytes());
      rows.push_back(row);
      sched_table.add_row(
          {v.label, std::to_string(report.shards), format_float(offered, 0),
           format_float(row.qps, 0), format_float(row.goodput_qps, 0),
           format_float(row.queue_wait_p50_ms, 4),
           format_float(row.queue_wait_p95_ms, 4),
           format_float(row.shed_rate * 100.0, 1),
           format_float(row.deadline_miss_rate * 100.0, 1),
           std::to_string(report.steals),
           std::to_string(row.late_arrivals)});
    }
    for (const std::string& path : model_paths) {
      std::filesystem::remove(path);
    }
  }

  // --- Quantized residency: i8 vs i4g on a movielens Table-3 model -------
  // Same memcom model exported at two embedding precisions; the closed-loop
  // drain meters exactly the bytes each forward touches, so with correct
  // sub-byte span accounting the 4-bit groupwise export must show a smaller
  // resident footprint than int8 (nibbles + per-group f32 scales ~ 0.625x).
  TextTable residency_table({"dtype", "kernel", "qps", "modeled qps",
                             "p50 ms", "resident MB"});
  {
    const Index ml_vocab = smoke ? 2000 : 10000;  // paper movielens vocab
    const Index ml_embed = smoke ? 32 : 64;
    const Index ml_hash = std::max<Index>(8, ml_vocab / 16);
    ModelConfig config;
    config.embedding = {TechniqueKind::kMemcom, ml_vocab, ml_embed, ml_hash};
    config.arch = ModelArch::kClassification;
    config.output_vocab = smoke ? 32 : 500;
    config.seed = 99;
    RecModel model(config);

    Rng ml_rng(13);
    std::vector<std::vector<std::int32_t>> ml_requests;
    ml_requests.reserve(static_cast<std::size_t>(request_count));
    for (int i = 0; i < request_count; ++i) {
      std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len), 0);
      for (Index t = 0; t < seq_len; ++t) {
        history[static_cast<std::size_t>(t)] =
            static_cast<std::int32_t>(1 + ml_rng.uniform_index(ml_vocab - 1));
      }
      ml_requests.push_back(std::move(history));
    }

    struct Variant {
      const char* label;
      DType dtype;
      Index group_size;
    };
    for (const Variant v : {Variant{"i8", DType::kI8, 0},
                            Variant{"i4g", DType::kI4G, kI4GroupDefault}}) {
      const std::string path =
          (std::filesystem::temp_directory_path() /
           ("serving_residency_" + std::string(v.label) + ".mcm"))
              .string();
      model.export_mcm(path, v.dtype, /*model_name=*/"", /*model_version=*/1,
                       v.group_size);
      const MmapModel mapped(path);
      ServingHarness harness(mapped, tflite_profile(), max_threads);
      harness.serve(ml_requests, 1);  // warm-up
      const ServingReport report = harness.serve(ml_requests, repeat);
      ResultRow row =
          make_row("memcom-movielens", "residency", 1, 0.0, report,
                   harness.max_resident_megabytes());
      row.dtype = v.label;
      rows.push_back(row);
      residency_table.add_row(
          {v.label, harness.compiled().kernel_name(),
           format_float(row.qps, 0), format_float(row.modeled_qps, 0),
           format_float(row.p50_ms, 4), format_float(row.resident_mb, 3)});
      std::filesystem::remove(path);
    }
  }

  // --- Session-based next-item serving -----------------------------------
  // Stateful traffic through submit_next_item: each event appends one item
  // to its session's bounded history ring and gets back the top-k item ids
  // ranked over the model's full output catalog (the compressed-catalog
  // scan). Zipf-skewed session popularity over a store sized BELOW the
  // distinct-session count, so the rows also track LRU eviction pressure.
  // One row per shard shape — session-affine routing means shard count may
  // shift latency but never a single returned id (test_differential pins
  // that; this section tracks the cost).
  TextTable session_table({"scheduler", "shards", "k", "nprobe", "qps",
                           "p50 ms", "p95 ms", "p99 ms", "pruned%", "active",
                           "evictions"});
  {
    ModelConfig config;
    config.embedding = {TechniqueKind::kMemcom, vocab, embed_dim, hash};
    config.arch = ModelArch::kClassification;
    config.output_vocab = smoke ? 32 : 256;
    config.seed = 808;
    RecModel model(config);
    const std::string path =
        (std::filesystem::temp_directory_path() / "serving_session.mcm")
            .string();
    // Export WITH the v4 catalog index (default ~sqrt(items) clusters) so
    // the pruned variant below rides the file-adoption path; the exact
    // variants ignore the section entirely (nprobe 0).
    model.export_mcm(path, DType::kF32, /*model_name=*/"", /*model_version=*/1,
                     /*group_size=*/0, /*emit_plan=*/false,
                     /*emit_index=*/true);
    const MmapModel mapped(path);

    const Index distinct_sessions = smoke ? 48 : 192;
    const Index session_capacity = distinct_sessions / 2;  // force eviction
    const int event_count = request_count * 4;
    Rng session_rng(29);
    const AliasSampler session_popularity(
        zipf_weights(distinct_sessions, 1.05));
    std::vector<SessionEvent> events;
    events.reserve(static_cast<std::size_t>(event_count));
    for (int i = 0; i < event_count; ++i) {
      events.push_back(
          {static_cast<std::uint64_t>(session_popularity.sample(session_rng)),
           static_cast<std::int32_t>(1 +
                                     session_rng.uniform_index(vocab - 1))});
    }
    const Index k = 10;

    // The pruned variant probes a quarter of the file-adopted index's
    // cells — the frontier knee BENCH_session_topk.json maps in detail.
    const Index catalog_clusters =
        default_catalog_clusters(config.output_vocab);
    const Index pruned_nprobe = std::max<Index>(1, catalog_clusters / 4);
    struct SessionVariant {
      const char* label;
      int shards;
      Index nprobe;
    };
    for (const SessionVariant v :
         {SessionVariant{"session/single", 1, 0},
          SessionVariant{"session/sharded", max_threads, 0},
          SessionVariant{"session/pruned", max_threads, pruned_nprobe}}) {
      AsyncServerConfig server_config;
      server_config.threads = max_threads;
      server_config.shards = v.shards;
      server_config.max_batch = 8;
      server_config.max_delay_us = max_delay_us;
      server_config.queue_capacity = 256;
      server_config.session_capacity = session_capacity;
      server_config.session_history = seq_len;
      server_config.nprobe = v.nprobe;
      AsyncServer server(mapped, tflite_profile(), server_config);
      server.serve_sessions(events, k);  // warm-up (also fills the store)
      const ServingReport report = server.serve_sessions(events, k);
      ResultRow row = make_row(v.label, "session", 8, 0.0, report,
                               server.max_resident_megabytes());
      // Session rows report the SESSION latency distribution, not the
      // all-traffic one (identical here, but explicit keeps trend tooling
      // honest if mixed traffic is ever added).
      row.p50_ms = report.session_latency.p50_ms;
      row.p95_ms = report.session_latency.p95_ms;
      row.p99_ms = report.session_latency.p99_ms;
      row.mean_ms = report.session_latency.mean_ms;
      row.top_k = k;
      row.active_sessions = report.active_sessions;
      row.session_evictions = report.session_evictions;
      row.nprobe = v.nprobe;
      row.pruned_fraction = report.pruned_fraction;
      row.scanned_bytes = report.scanned_bytes;
      rows.push_back(row);
      session_table.add_row(
          {v.label, std::to_string(report.shards), std::to_string(k),
           v.nprobe > 0 ? std::to_string(v.nprobe) : "exact",
           format_float(row.qps, 0), format_float(row.p50_ms, 4),
           format_float(row.p95_ms, 4), format_float(row.p99_ms, 4),
           format_float(row.pruned_fraction * 100.0, 1),
           std::to_string(row.active_sessions),
           std::to_string(row.session_evictions)});
    }
    std::filesystem::remove(path);
  }

  // --- Fleet cold start: plan adoption vs full compile -------------------
  // The same Table-3-scale memcom i8 model exported WITH a v3 compiled-plan
  // section, booted load -> first-inference repeatedly under both policies.
  // Adoption replaces the metadata parse + handle resolution + batchnorm
  // fold + trunk dequantization with a checksum scan and zero-copy views,
  // so its adopt phase must come in measurably below the full compile; the
  // "cold" JSON rows give CI the per-phase p50/p95 to hold that line.
  TextTable cold_table({"leg", "runs", "mmap p50", "validate p50",
                        "adopt-or-compile p50", "p95", "first-infer p50",
                        "total p50", "total p95"});
  {
    const Index ml_vocab = smoke ? 2000 : 10000;
    const Index ml_embed = smoke ? 32 : 64;
    const Index ml_hash = std::max<Index>(8, ml_vocab / 16);
    ModelConfig config;
    config.embedding = {TechniqueKind::kMemcom, ml_vocab, ml_embed, ml_hash};
    config.arch = ModelArch::kClassification;
    config.output_vocab = smoke ? 32 : 500;
    config.seed = 99;
    RecModel model(config);
    const std::string path =
        (std::filesystem::temp_directory_path() / "serving_cold.mcm")
            .string();
    model.export_mcm(path, DType::kI8, "serving_cold", 1, /*group_size=*/0,
                     /*emit_plan=*/true);

    const int cold_runs = smoke ? 5 : 30;
    const std::vector<std::int32_t>& probe = requests.front();
    struct ColdLeg {
      const char* label;
      PlanPolicy policy;
    };
    double adopt_p50 = 0.0, compile_p50 = 0.0;
    for (const ColdLeg leg :
         {ColdLeg{"plan-adopt", PlanPolicy::kAdoptIfPresent},
          ColdLeg{"full-compile", PlanPolicy::kNeverAdopt}}) {
      std::vector<double> mmap_ms, validate_ms, adopt_ms, infer_ms, total_ms;
      bool adopted = false;
      for (int i = 0; i < cold_runs; ++i) {
        const SteadyClock::time_point boot = SteadyClock::now();
        SteadyClock::time_point t = boot;
        auto mapped = std::make_shared<const MmapModel>(path);
        mmap_ms.push_back(elapsed_ms(t));
        // Standalone validation cost; the adopt leg re-validates inside
        // CompiledModel, so its adopt phase is checksum + view fixup only.
        t = SteadyClock::now();
        decode_plan(*mapped);
        validate_ms.push_back(elapsed_ms(t));
        t = SteadyClock::now();
        auto compiled =
            std::make_shared<const CompiledModel>(mapped, leg.policy);
        adopt_ms.push_back(elapsed_ms(t));
        t = SteadyClock::now();
        InferenceEngine engine(compiled, tflite_profile());
        engine.run_view(probe);
        infer_ms.push_back(elapsed_ms(t));
        total_ms.push_back(elapsed_ms(boot));
        adopted = compiled->plan_adopted();
      }
      const LatencyStats mmap_s = latency_stats_from_samples(mmap_ms);
      const LatencyStats validate_s = latency_stats_from_samples(validate_ms);
      const LatencyStats adopt_s = latency_stats_from_samples(adopt_ms);
      const LatencyStats infer_s = latency_stats_from_samples(infer_ms);
      const LatencyStats total_s = latency_stats_from_samples(total_ms);
      if (adopted) {
        adopt_p50 = adopt_s.p50_ms;
      } else {
        compile_p50 = adopt_s.p50_ms;
      }
      ResultRow row;
      row.technique = "memcom-table3";
      row.mode = "cold";
      row.dtype = "i8";
      row.threads = 1;
      row.plan_adopted = adopted;
      row.mmap_p50_ms = mmap_s.p50_ms;
      row.validate_p50_ms = validate_s.p50_ms;
      row.adopt_or_compile_p50_ms = adopt_s.p50_ms;
      row.adopt_or_compile_p95_ms = adopt_s.p95_ms;
      row.first_infer_p50_ms = infer_s.p50_ms;
      row.total_p50_ms = total_s.p50_ms;
      row.total_p95_ms = total_s.p95_ms;
      row.p50_ms = total_s.p50_ms;
      row.p95_ms = total_s.p95_ms;
      row.p99_ms = total_s.p99_ms;
      row.mean_ms = total_s.mean_ms;
      rows.push_back(row);
      cold_table.add_row(
          {leg.label, std::to_string(cold_runs),
           format_float(mmap_s.p50_ms, 4), format_float(validate_s.p50_ms, 4),
           format_float(adopt_s.p50_ms, 4), format_float(adopt_s.p95_ms, 4),
           format_float(infer_s.p50_ms, 4), format_float(total_s.p50_ms, 4),
           format_float(total_s.p95_ms, 4)});
    }
    if (adopt_p50 > 0.0 && compile_p50 > 0.0) {
      std::cout << "[cold start] plan adoption vs full compile (p50): "
                << format_float(compile_p50 / adopt_p50, 2) << "x faster\n";
    }
    std::filesystem::remove(path);
  }

  std::cout << "\nclosed-loop (batch-1, no cache):\n"
            << closed_table.to_string();
  std::cout << "\nasync micro-batching (open-loop, hot-row cache "
            << cache_kb << " KiB/engine):\n"
            << async_table.to_string();
  std::cout << "\nmulti-tenant (2 models, interleaved, batch<=8, "
            << max_threads << " threads):\n"
            << multi_table.to_string();
  std::cout << "\nscheduler shoot-out (skewed tenants, equal offered "
            << "overload, deadline " << deadline_us << " us):\n"
            << sched_table.to_string();
  std::cout << "\nquantized residency (memcom, movielens table-3 dims, "
            << "closed-loop batch-1):\n"
            << residency_table.to_string();
  std::cout << "\nsession-based next-item serving (Zipf sessions, top-"
            << 10 << " over the full catalog, store below session count):\n"
            << session_table.to_string();
  std::cout << "\nfleet cold start (memcom table-3 dims, i8, v3 plan "
            << "section, load -> first-inference):\n"
            << cold_table.to_string();
  write_json(json_path, hw_threads, rows);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
