// Fixed-budget cache of dequantized embedding rows over the mmap'd table.
//
// The embedding gather dominates the lookup path (MEmCom §5.3), and serving
// traffic is Zipf-skewed: a small set of hot entities accounts for most row
// reads. The cache keeps those rows dequantized in a preallocated slab so a
// hit skips both the page touch and the dequantize work.
//
// Design constraints, in order:
//   * bit-identical logits — a cached row must hold exactly the floats
//     dequantize_span would produce, so hit vs miss can never change a
//     result (tests/test_differential.cpp enforces this across techniques);
//   * zero steady-state allocation — everything (keys + payload slab) is
//     sized once at construction, preserving the engine's fast-path
//     guarantee (tests/test_fastpath.cpp);
//   * technique-aware — each embedding tensor of the compiled plan gets its
//     own partition (its rows have a technique-specific width, and partition
//     isolation guarantees that the ≤1 row per table an embed step holds is
//     never evicted by a concurrent fill to another table). The one-hot
//     Weinberger path streams the whole table and bypasses the cache
//     entirely (InferenceEngine::enable_row_cache refuses to attach one).
//
// Replacement is direct-mapped: slot = mix(row) % partition slots, a miss
// overwrites whatever lived there. Deterministic, allocation-free, and a
// reasonable stand-in for the clock/LRU an on-device runtime would use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace memcom {

// Aggregate counters, embedded in ServingReport and surfaced per run via
// InferenceView/BatchResult deltas — MemoryMeter-style accounting for the
// cache's resident footprint.
struct RowCacheStats {
  bool enabled = false;  // false: no cache attached (or one-hot bypass)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t resident_bytes = 0;  // filled slots (keys + payload)
  std::size_t capacity_bytes = 0;  // the configured budget's slot total
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class HotRowCache {
 public:
  // One partition per embedding tensor of the execution plan;
  // `table_row_elems[t]` is the float width of table t's rows. The byte
  // budget is split evenly across partitions. A table whose single-slot
  // cost exceeds its share gets ZERO slots and is bypassed — total slot
  // capacity NEVER exceeds budget_bytes (the fixed-budget contract;
  // tests/test_hot_row_cache.cpp asserts it).
  HotRowCache(std::size_t budget_bytes, std::vector<Index> table_row_elems);

  // Returns the cached row on a hit, nullptr on a miss (counted either
  // way). On a miss the caller dequantizes into fill() for the same key.
  // Bypassed (zero-slot) tables return nullptr without counting a miss.
  const float* lookup(std::size_t table, Index row);

  // Claims the slot for (table, row) and returns its payload pointer; the
  // caller writes exactly row_elems(table) floats. Overwrites (evicts) any
  // previous occupant of the slot. Returns nullptr for a bypassed table —
  // the caller must serve the read directly from the mapping.
  float* fill(std::size_t table, Index row);

  Index row_elems(std::size_t table) const {
    return partitions_[table].row_elems;
  }
  std::size_t table_count() const { return partitions_.size(); }
  std::size_t slot_count() const;

  // Drops every entry and resets the counters: the next pass runs cold.
  void clear();

  RowCacheStats stats() const;

 private:
  struct Partition {
    Index row_elems = 0;
    std::size_t slots = 0;
    // key = row + 1 so 0 means "empty" (row ids start at 0).
    std::vector<std::uint64_t> keys;
    std::vector<float> payload;
    std::size_t filled = 0;
  };

  static std::size_t slot_index(const Partition& p, Index row);

  std::vector<Partition> partitions_;
  std::size_t capacity_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace memcom
