// Fully connected layer: y = x W + b.
#pragma once

#include "nn/layer.h"

namespace memcom {

class Dense : public Layer {
 public:
  // Glorot-uniform weights, zero bias.
  Dense(Index in_features, Index out_features, Rng& rng,
        std::string layer_name = "dense");

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }

  Index in_features() const { return weight_.value.dim(0); }
  Index out_features() const { return weight_.value.dim(1); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::string name_;
  Param weight_;  // [in, out]
  Param bias_;    // [out]
  Tensor cached_input_;
};

}  // namespace memcom
