// 1-D batch normalization over the feature axis of a [batch, features]
// activation, with learned scale/shift and running statistics for inference.
#pragma once

#include "nn/layer.h"

namespace memcom {

class BatchNorm1d : public Layer {
 public:
  explicit BatchNorm1d(Index features, double momentum = 0.9,
                       double epsilon = 1e-5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "batchnorm1d"; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  Index features() const { return gamma_.value.dim(0); }

 private:
  double momentum_;
  double epsilon_;
  Param gamma_;  // scale, initialized to 1
  Param beta_;   // shift, initialized to 0
  Tensor running_mean_;
  Tensor running_var_;

  // Caches from the last training forward, used by backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [features]
  bool last_training_ = false;
};

}  // namespace memcom
