#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace memcom {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const Index n = static_cast<Index>(weights.size());
  check(n > 0, "AliasSampler: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    check(w >= 0.0, "AliasSampler: negative weight");
    total += w;
  }
  check(total > 0.0, "AliasSampler: zero total weight");

  norm_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    norm_[i] = weights[i] / total;
  }

  prob_.assign(weights.size(), 0.0);
  alias_.assign(weights.size(), 0);

  // Scaled probabilities; buckets with p*n < 1 are "small".
  std::vector<double> scaled(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    scaled[i] = norm_[i] * static_cast<double>(n);
  }
  std::vector<Index> small;
  std::vector<Index> large;
  for (Index i = 0; i < n; ++i) {
    if (scaled[static_cast<std::size_t>(i)] < 1.0) {
      small.push_back(i);
    } else {
      large.push_back(i);
    }
  }
  while (!small.empty() && !large.empty()) {
    const Index s = small.back();
    small.pop_back();
    const Index g = large.back();
    large.pop_back();
    prob_[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias_[static_cast<std::size_t>(s)] = g;
    scaled[static_cast<std::size_t>(g)] =
        scaled[static_cast<std::size_t>(g)] +
        scaled[static_cast<std::size_t>(s)] - 1.0;
    if (scaled[static_cast<std::size_t>(g)] < 1.0) {
      small.push_back(g);
    } else {
      large.push_back(g);
    }
  }
  for (const Index g : large) {
    prob_[static_cast<std::size_t>(g)] = 1.0;
    alias_[static_cast<std::size_t>(g)] = g;
  }
  for (const Index s : small) {
    prob_[static_cast<std::size_t>(s)] = 1.0;  // numerical leftovers
    alias_[static_cast<std::size_t>(s)] = s;
  }
}

Index AliasSampler::sample(Rng& rng) const {
  const Index bucket = rng.uniform_index(size());
  const double u = rng.next_double();
  if (u < prob_[static_cast<std::size_t>(bucket)]) {
    return bucket;
  }
  return alias_[static_cast<std::size_t>(bucket)];
}

double AliasSampler::probability(Index i) const {
  check(i >= 0 && i < size(), "AliasSampler::probability: out of range");
  return norm_[static_cast<std::size_t>(i)];
}

std::vector<double> zipf_weights(Index n, double alpha) {
  check(n > 0, "zipf_weights: n must be positive");
  std::vector<double> w(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return w;
}

std::vector<Index> gumbel_top_k(const std::vector<float>& scores, Index k,
                                Rng& rng) {
  const Index n = static_cast<Index>(scores.size());
  check(k >= 0 && k <= n, "gumbel_top_k: k out of range");
  std::vector<std::pair<float, Index>> keyed(scores.size());
  for (Index i = 0; i < n; ++i) {
    double u = rng.next_double();
    if (u < 1e-300) {
      u = 1e-300;
    }
    const float gumbel = static_cast<float>(-std::log(-std::log(u)));
    keyed[static_cast<std::size_t>(i)] = {
        scores[static_cast<std::size_t>(i)] + gumbel, i};
  }
  // Deterministic tie-break: higher key first, LOWER INDEX wins on equal
  // keys (including -0.0 == 0.0). This is the same ordering contract as
  // topk_select in ondevice/topk.h — partial_sort alone is tie-unstable,
  // which made repeated runs with colliding keys emit different id orders.
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<Index> out(static_cast<std::size_t>(k));
  for (Index i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)] = keyed[static_cast<std::size_t>(i)].second;
  }
  return out;
}

}  // namespace memcom
