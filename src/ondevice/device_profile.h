// Device/framework profiles for the Table 3 simulation.
//
// We obviously cannot run CoreML on an iPhone 12 Pro or TF-Lite on a Pixel
// 2 from this repository, so each profile captures the *mechanisms* the
// paper attributes the Table 3 differences to, as calibration knobs:
//
//   * page size + readahead of the mmap'd weight file (CoreML maps 16 KiB
//     pages on Apple Silicon; TF-Lite/Linux uses 4 KiB and is "tuned for
//     lower memory footprint than for faster inference time", §5.3);
//   * a fixed per-operator dispatch overhead (higher when a GPU/ANE hop is
//     possible, mirroring the cpuAndGPU > cpuOnly times in Table 3);
//   * a slowdown multiplier for the un-fused one-hot + reduce_sum path that
//     makes Weinberger hashing pathological on TF-Lite's CPU interpreter.
//
// Absolute milliseconds are NOT expected to match the paper's phones; the
// MEmCom-vs-Weinberger ratios and orderings are.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace memcom {

struct DeviceProfile {
  std::string framework;     // "coreml" or "tflite"
  std::string compute_unit;  // "all", "cpuOnly", "cpuAndGPU", "CPU"
  Index page_size = 4096;
  Index readahead_pages = 0;
  // Framework baseline RSS outside of weights/activations (runtime, op
  // graph, ...). Table 3's floor for tiny models.
  Index runtime_overhead_bytes = 0;
  double per_op_dispatch_us = 0.0;
  // Extra multiplier applied to the one-hot (Weinberger) embedding stage.
  double onehot_slowdown = 1.0;

  std::string label() const { return framework + "/" + compute_unit; }
};

// The four device columns of Table 3: CoreML {all, cpuOnly, cpuAndGPU} on
// the iPhone-12-Pro stand-in and TF-Lite {CPU} on the Pixel-2 stand-in.
std::vector<DeviceProfile> table3_profiles();

DeviceProfile coreml_profile(const std::string& compute_unit = "all");
DeviceProfile tflite_profile();

}  // namespace memcom
