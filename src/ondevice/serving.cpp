#include "ondevice/serving.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
using Clock = SteadyClock;
}  // namespace

ServingHarness::ServingHarness(const MmapModel& model,
                               const DeviceProfile& profile, int threads,
                               std::size_t cache_budget_bytes)
    : ServingHarness(std::make_shared<const CompiledModel>(model), profile,
                     threads, cache_budget_bytes) {}

ServingHarness::ServingHarness(std::shared_ptr<const CompiledModel> compiled,
                               const DeviceProfile& profile, int threads,
                               std::size_t cache_budget_bytes)
    : compiled_(std::move(compiled)) {
  check(compiled_ != nullptr, "serving: null compiled model");
  // A non-positive pool would leave serve() with no one to drain the cursor
  // (and historically made output_dim() dereference an empty engine list).
  check(threads > 0, "serving: thread count must be positive");
  engines_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    // Every worker shares the ONE plan; only per-thread state is built here.
    engines_.push_back(std::make_unique<InferenceEngine>(compiled_, profile));
    if (cache_budget_bytes > 0) {
      engines_.back()->enable_row_cache(cache_budget_bytes);
    }
  }
}

namespace {
RowCacheStats aggregate_engine_cache_stats(
    const std::vector<std::unique_ptr<InferenceEngine>>& engines) {
  RowCacheStats total;
  for (const auto& engine : engines) {
    const RowCacheStats s = engine->row_cache_stats();
    if (!s.enabled) {
      continue;
    }
    total.enabled = true;
    total.hits += s.hits;
    total.misses += s.misses;
    // Each worker owns a private slab, so the fleet pays the sum (unlike
    // the shared weight pages, where the footprint is the max).
    total.resident_bytes += s.resident_bytes;
    total.capacity_bytes += s.capacity_bytes;
  }
  return total;
}

// A drain's report must cover THAT drain: hit/miss counters are lifetime
// totals per engine, so subtract the pre-drain snapshot (resident/capacity
// stay absolute — they describe the slab, not the traffic).
RowCacheStats cache_stats_delta(const RowCacheStats& before,
                                const RowCacheStats& after) {
  RowCacheStats delta = after;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  return delta;
}
}  // namespace

ServingReport ServingHarness::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    Tensor* logits_out) {
  check(repeat > 0, "serving: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  const Index dim = output_dim();
  if (logits_out != nullptr) {
    *logits_out = Tensor({static_cast<Index>(unique), dim});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  report.plan_adopted = compiled_->plan_adopted();
  report.plan_compile_ms = compiled_->compile_ms();
  report.plan_fallback_reason = compiled_->plan_fallback_reason();
  if (total == 0) {
    return report;
  }
  const RowCacheStats cache_before = aggregate_engine_cache_stats(engines_);

  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::vector<double>> samples(engines_.size());
  std::vector<double> modeled(engines_.size(), 0.0);
  // Reserve ~2× the fair share per worker: enough headroom for work-stealing
  // imbalance without pre-allocating threads×total samples on large drains.
  // A rare mid-drain realloc happens between timing windows, so it can only
  // nudge aggregate wall_ms/QPS, never an individual latency sample.
  const std::uint64_t per_worker = std::min(
      total, total / static_cast<std::uint64_t>(engines_.size()) * 2 + 64);
  for (auto& s : samples) {
    s.reserve(static_cast<std::size_t>(per_worker));
  }

  const auto run_worker = [&](std::size_t worker) {
    InferenceEngine& engine = *engines_[worker];
    std::vector<double>& lat = samples[worker];
    double busy_ms = 0.0;
    for (;;) {
      const std::uint64_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) {
        break;
      }
      const std::size_t r = static_cast<std::size_t>(i % unique);
      const auto& history = requests[r];
      const auto start = Clock::now();
      const InferenceView view = engine.run_view(history);
      lat.push_back(elapsed_ms(start));
      busy_ms += view.total_ms;
      // Only the first repetition writes logits, so rows are written by
      // exactly one worker (repeat passes would produce identical bytes).
      if (logits_out != nullptr && i < unique) {
        std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), view.logits,
                    static_cast<std::size_t>(dim) * sizeof(float));
      }
    }
    modeled[worker] = busy_ms;
  };

  const auto wall_start = Clock::now();
  if (engines_.size() == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(engines_.size());
    for (std::size_t w = 0; w < engines_.size(); ++w) {
      workers.emplace_back(run_worker, w);
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  report.wall_ms = elapsed_ms(wall_start);

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (const auto& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  report.latency = latency_stats_from_samples(std::move(all));
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  report.modeled_busy_ms =
      *std::max_element(modeled.begin(), modeled.end());
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  report.cache =
      cache_stats_delta(cache_before, aggregate_engine_cache_stats(engines_));
  return report;
}

double ServingHarness::max_resident_megabytes() const {
  double max_mb = 0.0;
  for (const auto& engine : engines_) {
    max_mb = std::max(max_mb, engine->resident_megabytes());
  }
  // The plan's pre-dequantized buffers are resident exactly once for the
  // whole fleet (compile-once sharing); the per-engine figure above covers
  // only per-thread state.
  return max_mb +
         static_cast<double>(plan_resident_bytes()) / (1024.0 * 1024.0);
}

// ---------------------------------------------------------------------------
// AsyncServer

AsyncServer::AsyncServer(const MmapModel& model, const DeviceProfile& profile,
                         AsyncServerConfig config)
    : config_(config),
      profile_(profile),
      owned_registry_(std::make_unique<ModelRegistry>()),
      registry_(owned_registry_.get()),
      default_model_(kDefaultModelId) {
  // The caller owns the mapping (it must outlive the server, as before);
  // the private registry only owns the compiled plan.
  owned_registry_->publish(default_model_,
                           std::make_shared<const CompiledModel>(model));
  start();
}

AsyncServer::AsyncServer(ModelRegistry& registry,
                         std::string default_model_id,
                         const DeviceProfile& profile,
                         AsyncServerConfig config)
    : config_(config),
      profile_(profile),
      registry_(&registry),
      default_model_(std::move(default_model_id)) {
  start();
}

// Shared tail of both constructors: validate the configuration and the
// default model, build the shards, then bring the pipeline threads up.
// Checks run BEFORE any thread spawns, so a failed construction never leaks
// a running thread.
void AsyncServer::start() {
  check(config_.threads > 0, "AsyncServer: thread count must be positive");
  check(config_.shards > 0, "AsyncServer: shard count must be positive");
  check(config_.shards <= config_.threads,
        "AsyncServer: shards must not exceed threads (every shard needs a "
        "primary worker)");
  check(config_.max_batch > 0, "AsyncServer: max_batch must be positive");
  check(config_.max_delay_us >= 0.0,
        "AsyncServer: max_delay_us must be non-negative");
  check(config_.deadline_us >= 0.0,
        "AsyncServer: deadline_us must be non-negative");
  check(config_.queue_capacity >= static_cast<std::size_t>(config_.shards),
        "AsyncServer: queue_capacity must be at least the shard count");
  check(config_.session_capacity >= 0,
        "AsyncServer: session_capacity must be non-negative");
  check(config_.session_capacity == 0 ||
            config_.session_capacity >= static_cast<Index>(config_.shards),
        "AsyncServer: session_capacity must be at least the shard count");
  check(config_.session_history > 0,
        "AsyncServer: session_history must be positive");
  check(config_.nprobe >= 0, "AsyncServer: nprobe must be non-negative");
  check(registry_->has_model(default_model_),
        "AsyncServer: default model not in registry: " + default_model_);

  const std::size_t shards = static_cast<std::size_t>(config_.shards);
  // queue_capacity is the TOTAL admission bound: split it across shards,
  // first `remainder` shards take one extra slot. Each dispatch queue keeps
  // the shard's share of the worker pool fed plus a small runway — bounding
  // it propagates worker backpressure to admission (and on to producers).
  const std::size_t per_shard = config_.queue_capacity / shards;
  const std::size_t remainder = config_.queue_capacity % shards;
  const std::size_t dispatch_cap = std::max<std::size_t>(
      2, static_cast<std::size_t>(config_.threads) * 2 / shards);
  shards_.reserve(shards);
  // session_capacity is TOTAL too, split the same way (first shards take
  // the remainder). Stores are built up front so the session path never
  // allocates after start().
  const std::size_t sess_per_shard =
      static_cast<std::size_t>(config_.session_capacity) / shards;
  const std::size_t sess_remainder =
      static_cast<std::size_t>(config_.session_capacity) % shards;
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        per_shard + (s < remainder ? 1 : 0), dispatch_cap));
    if (config_.session_capacity > 0) {
      shards_.back()->sessions = std::make_unique<SessionStore>(
          static_cast<Index>(sess_per_shard + (s < sess_remainder ? 1 : 0)),
          config_.session_history);
    }
  }

  worker_stats_.resize(static_cast<std::size_t>(config_.threads));
  for (std::size_t s = 0; s < shards; ++s) {
    shards_[s]->former = std::thread(&AsyncServer::former_loop, this, s);
  }
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int w = 0; w < config_.threads; ++w) {
    workers_.emplace_back(&AsyncServer::worker_loop, this,
                          static_cast<std::size_t>(w));
  }
}

AsyncServer::~AsyncServer() {
  // Close every admission queue: pops drain what was accepted, then each
  // former flushes its pending batches and closes its dispatch queue, and
  // the workers exit once every dispatch queue is drained.
  for (auto& shard : shards_) {
    shard->queue.close();
  }
  for (auto& shard : shards_) {
    if (shard->former.joinable()) {
      shard->former.join();
    }
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

std::size_t AsyncServer::shard_for(const std::string& model_id) const {
  if (shards_.size() == 1) {
    return 0;
  }
  // splitmix64 finisher over the string hash: std::hash on short strings
  // can be weak in the low bits, and the low bits are all modulo sees.
  std::uint64_t h = static_cast<std::uint64_t>(
      std::hash<std::string>{}(model_id));
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % shards_.size());
}

std::size_t AsyncServer::shard_for_session(std::uint64_t session_id) const {
  if (shards_.size() == 1) {
    return 0;
  }
  // Same splitmix64 finisher as shard_for: sequential session ids must not
  // pile onto one shard.
  std::uint64_t h = session_id;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h % shards_.size());
}

Index AsyncServer::output_dim() const {
  const auto compiled = registry_->acquire(default_model_);
  check(compiled != nullptr,
        "AsyncServer: default model retired: " + default_model_);
  return compiled->output_dim();
}

AsyncServer::QueuedRequest AsyncServer::make_request(
    std::string model_id, std::vector<std::int32_t> history,
    double deadline_us) const {
  QueuedRequest request;
  request.model_id = std::move(model_id);
  request.history = std::move(history);
  request.enqueue_tp = Clock::now();
  const double effective =
      deadline_us < 0.0 ? config_.deadline_us : deadline_us;
  request.deadline_tp =
      effective > 0.0
          ? request.enqueue_tp +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::micro>(effective))
          : Clock::time_point::max();
  return request;
}

bool AsyncServer::should_shed(const Shard& shard,
                              Clock::time_point enqueue_tp,
                              Clock::time_point deadline_tp) const {
  if (!config_.shed || deadline_tp == Clock::time_point::max()) {
    return false;
  }
  // Estimate alone is not enough: after a burst drains, the peak-decay
  // estimator can stay above the deadline with an empty queue. Demand a
  // real backlog (at least one full micro-batch queued) so admission
  // always recovers once the shard catches up.
  if (shard.queue.size() < static_cast<std::size_t>(config_.max_batch)) {
    return false;
  }
  const auto slack_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            deadline_tp - enqueue_tp)
                            .count();
  return shard.wait_p99_est_us.load(std::memory_order_relaxed) > slack_us;
}

// Fail fast with the distinct shed status: the promise resolves NOW, on the
// submitting thread — the request never occupies a queue slot.
std::future<AsyncResult> AsyncServer::resolve_shed(QueuedRequest request,
                                                   Shard& shard) {
  shard.shed.fetch_add(1, std::memory_order_relaxed);
  std::future<AsyncResult> future = request.promise.get_future();
  AsyncResult result;
  result.status = RequestStatus::kShed;
  result.model_id = std::move(request.model_id);
  request.promise.set_value(std::move(result));
  completed_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<AsyncResult> AsyncServer::submit(
    std::vector<std::int32_t> history) {
  return submit(default_model_, std::move(history));
}

std::future<AsyncResult> AsyncServer::submit(
    std::string model_id, std::vector<std::int32_t> history,
    double deadline_us) {
  check(registry_->has_model(model_id),
        "AsyncServer: submit to unknown model " + model_id);
  Shard& shard = *shards_[shard_for(model_id)];
  QueuedRequest request = make_request(std::move(model_id),
                                       std::move(history), deadline_us);
  if (should_shed(shard, request.enqueue_tp, request.deadline_tp)) {
    return resolve_shed(std::move(request), shard);
  }
  std::future<AsyncResult> future = request.promise.get_future();
  check(shard.queue.push(std::move(request)),
        "AsyncServer: submit after shutdown");
  return future;
}

std::future<AsyncResult> AsyncServer::submit_next_item(std::string model_id,
                                                       std::uint64_t session_id,
                                                       std::int32_t new_item,
                                                       Index k,
                                                       double deadline_us,
                                                       Index nprobe) {
  check(config_.session_capacity > 0,
        "AsyncServer: submit_next_item needs session_capacity > 0");
  check(k >= 0, "AsyncServer: negative top-k");
  check(registry_->has_model(model_id),
        "AsyncServer: submit to unknown model " + model_id);
  // SESSION-affine routing: the shard owning this session's history ring,
  // not the model's home shard. Admission FIFO + single former thread per
  // shard give the ordered-updates guarantee.
  Shard& shard = *shards_[shard_for_session(session_id)];
  QueuedRequest request = make_request(std::move(model_id), {}, deadline_us);
  request.is_session = true;
  request.session_id = session_id;
  request.new_item = new_item;
  request.top_k = k;
  request.nprobe = nprobe < 0 ? config_.nprobe : nprobe;
  if (should_shed(shard, request.enqueue_tp, request.deadline_tp)) {
    // Shed BEFORE the append: a rejected interaction must not mutate the
    // session (the caller is expected to retry it).
    return resolve_shed(std::move(request), shard);
  }
  std::future<AsyncResult> future = request.promise.get_future();
  check(shard.queue.push(std::move(request)),
        "AsyncServer: submit after shutdown");
  return future;
}

bool AsyncServer::try_submit(std::vector<std::int32_t> history,
                             std::future<AsyncResult>* out) {
  return try_submit(default_model_, std::move(history), out);
}

bool AsyncServer::try_submit(std::string model_id,
                             std::vector<std::int32_t> history,
                             std::future<AsyncResult>* out,
                             double deadline_us) {
  if (!registry_->has_model(model_id)) {
    return false;
  }
  Shard& shard = *shards_[shard_for(model_id)];
  QueuedRequest request = make_request(std::move(model_id),
                                       std::move(history), deadline_us);
  if (should_shed(shard, request.enqueue_tp, request.deadline_tp)) {
    shard.shed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::future<AsyncResult> future = request.promise.get_future();
  if (!shard.queue.try_push(std::move(request))) {
    return false;
  }
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

// Per-shard batch former (the sharded replacement for the PR-3 single
// scheduler thread). Forms one open micro-batch per model id; the batch
// pins its model version at formation so a concurrent swap() never
// retargets in-flight work. A batch flushes when the FIRST of these fires:
//   * it reaches max_batch requests;
//   * it has been open for max_delay_us (the classic upper bound);
//   * SLO-driven: the oldest member's remaining deadline slack drops below
//     the shard's projected batch service time — waiting any longer would
//     convert an on-time request into a deadline miss for the sake of
//     batching.
void AsyncServer::former_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const auto delay = std::chrono::microseconds(
      static_cast<std::int64_t>(config_.max_delay_us));
  struct Pending {
    std::vector<QueuedRequest> requests;
    Clock::time_point delay_deadline;    // formation time + max_delay_us
    Clock::time_point oldest_deadline;   // min request deadline (or ::max)
    std::shared_ptr<const CompiledModel> compiled;
    std::uint64_t version = 0;
  };
  std::unordered_map<std::string, Pending> pending;

  const auto flush = [&](const std::string& model_id, Pending& p) {
    BatchTask task;
    task.model_id = model_id;
    task.compiled = std::move(p.compiled);
    task.version = p.version;
    task.shard = shard_index;
    task.requests = std::move(p.requests);
    shard.dispatch.push(std::move(task));  // only fails after close
  };

  // The moment this batch must flush to still have a chance of meeting its
  // oldest member's deadline (given the current service-time projection),
  // capped by the max_delay_us budget.
  const auto flush_tp = [&](const Pending& p) {
    auto tp = p.delay_deadline;
    if (p.oldest_deadline != Clock::time_point::max()) {
      const auto projected = std::chrono::microseconds(
          shard.service_est_us.load(std::memory_order_relaxed));
      tp = std::min(tp, p.oldest_deadline - projected);
    }
    return tp;
  };

  bool open = true;
  while (open || !pending.empty()) {
    QueuedRequest next;
    bool got = false;
    if (pending.empty()) {
      got = shard.queue.pop(next);
      if (!got) {
        open = false;  // closed and drained
      }
    } else {
      auto wake = Clock::time_point::max();
      for (const auto& [id, p] : pending) {
        wake = std::min(wake, flush_tp(p));
      }
      bool timed_out = false;
      got = shard.queue.pop_wait_until(next, wake, &timed_out);
      if (!got && !timed_out) {
        open = false;  // closed and drained: flush whatever is pending
      }
    }
    if (got) {
      if (next.is_session) {
        // The append happens HERE, on the shard's single former thread:
        // session-affine routing delivered every update of this session to
        // this queue in submission order, so the store needs no lock and
        // the history snapshot each request rides with is well-defined.
        shard.sessions->append_and_snapshot(next.session_id, next.new_item,
                                            next.history);
      }
      Pending& p = pending[next.model_id];
      if (p.requests.empty()) {
        p.delay_deadline = Clock::now() + delay;
        p.oldest_deadline = next.deadline_tp;
        // Version pinned HERE: later requests joining this batch ride the
        // same plan even if a swap lands mid-formation. One atomic snapshot:
        // plan and version label must come from the same registry state.
        p.compiled = registry_->acquire(next.model_id, &p.version);
        p.requests.reserve(static_cast<std::size_t>(config_.max_batch));
      } else {
        p.oldest_deadline = std::min(p.oldest_deadline, next.deadline_tp);
      }
      const std::string model_id = next.model_id;
      p.requests.push_back(std::move(next));
      if (p.requests.size() >= static_cast<std::size_t>(config_.max_batch)) {
        flush(model_id, p);
        pending.erase(model_id);
      }
    }
    // Flush every batch whose budget is spent — delay or deadline slack —
    // and all of them on shutdown drain.
    const auto now = Clock::now();
    for (auto it = pending.begin(); it != pending.end();) {
      if (!open || now >= flush_tp(it->second)) {
        flush(it->first, it->second);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  shard.dispatch.close();
}

void AsyncServer::worker_loop(std::size_t worker) {
  WorkerState state;
  const std::size_t nshards = shards_.size();
  const std::size_t primary = worker % nshards;
  BatchTask task;
  for (;;) {
    bool got = false;
    bool stolen = false;
    // Fast path: the primary shard's dispatch queue; otherwise scan the
    // other shards for a formed batch to steal (never parking on them).
    if (shards_[primary]->dispatch.try_pop(task)) {
      got = true;
    } else {
      for (std::size_t k = 1; k < nshards && !got; ++k) {
        const std::size_t s = (primary + k) % nshards;
        if (shards_[s]->dispatch.try_pop(task)) {
          got = true;
          stolen = true;
        }
      }
    }
    if (!got) {
      // Nothing anywhere: park briefly on an OPEN shard, preferring the
      // primary. The timeout bounds how stale a steal scan can get.
      std::size_t park = primary;
      if (shards_[park]->dispatch.closed()) {
        park = nshards;  // sentinel: primary closed, find any open shard
        for (std::size_t s = 0; s < nshards; ++s) {
          if (!shards_[s]->dispatch.closed()) {
            park = s;
            break;
          }
        }
      }
      if (park == nshards) {
        // Every dispatch queue is closed — no former will push again, so
        // one more scan observes every remaining batch. Drain it, then
        // exit.
        for (std::size_t s = 0; s < nshards && !got; ++s) {
          if (shards_[s]->dispatch.try_pop(task)) {
            got = true;
            stolen = s != primary;
          }
        }
        if (!got) {
          break;
        }
      } else {
        bool timed_out = false;
        got = shards_[park]->dispatch.pop_wait_until(
            task, Clock::now() + std::chrono::milliseconds(1), &timed_out);
        stolen = got && park != primary;
        if (!got) {
          continue;
        }
      }
    }
    if (stolen) {
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    execute_batch(worker, task, state);
    // Drop the plan reference (and the request buffers) NOW rather than at
    // the next pop: a hot-swapped old version must drain as soon as its
    // last batch completes, not when the worker happens to pick up new
    // work.
    task = BatchTask{};
  }
}

void AsyncServer::execute_batch(std::size_t worker, BatchTask& task,
                                WorkerState& state) {
  // One context per model id, owned by the CALLING thread (never shared):
  // the scratch arena, meter, and row cache are private, and bind()
  // re-targets a lane to a freshly swapped version (cache rebuilt cold).
  auto& contexts = state.contexts;
  auto& histories = state.histories;
  {
    if (task.compiled == nullptr) {
      // The model was retired between admission and batch formation; the
      // futures must still resolve — with the failure, not a hang.
      for (QueuedRequest& r : task.requests) {
        r.promise.set_exception(std::make_exception_ptr(std::runtime_error(
            "AsyncServer: model retired before execution: " +
            task.model_id)));
      }
      completed_.fetch_add(task.requests.size(),
                           std::memory_order_relaxed);
      return;
    }
    std::unique_ptr<ExecutionContext>& slot = contexts[task.model_id];
    if (slot == nullptr) {
      slot = std::make_unique<ExecutionContext>(task.compiled, profile_);
      if (config_.cache_budget_bytes > 0) {
        slot->enable_row_cache(config_.cache_budget_bytes);
      }
    } else {
      slot->bind(task.compiled);  // no-op unless the version changed
    }
    ExecutionContext& context = *slot;

    const auto service_start = Clock::now();
    histories.clear();
    histories.reserve(task.requests.size());
    Index top_k = 0;
    bool any_pruned = false;
    for (QueuedRequest& r : task.requests) {
      // The history is not read again after execution (only the promise
      // and timestamps are), so hand the buffer over instead of copying.
      histories.push_back(std::move(r.history));
      top_k = std::max(top_k, r.top_k);
      any_pruned = any_pruned || (r.nprobe > 0 && r.top_k > 0);
    }
    // A micro-batch may mix plain and session requests (same model id):
    // rank every row at the largest k and truncate per request below (safe
    // on the pruned path too — nprobe is per ROW, so ranking row b at a
    // larger k scans the same probed clusters and yields a superset).
    std::vector<std::vector<ScoredId>> ranked;
    std::vector<Index> nprobes;
    if (any_pruned) {
      nprobes.reserve(task.requests.size());
      for (const QueuedRequest& r : task.requests) {
        nprobes.push_back(r.top_k > 0 ? r.nprobe : 0);
      }
    }
    BatchResult batch =
        context.run_batch(histories, top_k, top_k > 0 ? &ranked : nullptr,
                          any_pruned ? &nprobes : nullptr);
    const auto service_end = Clock::now();
    // Derive service_ms from the SAME end timestamp the per-request totals
    // use: a second Clock::now() here could land after a preemption and
    // report service_ms > total_ms for every request in the batch.
    const double service_ms =
        std::chrono::duration<double, std::milli>(service_end - service_start)
            .count();

    // Feed the origin shard's online estimators. Both are racy-lossy
    // read-modify-writes on relaxed atomics by design: they steer flush
    // timing and admission, never correctness.
    {
      Shard& origin = *shards_[task.shard];
      const std::int64_t service_us =
          static_cast<std::int64_t>(service_ms * 1000.0);
      const std::int64_t old_service =
          origin.service_est_us.load(std::memory_order_relaxed);
      // EWMA (alpha 1/4): responsive to load shifts, stable across the
      // batch-size mix.
      origin.service_est_us.store(
          old_service == 0 ? service_us
                           : old_service + (service_us - old_service) / 4,
          std::memory_order_relaxed);
      std::int64_t wait_est =
          origin.wait_p99_est_us.load(std::memory_order_relaxed);
      for (const QueuedRequest& r : task.requests) {
        const std::int64_t wait_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                service_start - r.enqueue_tp)
                .count();
        // Peak-decay high-quantile estimate: jump to any new maximum,
        // decay 1/8 toward smaller samples.
        wait_est = wait_us >= wait_est ? wait_us
                                       : wait_est + (wait_us - wait_est) / 8;
      }
      origin.wait_p99_est_us.store(wait_est, std::memory_order_relaxed);
    }

    // Record stats BEFORE resolving the promises: anyone who has observed
    // every future of a drain is guaranteed to see its samples.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      WorkerStats& stats = worker_stats_[worker];
      stats.modeled_busy_ms += batch.total_ms;
      ++stats.batches;
      stats.ranked_rows += batch.ranked_rows;
      stats.catalog_rows += batch.catalog_rows;
      stats.scanned_rows += batch.scanned_rows;
      stats.scanned_bytes += batch.scanned_bytes;
      ModelLane& lane = stats.models[task.model_id];
      lane.version = task.version;
      ++lane.batches;
      lane.modeled_busy_ms += batch.total_ms;
      lane.cache_hits += batch.cache_hits;
      lane.cache_misses += batch.cache_misses;
      const RowCacheStats cache = context.row_cache_stats();
      lane.cache_enabled = cache.enabled;
      lane.cache_resident_bytes = cache.resident_bytes;
      lane.cache_capacity_bytes = cache.capacity_bytes;
      lane.resident_mb = context.resident_megabytes();
      lane.plan_bytes = task.compiled->plan_resident_bytes();
      for (const QueuedRequest& r : task.requests) {
        const double wait_ms =
            std::chrono::duration<double, std::milli>(service_start -
                                                      r.enqueue_tp)
                .count();
        const double total_ms =
            std::chrono::duration<double, std::milli>(service_end -
                                                      r.enqueue_tp)
                .count();
        stats.queue_wait_ms.push_back(wait_ms);
        stats.service_ms.push_back(service_ms);
        stats.total_ms.push_back(total_ms);
        ++stats.requests;
        if (r.is_session) {
          ++stats.session_requests;
          stats.session_total_ms.push_back(total_ms);
        }
        lane.total_ms.push_back(total_ms);
        ++lane.requests;
      }
    }

    const Index dim = context.compiled().output_dim();
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      QueuedRequest& r = task.requests[i];
      AsyncResult result;
      result.model_id = task.model_id;
      result.model_version = task.version;
      result.batch = batch.batch;
      result.service_ms = service_ms;
      result.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                 service_start - r.enqueue_tp)
                                 .count();
      result.total_ms = std::chrono::duration<double, std::milli>(
                            service_end - r.enqueue_tp)
                            .count();
      result.deadline_missed = r.deadline_tp != Clock::time_point::max() &&
                               service_end > r.deadline_tp;
      const float* row = &batch.logits.at2(static_cast<Index>(i), 0);
      result.logits.assign(row, row + dim);
      if (r.top_k > 0) {
        // The batch was ranked at the largest requested k; this request
        // keeps its own prefix (the ordering is total, so a prefix of a
        // larger ranking IS the smaller ranking).
        const auto& ids = ranked[i];
        const std::size_t keep = std::min(static_cast<std::size_t>(r.top_k),
                                          ids.size());
        result.top_ids.reserve(keep);
        result.top_scores.reserve(keep);
        for (std::size_t j = 0; j < keep; ++j) {
          result.top_ids.push_back(ids[j].id);
          result.top_scores.push_back(ids[j].score);
        }
      }
      r.promise.set_value(std::move(result));
    }
    completed_.fetch_add(task.requests.size(), std::memory_order_relaxed);
    // Prune every lane whose bound plan the registry has moved past (swap
    // or retire) — including lanes of OTHER models that went idle. Without
    // this a lane that sees no further traffic would pin the old plan (and
    // its mmap) until the server is destroyed; with it a superseded version
    // drains as soon as this worker completes its next batch of any model.
    for (auto it = contexts.begin(); it != contexts.end();) {
      if (registry_->acquire(it->first) != it->second->compiled_ptr()) {
        it = contexts.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void AsyncServer::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (WorkerStats& stats : worker_stats_) {
    stats = WorkerStats{};
  }
}

ServingReport AsyncServer::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    double arrival_qps, Tensor* logits_out) {
  std::vector<RequestRef> refs;
  refs.reserve(requests.size());
  for (const auto& history : requests) {
    refs.push_back(RequestRef{&default_model_, &history});
  }
  std::vector<std::vector<float>> rows;
  ServingReport report =
      drive(refs, repeat, arrival_qps, logits_out != nullptr ? &rows : nullptr);
  if (logits_out != nullptr) {
    // Row width comes from the rows actually SERVED, not from the current
    // registry state: a concurrent swap()/retire() of the default model
    // after the drain must not invalidate (or abort) 100% successful
    // results. A mid-drain width change still fails the per-row check.
    // Shed requests have no logits: their rows stay zero.
    Index dim = 0;
    for (const auto& row : rows) {
      if (!row.empty()) {
        dim = static_cast<Index>(row.size());
        break;
      }
    }
    *logits_out = Tensor({static_cast<Index>(requests.size()), dim});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].empty()) {
        continue;  // shed
      }
      check_eq(dim, static_cast<long long>(rows[r].size()),
               "AsyncServer: logit row width");
      std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), rows[r].data(),
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  }
  return report;
}

ServingReport AsyncServer::serve(const std::vector<RoutedRequest>& requests,
                                 int repeat, double arrival_qps,
                                 std::vector<std::vector<float>>* logits_out) {
  std::vector<RequestRef> refs;
  refs.reserve(requests.size());
  for (const RoutedRequest& r : requests) {
    refs.push_back(RequestRef{&r.model_id, &r.history});
  }
  return drive(refs, repeat, arrival_qps, logits_out);
}

ServingReport AsyncServer::drive(
    const std::vector<RequestRef>& requests, int repeat, double arrival_qps,
    std::vector<std::vector<float>>* logits_out) {
  check(repeat > 0, "AsyncServer: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  if (logits_out != nullptr) {
    logits_out->assign(unique, {});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  // Cold-start slice: the default model's CURRENT plan (may legitimately
  // be gone mid-drain if a test retires it; report then stays zeroed).
  if (const auto compiled = registry_->acquire(default_model_)) {
    report.plan_adopted = compiled->plan_adopted();
    report.plan_compile_ms = compiled->compile_ms();
    report.plan_fallback_reason = compiled->plan_fallback_reason();
  }
  if (total == 0) {
    return report;
  }
  reset_stats();

  // Open-loop arrivals: with a nonzero rate, request i is released at
  // i/arrival_qps seconds regardless of completions (only admission-queue
  // backpressure can stall the producer). rate 0 = as fast as admitted.
  //
  // The schedule is ABSOLUTE (wall_start + i * inter_arrival), never
  // per-gap: a slow submit must not silently stretch every later arrival
  // (coordinated omission — offered load would sag exactly when the server
  // struggles). An arrival more than one period behind its slot is counted
  // in late_arrivals so the report is honest about the load it delivered.
  // sleep_until alone caps the pacer at OS timer granularity (~ms), far
  // below the offered rates the sharded path must absorb — so sleep covers
  // the bulk of a long gap and a spin loop lands the final stretch.
  const auto inter_arrival =
      arrival_qps > 0.0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(1.0 / arrival_qps))
          : Clock::duration::zero();
  constexpr std::chrono::microseconds kSpinWindow{200};

  const std::uint64_t steals_before = steals_.load(std::memory_order_relaxed);
  std::uint64_t late = 0;
  std::vector<std::future<AsyncResult>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  const auto wall_start = Clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (inter_arrival.count() > 0) {
      const auto scheduled =
          wall_start + inter_arrival * static_cast<std::int64_t>(i);
      auto now = Clock::now();
      if (now < scheduled) {
        if (scheduled - now > kSpinWindow) {
          std::this_thread::sleep_until(scheduled - kSpinWindow);
        }
        while (Clock::now() < scheduled) {
          // spin the last stretch
        }
      } else if (now - scheduled > inter_arrival) {
        ++late;  // a full period behind schedule: true offered load sagged
      }
    }
    const RequestRef& r = requests[static_cast<std::size_t>(i % unique)];
    futures.push_back(submit(*r.model_id, *r.history));
  }

  std::uint64_t shed_count = 0;
  std::uint64_t miss_count = 0;
  std::uint64_t ok_in_slo = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    AsyncResult result = futures[static_cast<std::size_t>(i)].get();
    if (result.status == RequestStatus::kShed) {
      ++shed_count;
    } else if (result.deadline_missed) {
      ++miss_count;
    } else {
      ++ok_in_slo;  // no deadline configured counts as within SLO
    }
    if (logits_out != nullptr && i < unique &&
        result.status == RequestStatus::kOk) {
      (*logits_out)[static_cast<std::size_t>(i)] = std::move(result.logits);
    }
  }
  report.wall_ms = elapsed_ms(wall_start);
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  report.shards = static_cast<int>(shards_.size());
  report.steals = steals_.load(std::memory_order_relaxed) - steals_before;
  report.late_arrivals = late;
  report.shed = shed_count;
  report.shed_rate =
      total > 0 ? static_cast<double>(shed_count) / static_cast<double>(total)
                : 0.0;
  const std::uint64_t executed = total - shed_count;
  report.deadline_misses = miss_count;
  report.deadline_miss_rate =
      executed > 0
          ? static_cast<double>(miss_count) / static_cast<double>(executed)
          : 0.0;
  report.goodput_qps =
      report.wall_ms > 0.0
          ? static_cast<double>(ok_in_slo) / (report.wall_ms / 1000.0)
          : 0.0;
  collect_stats(report, total);
  return report;
}

ServingReport AsyncServer::serve_sessions(
    const std::vector<SessionEvent>& events, Index k,
    std::vector<std::vector<Index>>* topk_out) {
  check(config_.session_capacity > 0,
        "AsyncServer: serve_sessions needs session_capacity > 0");
  const std::uint64_t total = events.size();
  if (topk_out != nullptr) {
    topk_out->assign(events.size(), {});
  }
  ServingReport report;
  report.threads = threads();
  report.requests = total;
  report.shards = static_cast<int>(shards_.size());
  if (const auto compiled = registry_->acquire(default_model_)) {
    report.plan_adopted = compiled->plan_adopted();
    report.plan_compile_ms = compiled->compile_ms();
    report.plan_fallback_reason = compiled->plan_fallback_reason();
  }
  if (total == 0) {
    report.active_sessions = active_sessions();
    report.session_evictions = evicted_sessions();
    return report;
  }
  reset_stats();

  const std::uint64_t steals_before = steals_.load(std::memory_order_relaxed);
  std::vector<std::future<AsyncResult>> futures;
  futures.reserve(events.size());
  const auto wall_start = Clock::now();
  for (const SessionEvent& e : events) {
    futures.push_back(
        submit_next_item(default_model_, e.session_id, e.item, k));
  }
  std::uint64_t shed_count = 0;
  std::uint64_t miss_count = 0;
  std::uint64_t ok_in_slo = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    AsyncResult result = futures[i].get();
    if (result.status == RequestStatus::kShed) {
      ++shed_count;
    } else if (result.deadline_missed) {
      ++miss_count;
    } else {
      ++ok_in_slo;
    }
    if (topk_out != nullptr && result.status == RequestStatus::kOk) {
      (*topk_out)[i] = std::move(result.top_ids);
    }
  }
  report.wall_ms = elapsed_ms(wall_start);
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  report.steals = steals_.load(std::memory_order_relaxed) - steals_before;
  report.shed = shed_count;
  report.shed_rate = static_cast<double>(shed_count) / static_cast<double>(total);
  const std::uint64_t executed = total - shed_count;
  report.deadline_misses = miss_count;
  report.deadline_miss_rate =
      executed > 0
          ? static_cast<double>(miss_count) / static_cast<double>(executed)
          : 0.0;
  report.goodput_qps =
      report.wall_ms > 0.0
          ? static_cast<double>(ok_in_slo) / (report.wall_ms / 1000.0)
          : 0.0;
  collect_stats(report, total);
  return report;
}

void AsyncServer::collect_stats(ServingReport& report, std::uint64_t total) {
  std::vector<double> waits, services, totals, session_totals;
  waits.reserve(static_cast<std::size_t>(total));
  services.reserve(static_cast<std::size_t>(total));
  totals.reserve(static_cast<std::size_t>(total));
  std::map<std::string, ModelReport> models;
  std::map<std::string, std::vector<double>> model_totals;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const WorkerStats& stats : worker_stats_) {
      waits.insert(waits.end(), stats.queue_wait_ms.begin(),
                   stats.queue_wait_ms.end());
      services.insert(services.end(), stats.service_ms.begin(),
                      stats.service_ms.end());
      totals.insert(totals.end(), stats.total_ms.begin(),
                    stats.total_ms.end());
      report.session_requests += stats.session_requests;
      session_totals.insert(session_totals.end(),
                            stats.session_total_ms.begin(),
                            stats.session_total_ms.end());
      report.catalog_rows += stats.catalog_rows;
      report.scanned_rows += stats.scanned_rows;
      report.scanned_bytes += stats.scanned_bytes;
      report.batches += stats.batches;
      report.modeled_busy_ms =
          std::max(report.modeled_busy_ms, stats.modeled_busy_ms);
      for (const auto& [model_id, lane] : stats.models) {
        ModelReport& model = models[model_id];
        model.model_id = model_id;
        model.version = std::max(model.version, lane.version);
        model.requests += lane.requests;
        model.batches += lane.batches;
        model.modeled_busy_ms =
            std::max(model.modeled_busy_ms, lane.modeled_busy_ms);
        // Per-tenant footprint: peak per-worker context state plus the
        // plan, which is shared by every worker and counted once.
        model.resident_mb = std::max(
            model.resident_mb,
            lane.resident_mb + static_cast<double>(lane.plan_bytes) /
                                   (1024.0 * 1024.0));
        if (lane.cache_enabled) {
          model.cache.enabled = true;
          model.cache.hits += lane.cache_hits;
          model.cache.misses += lane.cache_misses;
          model.cache.resident_bytes += lane.cache_resident_bytes;
          model.cache.capacity_bytes += lane.cache_capacity_bytes;
        }
        auto& samples = model_totals[model_id];
        samples.insert(samples.end(), lane.total_ms.begin(),
                       lane.total_ms.end());
      }
    }
  }
  report.latency = latency_stats_from_samples(std::move(totals));
  report.queue_wait = latency_stats_from_samples(std::move(waits));
  report.service = latency_stats_from_samples(std::move(services));
  report.session_latency =
      latency_stats_from_samples(std::move(session_totals));
  report.active_sessions = active_sessions();
  report.session_evictions = evicted_sessions();
  report.pruned_fraction =
      report.catalog_rows > 0
          ? 1.0 - static_cast<double>(report.scanned_rows) /
                      static_cast<double>(report.catalog_rows)
          : 0.0;
  report.mean_batch =
      report.batches > 0
          ? static_cast<double>(total) / static_cast<double>(report.batches)
          : 0.0;
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  for (auto& [model_id, model] : models) {
    model.latency =
        latency_stats_from_samples(std::move(model_totals[model_id]));
    model.mean_batch = model.batches > 0
                           ? static_cast<double>(model.requests) /
                                 static_cast<double>(model.batches)
                           : 0.0;
    model.modeled_qps =
        model.modeled_busy_ms > 0.0
            ? static_cast<double>(model.requests) /
                  (model.modeled_busy_ms / 1000.0)
            : 0.0;
    report.cache.enabled = report.cache.enabled || model.cache.enabled;
    report.cache.hits += model.cache.hits;
    report.cache.misses += model.cache.misses;
    report.cache.resident_bytes += model.cache.resident_bytes;
    report.cache.capacity_bytes += model.cache.capacity_bytes;
    report.per_model.push_back(std::move(model));
  }
}

std::size_t AsyncServer::queue_capacity() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.capacity();
  }
  return total;
}

std::size_t AsyncServer::queue_high_water() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.high_water();
  }
  return total;
}

std::uint64_t AsyncServer::rejected() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue.rejected();
  }
  return total;
}

Index AsyncServer::active_sessions() const {
  Index total = 0;
  for (const auto& shard : shards_) {
    if (shard->sessions != nullptr) {
      total += shard->sessions->active_sessions();
    }
  }
  return total;
}

std::uint64_t AsyncServer::evicted_sessions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->sessions != nullptr) {
      total += shard->sessions->evicted_sessions();
    }
  }
  return total;
}

std::uint64_t AsyncServer::shed_total() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->shed.load(std::memory_order_relaxed);
  }
  return total;
}

RowCacheStats AsyncServer::cache_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  RowCacheStats total;
  for (const WorkerStats& stats : worker_stats_) {
    for (const auto& [model_id, lane] : stats.models) {
      if (!lane.cache_enabled) {
        continue;
      }
      total.enabled = true;
      total.hits += lane.cache_hits;
      total.misses += lane.cache_misses;
      total.resident_bytes += lane.cache_resident_bytes;
      total.capacity_bytes += lane.cache_capacity_bytes;
    }
  }
  return total;
}

double AsyncServer::max_resident_megabytes() const {
  double max_mb = 0.0;
  std::map<std::string, std::size_t> plan_bytes;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const WorkerStats& stats : worker_stats_) {
      double worker_mb = 0.0;
      for (const auto& [model_id, lane] : stats.models) {
        // One context per model on this worker; their state coexists.
        worker_mb += lane.resident_mb;
        // Plan footprint of the models THIS server served — the registry
        // may host models other servers own, which are not our memory.
        auto& bytes = plan_bytes[model_id];
        bytes = std::max(bytes, lane.plan_bytes);
      }
      max_mb = std::max(max_mb, worker_mb);
    }
  }
  // Plans are compiled once per model version and shared by every worker.
  std::size_t shared_plan_bytes = 0;
  for (const auto& [model_id, bytes] : plan_bytes) {
    shared_plan_bytes += bytes;
  }
  return max_mb +
         static_cast<double>(shared_plan_bytes) / (1024.0 * 1024.0);
}

}  // namespace memcom
