// Shared helpers for the figure/table bench binaries.
//
// Every bench accepts:
//   --full           paper-ladder scale (6 knob levels, more epochs, full
//                    training splits) instead of the quick default
//   --datasets a,b   restrict to a comma-separated subset
//   --epochs N, --levels N, --seed N   individual overrides
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "repro/sweep.h"

namespace memcom::bench {

struct BenchScale {
  Index epochs;
  Index ladder_levels;
  double train_fraction;
  Index runs;  // on-device latency repetitions
};

inline BenchScale scale_from_flags(const Flags& flags) {
  BenchScale s;
  const bool full = flags.get_bool("full", false);
  s.epochs = flags.get_int("epochs", full ? 10 : 6);
  s.ladder_levels = flags.get_int("levels", full ? 6 : 3);
  s.train_fraction = flags.get_double("train-fraction", full ? 1.0 : 0.7);
  s.runs = flags.get_int("runs", full ? 1000 : 100);
  return s;
}

inline TrainConfig train_config_from(const BenchScale& scale,
                                     const Flags& flags) {
  TrainConfig train;
  train.epochs = scale.epochs;
  train.train_fraction = scale.train_fraction;
  train.batch_size = flags.get_int("batch", 64);
  train.learning_rate = flags.get_double("lr", 2e-3);
  train.seed = flags.get_int("seed", 99);
  return train;
}

inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

inline std::vector<DatasetSpec> datasets_from_flags(
    const Flags& flags, const std::vector<std::string>& defaults) {
  const std::string csv =
      flags.get_string("datasets", "");
  std::vector<DatasetSpec> specs;
  const std::vector<std::string> names =
      csv.empty() ? defaults : split_csv(csv);
  for (const std::string& name : names) {
    specs.push_back(spec_by_name(name));
  }
  return specs;
}

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << paper_reference << "\n"
            << "==============================================================\n";
}

}  // namespace memcom::bench
