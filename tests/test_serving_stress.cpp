// Concurrency stress tests for the async serving pipeline.
//
//   * RequestQueue under producer/consumer contention: bounded capacity is a
//     hard invariant (backpressure engages at capacity), nothing is lost or
//     duplicated, close() drains cleanly and wakes blocked producers.
//   * AsyncServer under multi-producer load with random pacing: every
//     submitted request resolves exactly once with logits bit-identical to
//     the sequential engine, regardless of micro-batch composition — i.e.
//     the run is deterministic in request CONTENT even though scheduling is
//     not (order-independent logit multiset).
//
// The CI ThreadSanitizer job runs this suite (MEMCOM_SANITIZE=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ondevice/request_queue.h"
#include "ondevice/serving.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

// --- RequestQueue --------------------------------------------------------

TEST(RequestQueueStress, NoLossNoDuplicationUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr std::size_t kCapacity = 8;
  RequestQueue<std::uint64_t> queue(kCapacity);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      std::mt19937 rng(static_cast<unsigned>(1000 + p));
      std::uniform_int_distribution<int> delay_us(0, 80);
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t token =
            (static_cast<std::uint64_t>(p) << 32) |
            static_cast<std::uint64_t>(i);
        ASSERT_TRUE(queue.push(token));
        if (const int d = delay_us(rng); d > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(d));
        }
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> received(2);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < received.size(); ++c) {
    consumers.emplace_back([&queue, &received, c] {
      std::uint64_t token = 0;
      while (queue.pop(token)) {
        received[c].push_back(token);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }

  std::vector<std::uint64_t> all;
  for (const auto& r : received) {
    all.insert(all.end(), r.begin(), r.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Sorted tokens must be exactly {p<<32|i}: any loss or duplication breaks
  // the element-wise match.
  std::size_t idx = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(all[idx++], (static_cast<std::uint64_t>(p) << 32) |
                                static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_EQ(queue.total_pushed(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // The ring IS the storage: occupancy can never have exceeded capacity.
  EXPECT_LE(queue.high_water(), kCapacity);
}

TEST(RequestQueueStress, BackpressureEngagesAtCapacity) {
  RequestQueue<int> queue(3);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  // Full: non-blocking admission must fail and be counted.
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_FALSE(queue.try_push(5));
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_water(), 3u);
  int out = 0;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  // One slot freed: admission resumes.
  EXPECT_TRUE(queue.try_push(6));
  EXPECT_EQ(queue.high_water(), 3u);
}

TEST(RequestQueueStress, CloseDrainsPendingThenStops) {
  RequestQueue<int> queue(4);
  ASSERT_TRUE(queue.push(10));
  ASSERT_TRUE(queue.push(11));
  queue.close();
  EXPECT_FALSE(queue.push(12));      // no admission after close...
  EXPECT_FALSE(queue.try_push(13));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));       // ...but the backlog still drains
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(queue.pop(out));      // drained: pop reports shutdown
}

TEST(RequestQueueStress, CloseWakesBlockedProducer) {
  RequestQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::promise<bool> pushed;
  std::thread producer([&] {
    pushed.set_value(queue.push(2));  // blocks: queue is full
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_FALSE(pushed.get_future().get());  // woken with a clean failure
}

TEST(RequestQueueStress, PopWaitUntilTimesOutOnEmptyQueue) {
  RequestQueue<int> queue(2);
  int out = 0;
  bool timed_out = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_FALSE(queue.pop_wait_until(out, deadline, &timed_out));
  EXPECT_TRUE(timed_out);
}

// --- AsyncServer ---------------------------------------------------------

class AsyncStressTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, const std::string& tag) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 200;
    config.embedding.embed_dim = 16;
    config.embedding.knob = 32;
    config.arch = ModelArch::kClassification;
    config.output_vocab = 20;
    config.seed = 777;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_async_stress_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string());
    return p.string();
  }

  std::vector<std::filesystem::path> paths_;
};

std::vector<std::int32_t> random_history(std::mt19937& rng) {
  std::uniform_int_distribution<int> len(1, 12);
  std::uniform_int_distribution<std::int32_t> id(1, 199);
  std::vector<std::int32_t> history(static_cast<std::size_t>(len(rng)));
  for (auto& v : history) {
    v = id(rng);
  }
  return history;
}

TEST_F(AsyncStressTest, MultiProducerNoLossNoDuplicationBitExact) {
  const std::string path = export_model(TechniqueKind::kMemcom, "producers");
  const MmapModel model(path);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  AsyncServerConfig config;
  config.threads = 3;
  config.max_batch = 4;
  config.max_delay_us = 100.0;
  config.queue_capacity = 8;  // small on purpose: submit() must block
  config.cache_budget_bytes = 16 * 1024;

  struct Submitted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<std::vector<Submitted>> per_producer(kProducers);
  {
    AsyncServer server(model, tflite_profile(), config);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&server, &per_producer, p] {
        std::mt19937 rng(static_cast<unsigned>(31 + p));
        std::uniform_int_distribution<int> delay_us(0, 120);
        for (int i = 0; i < kPerProducer; ++i) {
          Submitted s;
          s.history = random_history(rng);
          s.future = server.submit(s.history);
          per_producer[static_cast<std::size_t>(p)].push_back(std::move(s));
          if (const int d = delay_us(rng); d > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(d));
          }
        }
      });
    }
    for (auto& t : producers) {
      t.join();
    }
    // Backpressure invariant: admission never exceeded the bound.
    EXPECT_LE(server.queue_high_water(), config.queue_capacity);

    // Every request resolves exactly once, bit-identical to the sequential
    // engine — the scheduler may have packed them into any micro-batches.
    InferenceEngine reference(model, tflite_profile());
    std::uint64_t resolved = 0;
    for (auto& produced : per_producer) {
      for (Submitted& s : produced) {
        const AsyncResult result = s.future.get();
        ++resolved;
        const Tensor expected = reference.run(s.history).logits;
        ASSERT_EQ(static_cast<Index>(result.logits.size()),
                  expected.numel());
        for (Index c = 0; c < expected.numel(); ++c) {
          EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c]);
        }
        EXPECT_GE(result.batch, 1);
        EXPECT_LE(result.batch, config.max_batch);
        EXPECT_GE(result.queue_wait_ms, 0.0);
        EXPECT_GE(result.total_ms, result.service_ms);
      }
    }
    EXPECT_EQ(resolved,
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
  }
}

TEST_F(AsyncStressTest, LogitMultisetIsScheduleIndependent) {
  const std::string path = export_model(TechniqueKind::kQrMult, "multiset");
  const MmapModel model(path);

  std::mt19937 rng(404);
  std::vector<std::vector<std::int32_t>> requests;
  for (int i = 0; i < 48; ++i) {
    requests.push_back(random_history(rng));
  }

  // Same request content through two very different schedules: batch-1
  // single worker vs aggressive micro-batching on 4 workers with a cache.
  auto drain = [&](AsyncServerConfig config) {
    AsyncServer server(model, tflite_profile(), config);
    Tensor logits;
    server.serve(requests, 1, 0.0, &logits);
    std::vector<std::vector<float>> rows;
    for (Index r = 0; r < logits.dim(0); ++r) {
      const float* row = &logits.at2(r, 0);
      rows.emplace_back(row, row + logits.shape()[1]);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  AsyncServerConfig serial;
  serial.threads = 1;
  serial.max_batch = 1;
  serial.max_delay_us = 0.0;
  serial.queue_capacity = 4;
  AsyncServerConfig batched;
  batched.threads = 4;
  batched.max_batch = 16;
  batched.max_delay_us = 300.0;
  batched.queue_capacity = 32;
  batched.cache_budget_bytes = 64 * 1024;

  const auto rows_serial = drain(serial);
  const auto rows_batched = drain(batched);
  ASSERT_EQ(rows_serial.size(), rows_batched.size());
  for (std::size_t i = 0; i < rows_serial.size(); ++i) {
    EXPECT_EQ(rows_serial[i], rows_batched[i]) << "sorted row " << i;
  }
}

TEST_F(AsyncStressTest, ReportIsInternallyConsistent) {
  const std::string path = export_model(TechniqueKind::kMemcom, "report");
  const MmapModel model(path);

  std::mt19937 rng(11);
  std::vector<std::vector<std::int32_t>> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(random_history(rng));
  }

  AsyncServerConfig config;
  config.threads = 2;
  config.max_batch = 8;
  config.max_delay_us = 200.0;
  config.queue_capacity = 16;
  config.cache_budget_bytes = 32 * 1024;
  AsyncServer server(model, tflite_profile(), config);
  const ServingReport report = server.serve(requests, 3);

  EXPECT_EQ(report.threads, 2);
  EXPECT_EQ(report.requests, 72u);
  EXPECT_EQ(report.latency.runs, 72);
  EXPECT_EQ(report.queue_wait.runs, 72);
  EXPECT_EQ(report.service.runs, 72);
  EXPECT_GT(report.batches, 0u);
  EXPECT_GE(report.mean_batch, 1.0);
  EXPECT_LE(report.mean_batch, static_cast<double>(config.max_batch));
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GT(report.modeled_busy_ms, 0.0);
  EXPECT_GT(report.modeled_qps, 0.0);
  EXPECT_LE(report.latency.min_ms, report.latency.p50_ms);
  EXPECT_LE(report.latency.p50_ms, report.latency.p99_ms);
  EXPECT_LE(report.latency.p99_ms, report.latency.max_ms);
  // total = queue wait + service, so the max total bounds each part's min.
  EXPECT_GE(report.latency.max_ms, report.queue_wait.min_ms);
  EXPECT_GE(report.latency.max_ms, report.service.min_ms);
  // Cache engaged: memcom is a lookup technique and the drain repeats the
  // corpus three times, so hits are guaranteed.
  EXPECT_TRUE(report.cache.enabled);
  EXPECT_GT(report.cache.hits, 0u);
  EXPECT_GT(report.cache.resident_bytes, 0u);
  EXPECT_LE(report.cache.resident_bytes, report.cache.capacity_bytes);
  EXPECT_GT(server.max_resident_megabytes(), 0.0);

  // Cache counters in a report are the DRAIN'S delta, not lifetime totals:
  // the same corpus gathers the same row count every drain, and a warmer
  // cache can only shift misses toward hits.
  const ServingReport second = server.serve(requests, 3);
  EXPECT_EQ(second.cache.hits + second.cache.misses,
            report.cache.hits + report.cache.misses);
  EXPECT_GE(second.cache.hits, report.cache.hits);
}

TEST_F(AsyncStressTest, HotSwapUnderConcurrentTrafficIsBitExactPerVersion) {
  // Producers stream requests while the registry publishes v2 mid-traffic.
  // Contract: every future resolves; each result is bit-identical to a
  // sequential run on WHICHEVER version served it (the result says which);
  // the old version's plan+mapping are released once in-flight work drains.
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 200, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 20;

  const auto export_version = [&](std::uint64_t seed, std::uint64_t version) {
    config.seed = seed;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_hotswap_v" + std::to_string(version) + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string(), DType::kF32, "hotswap", version);
    return p.string();
  };
  const std::string v1_path = export_version(1001, 1);
  const std::string v2_path = export_version(2002, 2);

  const MmapModel v1_mapped(v1_path);
  const MmapModel v2_mapped(v2_path);
  InferenceEngine v1_reference(v1_mapped, tflite_profile());
  InferenceEngine v2_reference(v2_mapped, tflite_profile());

  ModelRegistry registry;
  registry.load("m", v1_path);
  std::shared_ptr<const CompiledModel> old_plan = registry.acquire("m");

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 60;
  AsyncServerConfig server_config;
  server_config.threads = 2;
  server_config.max_batch = 4;
  server_config.max_delay_us = 100.0;
  server_config.queue_capacity = 8;
  server_config.cache_budget_bytes = 16 * 1024;

  struct Submitted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<std::vector<Submitted>> per_producer(kProducers);
  std::uint64_t served_by_v1 = 0;
  std::uint64_t served_by_v2 = 0;
  {
    AsyncServer server(registry, "m", tflite_profile(), server_config);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&server, &per_producer, p] {
        std::mt19937 rng(static_cast<unsigned>(91 + p));
        std::uniform_int_distribution<int> delay_us(0, 120);
        for (int i = 0; i < kPerProducer; ++i) {
          Submitted s;
          s.history = random_history(rng);
          s.future = server.submit("m", s.history);
          per_producer[static_cast<std::size_t>(p)].push_back(std::move(s));
          if (const int d = delay_us(rng); d > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(d));
          }
        }
      });
    }
    // Swap once roughly a third of the traffic has completed, so both
    // versions demonstrably serve (v1 before, v2 after; batches formed
    // around the swap pin whichever version they started with).
    while (server.completed_requests() <
           static_cast<std::uint64_t>(kProducers) * kPerProducer / 3) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    EXPECT_EQ(registry.swap("m", v2_path), 2u);
    for (auto& t : producers) {
      t.join();
    }

    std::uint64_t resolved = 0;
    for (auto& produced : per_producer) {
      for (Submitted& s : produced) {
        const AsyncResult result = s.future.get();
        ++resolved;
        ASSERT_TRUE(result.model_version == 1 || result.model_version == 2);
        InferenceEngine& reference =
            result.model_version == 1 ? v1_reference : v2_reference;
        (result.model_version == 1 ? served_by_v1 : served_by_v2) += 1;
        const Tensor expected = reference.run(s.history).logits;
        ASSERT_EQ(static_cast<Index>(result.logits.size()),
                  expected.numel());
        for (Index c = 0; c < expected.numel(); ++c) {
          ASSERT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c])
              << "version " << result.model_version << " logit " << c;
        }
      }
    }
    EXPECT_EQ(resolved,
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
    // The swap landed mid-traffic: v2 must have served, and the swap gate
    // (a third completed before publication) guarantees v1 did too.
    EXPECT_GT(served_by_v1, 0u);
    EXPECT_GT(served_by_v2, 0u);
  }
  // Server destroyed: every in-flight batch and worker context has drained,
  // so the test handle is the LAST reference to v1 — the registry moved on
  // at swap time. Dropping it releases the old plan and its mmap.
  EXPECT_EQ(old_plan.use_count(), 1);
  EXPECT_EQ(registry.acquire("m")->model_version(), 2u);
}

TEST_F(AsyncStressTest, IdleWorkerLaneReleasesSwappedPlanUnderOtherTraffic) {
  // Regression: a worker keeps one ExecutionContext lane per model id. If a
  // model is swapped (or retired) and never sees traffic again, its lane
  // must not pin the superseded plan until server destruction — completing
  // a batch of ANY model prunes every stale lane.
  const std::string a_v1 = export_model(TechniqueKind::kMemcom, "idlelane_a1");
  const std::string a_v2 = export_model(TechniqueKind::kMemcom, "idlelane_a2");
  const std::string b = export_model(TechniqueKind::kQrMult, "idlelane_b");

  ModelRegistry registry;
  registry.load("a", a_v1);
  registry.load("b", b);
  std::shared_ptr<const CompiledModel> old_plan = registry.acquire("a");

  AsyncServerConfig config;
  config.threads = 1;  // deterministic: one worker owns both lanes
  config.max_batch = 2;
  config.max_delay_us = 50.0;

  AsyncServer server(registry, "a", tflite_profile(), config);
  std::mt19937 rng(515);
  // Bind the worker's "a" lane to v1.
  server.submit("a", random_history(rng)).get();
  // Swap "a" while its lane idles; all further traffic goes to "b".
  EXPECT_EQ(registry.swap("a", a_v2), 2u);
  server.submit("b", random_history(rng)).get();

  // The "b" batch completion prunes the stale "a" lane. The prune runs
  // just AFTER the future resolves, so allow it a bounded moment to land.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (old_plan.use_count() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Only the test handle is left: the v1 plan (and its mmap) drained with
  // the server still running.
  EXPECT_EQ(old_plan.use_count(), 1);
  // The swapped model still serves — on a freshly bound v2 lane.
  const AsyncResult post = server.submit("a", random_history(rng)).get();
  EXPECT_EQ(post.model_version, 2u);
}

TEST_F(AsyncStressTest, MixedModelTrafficRoutesAndReportsPerModel) {
  // Two models behind one server: interleaved traffic must route each
  // request to its model (different output widths make cross-routing
  // impossible to miss) and the report must break down per model.
  ModelConfig small;
  small.embedding = {TechniqueKind::kMemcom, 200, 16, 32};
  small.arch = ModelArch::kClassification;
  small.output_vocab = 12;
  small.seed = 31;
  ModelConfig large;
  large.embedding = {TechniqueKind::kQrMult, 200, 16, 32};
  large.arch = ModelArch::kClassification;
  large.output_vocab = 28;
  large.seed = 32;

  const auto export_config = [&](const ModelConfig& model_config,
                                 const std::string& tag) {
    RecModel model(model_config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_mixed_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string());
    return p.string();
  };
  const std::string small_path = export_config(small, "small");
  const std::string large_path = export_config(large, "large");

  ModelRegistry registry;
  registry.load("small", small_path);
  registry.load("large", large_path);

  AsyncServerConfig config;
  config.threads = 2;
  config.max_batch = 4;
  config.max_delay_us = 100.0;
  config.queue_capacity = 16;
  config.cache_budget_bytes = 16 * 1024;
  AsyncServer server(registry, "small", tflite_profile(), config);
  EXPECT_EQ(server.output_dim(), 12);

  std::mt19937 rng(77);
  std::vector<RoutedRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back(
        RoutedRequest{i % 2 == 0 ? "small" : "large", random_history(rng)});
  }
  std::vector<std::vector<float>> logits;
  const ServingReport report = server.serve(requests, 2, 0.0, &logits);

  EXPECT_EQ(report.requests, 80u);
  ASSERT_EQ(logits.size(), requests.size());
  const MmapModel small_mapped(small_path);
  const MmapModel large_mapped(large_path);
  InferenceEngine small_reference(small_mapped, tflite_profile());
  InferenceEngine large_reference(large_mapped, tflite_profile());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    InferenceEngine& reference =
        requests[r].model_id == "small" ? small_reference : large_reference;
    const Tensor expected = reference.run(requests[r].history).logits;
    ASSERT_EQ(static_cast<Index>(logits[r].size()), expected.numel())
        << requests[r].model_id << " request " << r;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(logits[r][static_cast<std::size_t>(c)], expected[c])
          << requests[r].model_id << " request " << r << " logit " << c;
    }
  }

  // Per-model breakdown: both models present, request counts split evenly,
  // latency sample counts match, caches engaged per model.
  ASSERT_EQ(report.per_model.size(), 2u);
  std::uint64_t breakdown_total = 0;
  for (const ModelReport& model : report.per_model) {
    EXPECT_TRUE(model.model_id == "small" || model.model_id == "large");
    EXPECT_EQ(model.requests, 40u);
    EXPECT_EQ(model.latency.runs, 40);
    EXPECT_GT(model.modeled_busy_ms, 0.0);
    EXPECT_GT(model.modeled_qps, 0.0);
    EXPECT_EQ(model.version, 1u);
    EXPECT_TRUE(model.cache.enabled);
    EXPECT_GT(model.cache.hits + model.cache.misses, 0u);
    breakdown_total += model.requests;
  }
  EXPECT_EQ(breakdown_total, report.requests);
}

TEST_F(AsyncStressTest, TrySubmitRejectsWhenQueueSaturated) {
  const std::string path = export_model(TechniqueKind::kMemcom, "reject");
  const MmapModel model(path);

  AsyncServerConfig config;
  config.threads = 1;
  config.max_batch = 2;
  config.max_delay_us = 50.0;
  config.queue_capacity = 2;
  AsyncServer server(model, tflite_profile(), config);

  // Flood the tiny queue from one thread with no pacing: with a single
  // worker some try_submit must eventually bounce (and be counted), while
  // every ACCEPTED request still resolves correctly.
  InferenceEngine reference(model, tflite_profile());
  std::mt19937 rng(8);
  struct Accepted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<Accepted> accepted;
  std::uint64_t bounced = 0;
  for (int i = 0; i < 400; ++i) {
    Accepted a;
    a.history = random_history(rng);
    if (server.try_submit(a.history, &a.future)) {
      accepted.push_back(std::move(a));
    } else {
      ++bounced;
    }
  }
  EXPECT_GT(bounced, 0u);
  EXPECT_EQ(server.rejected(), bounced);
  EXPECT_EQ(server.queue_high_water(), config.queue_capacity);
  for (Accepted& a : accepted) {
    const AsyncResult result = a.future.get();
    const Tensor expected = reference.run(a.history).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c]);
    }
  }
}

}  // namespace
}  // namespace memcom
