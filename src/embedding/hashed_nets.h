// HashedNets (Chen et al., ICML 2015) applied to an embedding table: the
// virtual weight E[i][j] aliases a bucket w[h(i,j)] of a much smaller flat
// weight vector. Gradients accumulate into buckets through all aliased
// positions. Included as the weight-bucket-sharing point of comparison the
// paper discusses in §2.3.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class HashedNetsEmbedding : public EmbeddingLayer {
 public:
  HashedNetsEmbedding(Index vocab, Index bucket_count, Index embed_dim,
                      Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&buckets_}; }
  std::string name() const override { return "hashed_nets"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return embed_dim_; }

  Index bucket_count() const { return buckets_.value.dim(0); }

  // Bucket index backing virtual weight (id, column).
  Index bucket_of(std::int32_t id, Index column) const;

 private:
  Index vocab_;
  Index embed_dim_;
  Param buckets_;  // flat [buckets, 1]
  IdBatch cached_input_;
};

}  // namespace memcom
