#include "repro/sweep.h"

#include <algorithm>

#include "core/table.h"

namespace memcom {

std::vector<Index> knob_ladder(TechniqueKind kind, Index vocab,
                               Index embed_dim, Index levels) {
  check(levels > 0, "knob ladder: levels must be positive");
  std::vector<Index> ladder;
  switch (kind) {
    case TechniqueKind::kMemcom:
    case TechniqueKind::kMemcomBias:
    case TechniqueKind::kQrMult:
    case TechniqueKind::kQrConcat:
    case TechniqueKind::kNaiveHash:
    case TechniqueKind::kDoubleHash:
    case TechniqueKind::kWeinberger:
    case TechniqueKind::kTruncateRare: {
      // Paper ladder: hash sizes 100K, 50K, 25K, 10K, 5K, 1K for a 100K+
      // vocab, i.e. roughly vocab / {2, 4, 8, 16, 32, 64}.
      Index divisor = 2;
      for (Index i = 0; i < levels; ++i) {
        ladder.push_back(std::max<Index>(8, vocab / divisor));
        divisor *= 4;
      }
      break;
    }
    case TechniqueKind::kFactorized: {
      // Hidden dims e/2, e/4, ... ("vary the dimension of the embedding
      // layer by a factor of 2 starting from 128", §5).
      Index h = embed_dim / 2;
      for (Index i = 0; i < levels && h >= 2; ++i, h /= 2) {
        ladder.push_back(h);
      }
      break;
    }
    case TechniqueKind::kReduceDim: {
      Index d = embed_dim / 2;
      for (Index i = 0; i < levels && d >= 2; ++i, d /= 2) {
        ladder.push_back(d);
      }
      break;
    }
    case TechniqueKind::kHashedNets: {
      Index buckets = vocab * embed_dim / 4;
      for (Index i = 0; i < levels && buckets >= 64; ++i, buckets /= 8) {
        ladder.push_back(buckets);
      }
      break;
    }
    case TechniqueKind::kMixedDim: {
      // Head-block sizes vocab/16, vocab/64, ... — smaller head blocks push
      // more of the vocabulary into narrow tail blocks.
      Index head = std::max<Index>(8, vocab / 16);
      for (Index i = 0; i < levels && head >= 8; ++i, head /= 4) {
        ladder.push_back(head);
      }
      break;
    }
    case TechniqueKind::kTtRec: {
      Index rank = embed_dim / 2;
      for (Index i = 0; i < levels && rank >= 1; ++i, rank /= 4) {
        ladder.push_back(rank);
      }
      break;
    }
    case TechniqueKind::kFull: {
      ladder.push_back(0);
      break;
    }
  }
  // Deduplicate (small vocabs can collapse adjacent rungs).
  std::sort(ladder.begin(), ladder.end(), std::greater<>());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

Index model_param_count(const EmbeddingConfig& embedding, ModelArch arch,
                        Index output_vocab) {
  ModelConfig config;
  config.embedding = embedding;
  config.arch = arch;
  config.output_vocab = output_vocab;
  RecModel model(config);
  return model.param_count();
}

SweepResult run_compression_sweep(const SyntheticDataset& data, ModelArch arch,
                                  const std::vector<TechniqueKind>& techniques,
                                  const TrainConfig& train_config,
                                  Index embed_dim, Index ladder_levels,
                                  std::ostream* progress) {
  SweepResult result;
  result.dataset = data.spec().name;
  result.arch = arch;

  // Baseline: the uncompressed model.
  ModelConfig baseline_config;
  baseline_config.embedding = {TechniqueKind::kFull, data.input_vocab(),
                               embed_dim, 0};
  baseline_config.arch = arch;
  baseline_config.output_vocab = data.output_vocab();
  baseline_config.seed = train_config.seed;
  RecModel baseline(baseline_config);
  result.baseline_params = baseline.param_count();
  const EvalResult baseline_eval =
      train_and_evaluate(baseline, data, train_config);
  result.baseline_metric = baseline_eval.primary(arch);
  if (progress != nullptr) {
    (*progress) << "[" << result.dataset << "] baseline metric="
                << format_float(result.baseline_metric, 4) << " params="
                << result.baseline_params << "\n";
  }

  for (const TechniqueKind kind : techniques) {
    TechniqueSeries series;
    series.kind = kind;
    for (const Index knob :
         knob_ladder(kind, data.input_vocab(), embed_dim, ladder_levels)) {
      ModelConfig config;
      config.embedding = {kind, data.input_vocab(), embed_dim, knob};
      config.arch = arch;
      config.output_vocab = data.output_vocab();
      config.seed = train_config.seed;
      RecModel model(config);

      SweepPoint point;
      point.knob = knob;
      point.model_params = model.param_count();
      point.compression_ratio = static_cast<double>(result.baseline_params) /
                                static_cast<double>(point.model_params);
      const EvalResult eval = train_and_evaluate(model, data, train_config);
      point.metric = eval.primary(arch);
      // A degenerate (zero-metric) baseline makes relative loss undefined;
      // report 0 rather than dividing by zero.
      point.relative_loss_pct =
          result.baseline_metric > 0.0
              ? relative_loss_percent(result.baseline_metric, point.metric)
              : 0.0;
      series.points.push_back(point);
      if (progress != nullptr) {
        (*progress) << "  " << technique_name(kind) << " knob=" << knob
                    << " ratio=" << format_ratio(point.compression_ratio)
                    << " metric=" << format_float(point.metric, 4)
                    << " loss=" << format_percent(point.relative_loss_pct)
                    << "\n";
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

void print_sweep(const SweepResult& result, const std::string& metric_name,
                 std::ostream& os) {
  os << "dataset=" << result.dataset << "  baseline " << metric_name << "="
     << format_float(result.baseline_metric, 4)
     << "  baseline params=" << result.baseline_params << "\n";
  TextTable table({"technique", "knob", "params", "compression",
                   metric_name, "loss_vs_baseline"});
  for (const TechniqueSeries& series : result.series) {
    for (const SweepPoint& point : series.points) {
      table.add_row({technique_name(series.kind), std::to_string(point.knob),
                     std::to_string(point.model_params),
                     format_ratio(point.compression_ratio),
                     format_float(point.metric, 4),
                     format_percent(point.relative_loss_pct)});
    }
  }
  os << table.to_string();
}

}  // namespace memcom
