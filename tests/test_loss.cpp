#include "nn/loss.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <cmath>

#include "core/ops.h"
#include "nn/grad_check.h"

namespace memcom {
namespace {

TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({4, 10});  // all zeros -> uniform
  const std::vector<Index> labels = {0, 3, 7, 9};
  EXPECT_NEAR(loss.forward(logits, labels), std::log(10.0f), 1e-5f);
}

TEST(SoftmaxXent, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  logits.at2(0, 1) = 50.0f;
  logits.at2(1, 2) = 50.0f;
  EXPECT_NEAR(loss.forward(logits, {1, 2}), 0.0f, 1e-4f);
}

TEST(SoftmaxXent, GradientIsProbsMinusOneHotOverB) {
  SoftmaxCrossEntropy loss;
  Rng rng(61);
  const Tensor logits = Tensor::randn({3, 4}, rng);
  loss.forward(logits, {2, 0, 1});
  const Tensor grad = loss.backward();
  const Tensor probs = softmax_rows(logits);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 4; ++c) {
      float expected = probs.at2(r, c) / 3.0f;
      if ((r == 0 && c == 2) || (r == 1 && c == 0) || (r == 2 && c == 1)) {
        expected -= 1.0f / 3.0f;
      }
      EXPECT_NEAR(grad.at2(r, c), expected, 1e-5f);
    }
  }
}

TEST(SoftmaxXent, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(62);
  Tensor logits = Tensor::randn({4, 5}, rng);
  const std::vector<Index> labels = {1, 0, 4, 2};
  loss.forward(logits, labels);
  const Tensor analytic = loss.backward();
  const GradCheckResult check = check_tensor_gradient(
      logits, analytic,
      [&]() {
        SoftmaxCrossEntropy fresh;
        return fresh.forward(logits, labels);
      },
      1e-2f);
  EXPECT_TRUE(check.ok()) << check.max_rel_error;
}

TEST(SoftmaxXent, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Rng rng(63);
  const Tensor logits = Tensor::randn({5, 7}, rng);
  loss.forward(logits, {0, 1, 2, 3, 4});
  const Tensor grad = loss.backward();
  for (Index r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (Index c = 0; c < 7; ++c) {
      sum += grad.at2(r, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxXent, LabelOutOfRangeThrows) {
  SoftmaxCrossEntropy loss;
  const Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), std::runtime_error);
  EXPECT_THROW(loss.forward(logits, {-1}), std::runtime_error);
}

TEST(SoftmaxXent, ProbabilitiesExposedAndNormalized) {
  SoftmaxCrossEntropy loss;
  Rng rng(64);
  const Tensor logits = Tensor::randn({2, 6}, rng);
  loss.forward(logits, {0, 5});
  const Tensor& probs = loss.probabilities();
  EXPECT_TENSOR_NEAR(probs, softmax_rows(logits), 1e-5f);
}

TEST(RankNet, EqualScoresGiveLog2) {
  RankNetLoss loss;
  const Tensor a = Tensor::from_vector({3}, {1, 1, 1});
  const Tensor b = Tensor::from_vector({3}, {1, 1, 1});
  EXPECT_NEAR(loss.forward(a, b), std::log(2.0f), 1e-6f);
}

TEST(RankNet, CorrectOrderSmallLossWrongOrderLargeLoss) {
  RankNetLoss loss;
  const Tensor good_pref = Tensor::from_vector({1}, {10.0f});
  const Tensor good_other = Tensor::from_vector({1}, {0.0f});
  EXPECT_LT(loss.forward(good_pref, good_other), 1e-3f);
  EXPECT_NEAR(loss.pairwise_accuracy(), 1.0f, 1e-6f);

  EXPECT_GT(loss.forward(good_other, good_pref), 9.0f);
  EXPECT_NEAR(loss.pairwise_accuracy(), 0.0f, 1e-6f);
}

TEST(RankNet, StableForExtremeDifferences) {
  RankNetLoss loss;
  const Tensor a = Tensor::from_vector({1}, {-500.0f});
  const Tensor b = Tensor::from_vector({1}, {500.0f});
  const float value = loss.forward(a, b);
  EXPECT_FALSE(std::isnan(value));
  EXPECT_FALSE(std::isinf(value));
  EXPECT_NEAR(value, 1000.0f, 1.0f);
}

TEST(RankNet, GradientsAreOppositeAndMatchFiniteDifference) {
  RankNetLoss loss;
  Rng rng(65);
  Tensor pref = Tensor::randn({4}, rng);
  Tensor other = Tensor::randn({4}, rng);
  loss.forward(pref, other);
  const Tensor g_pref = loss.backward_preferred();
  const Tensor g_other = loss.backward_other();
  for (Index i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(g_pref[i], -g_other[i]);
    EXPECT_LT(g_pref[i], 0.0f);  // increasing preferred score lowers loss
  }
  const GradCheckResult check = check_tensor_gradient(
      pref, g_pref,
      [&]() {
        RankNetLoss fresh;
        return fresh.forward(pref, other);
      },
      1e-2f);
  EXPECT_TRUE(check.ok()) << check.max_rel_error;
}

TEST(RankNet, ShapeMismatchThrows) {
  RankNetLoss loss;
  const Tensor a({3});
  const Tensor b({4});
  EXPECT_THROW(loss.forward(a, b), std::runtime_error);
}

TEST(RankNet, BackwardBeforeForwardThrows) {
  RankNetLoss loss;
  EXPECT_THROW(loss.backward_preferred(), std::runtime_error);
}

}  // namespace
}  // namespace memcom
