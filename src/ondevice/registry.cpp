#include "ondevice/registry.h"

#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
std::shared_ptr<const CompiledModel> compile_owned(const std::string& path) {
  // The registry owns the mapping through the plan: when the last holder of
  // a retired version drains, the CompiledModel destructor releases the
  // mmap with it.
  return std::make_shared<const CompiledModel>(
      std::make_shared<const MmapModel>(path));
}
}  // namespace

std::uint64_t ModelRegistry::load(const std::string& model_id,
                                  const std::string& path) {
  // Compile OUTSIDE the registry lock: publication is a pointer swap, the
  // expensive part must never block concurrent acquire()s.
  auto compiled = compile_owned(path);
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(model_id, std::move(compiled),
                        /*expect_existing=*/false);
}

std::uint64_t ModelRegistry::swap(const std::string& model_id,
                                  const std::string& path) {
  auto compiled = compile_owned(path);
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(model_id, std::move(compiled),
                        /*expect_existing=*/true);
}

std::uint64_t ModelRegistry::publish(
    const std::string& model_id,
    std::shared_ptr<const CompiledModel> compiled) {
  check(compiled != nullptr, "ModelRegistry: publish null model");
  std::lock_guard<std::mutex> lock(mutex_);
  const bool exists = entries_.count(model_id) > 0;
  return publish_locked(model_id, std::move(compiled), exists);
}

std::uint64_t ModelRegistry::publish_locked(
    const std::string& model_id,
    std::shared_ptr<const CompiledModel> compiled, bool expect_existing) {
  check(!model_id.empty(), "ModelRegistry: empty model id");
  const auto it = entries_.find(model_id);
  if (!expect_existing) {
    check(it == entries_.end(),
          "ModelRegistry: model already registered: " + model_id +
              " (use swap to publish a new version)");
    Entry entry;
    entry.compiled = std::move(compiled);
    entry.version = 1;
    entries_.emplace(model_id, std::move(entry));
    return 1;
  }
  check(it != entries_.end(),
        "ModelRegistry: swap of unknown model " + model_id);
  const CompiledModel& current = *it->second.compiled;
  // Self-declared identity, when both artifacts carry it, must agree with
  // the swap: same logical model, strictly newer version.
  if (!compiled->model_name().empty() && !current.model_name().empty()) {
    check(compiled->model_name() == current.model_name(),
          "ModelRegistry: swap of " + model_id + " changes model_name from " +
              current.model_name() + " to " + compiled->model_name());
  }
  if (compiled->model_version() > 0 && current.model_version() > 0) {
    check(compiled->model_version() > current.model_version(),
          "ModelRegistry: swap of " + model_id +
              " does not increase model_version (" +
              std::to_string(current.model_version()) + " -> " +
              std::to_string(compiled->model_version()) + ")");
  }
  // Atomic publication: after this assignment every new acquire() sees the
  // new version; existing holders keep their refcounted old plan.
  it->second.compiled = std::move(compiled);
  return ++it->second.version;
}

bool ModelRegistry::retire(const std::string& model_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(model_id) > 0;
}

std::shared_ptr<const CompiledModel> ModelRegistry::acquire(
    const std::string& model_id, std::uint64_t* version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(model_id);
  if (it == entries_.end()) {
    if (version != nullptr) {
      *version = 0;
    }
    return nullptr;
  }
  if (version != nullptr) {
    *version = it->second.version;
  }
  return it->second.compiled;
}

std::uint64_t ModelRegistry::version(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(model_id);
  return it != entries_.end() ? it->second.version : 0;
}

bool ModelRegistry::plan_adopted(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(model_id);
  return it != entries_.end() && it->second.compiled->plan_adopted();
}

bool ModelRegistry::has_model(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(model_id) > 0;
}

std::vector<std::string> ModelRegistry::model_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, unused] : entries_) {
    ids.push_back(id);
  }
  return ids;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ModelRegistry::plan_resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [id, entry] : entries_) {
    bytes += entry.compiled->plan_resident_bytes();
  }
  return bytes;
}

}  // namespace memcom
