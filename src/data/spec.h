// Dataset descriptors mirroring Table 2 of the paper.
//
// The real corpora (MovieLens-25M, Netflix, Million Songs, Google Local,
// 20-Newsgroups) and the proprietary Apple datasets (Games, Arcade) are
// replaced by a seeded latent-factor generator (see synthetic.h). Each spec
// preserves the *relationships* Table 2 reports — relative vocabulary
// sizes, input/output vocabulary ratios, sample-count ordering, and the
// popularity skew the paper calls out (e.g. Google Local's unusually even
// geographic distribution) — at a scale that trains in seconds on one CPU
// core. `scale > 1` moves every knob proportionally closer to paper scale.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace memcom {

struct DatasetSpec {
  std::string name;

  // Vocabulary layout (ids are frequency-sorted; id 0 = padding):
  //   ids [1, countries]                 -> country entities (Games/Arcade)
  //   ids [countries+1, countries+items] -> item entities, most popular first
  Index items = 0;
  Index countries = 0;
  Index output_vocab = 0;  // label space (most popular `output_vocab` items,
                           // or abstract classes for Newsgroup)

  Index train_samples = 0;
  Index eval_samples = 0;
  Index seq_len = 32;  // paper: 128

  double zipf_alpha = 1.0;   // popularity skew of item entities
  double output_alpha = 0.8; // popularity skew of the label space
  Index latent_dim = 16;     // user/item latent factor width
  double affinity = 4.0;     // strength of user-item preference vs noise

  // Paper reference numbers from Table 2 (unscaled), kept for reporting.
  Index paper_input_vocab = 0;
  Index paper_output_vocab = 0;

  // Total input vocabulary including pad: 1 + countries + items.
  Index input_vocab() const { return 1 + countries + items; }
};

// The seven datasets of Table 2, at reproduction scale. `scale` multiplies
// vocab and sample counts (scale=1 is the 1-core default; the paper's sizes
// are roughly scale=20..40 depending on the dataset).
DatasetSpec newsgroup_spec(double scale = 1.0);
DatasetSpec movielens_spec(double scale = 1.0);
DatasetSpec millionsongs_spec(double scale = 1.0);
DatasetSpec google_local_spec(double scale = 1.0);
DatasetSpec netflix_spec(double scale = 1.0);
DatasetSpec games_spec(double scale = 1.0);
DatasetSpec arcade_spec(double scale = 1.0);

// All seven, in the paper's Table 2 column order.
std::vector<DatasetSpec> all_dataset_specs(double scale = 1.0);
DatasetSpec spec_by_name(const std::string& name, double scale = 1.0);

}  // namespace memcom
