// Hash functions and collision analytics for hashed embedding tables.
//
// The paper indexes hashed tables with `i mod m` over frequency-sorted ids
// (Algorithm 2); double hashing adds a second, independent hash (Zhang et
// al. 2020). §4 quotes the expected collision rates reproduced by
// `expected_collision_rate` below.
#pragma once

#include <cstdint>

#include "core/tensor.h"

namespace memcom {

// The paper's primary hash: i mod m over frequency-sorted ids. With ids
// sorted by popularity this spreads the head of the distribution across
// distinct buckets, which is why MEmCom pairs it with frequency-sorted
// vocabularies.
inline Index mod_hash(std::int64_t id, Index m) {
  return static_cast<Index>(id % m);
}

// Second, independent hash for double hashing (splitmix64 mix then mod).
Index mixed_hash(std::int64_t id, Index m, std::uint64_t salt = 0x9E3779B9);

// Sign hash in {-1, +1} for Weinberger feature hashing.
float sign_hash(std::int64_t id, std::uint64_t salt = 0x5bd1e995);

// Expected collisions-per-bucket when v uniformly hashed keys land in m
// buckets, as quoted in §4 of the paper: v/m - 1 + (1 - 1/m)^v. This equals
// (v - E[occupied buckets]) / m.
double expected_collision_rate(Index vocab_size, Index buckets);

// Same quantity for double hashing, which behaves like m^2 effective
// buckets: v/m^2 - 1 + (1 - 1/m^2)^v.
double expected_double_hash_collision_rate(Index vocab_size, Index buckets);

// Fraction of ids in [1, v) that share their bucket (pair of hash buckets
// for pair_hash=true) with at least one other id — the empirical quantity
// the analytic formulas approximate.
double empirical_collision_fraction(Index vocab_size, Index buckets,
                                    bool pair_hash = false);

}  // namespace memcom
