// Appendix A.4 — sanity check that MEmCom produces unique embeddings.
//
// Paper setup: one Arcade model trained with MEmCom at 40x input-embedding
// compression; examine pairs of categories sharing an x_rem row.
//
// Paper result: "a pair of multipliers sharing a common x_rem embedding
// differed by greater than 0.00001 in more than 99.98% of cases".
#include <map>

#include "bench_common.h"
#include "embedding/memcom.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  TrainConfig train = train_config_from(scale, flags);
  const double threshold = flags.get_double("threshold", 1e-5);

  print_header(
      "A.4: uniqueness of MEmCom embeddings (Arcade, 40x input embedding)",
      "paper: multiplier pairs sharing an x_rem row differ by >1e-5 in\n"
      "       more than 99.98% of cases (appendix A.4)");

  const SyntheticDataset data(arcade_spec(), /*seed=*/7000 + train.seed);
  const Index vocab = data.input_vocab();
  const Index embed_dim = flags.get_int("embed-dim", 64);
  // 40x compression of the input embedding: m*e + v ~= (v*e)/40.
  const Index m = std::max<Index>(
      8, (vocab * embed_dim / 40 - vocab) / embed_dim);

  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, vocab, embed_dim, m};
  config.arch = ModelArch::kClassification;
  config.output_vocab = data.output_vocab();
  config.seed = train.seed;
  RecModel model(config);
  const double embedding_ratio =
      static_cast<double>(vocab * embed_dim) /
      static_cast<double>(embedding_param_formula(config.embedding));
  std::cout << "hash size m=" << m << " -> input embedding compression "
            << format_ratio(embedding_ratio) << "\n";
  std::cout << "training...\n";
  const EvalResult eval = train_and_evaluate(model, data, train);
  std::cout << "trained accuracy=" << format_float(eval.accuracy, 4) << "\n";

  auto& memcom =
      dynamic_cast<MemcomEmbedding&>(model.embedding());

  // Group ids by bucket and count multiplier pairs differing > threshold.
  std::map<Index, std::vector<float>> buckets;
  for (std::int32_t id = 1; id < vocab; ++id) {
    buckets[id % m].push_back(memcom.multiplier_of(id));
  }
  long long pairs = 0;
  long long distinct_pairs = 0;
  for (const auto& [bucket, multipliers] : buckets) {
    for (std::size_t i = 0; i < multipliers.size(); ++i) {
      for (std::size_t j = i + 1; j < multipliers.size(); ++j) {
        ++pairs;
        if (std::fabs(multipliers[i] - multipliers[j]) > threshold) {
          ++distinct_pairs;
        }
      }
    }
  }
  const double fraction =
      pairs > 0 ? 100.0 * static_cast<double>(distinct_pairs) /
                      static_cast<double>(pairs)
                : 0.0;

  // The comparable number: the paper's 7.5M-sample Arcade run touches every
  // app id, so its multipliers all train; at repro scale many tail ids are
  // never seen and keep the init value 1.0. Restrict to ids with at least
  // one training occurrence (what "trained multipliers" means here).
  std::map<Index, std::vector<float>> trained_buckets;
  const std::vector<Index> histogram = data.train_id_histogram();
  for (std::int32_t id = 1; id < vocab; ++id) {
    if (histogram[static_cast<std::size_t>(id)] > 0) {
      trained_buckets[id % m].push_back(memcom.multiplier_of(id));
    }
  }
  long long trained_pairs = 0;
  long long trained_distinct = 0;
  for (const auto& [bucket, multipliers] : trained_buckets) {
    for (std::size_t i = 0; i < multipliers.size(); ++i) {
      for (std::size_t j = i + 1; j < multipliers.size(); ++j) {
        ++trained_pairs;
        if (std::fabs(multipliers[i] - multipliers[j]) > threshold) {
          ++trained_distinct;
        }
      }
    }
  }
  std::cout << "\nids seen in training, sharing a bucket: "
            << format_float(trained_pairs > 0
                                ? 100.0 * trained_distinct / trained_pairs
                                : 0.0,
                            3)
            << "% of " << trained_pairs << " multiplier pairs differ by > "
            << threshold << "\npaper reference: > 99.98% (trained on 7.5M "
            << "samples, every id seen)\n";
  std::cout << "including never-seen tail ids (init value 1.0 kept): "
            << format_float(fraction, 3) << "% of " << pairs << " pairs\n";
  (void)scale;
  return 0;
}
