// Weight quantization for the exported on-device model (.mcm).
//
// Reproduces the paper's A.2 study: linear (CoreML-style) quantization of
// trained weights to fp16 / int8 / int4. Quantization is per-tensor
// symmetric: q = round(x / scale), scale = max|x| / qmax.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace memcom {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF16 = 1,
  kI8 = 2,
  kI4 = 3,
  // 4-bit GROUPWISE: per-group symmetric scales instead of one per-tensor
  // scale (the sub-byte codec the Extreme-Compression line of work uses).
  // Payload layout: [f32 scales, one per group][packed nibbles, two
  // elements per byte, low nibble first]. Groups are `group_size` flat
  // elements; group_size must be a positive multiple of 8 so every group
  // starts on a byte boundary and SIMD blocks never straddle a group.
  kI4G = 4,
};

const char* dtype_name(DType dtype);
DType dtype_from_bits(int bits);  // 32/16/8/4
int dtype_bits(DType dtype);
bool dtype_is_grouped(DType dtype);

// Default i4g group size: small enough that one outlier only poisons 32
// weights' worth of scale, large enough that the f32 scale header stays
// ~3% of the nibble payload.
inline constexpr Index kI4GroupDefault = 32;

// Number of scale groups / bytes of the scales header for an i4g tensor of
// `count` elements (the last group may be partial).
std::size_t i4g_group_count(std::size_t count, Index group_size);
std::size_t i4g_scales_bytes(std::size_t count, Index group_size);

// Bytes needed to store `count` elements of `dtype` (int4 packs two
// elements per byte, rounded up; i4g additionally carries its per-group
// scales header and requires `group_size` > 0).
std::size_t packed_byte_size(DType dtype, std::size_t count,
                             Index group_size = 0);

struct QuantizedTensor {
  DType dtype = DType::kF32;
  Shape shape;
  float scale = 1.0f;   // 1.0 for f32/f16/i4g
  Index group_size = 0; // i4g only, 0 otherwise
  std::vector<std::uint8_t> payload;

  Index numel() const { return shape_numel(shape); }
};

// `group_size` is only meaningful for kI4G (0 picks kI4GroupDefault).
QuantizedTensor quantize(const Tensor& tensor, DType dtype,
                         Index group_size = 0);
Tensor dequantize(const QuantizedTensor& quantized);

// Dequantizes `count` elements starting at `offset` straight from a raw
// payload pointer (the zero-copy path the mmap engine uses for row lookups).
// Ungrouped dtypes only — i4g spans go through dequantize_span_i4g, which
// takes the pre-split payload regions.
void dequantize_span(DType dtype, float scale, const std::uint8_t* payload,
                     Index offset, Index count, float* out);

// i4g span dequantize from the pre-split payload regions: `group_scales`
// points at the f32 scales header, `packed` at the nibble region.
void dequantize_span_i4g(const float* group_scales,
                         const std::uint8_t* packed, Index group_size,
                         Index offset, Index count, float* out);

// IEEE 754 half-precision conversions (round-to-nearest-even).
std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t half);

// Worst-case absolute rounding error for a tensor quantized at `scale`
// (scale/2 for i8/i4; for i4g pass the group's scale); used by tests.
float quantization_error_bound(DType dtype, float scale, float abs_max);

}  // namespace memcom
