#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace memcom {

float GradCheckResult::fraction_within(float tol) const {
  if (rel_errors.empty()) {
    return 1.0f;
  }
  Index within = 0;
  for (const float e : rel_errors) {
    if (e <= tol) {
      ++within;
    }
  }
  return static_cast<float>(within) /
         static_cast<float>(rel_errors.size());
}

namespace {
GradCheckResult check_impl(Tensor& values, const Tensor& analytic,
                           const std::function<float()>& loss_fn,
                           float epsilon, Index max_elements) {
  check(values.same_shape(analytic), "grad_check: shape mismatch");
  GradCheckResult result;
  const Index n = values.numel();
  const Index stride = std::max<Index>(1, n / std::max<Index>(1, max_elements));
  for (Index i = 0; i < n; i += stride) {
    const float original = values[i];
    values[i] = original + epsilon;
    const float plus = loss_fn();
    values[i] = original - epsilon;
    const float minus = loss_fn();
    values[i] = original;
    const float numeric = (plus - minus) / (2.0f * epsilon);
    const float exact = analytic[i];
    const float abs_err = std::fabs(numeric - exact);
    const float denom = std::max({std::fabs(numeric), std::fabs(exact), 1e-4f});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    // The per-element record used by fraction_within() gets a larger
    // absolute floor: near-zero gradients sitting on a ReLU kink produce
    // tiny absolute FD noise that the strict relative measure would score
    // as 100% error.
    const float floored =
        std::max({std::fabs(numeric), std::fabs(exact), 1e-2f});
    result.rel_errors.push_back(abs_err / floored);
    ++result.checked_elements;
  }
  return result;
}
}  // namespace

GradCheckResult check_param_gradient(Param& param,
                                     const std::function<float()>& loss_fn,
                                     float epsilon, Index max_elements) {
  return check_impl(param.value, param.grad, loss_fn, epsilon, max_elements);
}

GradCheckResult check_tensor_gradient(Tensor& tensor,
                                      const Tensor& analytic_grad,
                                      const std::function<float()>& loss_fn,
                                      float epsilon, Index max_elements) {
  return check_impl(tensor, analytic_grad, loss_fn, epsilon, max_elements);
}

}  // namespace memcom
