// Finite-difference gradient verification for EVERY embedding technique:
// the analytic backward pass of each compression scheme must match central
// differences on all of its parameter tables.
#include <gtest/gtest.h>

#include "embedding/factory.h"
#include "nn/grad_check.h"

namespace memcom {
namespace {

struct GradCase {
  TechniqueKind kind;
  Index knob;
};

class EmbeddingGradients : public ::testing::TestWithParam<GradCase> {};

// Loss = 1/2 sum of squared outputs over a small batch, so dL/dout = out.
float embedding_half_sq_loss(EmbeddingLayer& emb, const IdBatch& input) {
  const Tensor out = emb.forward(input, /*training=*/false);
  double acc = 0.0;
  for (Index i = 0; i < out.numel(); ++i) {
    acc += 0.5 * static_cast<double>(out[i]) * out[i];
  }
  return static_cast<float>(acc);
}

TEST_P(EmbeddingGradients, AnalyticMatchesFiniteDifference) {
  const GradCase param = GetParam();
  Rng rng(131);
  EmbeddingConfig config;
  config.kind = param.kind;
  config.vocab = 40;
  config.embed_dim = 8;
  config.knob = param.knob;
  const EmbeddingPtr emb = make_embedding(config, rng);

  // Batch with repeated ids (exercises gradient accumulation) and the pad
  // id 0.
  IdBatch input(2, 4);
  input.ids = {3, 17, 3, 0, 25, 39, 17, 6};

  const Tensor out = emb->forward(input, true);
  emb->backward(out);  // dL/dout = out for the half-square loss

  for (Param* p : emb->params()) {
    if (p->numel() == 0) {
      continue;
    }
    const GradCheckResult result = check_param_gradient(
        *p, [&]() { return embedding_half_sq_loss(*emb, input); }, 1e-3f,
        96);
    EXPECT_TRUE(result.ok(3e-2f))
        << technique_name(param.kind) << " param " << p->name
        << " max rel err " << result.max_rel_error;
  }
}

TEST_P(EmbeddingGradients, UntouchedRowsReceiveNoGradient) {
  const GradCase param = GetParam();
  Rng rng(132);
  EmbeddingConfig config;
  config.kind = param.kind;
  config.vocab = 40;
  config.embed_dim = 8;
  config.knob = param.knob;
  const EmbeddingPtr emb = make_embedding(config, rng);

  IdBatch input(1, 2);
  input.ids = {5, 9};
  const Tensor out = emb->forward(input, true);
  emb->backward(out);

  // HashedNets aliases every virtual weight into a tiny bucket vector, so
  // "untouched rows" is not meaningful there.
  if (param.kind == TechniqueKind::kHashedNets) {
    GTEST_SKIP();
  }
  for (Param* p : emb->params()) {
    if (!p->sparse || p->value.ndim() != 2 || p->value.dim(0) < 4) {
      continue;
    }
    // Rows recorded as touched must cover every nonzero gradient row.
    std::vector<Index> touched = p->touched_rows;
    std::sort(touched.begin(), touched.end());
    const Index cols = p->value.dim(1);
    for (Index r = 0; r < p->value.dim(0); ++r) {
      float row_abs = 0.0f;
      for (Index c = 0; c < cols; ++c) {
        row_abs += std::fabs(p->grad.at2(r, c));
      }
      const bool is_touched =
          std::binary_search(touched.begin(), touched.end(), r);
      if (!is_touched) {
        EXPECT_EQ(row_abs, 0.0f)
            << technique_name(param.kind) << " param " << p->name << " row "
            << r << " has gradient but was not marked touched";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, EmbeddingGradients,
    ::testing::Values(GradCase{TechniqueKind::kFull, 0},
                      GradCase{TechniqueKind::kMemcom, 10},
                      GradCase{TechniqueKind::kMemcomBias, 10},
                      GradCase{TechniqueKind::kQrMult, 10},
                      GradCase{TechniqueKind::kQrConcat, 10},
                      GradCase{TechniqueKind::kNaiveHash, 10},
                      GradCase{TechniqueKind::kDoubleHash, 10},
                      GradCase{TechniqueKind::kFactorized, 4},
                      GradCase{TechniqueKind::kReduceDim, 4},
                      GradCase{TechniqueKind::kTruncateRare, 12},
                      GradCase{TechniqueKind::kHashedNets, 32},
                      GradCase{TechniqueKind::kWeinberger, 10},
                      GradCase{TechniqueKind::kMixedDim, 8},
                      GradCase{TechniqueKind::kTtRec, 3}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return technique_name(info.param.kind);
    });

}  // namespace
}  // namespace memcom
