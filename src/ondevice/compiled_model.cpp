#include "ondevice/compiled_model.h"

#include <utility>

#include "core/check.h"
#include "ondevice/clock.h"

namespace memcom {

CompiledModel::CompiledModel(const MmapModel& model, PlanPolicy policy)
    : model_(model) {
  compile(policy);
}

CompiledModel::CompiledModel(std::shared_ptr<const MmapModel> model,
                             PlanPolicy policy)
    : owned_(std::move(model)), model_(*owned_) {
  compile(policy);
}

void CompiledModel::compile(PlanPolicy policy) {
  const SteadyClock::time_point start = SteadyClock::now();
  kernels_ = &select_kernels();
  if (policy == PlanPolicy::kAdoptIfPresent) {
    PlanDecodeResult decoded = decode_plan(model_);
    if (decoded.status == PlanStatus::kValid) {
      plan_adopted_ = true;
      adopt(std::move(decoded.plan));
    } else {
      // Absent or stale: fall back to the full compile. build_plan() is
      // the function the writer serialized the section with, so the
      // fallback's buffers are bit-identical to a healthy plan's.
      plan_fallback_reason_ = decoded.status == PlanStatus::kStale
                                  ? decoded.reason
                                  : "no plan section";
      adopt(build_plan(model_));
    }
  } else {
    plan_fallback_reason_ = "plan adoption disabled";
    adopt(build_plan(model_));
  }
  CatalogIndexDecodeResult index = decode_catalog_index(model_);
  if (index.status == PlanStatus::kValid) {
    index_adopted_ = true;
    catalog_index_ = std::move(index.index);
  } else {
    index_fallback_reason_ = index.status == PlanStatus::kStale
                                 ? index.reason
                                 : "no catalog index section";
  }
  compile_ms_ = elapsed_ms(start);
}

TensorRef CompiledModel::resolve_handle(const PlanHandle& handle) const {
  const TensorEntry& entry =
      model_.entry_at(static_cast<std::size_t>(handle.index));
  check(entry.name == handle.name,
        "plan: handle name mismatch for " + handle.name);
  TensorRef ref;
  ref.entry = &entry;
  ref.payload = model_.payload(entry);
  ref.dtype = entry.dtype;
  ref.scale = entry.scale;
  ref.element_bits = static_cast<std::size_t>(dtype_bits(entry.dtype));
  ref.file_offset = static_cast<Index>(entry.offset);
  if (entry.dtype == DType::kF32) {
    ref.f32 = reinterpret_cast<const float*>(ref.payload);
  }
  ref.src = make_span_src(entry, ref.payload);
  return ref;
}

void CompiledModel::adopt(CompiledPlan plan) {
  model_name_ = std::move(plan.model_name);
  model_version_ = plan.model_version;
  arch_ = std::move(plan.arch);
  technique_ = std::move(plan.technique);
  kind_ = plan.kind;
  has_hidden_ = plan.has_hidden;
  vocab_ = plan.vocab;
  embed_dim_ = plan.embed_dim;
  hash_size_ = plan.hash_size;
  hidden_dim_ = plan.hidden_dim;
  output_dim_ = plan.output_dim;
  factor_dim_ = plan.factor_dim;
  // Qualified: the accessor of the same name shadows the free function.
  embed_ops_ = ::memcom::embedding_stage_ops(kind_);

  // The handle table rides in plan_tensor_roles() order (embedding
  // tensors, bn1, [dense1, bn2], out); fixing it up is a cursor walk —
  // no string lookups on the adopt path.
  std::size_t next = 0;
  auto take = [&]() {
    check(next < plan.handles.size(), "plan: handle table underrun");
    return resolve_handle(plan.handles[next++]);
  };
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
    case Technique::kWeinberger:
      emb_a_ = take();
      break;
    case Technique::kMemcom:
    case Technique::kMemcomBias:
      emb_a_ = take();  // emb.shared
      emb_b_ = take();  // emb.multiplier
      if (kind_ == Technique::kMemcomBias) {
        emb_c_ = take();  // emb.bias
      }
      break;
    case Technique::kQrMult:
    case Technique::kQrConcat:
      emb_a_ = take();  // emb.remainder
      emb_b_ = take();  // emb.quotient
      break;
    case Technique::kDoubleHash:
      emb_a_ = take();  // emb.table_a
      emb_b_ = take();  // emb.table_b
      break;
    case Technique::kFactorized:
      emb_a_ = take();  // emb.factors
      emb_b_ = take();  // emb.projection
      check_eq(factor_dim_, emb_a_.entry->shape[1], "factorized h");
      break;
  }

  auto adopt_batchnorm = [&](BatchNormPlan& bn, Index width,
                             PlanBuffer scale, PlanBuffer shift) {
    bn.gamma = take();
    bn.beta = take();
    bn.mean = take();
    bn.var = take();
    bn.width = width;
    check_eq(width, static_cast<Index>(scale.size()), "batchnorm width");
    bn.scale = std::move(scale);
    bn.shift = std::move(shift);
  };
  auto adopt_dense = [&](DensePlan& dense, Index expect_in, Index expect_out,
                         PlanBuffer bias) {
    dense.weight = take();
    dense.bias_ref = take();
    dense.in = dense.weight.entry->shape[0];
    dense.out = dense.weight.entry->shape[1];
    // The scratch buffers the forward pass reads/writes are sized from
    // metadata, so an inconsistent file must fail here, not overflow the
    // arena at run time.
    check_eq(expect_in, dense.in, "dense input width");
    check_eq(expect_out, dense.out, "dense output width");
    check_eq(expect_out, static_cast<Index>(bias.size()), "dense bias width");
    dense.bias = std::move(bias);
  };

  adopt_batchnorm(bn1_, embed_dim_, std::move(plan.bn1_scale),
                  std::move(plan.bn1_shift));
  if (has_hidden_) {
    adopt_dense(dense1_, embed_dim_, hidden_dim_,
                std::move(plan.dense1_bias));
    adopt_batchnorm(bn2_, hidden_dim_, std::move(plan.bn2_scale),
                    std::move(plan.bn2_shift));
  }
  adopt_dense(out_, has_hidden_ ? hidden_dim_ : embed_dim_, output_dim_,
              std::move(plan.out_bias));
  projection_ = std::move(plan.projection);
  check(next == plan.handles.size(), "plan: unused handle table entries");
}

std::vector<Index> CompiledModel::cache_row_widths() const {
  // One partition per embedding tensor of the plan, each with that tensor's
  // row width.
  const Index e = embed_dim_;
  switch (kind_) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
      return {e};
    case Technique::kMemcom:
      return {e, 1};  // shared rows + per-entity multiplier
    case Technique::kMemcomBias:
      return {e, 1, 1};  // + per-entity bias
    case Technique::kQrMult:
      return {e, e};
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      return {e / 2, e / 2};
    case Technique::kFactorized:
      return {factor_dim_};  // the projection is pre-dequantized already
    case Technique::kWeinberger:
      // The one-hot path streams the entire table every forward; caching
      // individual rows cannot skip any work.
      return {};
  }
  return {};
}

std::size_t CompiledModel::plan_resident_bytes() const {
  // Zero-copy adopted buffers still count: the plan section's pages are
  // resident while the plan is referenced, same as a heap copy would be.
  std::size_t bytes = projection_.byte_size();
  bytes += bn1_.scale.byte_size() + bn1_.shift.byte_size();
  bytes += bn2_.scale.byte_size() + bn2_.shift.byte_size();
  bytes += dense1_.bias.byte_size() + out_.bias.byte_size();
  return bytes;
}

}  // namespace memcom
