// DP-SGD gradient aggregation (Abadi et al. 2016), the mechanism behind the
// paper's private-federated-learning study (Appendix A.3, trained there
// with TensorFlow Privacy's RDP framework).
//
// Per example: clip the example's gradient to global L2 norm <= clip_norm.
// Per batch: sum clipped gradients, add N(0, (noise_multiplier*clip_norm)^2)
// per coordinate, divide by batch size, and hand the result to a normal
// optimizer.
#pragma once

#include <unordered_map>

#include "core/rng.h"
#include "nn/param.h"

namespace memcom {

class DpSgdAggregator {
 public:
  // noise_multiplier == 0 reduces to plain (clipped) minibatch SGD; the
  // paper's Figure 5 sweeps this knob.
  DpSgdAggregator(double clip_norm, double noise_multiplier, Rng rng);

  // Clears the accumulators (call at the start of every batch).
  void begin_batch(const ParamRefs& params);

  // Takes the single-example gradient currently stored in `params[*]->grad`,
  // clips it to `clip_norm` (global L2 across all params), and adds it to
  // the accumulator. The caller zeroes the grads before the next example.
  void accumulate_example(const ParamRefs& params);

  // Writes (sum of clipped grads + Gaussian noise) / example_count back
  // into `params[*]->grad`, ready for an Optimizer::step.
  void finalize_into_grads(const ParamRefs& params);

  Index example_count() const { return example_count_; }
  double clip_norm() const { return clip_norm_; }
  double noise_multiplier() const { return noise_multiplier_; }

  // L2 norm of the last example's gradient before clipping (observability /
  // tests).
  double last_example_norm() const { return last_example_norm_; }

 private:
  double clip_norm_;
  double noise_multiplier_;
  Rng rng_;
  std::unordered_map<const Param*, Tensor> accum_;
  Index example_count_ = 0;
  double last_example_norm_ = 0.0;
};

}  // namespace memcom
