// The kernel-layer contract (src/ondevice/kernels.h):
//   * packed_byte_span rounds sub-byte bit intervals OUT to whole bytes
//     (the touch() undercount regression);
//   * select_kernels honors MEMCOM_DISABLE_SIMD / MEMCOM_ENABLE_FMA;
//   * every dispatched kernel except the opt-in fused axpy is BIT-identical
//     to the scalar reference (compared with memcmp, not float ==, so
//     -0.0 vs +0.0 and NaN payload differences cannot hide);
//   * the fused axpy stays within the documented one-rounding tolerance.
#include "ondevice/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.h"

namespace memcom {
namespace {

bool bits_equal(const float* a, const float* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

// Codec view over an in-memory QuantizedTensor (mirrors what
// CompiledModel::resolve builds from a directory entry).
SpanSrc make_src(const QuantizedTensor& q) {
  SpanSrc src;
  src.dtype = q.dtype;
  src.scale = q.scale;
  src.payload = q.payload.data();
  if (q.dtype == DType::kI4G) {
    src.group_scales = reinterpret_cast<const float*>(q.payload.data());
    src.packed = q.payload.data() +
                 i4g_scales_bytes(static_cast<std::size_t>(q.numel()),
                                  q.group_size);
    src.group_size = q.group_size;
  }
  return src;
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// --- packed_byte_span: the touch() undercount regression -------------------

TEST(PackedByteSpan, UnalignedI4SpanCoversBothBytes) {
  // Elements 1..2 at 4 bits occupy bits [4, 12): bytes 0 AND 1. The old
  // formula ceil(count*bits/8) = 1 byte was the undercount bug.
  const ByteSpan span = packed_byte_span(/*offset=*/1, /*count=*/2, 4);
  EXPECT_EQ(span.offset, 0);
  EXPECT_EQ(span.length, 2);
}

TEST(PackedByteSpan, MatchesExactBitIntervalForAllSmallSpans) {
  for (const int bits : {4, 8, 16, 32}) {
    for (Index offset = 0; offset <= 19; ++offset) {
      for (Index count = 0; count <= 19; ++count) {
        const ByteSpan span = packed_byte_span(offset, count, bits);
        const Index first_bit = offset * bits;
        const Index last_bit = (offset + count) * bits;
        EXPECT_EQ(span.offset, first_bit / 8);
        EXPECT_EQ(span.length, (last_bit + 7) / 8 - first_bit / 8)
            << "bits=" << bits << " offset=" << offset << " count=" << count;
      }
    }
  }
}

TEST(PackedByteSpan, ByteAlignedDtypesDegradeToPlainArithmetic) {
  const ByteSpan span = packed_byte_span(3, 5, 32);
  EXPECT_EQ(span.offset, 12);
  EXPECT_EQ(span.length, 20);
}

// --- dispatch selection ----------------------------------------------------

TEST(KernelDispatch, DisableSimdForcesScalar) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", "1");
  EXPECT_STREQ(select_kernels().name, "scalar");
}

TEST(KernelDispatch, SelectedFamilyIsKnown) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  ScopedEnv fma("MEMCOM_ENABLE_FMA", nullptr);
  const std::string name = select_kernels().name;
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon-stub")
      << name;
}

TEST(KernelDispatch, FmaIsOptInOnTop) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  {
    ScopedEnv fma("MEMCOM_ENABLE_FMA", nullptr);
    EXPECT_STRNE(select_kernels().name, "avx2+fma");
  }
  ScopedEnv fma("MEMCOM_ENABLE_FMA", "1");
  const std::string name = select_kernels().name;
  if (std::string(scalar_kernels().name) != name && name.rfind("avx2", 0) == 0) {
    EXPECT_EQ(name, "avx2+fma");
  }
}

TEST(KernelDispatch, ScalarSetIsComplete) {
  const KernelSet& k = scalar_kernels();
  EXPECT_NE(k.dequant_span, nullptr);
  EXPECT_NE(k.acc_add, nullptr);
  EXPECT_NE(k.acc_scale_add, nullptr);
  EXPECT_NE(k.acc_scale_bias_add, nullptr);
  EXPECT_NE(k.acc_mult_add, nullptr);
  EXPECT_NE(k.axpy, nullptr);
  EXPECT_NE(k.dot, nullptr);
  EXPECT_NE(k.dot_span, nullptr);
}

// --- dispatched accumulate kernels: bit-identical to scalar ----------------

// Sizes straddle the 8-lane vector body: tails, exact multiples, tiny.
const Index kSizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 40, 63, 100};

std::vector<float> random_vec(Index n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) {
    x = rng.uniform(-2.0f, 2.0f);
  }
  // Sprinkle signed zeros and denormal-scale values: the cases where a
  // "same value" kernel can still differ in bit pattern.
  if (n >= 3) {
    v[0] = -0.0f;
    v[1] = 0.0f;
    v[2] = 1e-40f;
  }
  return v;
}

TEST(KernelBitIdentity, AccumulateFamilyMatchesScalarExactly) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  ScopedEnv fma("MEMCOM_ENABLE_FMA", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(601);
  for (const Index n : kSizes) {
    const std::vector<float> row = random_vec(n, rng);
    const std::vector<float> other = random_vec(n, rng);
    const std::vector<float> base = random_vec(n, rng);
    for (const float m : {0.5f, -0.0f, 0.0f, -1.75f}) {
      std::vector<float> a = base;
      std::vector<float> b = base;
      ref.acc_scale_add(a.data(), row.data(), m, n);
      simd.acc_scale_add(b.data(), row.data(), m, n);
      EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()))
          << "acc_scale_add n=" << n << " m=" << m;

      a = base;
      b = base;
      ref.acc_scale_bias_add(a.data(), row.data(), m, 0.25f, n);
      simd.acc_scale_bias_add(b.data(), row.data(), m, 0.25f, n);
      EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()))
          << "acc_scale_bias_add n=" << n << " m=" << m;

      a = base;
      b = base;
      ref.axpy(a.data(), m, row.data(), n);
      simd.axpy(b.data(), m, row.data(), n);
      EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()))
          << "axpy n=" << n << " a=" << m;
    }
    std::vector<float> a = base;
    std::vector<float> b = base;
    ref.acc_add(a.data(), row.data(), n);
    simd.acc_add(b.data(), row.data(), n);
    EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size())) << "acc_add n=" << n;

    a = base;
    b = base;
    ref.acc_mult_add(a.data(), row.data(), other.data(), n);
    simd.acc_mult_add(b.data(), row.data(), other.data(), n);
    EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()))
        << "acc_mult_add n=" << n;
  }
}

// --- dispatched dequant_span: bit-identical for every codec ----------------

TEST(KernelBitIdentity, DequantSpanMatchesScalarForEveryDtypeAndOffset) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(602);
  const Tensor t = Tensor::randn({100}, rng, 0.3f);
  struct Case {
    DType dtype;
    Index group_size;
  };
  for (const Case c : {Case{DType::kF32, 0}, Case{DType::kF16, 0},
                       Case{DType::kI8, 0}, Case{DType::kI4, 0},
                       Case{DType::kI4G, 8}, Case{DType::kI4G, 32}}) {
    const QuantizedTensor q = quantize(t, c.dtype, c.group_size);
    const SpanSrc src = make_src(q);
    const Index n = q.numel();
    for (Index offset = 0; offset < n; offset += 3) {
      for (const Index count : {Index{1}, Index{2}, Index{7}, Index{8},
                                Index{17}, n - offset}) {
        if (count <= 0 || offset + count > n) {
          continue;
        }
        std::vector<float> a(static_cast<std::size_t>(count), -7.0f);
        std::vector<float> b(static_cast<std::size_t>(count), 7.0f);
        ref.dequant_span(src, offset, count, a.data());
        simd.dequant_span(src, offset, count, b.data());
        EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()))
            << dtype_name(c.dtype) << "/" << c.group_size
            << " offset=" << offset << " count=" << count;
      }
    }
  }
}

// --- dot kernels: striped contract, bit-identical across families ----------

TEST(KernelBitIdentity, DotMatchesScalarExactly) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  ScopedEnv fma("MEMCOM_ENABLE_FMA", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(604);
  for (const Index n : kSizes) {
    const std::vector<float> a = random_vec(n, rng);
    const std::vector<float> b = random_vec(n, rng);
    const float rs = ref.dot(a.data(), b.data(), n);
    const float vs = simd.dot(a.data(), b.data(), n);
    EXPECT_TRUE(bits_equal(&rs, &vs, 1)) << "dot n=" << n;
  }
  // Adversarial all-equal and signed-zero vectors: catches a reduce order
  // that happens to agree on random data but not on exact cancellation.
  for (const Index n : kSizes) {
    std::vector<float> a(static_cast<std::size_t>(n), 0.25f);
    std::vector<float> b(static_cast<std::size_t>(n), -0.0f);
    const float rs = ref.dot(a.data(), b.data(), n);
    const float vs = simd.dot(a.data(), b.data(), n);
    EXPECT_TRUE(bits_equal(&rs, &vs, 1)) << "dot signed-zero n=" << n;
  }
}

TEST(KernelBitIdentity, DotSpanMatchesScalarForEveryDtypeAndOffset) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(605);
  const Tensor t = Tensor::randn({100}, rng, 0.3f);
  const std::vector<float> vec = random_vec(100, rng);
  struct Case {
    DType dtype;
    Index group_size;
  };
  for (const Case c : {Case{DType::kF32, 0}, Case{DType::kF16, 0},
                       Case{DType::kI8, 0}, Case{DType::kI4, 0},
                       Case{DType::kI4G, 8}, Case{DType::kI4G, 32}}) {
    const QuantizedTensor q = quantize(t, c.dtype, c.group_size);
    const SpanSrc src = make_src(q);
    const Index n = q.numel();
    for (Index offset = 0; offset < n; offset += 3) {
      for (const Index count : {Index{1}, Index{2}, Index{7}, Index{8},
                                Index{17}, n - offset}) {
        if (count <= 0 || offset + count > n) {
          continue;
        }
        const float rs = ref.dot_span(src, offset, count, vec.data());
        const float vs = simd.dot_span(src, offset, count, vec.data());
        EXPECT_TRUE(bits_equal(&rs, &vs, 1))
            << dtype_name(c.dtype) << "/" << c.group_size
            << " offset=" << offset << " count=" << count;
        // Striped-contract consistency: streaming the compressed row must
        // give the exact float the plain dot produces on the dequantized
        // row — the chunking (kDotChunk multiple of 8) may not shift lanes.
        std::vector<float> dq(static_cast<std::size_t>(count));
        ref.dequant_span(src, offset, count, dq.data());
        const float plain = ref.dot(dq.data(), vec.data(), count);
        EXPECT_TRUE(bits_equal(&rs, &plain, 1))
            << dtype_name(c.dtype) << "/" << c.group_size
            << " offset=" << offset << " count=" << count;
      }
    }
  }
}

TEST(KernelBitIdentity, DotSpanCrossesChunkBoundaryBitExactly) {
  // Span longer than the 256-float streaming chunk: the second chunk starts
  // at element 256 (lane 0 again), so lanes stay aligned across the seam.
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(606);
  const Index n = 600;
  const Tensor t = Tensor::randn({n}, rng, 0.3f);
  const std::vector<float> vec = random_vec(n, rng);
  for (const DType dtype : {DType::kF32, DType::kF16, DType::kI8}) {
    const QuantizedTensor q = quantize(t, dtype);
    const SpanSrc src = make_src(q);
    for (const Index offset : {Index{0}, Index{5}}) {
      const Index count = n - offset - 3;
      const float rs = ref.dot_span(src, offset, count, vec.data());
      const float vs = simd.dot_span(src, offset, count, vec.data());
      EXPECT_TRUE(bits_equal(&rs, &vs, 1))
          << dtype_name(dtype) << " offset=" << offset;
      std::vector<float> dq(static_cast<std::size_t>(count));
      ref.dequant_span(src, offset, count, dq.data());
      const float plain = ref.dot(dq.data(), vec.data(), count);
      EXPECT_TRUE(bits_equal(&rs, &plain, 1))
          << dtype_name(dtype) << " offset=" << offset;
    }
  }
}

TEST(KernelBitIdentity, F16DequantMatchesForEveryFiniteBitPattern) {
  // Exhaustive over the half-precision space minus NaNs: hardware VCVTPH2PS
  // (the AVX2 path) quiets signaling NaNs where the software converter
  // preserves the payload, so NaN patterns are excluded by design — weights
  // are never NaN.
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  std::vector<std::uint16_t> halves;
  halves.reserve(1 << 16);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    const bool is_nan = (h & 0x7C00u) == 0x7C00u && (h & 0x03FFu) != 0;
    if (!is_nan) {
      halves.push_back(static_cast<std::uint16_t>(h));
    }
  }
  SpanSrc src;
  src.dtype = DType::kF16;
  src.payload = reinterpret_cast<const std::uint8_t*>(halves.data());
  const Index n = static_cast<Index>(halves.size());
  std::vector<float> a(halves.size()), b(halves.size());
  ref.dequant_span(src, 0, n, a.data());
  simd.dequant_span(src, 0, n, b.data());
  EXPECT_TRUE(bits_equal(a.data(), b.data(), a.size()));
}

// --- i4 / i4g golden spans -------------------------------------------------

TEST(DequantGolden, UnalignedI4SpanReadsTheRightNibbles) {
  // Payload bytes: 0x21 0x43 0x87 -> elements (low nibble first):
  //   1, 2, 3, 4, 7, -8  (0x8 sign-extends to -8)
  const std::uint8_t payload[] = {0x21, 0x43, 0x87};
  SpanSrc src;
  src.dtype = DType::kI4;
  src.scale = 0.5f;
  src.payload = payload;
  float out[6] = {};
  // Odd offset, even count: straddles byte 0 and byte 1.
  scalar_kernels().dequant_span(src, 1, 2, out);
  EXPECT_EQ(out[0], 1.0f);   // element 1 = 2 * 0.5
  EXPECT_EQ(out[1], 1.5f);   // element 2 = 3 * 0.5
  // Tail crossing into the sign-extended nibble.
  scalar_kernels().dequant_span(src, 4, 2, out);
  EXPECT_EQ(out[0], 3.5f);   // element 4 = 7 * 0.5
  EXPECT_EQ(out[1], -4.0f);  // element 5 = -8 * 0.5
  // Full span sanity.
  scalar_kernels().dequant_span(src, 0, 6, out);
  const float expect[] = {0.5f, 1.0f, 1.5f, 2.0f, 3.5f, -4.0f};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i], expect[i]) << i;
  }
}

TEST(DequantGolden, I4GSpanAppliesPerGroupScales) {
  // Two groups of 8; group scales 1.0 and 0.25. Elements are i in group 0
  // and -1 in group 1.
  std::vector<float> values;
  for (int i = 0; i < 8; ++i) {
    values.push_back(static_cast<float>(i));
  }
  for (int i = 0; i < 8; ++i) {
    values.push_back(-1.0f);
  }
  Tensor t({16});
  std::copy(values.begin(), values.end(), t.data());
  const QuantizedTensor q = quantize(t, DType::kI4G, /*group_size=*/8);
  const SpanSrc src = make_src(q);
  // Group 0 absmax 7 -> scale 1.0; group 1 absmax 1 -> scale 1/7.
  EXPECT_EQ(src.group_scales[0], 1.0f);
  EXPECT_EQ(src.group_scales[1], 1.0f / 7.0f);
  float out[4] = {};
  // Span straddling the group boundary at an odd element offset.
  scalar_kernels().dequant_span(src, 7, 2, out);
  EXPECT_EQ(out[0], 7.0f);
  EXPECT_EQ(out[1], -1.0f);
  // Unaligned span entirely inside group 1.
  scalar_kernels().dequant_span(src, 9, 3, out);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i], -1.0f) << i;
  }
}

// --- fused axpy: documented tolerance, not bit-exactness -------------------

TEST(KernelTolerance, FusedAxpyStaysWithinOneRoundingOfScalar) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  ScopedEnv fma("MEMCOM_ENABLE_FMA", "1");
  const KernelSet& fused = select_kernels();
  if (std::string(fused.name) != "avx2+fma") {
    GTEST_SKIP() << "no FMA hardware dispatched (" << fused.name << ")";
  }
  const KernelSet& ref = scalar_kernels();
  Rng rng(603);
  for (const Index n : kSizes) {
    const std::vector<float> x = random_vec(n, rng);
    const std::vector<float> base = random_vec(n, rng);
    const float a = 1.3f;
    std::vector<float> ys = base;
    std::vector<float> yf = base;
    ref.axpy(ys.data(), a, x.data(), n);
    fused.axpy(yf.data(), a, x.data(), n);
    for (std::size_t i = 0; i < ys.size(); ++i) {
      // One fused vs two roundings: the difference is bounded by half an
      // ulp of the product magnitude.
      const float bound =
          std::fabs(a * x[i]) * 0x1.0p-23f + std::fabs(ys[i]) * 0x1.0p-23f +
          1e-38f;
      EXPECT_NEAR(ys[i], yf[i], bound) << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace memcom
