// Minimal command-line flag parsing for the bench/example binaries.
// Accepts `--name=value`, `--name value`, and bare `--switch` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memcom {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  // Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace memcom
