#include "ondevice/format.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/serialize.h"
#include "ondevice/engine.h"
#include "ondevice/memory_meter.h"

namespace memcom {
namespace {

class FormatTest : public ::testing::Test {
 protected:
  std::string temp_path() {
    path_ = std::filesystem::temp_directory_path() /
            ("memcom_format_test_" + std::to_string(counter_++) + ".mcm");
    return path_.string();
  }
  void TearDown() override {
    if (!path_.empty()) {
      std::filesystem::remove(path_);
    }
  }
  std::filesystem::path path_;
  static int counter_;
};
int FormatTest::counter_ = 0;

TEST_F(FormatTest, WriteReadRoundTripF32) {
  const std::string path = temp_path();
  Rng rng(161);
  const Tensor a = Tensor::randn({8, 4}, rng);
  const Tensor b = Tensor::randn({3}, rng);
  ModelWriter writer(path);
  writer.set_metadata("arch", "ranking");
  writer.set_metadata_int("vocab", 1234);
  writer.add_tensor("alpha", a);
  writer.add_tensor("beta", b);
  const std::uint64_t written = writer.finish();
  EXPECT_GT(written, a.numel() * 4u);

  const MmapModel model(path);
  EXPECT_EQ(model.file_size(), written);
  EXPECT_EQ(model.metadata_value("arch"), "ranking");
  EXPECT_EQ(model.metadata_int("vocab"), 1234);
  EXPECT_TRUE(model.has_tensor("alpha"));
  EXPECT_FALSE(model.has_tensor("gamma"));
  EXPECT_TRUE(model.load_tensor("alpha").equals(a));
  EXPECT_TRUE(model.load_tensor("beta").equals(b));
  EXPECT_EQ(model.tensor_names().size(), 2u);
}

TEST_F(FormatTest, ModelIdentityRoundTrips) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.set_model_identity("sessionrec", 7);
  writer.add_tensor("alpha", Tensor::full({4}, 1.0f));
  writer.finish();

  const MmapModel model(path);
  EXPECT_TRUE(model.has_model_identity());
  EXPECT_EQ(model.model_name(), "sessionrec");
  EXPECT_EQ(model.model_version(), 7u);
}

TEST_F(FormatTest, LegacyFileWithoutIdentityReportsSentinels) {
  // Files written before set_model_identity existed must keep loading; the
  // accessors report the "no identity" sentinels instead of throwing.
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.add_tensor("alpha", Tensor::full({4}, 1.0f));
  writer.finish();

  const MmapModel model(path);
  EXPECT_FALSE(model.has_model_identity());
  EXPECT_EQ(model.model_name(), "");
  EXPECT_EQ(model.model_version(), 0u);
}

TEST_F(FormatTest, InvalidModelIdentityRejected) {
  ModelWriter writer(temp_path());
  EXPECT_THROW(writer.set_model_identity("", 1), std::runtime_error);
  EXPECT_THROW(writer.set_model_identity("name", 0), std::runtime_error);
}

TEST_F(FormatTest, QuantizedTensorsRoundTripWithinBound) {
  const std::string path = temp_path();
  Rng rng(162);
  const Tensor t = Tensor::randn({32, 8}, rng, 0.2f);
  ModelWriter writer(path);
  writer.add_tensor("w32", t, DType::kF32);
  writer.add_tensor("w16", t, DType::kF16);
  writer.add_tensor("w8", t, DType::kI8);
  writer.add_tensor("w4", t, DType::kI4);
  writer.finish();

  const MmapModel model(path);
  EXPECT_TRUE(model.load_tensor("w32").equals(t));
  EXPECT_TENSOR_NEAR(model.load_tensor("w16"), t, 0.001f);
  const TensorEntry& e8 = model.entry("w8");
  EXPECT_TENSOR_NEAR(model.load_tensor("w8"), t, e8.scale * 0.5f + 1e-6f);
  const TensorEntry& e4 = model.entry("w4");
  EXPECT_TENSOR_NEAR(model.load_tensor("w4"), t, e4.scale * 0.5f + 1e-6f);
  // Stored sizes shrink with precision.
  EXPECT_GT(model.entry("w32").byte_size, model.entry("w16").byte_size);
  EXPECT_GT(model.entry("w16").byte_size, model.entry("w8").byte_size);
  EXPECT_GT(model.entry("w8").byte_size, model.entry("w4").byte_size);
}

TEST_F(FormatTest, GroupedTensorBumpsFormatToV2AndRoundTrips) {
  const std::string path = temp_path();
  Rng rng(164);
  const Tensor t = Tensor::randn({32, 8}, rng, 0.2f);
  ModelWriter writer(path);
  writer.add_tensor("flat", t, DType::kI8);
  writer.add_tensor("grouped", t, DType::kI4G, /*group_size=*/16);
  writer.add_tensor("grouped_default", t, DType::kI4G);
  writer.finish();

  // A grouped tensor bumps the container version to 2.
  {
    std::ifstream in(path, std::ios::binary);
    read_u32(in);  // magic
    EXPECT_EQ(read_u32(in), 2u);
  }
  const MmapModel model(path);
  const TensorEntry& grouped = model.entry("grouped");
  EXPECT_EQ(grouped.dtype, DType::kI4G);
  EXPECT_EQ(grouped.group_size, 16);
  EXPECT_EQ(model.entry("grouped_default").group_size, kI4GroupDefault);
  EXPECT_EQ(model.entry("flat").group_size, 0);
  EXPECT_EQ(grouped.byte_size,
            packed_byte_size(DType::kI4G, 32 * 8, 16));
  // Groupwise 4-bit is tighter than i8 but looser than flat i4 in bytes
  // (the scales header), and the per-group bound holds element-wise.
  EXPECT_LT(grouped.byte_size, model.entry("flat").byte_size);
  const Tensor back = model.load_tensor("grouped");
  const auto* scales =
      reinterpret_cast<const float*>(model.payload(grouped));
  for (Index i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), scales[i / 16] * 0.5f + 1e-6f) << i;
  }
}

TEST_F(FormatTest, UngroupedFilesStayVersion1) {
  // Legacy tolerance is two-way: files without grouped tensors keep the v1
  // layout byte-for-byte, so readers that predate v2 still open them.
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.add_tensor("w", Tensor::full({4}, 1.0f), DType::kI4);
  writer.finish();
  std::ifstream in(path, std::ios::binary);
  read_u32(in);  // magic
  EXPECT_EQ(read_u32(in), 1u);
}

// --- v3 plan section (container-level; plan semantics in test_plan.cpp) ----

namespace {
// A minimal model build_plan() can compile: ranking trunk, uncompressed
// embedding — enough for ModelWriter::set_emit_plan to stage a v3 file.
void add_plannable_model(ModelWriter& writer) {
  writer.set_metadata("arch", "ranking");
  writer.set_metadata("technique", "uncompressed");
  writer.set_metadata_int("vocab", 16);
  writer.set_metadata_int("embed_dim", 4);
  writer.set_metadata_int("knob", 0);
  writer.set_metadata_int("output_dim", 2);
  writer.add_tensor("emb.table", Tensor::full({16, 4}, 0.5f));
  writer.add_tensor("bn1.gamma", Tensor::full({4}, 1.0f));
  writer.add_tensor("bn1.beta", Tensor::full({4}, 0.0f));
  writer.add_tensor("bn1.mean", Tensor::full({4}, 0.0f));
  writer.add_tensor("bn1.var", Tensor::full({4}, 1.0f));
  writer.add_tensor("out.weight", Tensor::full({4, 2}, 0.25f));
  writer.add_tensor("out.bias", Tensor::full({2}, 0.0f));
}
}  // namespace

TEST_F(FormatTest, EmitPlanBumpsFormatToV3) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  add_plannable_model(writer);
  writer.set_emit_plan();
  const std::uint64_t written = writer.finish();
  {
    std::ifstream in(path, std::ios::binary);
    read_u32(in);  // magic
    EXPECT_EQ(read_u32(in), 3u);
  }
  const MmapModel model(path);
  EXPECT_EQ(model.format_version(), 3u);
  ASSERT_TRUE(model.has_plan_section());
  EXPECT_GT(model.plan_size(), 0u);
  EXPECT_EQ(model.plan_offset() % 64, 0u);
  EXPECT_EQ(model.plan_offset() + model.plan_size(), written);
  EXPECT_NE(model.plan_data(), nullptr);
  // The tensors read back exactly as in a plan-less file.
  EXPECT_TRUE(model.load_tensor("emb.table").equals(
      Tensor::full({16, 4}, 0.5f)));
}

TEST_F(FormatTest, PlanlessWriterStaysV1WithNoPlanHeaderFields) {
  // v3 is opt-in per file: without set_emit_plan the container must stay
  // byte-compatible with pre-v3 readers (no plan offset/size fields).
  const std::string path = temp_path();
  ModelWriter writer(path);
  add_plannable_model(writer);
  writer.finish();
  std::ifstream in(path, std::ios::binary);
  read_u32(in);  // magic
  EXPECT_EQ(read_u32(in), 1u);
  const MmapModel model(path);
  EXPECT_FALSE(model.has_plan_section());
  EXPECT_EQ(model.plan_data(), nullptr);
}

TEST_F(FormatTest, PlanSectionPastEofToleratedAtOpen) {
  // A v3 header whose plan section reaches past EOF (truncated in transit)
  // must not fail the open: the tensors are intact and the loader falls
  // back to a compile. The plan is flagged unreachable with a reason.
  const std::string path = temp_path();
  {
    ModelWriter writer(path);
    add_plannable_model(writer);
    writer.set_emit_plan();
    writer.finish();
  }
  const std::uint64_t plan_offset = MmapModel(path).plan_offset();
  std::filesystem::resize_file(path, plan_offset + 8);
  const MmapModel model(path);
  EXPECT_TRUE(model.has_plan_section());
  EXPECT_EQ(model.plan_data(), nullptr);
  EXPECT_FALSE(model.plan_bounds_error().empty());
  EXPECT_TRUE(model.load_tensor("out.bias").equals(Tensor::full({2}, 0.0f)));
}

// --- v4 catalog-index section (container-level; index semantics live in
// test_catalog_index.cpp) -------------------------------------------------

TEST_F(FormatTest, EmitCatalogIndexBumpsFormatToV4) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  add_plannable_model(writer);
  writer.set_emit_catalog_index();
  const std::uint64_t written = writer.finish();
  {
    std::ifstream in(path, std::ios::binary);
    read_u32(in);  // magic
    EXPECT_EQ(read_u32(in), 4u);
  }
  const MmapModel model(path);
  EXPECT_EQ(model.format_version(), 4u);
  ASSERT_TRUE(model.has_index_section());
  EXPECT_GT(model.index_size(), 0u);
  EXPECT_EQ(model.index_offset() % 64, 0u);
  EXPECT_EQ(model.index_offset() + model.index_size(), written);
  EXPECT_NE(model.index_data(), nullptr);
  // Index without plan: the v4 header carries zeroed plan locators and the
  // loader reports the plan absent, not corrupt.
  EXPECT_FALSE(model.has_plan_section());
  EXPECT_TRUE(model.plan_bounds_error().empty());
  // The tensors read back exactly as in a section-less file.
  EXPECT_TRUE(model.load_tensor("emb.table").equals(
      Tensor::full({16, 4}, 0.5f)));
}

TEST_F(FormatTest, PlanAndIndexSectionsCoexistInOneV4File) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  add_plannable_model(writer);
  writer.set_emit_plan();
  writer.set_emit_catalog_index();
  const std::uint64_t written = writer.finish();
  const MmapModel model(path);
  EXPECT_EQ(model.format_version(), 4u);
  ASSERT_TRUE(model.has_plan_section());
  ASSERT_TRUE(model.has_index_section());
  EXPECT_NE(model.plan_data(), nullptr);
  EXPECT_NE(model.index_data(), nullptr);
  // Layout: plan first, index aligned after it, index closes the file.
  EXPECT_GE(model.index_offset(), model.plan_offset() + model.plan_size());
  EXPECT_EQ(model.index_offset() % 64, 0u);
  EXPECT_EQ(model.index_offset() + model.index_size(), written);
}

TEST_F(FormatTest, IndexSectionPastEofToleratedAtOpen) {
  // Same lenient contract as the plan: a v4 header whose index section
  // reaches past EOF must not fail the open — the tensors are intact and
  // session ranking falls back to the exact full scan.
  const std::string path = temp_path();
  {
    ModelWriter writer(path);
    add_plannable_model(writer);
    writer.set_emit_catalog_index();
    writer.finish();
  }
  const std::uint64_t index_offset = MmapModel(path).index_offset();
  std::filesystem::resize_file(path, index_offset + 8);
  const MmapModel model(path);
  EXPECT_TRUE(model.has_index_section());
  EXPECT_EQ(model.index_data(), nullptr);
  EXPECT_FALSE(model.index_bounds_error().empty());
  EXPECT_TRUE(model.load_tensor("out.bias").equals(Tensor::full({2}, 0.0f)));
}

TEST_F(FormatTest, DirectoryEntriesKeepFileOrderForStableIndices) {
  // Plan handles serialize directory positions: entry_at/entry_index must
  // reflect WRITE order (file order), not the map's sorted order.
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.add_tensor("zeta", Tensor::full({2}, 1.0f));
  writer.add_tensor("alpha", Tensor::full({2}, 2.0f));
  writer.add_tensor("mid", Tensor::full({2}, 3.0f));
  writer.finish();
  const MmapModel model(path);
  ASSERT_EQ(model.entry_count(), 3u);
  EXPECT_EQ(model.entry_at(0).name, "zeta");
  EXPECT_EQ(model.entry_at(1).name, "alpha");
  EXPECT_EQ(model.entry_at(2).name, "mid");
  EXPECT_EQ(model.entry_index("mid"), 2u);
  EXPECT_THROW(model.entry_index("nope"), std::runtime_error);
  EXPECT_THROW(model.entry_at(3), std::runtime_error);
}

TEST_F(FormatTest, BlobsAreAligned) {
  const std::string path = temp_path();
  Rng rng(163);
  ModelWriter writer(path);
  writer.add_tensor("a", Tensor::randn({5}, rng));
  writer.add_tensor("b", Tensor::randn({7}, rng));
  writer.add_tensor("c", Tensor::randn({11}, rng));
  writer.finish();
  const MmapModel model(path);
  for (const std::string& name : model.tensor_names()) {
    EXPECT_EQ(model.entry(name).offset % 64, 0u) << name;
  }
}

TEST_F(FormatTest, DuplicateTensorNameRejected) {
  ModelWriter writer(temp_path());
  writer.add_tensor("x", Tensor({2}));
  EXPECT_THROW(writer.add_tensor("x", Tensor({3})), std::runtime_error);
}

TEST_F(FormatTest, DoubleFinishRejected) {
  ModelWriter writer(temp_path());
  writer.add_tensor("x", Tensor({2}));
  writer.finish();
  EXPECT_THROW(writer.finish(), std::runtime_error);
}

TEST_F(FormatTest, MissingTensorAndMetadataThrow) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.add_tensor("x", Tensor({2}));
  writer.finish();
  const MmapModel model(path);
  EXPECT_THROW(model.entry("y"), std::runtime_error);
  EXPECT_THROW(model.metadata_value("nope"), std::runtime_error);
  EXPECT_THROW(model.load_tensor("y"), std::runtime_error);
}

TEST_F(FormatTest, MissingFileThrows) {
  EXPECT_THROW(MmapModel missing("/nonexistent/path/model.mcm"),
               std::runtime_error);
}

TEST_F(FormatTest, CorruptMagicRejected) {
  const std::string path = temp_path();
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTM" << std::string(64, '\0');
  }
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, PayloadPointerIsZeroCopyView) {
  const std::string path = temp_path();
  const Tensor t = Tensor::from_vector({2}, {1.5f, -2.5f});
  ModelWriter writer(path);
  writer.add_tensor("x", t);
  writer.finish();
  const MmapModel model(path);
  const TensorEntry& entry = model.entry("x");
  const float* view = reinterpret_cast<const float*>(model.payload(entry));
  EXPECT_EQ(view[0], 1.5f);
  EXPECT_EQ(view[1], -2.5f);
}

// --- Malformed-model rejection ---------------------------------------------
// Every corruption below must fail with one clean std::runtime_error at
// open (or first use), never UB — the ASan/UBSan job runs this suite too.

namespace {
// Writes a file whose front matter follows the .mcm layout but with a
// caller-controlled directory entry, so individual fields can be corrupted.
void write_raw_model(const std::string& path, std::uint32_t dtype,
                     const std::vector<std::int64_t>& dims,
                     std::uint64_t offset, std::uint64_t byte_size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  write_u32(out, 0x314D434DU);  // "MCM1"
  write_u32(out, 1);            // version
  write_u64(out, 0);            // metadata count
  write_u64(out, 1);            // tensor count
  write_string(out, "x");
  write_u32(out, dtype);
  write_u64(out, dims.size());
  for (const std::int64_t d : dims) {
    write_i64(out, d);
  }
  write_f32(out, 1.0f);
  write_u64(out, offset);
  write_u64(out, byte_size);
  // Some trailing payload bytes, so only the field under test is wrong.
  for (int i = 0; i < 256; ++i) {
    out.put('\0');
  }
}
}  // namespace

TEST_F(FormatTest, TruncatedPayloadRejected) {
  const std::string path = temp_path();
  Rng rng(177);
  ModelWriter writer(path);
  writer.add_tensor("big", Tensor::randn({64, 16}, rng));
  writer.finish();
  const std::uint64_t blob_offset = MmapModel(path).entry("big").offset;
  // Cut the file mid-payload: the directory now promises bytes that are
  // not there.
  std::filesystem::resize_file(path, blob_offset + 8);
  EXPECT_THROW(MmapModel truncated(path), std::runtime_error);
}

TEST_F(FormatTest, TruncatedDirectoryRejected) {
  const std::string path = temp_path();
  Rng rng(178);
  ModelWriter writer(path);
  writer.add_tensor("t", Tensor::randn({8, 8}, rng));
  writer.finish();
  // Cut inside the front matter itself (header survives, directory does
  // not): parsing must fail on the truncated stream, not read garbage.
  // Descending sizes — resize_file only ever shrinks here (growing would
  // zero-fill and turn the directory into a valid empty one).
  for (const std::uintmax_t keep : {40u, 25u, 14u}) {
    std::filesystem::resize_file(path, keep);
    EXPECT_THROW(MmapModel cut(path), std::runtime_error) << keep;
  }
}

TEST_F(FormatTest, OutOfRangeTensorOffsetRejected) {
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {2, 2}, /*offset=*/1ULL << 40,
                  /*byte_size=*/16);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, WrappingOffsetPlusSizeRejected) {
  // offset + byte_size overflows std::uint64_t back into range; the bound
  // check must be written subtraction-style to catch it.
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {2, 2},
                  /*offset=*/~std::uint64_t{0} - 8, /*byte_size=*/16);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, UnknownDtypeRejected) {
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/99, {2, 2}, /*offset=*/64,
                  /*byte_size=*/16);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, NegativeDimensionRejected) {
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {2, -2}, /*offset=*/64,
                  /*byte_size=*/16);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, ImplausibleRankRejected) {
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, std::vector<std::int64_t>(9, 1),
                  /*offset=*/64, /*byte_size=*/4);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, OverflowingShapeRejected) {
  // numel = 2^62: packed_byte_size(kF32, 2^62) wraps std::uint64_t to 0,
  // which would "match" a declared byte_size of 0 and pass the bounds
  // check trivially — the element count must be bounded before any byte
  // math happens.
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {std::int64_t{1} << 31,
                                      std::int64_t{1} << 31},
                  /*offset=*/64, /*byte_size=*/0);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, Int64NumelOverflowRejected) {
  // dims whose product overflows std::int64_t itself (UB in shape_numel if
  // it were ever computed): the checked multiply must reject first.
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {std::int64_t{1} << 62,
                                      std::int64_t{1} << 62},
                  /*offset=*/64, /*byte_size=*/0);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, BlobSizeShapeMismatchRejected) {
  // Directory says [2,2] f32 (16 bytes) but claims a 12-byte blob.
  const std::string path = temp_path();
  write_raw_model(path, /*dtype=*/0, {2, 2}, /*offset=*/64,
                  /*byte_size=*/12);
  EXPECT_THROW(MmapModel bad(path), std::runtime_error);
}

TEST_F(FormatTest, NonNumericMetadataIntRejected) {
  const std::string path = temp_path();
  ModelWriter writer(path);
  writer.set_metadata("vocab", "not-a-number");
  writer.set_metadata("embed_dim", "12abc");
  writer.add_tensor("x", Tensor({2}));
  writer.finish();
  const MmapModel model(path);
  EXPECT_THROW(model.metadata_int("vocab"), std::runtime_error);
  EXPECT_THROW(model.metadata_int("embed_dim"), std::runtime_error);
}

namespace {
// A structurally valid single-tensor model whose `technique` metadata is
// caller-chosen: enough for InferenceEngine construction to reach (and
// reject) the technique resolution.
void write_model_with_technique(const std::string& path,
                                const std::string& technique) {
  ModelWriter writer(path);
  writer.set_metadata("arch", "ranking");
  writer.set_metadata("technique", technique);
  writer.set_metadata_int("vocab", 16);
  writer.set_metadata_int("embed_dim", 4);
  writer.set_metadata_int("knob", 4);
  writer.set_metadata_int("output_dim", 2);
  writer.add_tensor("emb.table", Tensor({16, 4}));
  writer.finish();
}
}  // namespace

TEST_F(FormatTest, UnknownTechniqueStringRejectedByEngine) {
  const std::string path = temp_path();
  write_model_with_technique(path, "snake_oil");
  const MmapModel model(path);
  EXPECT_THROW(InferenceEngine engine(model, tflite_profile()),
               std::runtime_error);
}

TEST_F(FormatTest, RegistryTechniqueUnsupportedByEngineRejected) {
  // hashed_nets parses to a valid TechniqueKind but has no engine path;
  // the exhaustive switch must refuse it explicitly.
  const std::string path = temp_path();
  write_model_with_technique(path, "hashed_nets");
  const MmapModel model(path);
  EXPECT_THROW(InferenceEngine engine(model, tflite_profile()),
               std::runtime_error);
}

TEST(MemoryMeterUnit, PageCountingAndReset) {
  MemoryMeter meter(4096);
  meter.touch(0, 1);          // page 0
  meter.touch(4095, 2);       // pages 0 and 1
  meter.touch(4096 * 10, 1);  // page 10
  EXPECT_EQ(meter.touched_pages(), 3);
  EXPECT_EQ(meter.weight_resident_bytes(), 3 * 4096);
  meter.note_activation_bytes(1000);
  meter.note_activation_bytes(500);  // peak keeps the max
  EXPECT_EQ(meter.activation_peak_bytes(), 1000);
  EXPECT_EQ(meter.total_resident_bytes(), 3 * 4096 + 1000);
  meter.reset();
  EXPECT_EQ(meter.touched_pages(), 0);
  EXPECT_EQ(meter.activation_peak_bytes(), 0);
}

TEST(MemoryMeterUnit, ReadaheadAddsTrailingPages) {
  MemoryMeter meter(4096, /*readahead_pages=*/2);
  meter.touch(0, 1);
  EXPECT_EQ(meter.touched_pages(), 3);  // page 0 plus 2 readahead
}

TEST(MemoryMeterUnit, ZeroLengthTouchIgnored) {
  MemoryMeter meter(4096);
  meter.touch(100, 0);
  EXPECT_EQ(meter.touched_pages(), 0);
}

TEST(MemoryMeterUnit, DistinctPagesForLookupVsStream) {
  // The Table 3 mechanism in miniature: a 1000-row x 64-float table.
  const Index row_bytes = 64 * 4;
  MemoryMeter lookup(4096);
  for (const Index row : {3, 700, 999}) {  // three lookups
    lookup.touch(row * row_bytes, row_bytes);
  }
  MemoryMeter stream(4096);
  stream.touch(0, 1000 * row_bytes);  // one-hot path streams everything
  EXPECT_LT(lookup.weight_resident_bytes(), stream.weight_resident_bytes());
  EXPECT_EQ(stream.weight_resident_bytes(),
            ((1000 * row_bytes + 4095) / 4096) * 4096);
}

}  // namespace
}  // namespace memcom
