#include <gtest/gtest.h>

#include "core/ops.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/grad_check.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace memcom {
namespace {

// Scalar "loss" used for gradient checks: sum of elementwise squares / 2,
// whose gradient w.r.t. the layer output is simply the output itself.
float half_sq_sum(const Tensor& t) {
  double acc = 0.0;
  for (Index i = 0; i < t.numel(); ++i) {
    acc += 0.5 * static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return static_cast<float>(acc);
}

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(31);
  Dense dense(4, 3, rng);
  dense.bias().value = Tensor::from_vector({3}, {1, 2, 3});
  const Tensor x({2, 4});  // zeros
  const Tensor y = dense.forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at2(1, 2), 3.0f);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(32);
  Dense dense(4, 3, rng);
  const Tensor x({2, 5});
  EXPECT_THROW(dense.forward(x, false), std::runtime_error);
}

TEST(Dense, GradientsMatchFiniteDifferences) {
  Rng rng(33);
  Dense dense(5, 4, rng);
  Tensor x = Tensor::randn({3, 5}, rng);

  auto loss_fn = [&]() {
    Dense& d = dense;  // re-run forward with current params
    return half_sq_sum(d.forward(x, false));
  };
  const Tensor y = dense.forward(x, false);
  const Tensor gx = dense.backward(y /* dL/dy = y for half_sq_sum */);

  const GradCheckResult weight_check =
      check_param_gradient(dense.weight(), loss_fn);
  EXPECT_TRUE(weight_check.ok()) << "weight rel err "
                                 << weight_check.max_rel_error;
  const GradCheckResult bias_check =
      check_param_gradient(dense.bias(), loss_fn);
  EXPECT_TRUE(bias_check.ok()) << "bias rel err " << bias_check.max_rel_error;
  const GradCheckResult input_check = check_tensor_gradient(
      x, gx, [&]() { return half_sq_sum(dense.forward(x, false)); });
  EXPECT_TRUE(input_check.ok()) << "input rel err "
                                << input_check.max_rel_error;
}

TEST(Relu, ForwardClampsAndBackwardMasks) {
  Relu relu;
  const Tensor x = Tensor::from_vector({1, 4}, {-1, 0, 2, -3});
  const Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_EQ(y[3], 0.0f);
  const Tensor g = Tensor::from_vector({1, 4}, {5, 5, 5, 5});
  const Tensor gx = relu.backward(g);
  EXPECT_EQ(gx[0], 0.0f);
  EXPECT_EQ(gx[1], 0.0f);  // gradient at exactly 0 defined as 0
  EXPECT_EQ(gx[2], 5.0f);
  EXPECT_EQ(gx[3], 0.0f);
}

TEST(SigmoidLayer, ForwardBackward) {
  Sigmoid sig;
  const Tensor x = Tensor::from_vector({1, 2}, {0.0f, 100.0f});
  const Tensor y = sig.forward(x, true);
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  EXPECT_NEAR(y[1], 1.0f, 1e-4f);
  const Tensor g = Tensor::from_vector({1, 2}, {1.0f, 1.0f});
  const Tensor gx = sig.backward(g);
  EXPECT_NEAR(gx[0], 0.25f, 1e-6f);  // sigma'(0) = 1/4
  EXPECT_NEAR(gx[1], 0.0f, 1e-4f);
}

TEST(DropoutLayer, InferenceIsIdentity) {
  Rng rng(34);
  Dropout dropout(0.5, rng);
  const Tensor x = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  const Tensor y = dropout.forward(x, /*training=*/false);
  EXPECT_TRUE(y.equals(x));
  EXPECT_TRUE(dropout.backward(x).equals(x));
}

TEST(DropoutLayer, TrainingDropsApproximatelyRateAndRescales) {
  Rng rng(35);
  Dropout dropout(0.25, rng);
  const Tensor x = Tensor::full({100, 100}, 1.0f);
  const Tensor y = dropout.forward(x, /*training=*/true);
  Index zeros = 0;
  for (Index i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.75f, 1e-5f);  // inverted dropout scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.25, 0.02);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Rng rng(36);
  Dropout dropout(0.5, rng);
  const Tensor x = Tensor::full({10, 10}, 1.0f);
  const Tensor y = dropout.forward(x, true);
  const Tensor gx = dropout.backward(Tensor::full({10, 10}, 1.0f));
  for (Index i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(gx[i], y[i]);  // same mask, same scaling
  }
}

TEST(DropoutLayer, ZeroRateIsIdentityInTraining) {
  Rng rng(37);
  Dropout dropout(0.0, rng);
  const Tensor x = Tensor::from_vector({1, 3}, {1, 2, 3});
  EXPECT_TRUE(dropout.forward(x, true).equals(x));
}

TEST(DropoutLayer, InvalidRateRejected) {
  Rng rng(38);
  EXPECT_THROW(Dropout(1.0, rng), std::runtime_error);
  EXPECT_THROW(Dropout(-0.1, rng), std::runtime_error);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  BatchNorm1d bn(3);
  Rng rng(39);
  const Tensor x = Tensor::randn({64, 3}, rng, 5.0f);
  const Tensor y = bn.forward(x, /*training=*/true);
  for (Index c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (Index r = 0; r < 64; ++r) {
      mean += y.at2(r, c);
    }
    mean /= 64.0;
    for (Index r = 0; r < 64; ++r) {
      var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataStatistics) {
  BatchNorm1d bn(1, /*momentum=*/0.5);
  Rng rng(40);
  for (int step = 0; step < 50; ++step) {
    Tensor x({32, 1});
    for (Index i = 0; i < 32; ++i) {
      x[i] = rng.normal(3.0f, 2.0f);
    }
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.5f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 1.2f);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm1d bn(2, 0.0);  // momentum 0: running stats = last batch stats
  const Tensor x = Tensor::from_vector({2, 2}, {0, 10, 2, 30});
  bn.forward(x, true);
  // In eval mode a batch equal to the running mean maps to ~beta (0).
  Tensor probe = Tensor::from_vector({1, 2}, {1.0f, 20.0f});
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
  EXPECT_NEAR(y[1], 0.0f, 1e-3f);
}

TEST(BatchNorm, TrainingGradientMatchesFiniteDifference) {
  BatchNorm1d bn(3);
  Rng rng(41);
  Tensor x = Tensor::randn({8, 3}, rng);
  // Use inference-mode loss on fixed running stats for the input check
  // (training-mode FD would re-estimate statistics under perturbation too —
  // that is exercised below via the analytic identity instead).
  const Tensor y = bn.forward(x, true);
  const Tensor gx = bn.backward(y);
  // Property: per feature, sum_r gx == 0 (training-mode BN gradient is
  // orthogonal to the constant shift).
  for (Index c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (Index r = 0; r < 8; ++r) {
      sum += gx.at2(r, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-3);
  }
}

TEST(BatchNorm, InferenceGradientMatchesFiniteDifference) {
  BatchNorm1d bn(3);
  Rng rng(42);
  // Prime running stats.
  bn.forward(Tensor::randn({32, 3}, rng, 2.0f), true);
  Tensor x = Tensor::randn({4, 3}, rng);
  const Tensor y = bn.forward(x, false);
  const Tensor gx = bn.backward(y);
  const GradCheckResult check = check_tensor_gradient(
      x, gx, [&]() { return half_sq_sum(bn.forward(x, false)); });
  EXPECT_TRUE(check.ok()) << check.max_rel_error;
}

TEST(BatchNorm, GammaBetaGradients) {
  BatchNorm1d bn(2);
  Rng rng(43);
  Tensor x = Tensor::randn({16, 2}, rng);
  auto loss_fn = [&]() { return half_sq_sum(bn.forward(x, true)); };
  const Tensor y = bn.forward(x, true);
  bn.backward(y);
  ParamRefs params = bn.params();
  const GradCheckResult gamma_check = check_param_gradient(*params[0], loss_fn);
  EXPECT_TRUE(gamma_check.ok()) << gamma_check.max_rel_error;
  const GradCheckResult beta_check = check_param_gradient(*params[1], loss_fn);
  EXPECT_TRUE(beta_check.ok()) << beta_check.max_rel_error;
}

TEST(Pooling, AveragesOnlyUnmaskedPositions) {
  MaskedAveragePool pool;
  const Tensor x = Tensor::from_vector({1, 3, 2}, {1, 2, 3, 4, 100, 200});
  const Tensor mask = Tensor::from_vector({1, 3}, {1, 1, 0});
  const Tensor y = pool.forward(x, mask);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 3.0f);
}

TEST(Pooling, FullyMaskedRowYieldsZeros) {
  MaskedAveragePool pool;
  const Tensor x = Tensor::full({1, 2, 3}, 7.0f);
  const Tensor mask({1, 2});
  const Tensor y = pool.forward(x, mask);
  for (Index c = 0; c < 3; ++c) {
    EXPECT_EQ(y.at2(0, c), 0.0f);
  }
}

TEST(Pooling, BackwardDistributesUniformly) {
  MaskedAveragePool pool;
  const Tensor x({2, 4, 3});
  Tensor mask = Tensor::full({2, 4}, 1.0f);
  mask.at2(1, 3) = 0.0f;  // second row has 3 valid positions
  pool.forward(x, mask);
  const Tensor g = Tensor::full({2, 3}, 12.0f);
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx.at3(0, 0, 0), 3.0f);   // 12/4
  EXPECT_FLOAT_EQ(gx.at3(1, 0, 0), 4.0f);   // 12/3
  EXPECT_FLOAT_EQ(gx.at3(1, 3, 0), 0.0f);   // masked position gets nothing
}

TEST(Pooling, MaskFromIds) {
  const std::vector<std::int32_t> ids = {5, 0, 3, 0};
  const Tensor mask = mask_from_ids(ids, 2, 2, 0);
  EXPECT_EQ(mask.at2(0, 0), 1.0f);
  EXPECT_EQ(mask.at2(0, 1), 0.0f);
  EXPECT_EQ(mask.at2(1, 0), 1.0f);
  EXPECT_EQ(mask.at2(1, 1), 0.0f);
}

TEST(SequentialContainer, ChainsForwardAndBackward) {
  Rng rng(44);
  Sequential seq;
  seq.emplace<Dense>(4, 8, rng, "d1");
  seq.emplace<Relu>();
  seq.emplace<Dense>(8, 2, rng, "d2");
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.params().size(), 4u);

  Tensor x = Tensor::randn({5, 4}, rng);
  const Tensor y = seq.forward(x, false);
  EXPECT_EQ(y.dim(1), 2);
  const Tensor gx = seq.backward(y);
  EXPECT_EQ(gx.dim(1), 4);

  // float32 central differences at this epsilon carry ~1e-3 absolute noise
  // on near-zero gradient elements; a genuinely wrong backward would be off
  // at gradient scale (~0.1+), so bound the absolute error.
  const GradCheckResult check = check_tensor_gradient(
      x, gx, [&]() { return half_sq_sum(seq.forward(x, false)); }, 3e-4f);
  EXPECT_LE(check.max_abs_error, 5e-3f);
  EXPECT_GE(check.fraction_within(1e-1f), 0.95f) << check.max_rel_error;
}

}  // namespace
}  // namespace memcom
