#include "nn/loss.h"

#include <cmath>

#include "core/check.h"
#include "core/ops.h"

namespace memcom {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<Index>& labels) {
  check(logits.ndim() == 2, "xent: logits must be [B, C]");
  const Index b = logits.dim(0);
  const Index c = logits.dim(1);
  check_eq(b, static_cast<long long>(labels.size()), "xent batch");
  labels_ = labels;

  const Tensor log_probs = log_softmax_rows(logits);
  double loss = 0.0;
  for (Index r = 0; r < b; ++r) {
    const Index y = labels[static_cast<std::size_t>(r)];
    check(y >= 0 && y < c, "xent: label out of range");
    loss -= log_probs.at2(r, y);
  }
  // Cache probabilities for backward and for ranking-score extraction.
  probs_ = Tensor({b, c});
  for (Index i = 0; i < b * c; ++i) {
    probs_[i] = std::exp(log_probs[i]);
  }
  return static_cast<float>(loss / static_cast<double>(b));
}

Tensor SoftmaxCrossEntropy::backward() const {
  check(!probs_.empty(), "xent: backward before forward");
  const Index b = probs_.dim(0);
  Tensor grad = probs_;
  const float inv_b = 1.0f / static_cast<float>(b);
  for (Index r = 0; r < b; ++r) {
    grad.at2(r, labels_[static_cast<std::size_t>(r)]) -= 1.0f;
  }
  grad.scale_(inv_b);
  return grad;
}

float RankNetLoss::forward(const Tensor& scores_preferred,
                           const Tensor& scores_other) {
  check(scores_preferred.ndim() == 1 && scores_other.ndim() == 1,
        "ranknet: scores must be 1-D");
  check(scores_preferred.same_shape(scores_other), "ranknet: shape mismatch");
  const Index b = scores_preferred.dim(0);
  check(b > 0, "ranknet: empty batch");
  diffs_ = sub(scores_preferred, scores_other);
  sigmoids_ = Tensor({b});
  double loss = 0.0;
  for (Index i = 0; i < b; ++i) {
    const float d = diffs_[i];
    // log(1 + exp(-d)) computed stably.
    const double l =
        d > 0.0f ? std::log1p(std::exp(-static_cast<double>(d)))
                 : -static_cast<double>(d) +
                       std::log1p(std::exp(static_cast<double>(d)));
    loss += l;
    sigmoids_[i] = sigmoid(-d);  // dL/d(d) = -sigmoid(-d)
  }
  return static_cast<float>(loss / static_cast<double>(b));
}

Tensor RankNetLoss::backward_preferred() const {
  check(!sigmoids_.empty(), "ranknet: backward before forward");
  Tensor grad = sigmoids_;
  grad.scale_(-1.0f / static_cast<float>(grad.dim(0)));
  return grad;
}

Tensor RankNetLoss::backward_other() const {
  check(!sigmoids_.empty(), "ranknet: backward before forward");
  Tensor grad = sigmoids_;
  grad.scale_(1.0f / static_cast<float>(grad.dim(0)));
  return grad;
}

float RankNetLoss::pairwise_accuracy() const {
  check(!diffs_.empty(), "ranknet: accuracy before forward");
  Index correct = 0;
  for (Index i = 0; i < diffs_.dim(0); ++i) {
    if (diffs_[i] > 0.0f) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(diffs_.dim(0));
}

}  // namespace memcom
