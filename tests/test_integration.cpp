// Cross-module integration tests: the full train -> export -> mmap ->
// on-device-inference pipeline, and checkpoint round trips across every
// compression technique.
#include <gtest/gtest.h>

#include <filesystem>

#include "data/synthetic.h"
#include "ondevice/engine.h"
#include "repro/sweep.h"
#include "repro/trainer.h"

namespace memcom {
namespace {

DatasetSpec pipeline_spec() {
  DatasetSpec s;
  s.name = "pipeline";
  s.items = 180;
  s.output_vocab = 30;
  s.train_samples = 700;
  s.eval_samples = 120;
  s.seq_len = 12;
  s.affinity = 6.0;
  s.latent_dim = 8;
  return s;
}

std::string temp_file(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("memcom_integration_" + tag + ".mcm"))
      .string();
}

TEST(Integration, TrainExportInferAgreesWithTrainer) {
  const SyntheticDataset data(pipeline_spec(), 51);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 16,
                      data.input_vocab() / 8};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  TrainConfig train;
  train.epochs = 2;
  const EvalResult trained = train_and_evaluate(model, data, train);
  EXPECT_GT(trained.ndcg, 0.1);

  const std::string path = temp_file("pipeline");
  model.export_mcm(path, DType::kF32);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, coreml_profile("cpuOnly"));

  // Engine argmax must equal trainer argmax on every eval sample.
  Index agree = 0;
  const Index n = 50;
  for (Index i = 0; i < n; ++i) {
    const Batch single = make_batch(data.eval(), i, 1);
    const Tensor trainer_logits = model.forward(single.inputs, false);
    const Tensor engine_logits = engine.run(single.inputs.ids).logits;
    Index trainer_best = 0;
    Index engine_best = 0;
    for (Index c = 1; c < data.output_vocab(); ++c) {
      if (trainer_logits.at2(0, c) > trainer_logits.at2(0, trainer_best)) {
        trainer_best = c;
      }
      if (engine_logits[c] > engine_logits[engine_best]) {
        engine_best = c;
      }
    }
    agree += trainer_best == engine_best ? 1 : 0;
  }
  EXPECT_EQ(agree, n);
  std::filesystem::remove(path);
}

TEST(Integration, QuantizedPipelinePreservesRankingQuality) {
  const SyntheticDataset data(pipeline_spec(), 52);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 16,
                      data.input_vocab() / 8};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  TrainConfig train;
  train.epochs = 2;
  const EvalResult fp32 = train_and_evaluate(model, data, train);

  const std::string path = temp_file("quantized");
  model.export_mcm(path, DType::kI8);
  RecModel quantized(config);
  quantized.load_mcm(path);
  const EvalResult int8 = evaluate_model(quantized, data, train.ndcg_k);
  // int8 quantization must not destroy ranking quality (A.2's ~0.13%
  // claim; give a loose 15% relative budget at this tiny scale).
  EXPECT_GT(int8.ndcg, fp32.ndcg * 0.85);
  std::filesystem::remove(path);
}

// Checkpoint round trip across EVERY technique (exercises all export
// naming paths, including the positional mixed_dim/hashed_nets scheme).
class CheckpointRoundTrip : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(CheckpointRoundTrip, ExactInferenceAfterReload) {
  const TechniqueKind kind = GetParam();
  ModelConfig config;
  config.embedding.kind = kind;
  config.embedding.vocab = 80;
  config.embedding.embed_dim = 16;
  switch (kind) {
    case TechniqueKind::kFull:
      config.embedding.knob = 0;
      break;
    case TechniqueKind::kFactorized:
    case TechniqueKind::kReduceDim:
      config.embedding.knob = 8;
      break;
    case TechniqueKind::kHashedNets:
      config.embedding.knob = 100;
      break;
    case TechniqueKind::kTtRec:
      config.embedding.knob = 3;
      break;
    default:
      config.embedding.knob = 20;
  }
  config.arch = ModelArch::kRanking;
  config.output_vocab = 12;
  config.dropout = 0.0;
  RecModel model(config);

  IdBatch input(2, 6);
  input.ids = {1, 5, 9, 20, 50, 79, 3, 7, 0, 0, 0, 0};
  model.forward(input, true);  // prime batchnorm stats
  const Tensor expected = model.forward(input, false);

  const std::string path = temp_file(technique_name(kind));
  model.export_mcm(path);
  RecModel restored(config);
  restored.load_mcm(path);
  EXPECT_TRUE(restored.forward(input, false).equals(expected))
      << technique_name(kind);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, CheckpointRoundTrip,
    ::testing::ValuesIn(all_techniques()),
    [](const ::testing::TestParamInfo<TechniqueKind>& info) {
      return technique_name(info.param);
    });

TEST(Integration, SweepThenDeployBestModel) {
  // The README workflow: sweep, pick the best compressed point, deploy it.
  const SyntheticDataset data(pipeline_spec(), 53);
  TrainConfig train;
  train.epochs = 1;
  const SweepResult sweep = run_compression_sweep(
      data, ModelArch::kRanking,
      {TechniqueKind::kMemcom, TechniqueKind::kNaiveHash}, train, 16, 2);
  ASSERT_FALSE(sweep.series.empty());

  // Rebuild the best point's model and export it.
  const TechniqueSeries& best_series = sweep.series[0];
  ASSERT_FALSE(best_series.points.empty());
  ModelConfig config;
  config.embedding = {best_series.kind, data.input_vocab(), 16,
                      best_series.points[0].knob};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  train_and_evaluate(model, data, train);
  const std::string path = temp_file("deploy");
  model.export_mcm(path, DType::kF16);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, tflite_profile());
  const Batch sample = make_batch(data.eval(), 0, 1);
  const InferenceResult result = engine.run(sample.inputs.ids);
  EXPECT_EQ(result.logits.numel(), data.output_vocab());
  EXPECT_GT(engine.resident_megabytes(), 0.0);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace memcom
