// Integration tests: full train/eval loops on a small synthetic dataset.
#include "repro/trainer.h"

#include <gtest/gtest.h>

namespace memcom {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec s;
  s.name = "tiny";
  s.items = 150;
  s.output_vocab = 25;
  s.train_samples = 600;
  s.eval_samples = 150;
  s.seq_len = 12;
  s.zipf_alpha = 1.0;
  s.affinity = 5.0;
  return s;
}

TrainConfig quick_config() {
  TrainConfig c;
  c.epochs = 3;
  c.batch_size = 32;
  c.learning_rate = 3e-3;
  c.ndcg_k = 10;
  return c;
}

TEST(Trainer, LearnsAboveChanceOnClassification) {
  const SyntheticDataset data(tiny_spec(), 21);
  ModelConfig config;
  config.embedding = {TechniqueKind::kFull, data.input_vocab(), 32, 0};
  config.arch = ModelArch::kClassification;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  const EvalResult result = train_and_evaluate(model, data, quick_config());
  // Chance accuracy is 1/25 = 4%; the latent structure is learnable.
  EXPECT_GT(result.accuracy, 0.06);
  EXPECT_GT(result.top5_accuracy, result.accuracy);
  EXPECT_GT(result.ndcg, 0.0);
  EXPECT_GT(result.mrr, 0.04);
}

TEST(Trainer, RankingArchProducesUsefulNdcg) {
  const SyntheticDataset data(tiny_spec(), 22);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 32,
                      data.input_vocab() / 8};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  const EvalResult result = train_and_evaluate(model, data, quick_config());
  // Random ranking over 25 items gives nDCG@10 ~= 0.18; require better.
  EXPECT_GT(result.ndcg, 0.25);
}

TEST(Trainer, EvaluateIsDeterministicForFixedModel) {
  const SyntheticDataset data(tiny_spec(), 23);
  ModelConfig config;
  config.embedding = {TechniqueKind::kFull, data.input_vocab(), 16, 0};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);
  const EvalResult a = evaluate_model(model, data, 10);
  const EvalResult b = evaluate_model(model, data, 10);
  EXPECT_DOUBLE_EQ(a.ndcg, b.ndcg);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.mean_loss, b.mean_loss);
}

TEST(Trainer, SameSeedSameResult) {
  const SyntheticDataset data(tiny_spec(), 24);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 16,
                      data.input_vocab() / 4};
  config.arch = ModelArch::kClassification;
  config.output_vocab = data.output_vocab();
  TrainConfig train = quick_config();
  train.epochs = 1;

  RecModel model_a(config);
  RecModel model_b(config);
  const EvalResult a = train_and_evaluate(model_a, data, train);
  const EvalResult b = train_and_evaluate(model_b, data, train);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.ndcg, b.ndcg);
}

TEST(Trainer, TrainFractionUsesSubset) {
  const SyntheticDataset data(tiny_spec(), 25);
  ModelConfig config;
  config.embedding = {TechniqueKind::kFull, data.input_vocab(), 16, 0};
  config.arch = ModelArch::kClassification;
  config.output_vocab = data.output_vocab();
  TrainConfig train = quick_config();
  train.epochs = 1;
  train.train_fraction = 0.1;  // must not crash; trains on 60 samples
  RecModel model(config);
  const EvalResult result = train_and_evaluate(model, data, train);
  EXPECT_GE(result.accuracy, 0.0);
}

TEST(Trainer, DpTrainingWithZeroNoiseStillLearns) {
  const SyntheticDataset data(tiny_spec(), 26);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 16,
                      data.input_vocab() / 8};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  TrainConfig train = quick_config();
  train.epochs = 1;
  train.batch_size = 16;
  train.train_fraction = 0.3;  // per-example grads are expensive
  RecModel model(config);
  const EvalResult result =
      train_dp_and_evaluate(model, data, train, /*clip=*/1.0, /*noise=*/0.0);
  EXPECT_GT(result.ndcg, 0.10);
}

TEST(Trainer, HeavyDpNoiseDegradesRanking) {
  const SyntheticDataset data(tiny_spec(), 27);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 16,
                      data.input_vocab() / 8};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  TrainConfig train = quick_config();
  train.epochs = 1;
  train.batch_size = 16;
  train.train_fraction = 0.3;

  RecModel clean_model(config);
  const EvalResult clean =
      train_dp_and_evaluate(clean_model, data, train, 1.0, 0.0);
  RecModel noisy_model(config);
  const EvalResult noisy =
      train_dp_and_evaluate(noisy_model, data, train, 1.0, 8.0);
  EXPECT_LE(noisy.ndcg, clean.ndcg + 0.05);  // heavy noise can't be better
}

TEST(Trainer, PairwiseRankNetLearns) {
  const SyntheticDataset data(tiny_spec(), 28);
  EmbeddingConfig emb = {TechniqueKind::kMemcom, data.input_vocab(), 32,
                         data.input_vocab() / 8};
  PairwiseRankModel model(emb, data.output_vocab(), 0.1, 29);
  TrainConfig train = quick_config();
  const PairwiseResult result =
      train_pairwise_and_evaluate(model, data, train);
  EXPECT_GT(result.pairwise_accuracy, 0.6);  // better than coin flip
  EXPECT_GT(result.ndcg, 0.22);
  EXPECT_LT(result.mean_loss, std::log(2.0) + 0.1);
}

TEST(Trainer, CompressionCostsAccuracyAtExtremeRatios) {
  // Property the whole paper rests on: hashing the vocabulary into a
  // handful of buckets destroys the item identities the labels depend on,
  // so an uncompressed model must beat it given a strong identity signal.
  DatasetSpec spec = tiny_spec();
  spec.train_samples = 1500;
  spec.eval_samples = 400;
  spec.affinity = 6.0;      // labels driven by user/item identity...
  spec.zipf_alpha = 0.7;    // ...not by raw popularity
  spec.output_alpha = 0.2;
  const SyntheticDataset data(spec, 30);
  TrainConfig train = quick_config();
  train.epochs = 4;

  ModelConfig base;
  base.embedding = {TechniqueKind::kFull, data.input_vocab(), 32, 0};
  base.arch = ModelArch::kClassification;
  base.output_vocab = data.output_vocab();
  RecModel baseline(base);
  const EvalResult base_eval = train_and_evaluate(baseline, data, train);

  ModelConfig crushed = base;
  crushed.embedding.kind = TechniqueKind::kNaiveHash;
  crushed.embedding.knob = 8;  // vocab/19 — brutal
  RecModel crushed_model(crushed);
  const EvalResult crushed_eval =
      train_and_evaluate(crushed_model, data, train);
  // Compare the smoother top-5 metric; require a real gap.
  EXPECT_GT(base_eval.top5_accuracy, crushed_eval.top5_accuracy + 0.02);
}

}  // namespace
}  // namespace memcom
