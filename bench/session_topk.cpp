// Session top-k catalog-scan benchmark: the full-catalog scoring step of
// session-based next-item serving, isolated from the serving pipeline.
//
// An item-major [items, dim] catalog is exported at each precision rung
// (f32 / f16 / i8 / i4 / i4g) and scanned IN COMPRESSED FORM by
// CatalogScorer through the dispatched dot_span kernel. Per rung the bench
// records, against the f32 full-sort reference:
//   * recall@k        — fraction of the reference top-k ids the compressed
//                       scan recovers (ranking loss from quantization; the
//                       scan itself is deterministic);
//   * scan latency    — per-query wall time of score-all + bounded-heap
//                       top-k (p50/p95/mean over the query set);
//   * catalog bytes   — the compressed payload the scan touches per query
//                       (the "catalog residency" compression target).
//
//   ./bench_session_topk                 # default scale
//   ./bench_session_topk --smoke         # tiny catalog, few queries
//   ./bench_session_topk --items 100000 --dim 64 --queries 256 --topk 20
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/engine.h"
#include "ondevice/kernels.h"
#include "ondevice/quantize.h"
#include "ondevice/topk.h"

using namespace memcom;

namespace {

struct RungResult {
  std::string dtype;
  double recall_at_k = 0;
  LatencyStats scan;
  std::size_t resident_bytes = 0;
  double bytes_ratio_vs_f32 = 0;
};

double intersection_recall(const std::vector<ScoredId>& got,
                           const std::vector<ScoredId>& want) {
  if (want.empty()) {
    return 1.0;
  }
  std::size_t hits = 0;
  for (const ScoredId& w : want) {
    for (const ScoredId& g : got) {
      if (g.id == w.id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(want.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const Index items = flags.get_int("items", smoke ? 2000 : 50000);
  const Index dim = flags.get_int("dim", smoke ? 16 : 64);
  const int queries = static_cast<int>(flags.get_int("queries", smoke ? 32 : 128));
  const Index k = flags.get_int("topk", 10);
  const std::string json_path =
      flags.get_string("out", "BENCH_session_topk.json");

  std::cout << "session top-k catalog scan: items=" << items << " dim=" << dim
            << " queries=" << queries << " k=" << k << " kernels="
            << select_kernels().name << "\n\n";

  Rng rng(4242);
  const Tensor catalog_f32 = Tensor::randn({items, dim}, rng, 0.5f);
  std::vector<std::vector<float>> query_vecs;
  query_vecs.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    std::vector<float> v(static_cast<std::size_t>(dim));
    for (float& x : v) {
      x = rng.uniform(-1.0f, 1.0f);
    }
    query_vecs.push_back(std::move(v));
  }

  // f32 reference rankings (scalar kernels: the contract family).
  const QuantizedTensor ref_catalog = quantize(catalog_f32, DType::kF32);
  const CatalogScorer reference(ref_catalog, scalar_kernels());
  std::vector<std::vector<ScoredId>> ref_topk;
  ref_topk.reserve(query_vecs.size());
  for (const auto& q : query_vecs) {
    ref_topk.push_back(reference.top_k(q.data(), k));
  }

  struct Rung {
    const char* label;
    DType dtype;
    Index group_size;
  };
  const std::vector<Rung> rungs = {
      {"f32", DType::kF32, 0},  {"f16", DType::kF16, 0},
      {"i8", DType::kI8, 0},    {"i4", DType::kI4, 0},
      {"i4g", DType::kI4G, kI4GroupDefault},
  };

  TextTable table({"dtype", "recall@k", "scan p50 ms", "scan p95 ms",
                   "mean ms", "catalog MB", "vs f32"});
  std::vector<RungResult> results;
  std::size_t f32_bytes = 0;
  for (const Rung& rung : rungs) {
    const QuantizedTensor q = quantize(catalog_f32, rung.dtype,
                                       rung.group_size);
    const CatalogScorer scorer(q, select_kernels());
    RungResult result;
    result.dtype = rung.label;
    result.resident_bytes = scorer.resident_bytes();
    if (rung.dtype == DType::kF32) {
      f32_bytes = result.resident_bytes;
    }
    result.bytes_ratio_vs_f32 =
        f32_bytes > 0 ? static_cast<double>(result.resident_bytes) /
                            static_cast<double>(f32_bytes)
                      : 1.0;

    // Warm pass (page the catalog in), then the measured per-query scans.
    (void)scorer.top_k(query_vecs.front().data(), k);
    std::vector<double> samples;
    samples.reserve(query_vecs.size());
    double recall_sum = 0;
    for (std::size_t i = 0; i < query_vecs.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<ScoredId> top = scorer.top_k(query_vecs[i].data(), k);
      samples.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count());
      recall_sum += intersection_recall(top, ref_topk[i]);
    }
    result.scan = latency_stats_from_samples(std::move(samples));
    result.recall_at_k = recall_sum / static_cast<double>(query_vecs.size());
    results.push_back(result);

    table.add_row({result.dtype, format_float(result.recall_at_k, 4),
                   format_float(result.scan.p50_ms, 4),
                   format_float(result.scan.p95_ms, 4),
                   format_float(result.scan.mean_ms, 4),
                   format_float(static_cast<double>(result.resident_bytes) /
                                    (1024.0 * 1024.0),
                                3),
                   format_float(result.bytes_ratio_vs_f32, 3)});
  }

  std::cout << table.to_string();

  std::ofstream out(json_path, std::ios::trunc);
  out << "{\n  \"items\": " << items << ",\n  \"dim\": " << dim
      << ",\n  \"queries\": " << queries << ",\n  \"k\": " << k
      << ",\n  \"kernels\": \"" << select_kernels().name
      << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RungResult& r = results[i];
    out << "    {\"dtype\": \"" << r.dtype << "\", "
        << "\"recall_at_k\": " << r.recall_at_k << ", "
        << "\"scan_p50_ms\": " << r.scan.p50_ms << ", "
        << "\"scan_p95_ms\": " << r.scan.p95_ms << ", "
        << "\"scan_mean_ms\": " << r.scan.mean_ms << ", "
        << "\"catalog_bytes\": " << r.resident_bytes << ", "
        << "\"bytes_ratio_vs_f32\": " << r.bytes_ratio_vs_f32 << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
