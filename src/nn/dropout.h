// Inverted dropout: activations are scaled by 1/(1-p) at training time so
// inference is a no-op (as in the paper's Keras model).
#pragma once

#include "nn/layer.h"

namespace memcom {

class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;         // scaled keep-mask from the last training forward
  bool last_training_ = false;
};

}  // namespace memcom
