#include "embedding/embedding.h"

namespace memcom {

Index EmbeddingLayer::param_count() {
  Index n = 0;
  for (Param* p : params()) {
    n += p->numel();
  }
  return n;
}

Tensor EmbeddingLayer::lookup_single(std::int32_t id) {
  IdBatch single(1, 1);
  single.id(0, 0) = id;
  const Tensor out = forward(single, /*training=*/false);
  return out.reshaped({out.dim(2)});
}

Tensor embedding_init(Index rows, Index cols, Rng& rng) {
  return Tensor::uniform({rows, cols}, rng, -0.05f, 0.05f);
}

FullEmbedding::FullEmbedding(Index vocab, Index embed_dim, Rng& rng,
                             std::string layer_name)
    : name_(std::move(layer_name)),
      table_(name_ + ".table", embedding_init(vocab, embed_dim, rng)) {
  table_.sparse = true;
}

Tensor FullEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_size());
  cached_input_ = input;
  const Index e = output_dim();
  Tensor out({input.batch, input.length, e});
  const float* table = table_.value.data();
  float* o = out.data();
  for (Index i = 0; i < input.size(); ++i) {
    const std::int32_t id = input.ids[static_cast<std::size_t>(i)];
    const float* row = table + static_cast<Index>(id) * e;
    float* dst = o + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] = row[c];
    }
  }
  return out;
}

void FullEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(0) == cached_input_.batch &&
            grad_out.dim(1) == cached_input_.length &&
            grad_out.dim(2) == output_dim(),
        name_ + ": bad grad shape " + grad_out.shape_string());
  const Index e = output_dim();
  const float* g = grad_out.data();
  float* grad_table = table_.grad.data();
  for (Index i = 0; i < cached_input_.size(); ++i) {
    const Index row = static_cast<Index>(cached_input_.ids[static_cast<std::size_t>(i)]);
    table_.mark_touched(row);
    float* dst = grad_table + row * e;
    const float* src = g + i * e;
    for (Index c = 0; c < e; ++c) {
      dst[c] += src[c];
    }
  }
}

}  // namespace memcom
