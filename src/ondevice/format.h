// The .mcm on-device model format: a flat, mmap-friendly container.
//
// Layout:
//   [header]   magic "MCM1", version, (v3+: plan offset+size),
//              (v4: catalog-index offset+size), counts
//   [metadata] key/value string pairs (architecture, technique, dims, ...)
//   [directory] per tensor: name, dtype, shape, scale, blob offset+size
//   [blobs]    raw tensor payloads, each aligned to 64 bytes
//   [plan]     v3+ only: serialized compiled plan (see ondevice/plan.h)
//   [index]    v4 only: serialized catalog index (ondevice/catalog_index.h)
//
// The reader maps the file with mmap(2) (read-only, MAP_PRIVATE) and hands
// out zero-copy views, exactly like CoreML / TF-Lite weight files (§3 of
// the paper). Blob offsets are relative to the file start so the memory
// meter can attribute page touches.
//
// Versioning discipline: v2 added per-entry group_size for grouped dtypes;
// v3 adds an OPTIONAL trailing plan section and two u64 header fields
// locating it; v4 adds an OPTIONAL clustered catalog-index section and two
// more locator u64s. A file is only ever written at the lowest version its
// contents need, so plan-less/index-less exports stay byte-identical to
// what pre-v3/pre-v4 writers produced and remain readable by old readers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/quantize.h"

namespace memcom {

struct TensorEntry {
  std::string name;
  DType dtype = DType::kF32;
  Shape shape;
  float scale = 1.0f;
  Index group_size = 0;  // i4g: elements per scale group, 0 otherwise
  std::uint64_t offset = 0;  // byte offset of the blob within the file
  std::uint64_t byte_size = 0;

  Index numel() const { return shape_numel(shape); }
};

class ModelWriter {
 public:
  explicit ModelWriter(std::string path);

  void set_metadata(const std::string& key, const std::string& value);
  void set_metadata_int(const std::string& key, std::int64_t value);

  // Stamps the model's deployment identity ("model_name"/"model_version"
  // metadata): a stable name shared across refreshes of the same logical
  // model and a monotonically increasing version the ModelRegistry's
  // hot-swap path enforces. `version` must be >= 1 (0 is the legacy "no
  // identity" sentinel readers report for old files).
  void set_model_identity(const std::string& name, std::uint64_t version);

  // Quantizes `tensor` to `dtype` and schedules it for writing.
  // `group_size` is only meaningful for kI4G (0 picks kI4GroupDefault);
  // grouped tensors bump the container to format version 2, which appends
  // a per-entry group_size field to the directory. Files without grouped
  // tensors keep writing version 1, so old readers stay compatible.
  void add_tensor(const std::string& name, const Tensor& tensor,
                  DType dtype = DType::kF32, Index group_size = 0);

  // Appends an ahead-of-time compiled plan section, bumping the container
  // to v3. finish() stages the plan-less file, builds the plan from it
  // with the SAME build_plan() the load-time fallback uses (bit-identity
  // by construction), and rewrites the file with the section appended.
  // Requires full engine metadata (arch/technique/dims) — finish() throws
  // on a file build_plan() cannot compile.
  void set_emit_plan(bool emit = true) { emit_plan_ = emit; }

  // Appends a clustered catalog-index section (ondevice/catalog_index.h),
  // bumping the container to v4. Like the plan, finish() stages the
  // section-less file first and builds the index from it with the SAME
  // build_catalog_index_for_model() an in-process builder would use.
  // `clusters` == 0 picks the ~sqrt(items) default. Requires an output
  // catalog (out.weight/out.bias) — finish() throws without one.
  void set_emit_catalog_index(bool emit = true, Index clusters = 0) {
    emit_index_ = emit;
    index_clusters_ = clusters;
  }

  // Writes the file; returns total bytes written. The writer is single-use.
  std::uint64_t finish();

 private:
  std::uint64_t write_file(std::uint32_t version,
                           const std::vector<std::uint8_t>& plan_bytes,
                           const std::vector<std::uint8_t>& index_bytes);

  std::string path_;
  std::map<std::string, std::string> metadata_;
  std::vector<std::pair<std::string, QuantizedTensor>> tensors_;
  bool emit_plan_ = false;
  bool emit_index_ = false;
  Index index_clusters_ = 0;
  bool finished_ = false;
};

class MmapModel {
 public:
  explicit MmapModel(const std::string& path);
  ~MmapModel();

  MmapModel(const MmapModel&) = delete;
  MmapModel& operator=(const MmapModel&) = delete;

  const std::map<std::string, std::string>& metadata() const {
    return metadata_;
  }
  std::string metadata_value(const std::string& key) const;
  std::int64_t metadata_int(const std::string& key) const;
  bool has_metadata(const std::string& key) const {
    return metadata_.count(key) > 0;
  }

  // Deployment identity, tolerant of legacy files written before
  // set_model_identity existed: an empty name / version 0 means the file
  // carries no identity metadata.
  bool has_model_identity() const { return has_metadata("model_name"); }
  std::string model_name() const;
  std::uint64_t model_version() const;

  bool has_tensor(const std::string& name) const;
  const TensorEntry& entry(const std::string& name) const;
  std::vector<std::string> tensor_names() const;

  // Positional directory access, in FILE ORDER. Plan sections record tensor
  // handles as these stable indices; adopting a plan re-resolves them here
  // and verifies the recorded name still lives at the recorded slot.
  std::size_t entry_count() const { return ordered_.size(); }
  const TensorEntry& entry_at(std::size_t index) const;
  // Directory index of `name` (throws when missing). Compile-time only.
  std::size_t entry_index(const std::string& name) const;

  // Number of string-keyed directory lookups served since the model was
  // opened. The inference fast path resolves all handles at engine
  // construction, so this must stay flat across steady-state run() calls —
  // tests/test_fastpath.cpp enforces it.
  std::uint64_t entry_lookup_count() const {
    return entry_lookups_.load(std::memory_order_relaxed);
  }

  // Zero-copy pointer to the blob payload inside the mapping.
  const std::uint8_t* payload(const TensorEntry& entry) const;

  // Dequantizing full-tensor load (copies).
  Tensor load_tensor(const std::string& name) const;

  std::uint64_t file_size() const { return file_size_; }
  std::uint32_t format_version() const { return format_version_; }

  // v3 plan section. Bounds are validated LENIENTLY: a header that declares
  // a section falling outside the file (or misaligned) marks the plan
  // unreachable (plan_data() == nullptr, reason in plan_bounds_error())
  // instead of failing the open — the tensors themselves are intact and
  // the loader must be able to fall back to a full compile.
  bool has_plan_section() const { return plan_declared_; }
  const std::uint8_t* plan_data() const;  // nullptr when absent/unreachable
  std::uint64_t plan_offset() const { return plan_offset_; }
  std::uint64_t plan_size() const { return plan_size_; }
  const std::string& plan_bounds_error() const { return plan_bounds_error_; }

  // v4 catalog-index section, with the same lenient bounds contract as the
  // plan: a hostile locator makes the index unreachable (the scan falls
  // back to exact), it never fails the open.
  bool has_index_section() const { return index_declared_; }
  const std::uint8_t* index_data() const;  // nullptr when absent/unreachable
  std::uint64_t index_offset() const { return index_offset_; }
  std::uint64_t index_size() const { return index_size_; }
  const std::string& index_bounds_error() const { return index_bounds_error_; }

 private:
  std::map<std::string, std::string> metadata_;
  std::map<std::string, TensorEntry> entries_;
  std::vector<const TensorEntry*> ordered_;  // directory in file order
  const std::uint8_t* mapping_ = nullptr;
  std::uint64_t file_size_ = 0;
  std::uint32_t format_version_ = 1;
  bool plan_declared_ = false;
  std::uint64_t plan_offset_ = 0;
  std::uint64_t plan_size_ = 0;
  std::string plan_bounds_error_;
  bool index_declared_ = false;
  std::uint64_t index_offset_ = 0;
  std::uint64_t index_size_ = 0;
  std::string index_bounds_error_;
  // Mutable: counting lookups does not change the logical model. Atomic so
  // concurrent serving engines sharing one model stay race-free.
  mutable std::atomic<std::uint64_t> entry_lookups_{0};
};

}  // namespace memcom
