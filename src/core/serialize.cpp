#include "core/serialize.h"

#include <bit>
#include <cstring>

#include "core/check.h"

namespace memcom {

namespace {
template <typename T>
void write_raw(std::ostream& os, T v) {
  // This codebase targets little-endian hosts (x86-64 / arm64); a static
  // assert would need std::endian, which we check once here.
  static_assert(std::endian::native == std::endian::little,
                "serialization assumes a little-endian host");
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
  check(os.good(), "serialize: write failed");
}

template <typename T>
T read_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  check(is.good(), "serialize: read failed (truncated stream?)");
  return v;
}
}  // namespace

void write_u32(std::ostream& os, std::uint32_t v) { write_raw(os, v); }
void write_u64(std::ostream& os, std::uint64_t v) { write_raw(os, v); }
void write_i64(std::ostream& os, std::int64_t v) { write_raw(os, v); }
void write_f32(std::ostream& os, float v) { write_raw(os, v); }

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  check(os.good(), "serialize: string write failed");
}

void write_f32_array(std::ostream& os, const float* data, std::size_t count) {
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(count * sizeof(float)));
  check(os.good(), "serialize: array write failed");
}

std::uint32_t read_u32(std::istream& is) { return read_raw<std::uint32_t>(is); }
std::uint64_t read_u64(std::istream& is) { return read_raw<std::uint64_t>(is); }
std::int64_t read_i64(std::istream& is) { return read_raw<std::int64_t>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  check(n < (1ULL << 32), "serialize: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  check(is.good(), "serialize: string read failed");
  return s;
}

void read_f32_array(std::istream& is, float* data, std::size_t count) {
  is.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(float)));
  check(is.good(), "serialize: array read failed");
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.ndim()));
  for (Index i = 0; i < t.ndim(); ++i) {
    write_i64(os, t.dim(i));
  }
  write_f32_array(os, t.data(), static_cast<std::size_t>(t.numel()));
}

Tensor read_tensor(std::istream& is) {
  const std::uint64_t ndim = read_u64(is);
  check(ndim <= 8, "serialize: implausible tensor rank");
  Shape shape(ndim);
  for (std::uint64_t i = 0; i < ndim; ++i) {
    shape[i] = read_i64(is);
  }
  Tensor t(shape);
  read_f32_array(is, t.data(), static_cast<std::size_t>(t.numel()));
  return t;
}

}  // namespace memcom
