// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace memcom {

class Relu : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace memcom
