// Magnitude pruning (sparsification), the compression axis the paper
// explicitly defers: "we can reduce the size of a model compressed via
// MEmCom by ... sparsifying the weights ... We leave the latter as a future
// work" (Appendix A.2). Implemented here so the ablation bench can measure
// how much sparsity MEmCom models tolerate on top of the hashing
// compression.
#pragma once

#include "core/tensor.h"
#include "nn/param.h"

namespace memcom {

struct PruneResult {
  Index zeroed = 0;
  Index total = 0;
  float threshold = 0.0f;  // |w| below this was zeroed

  double sparsity() const {
    return total > 0 ? static_cast<double>(zeroed) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

// Zeroes the `sparsity` fraction of smallest-magnitude elements (global
// threshold within the tensor). sparsity in [0, 1).
PruneResult magnitude_prune(Tensor& tensor, double sparsity);

// Prunes every listed parameter with a single global magnitude threshold
// across all of them (Han et al.-style whole-model pruning).
PruneResult magnitude_prune_global(const ParamRefs& params, double sparsity);

Index nonzero_count(const Tensor& tensor);
double measured_sparsity(const Tensor& tensor);

// Storage estimate for compressed sparse row encoding: nnz values at
// `value_bits` plus one 32-bit column index each, plus a 32-bit row pointer
// per row (2-D tensors; 1-D treated as a single row).
Index csr_storage_bytes(const Tensor& tensor, int value_bits = 32);

}  // namespace memcom
