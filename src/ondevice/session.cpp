#include "ondevice/session.h"

#include <limits>

#include "core/check.h"

namespace memcom {

namespace {

// splitmix64 — same finalizer AsyncServer's shard router uses, so probe
// sequences are well-scattered even for sequential session ids.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kAbsent = std::numeric_limits<std::size_t>::max();

}  // namespace

SessionStore::SessionStore(Index max_sessions, Index history_capacity)
    : max_sessions_(max_sessions), history_capacity_(history_capacity) {
  check(max_sessions > 0, "SessionStore: max_sessions must be positive");
  check(history_capacity > 0,
        "SessionStore: history_capacity must be positive");
  std::size_t buckets = 8;
  while (buckets < static_cast<std::size_t>(max_sessions) * 2) {
    buckets <<= 1;
  }
  mask_ = buckets - 1;
  bucket_used_.assign(buckets, 0);
  bucket_key_.assign(buckets, 0);
  bucket_slot_.assign(buckets, 0);

  const std::size_t slots = static_cast<std::size_t>(max_sessions);
  ring_.assign(slots * static_cast<std::size_t>(history_capacity), 0);
  slot_id_.assign(slots, 0);
  len_.assign(slots, 0);
  head_.assign(slots, 0);
  lru_prev_.assign(slots, -1);
  lru_next_.assign(slots, -1);
  free_slots_.reserve(slots);
  for (Index s = max_sessions - 1; s >= 0; --s) {
    free_slots_.push_back(s);
  }
}

std::size_t SessionStore::probe_start(std::uint64_t session_id) const {
  return static_cast<std::size_t>(mix64(session_id)) & mask_;
}

std::size_t SessionStore::find_bucket(std::uint64_t session_id) const {
  std::size_t b = probe_start(session_id);
  while (bucket_used_[b] != 0) {
    if (bucket_key_[b] == session_id) {
      return b;
    }
    b = (b + 1) & mask_;
  }
  return kAbsent;
}

void SessionStore::hash_insert(std::uint64_t session_id, Index slot) {
  std::size_t b = probe_start(session_id);
  while (bucket_used_[b] != 0) {
    b = (b + 1) & mask_;
  }
  bucket_used_[b] = 1;
  bucket_key_[b] = session_id;
  bucket_slot_[b] = slot;
}

void SessionStore::hash_erase(std::uint64_t session_id) {
  std::size_t hole = find_bucket(session_id);
  check(hole != kAbsent, "SessionStore: erasing unknown session");
  bucket_used_[hole] = 0;
  // Backward-shift deletion: walk the probe chain and pull every entry
  // whose home bucket lies at or before the hole back into it, so lookups
  // never need tombstones.
  std::size_t b = (hole + 1) & mask_;
  while (bucket_used_[b] != 0) {
    const std::size_t home = probe_start(bucket_key_[b]);
    // `b` can move into `hole` iff hole is within [home, b) cyclically.
    if (((b - home) & mask_) >= ((b - hole) & mask_)) {
      bucket_used_[hole] = 1;
      bucket_key_[hole] = bucket_key_[b];
      bucket_slot_[hole] = bucket_slot_[b];
      bucket_used_[b] = 0;
      hole = b;
    }
    b = (b + 1) & mask_;
  }
}

void SessionStore::lru_unlink(Index slot) {
  const Index p = lru_prev_[static_cast<std::size_t>(slot)];
  const Index n = lru_next_[static_cast<std::size_t>(slot)];
  if (p >= 0) {
    lru_next_[static_cast<std::size_t>(p)] = n;
  } else {
    lru_head_ = n;
  }
  if (n >= 0) {
    lru_prev_[static_cast<std::size_t>(n)] = p;
  } else {
    lru_tail_ = p;
  }
  lru_prev_[static_cast<std::size_t>(slot)] = -1;
  lru_next_[static_cast<std::size_t>(slot)] = -1;
}

void SessionStore::lru_push_front(Index slot) {
  lru_prev_[static_cast<std::size_t>(slot)] = -1;
  lru_next_[static_cast<std::size_t>(slot)] = lru_head_;
  if (lru_head_ >= 0) {
    lru_prev_[static_cast<std::size_t>(lru_head_)] = slot;
  }
  lru_head_ = slot;
  if (lru_tail_ < 0) {
    lru_tail_ = slot;
  }
}

Index SessionStore::append_and_snapshot(std::uint64_t session_id,
                                        std::int32_t item,
                                        std::vector<std::int32_t>& out) {
  Index slot;
  const std::size_t bucket = find_bucket(session_id);
  if (bucket != kAbsent) {
    slot = bucket_slot_[bucket];
    lru_unlink(slot);
    lru_push_front(slot);
  } else {
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      active_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Evict the least-recently-used session and scrub its slot so the
      // new session can never observe the victim's items.
      slot = lru_tail_;
      lru_unlink(slot);
      hash_erase(slot_id_[static_cast<std::size_t>(slot)]);
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    len_[static_cast<std::size_t>(slot)] = 0;
    head_[static_cast<std::size_t>(slot)] = 0;
    slot_id_[static_cast<std::size_t>(slot)] = session_id;
    hash_insert(session_id, slot);
    lru_push_front(slot);
  }

  std::int32_t* ring =
      ring_.data() + static_cast<std::size_t>(slot) *
                         static_cast<std::size_t>(history_capacity_);
  Index& len = len_[static_cast<std::size_t>(slot)];
  Index& head = head_[static_cast<std::size_t>(slot)];
  if (len < history_capacity_) {
    ring[(head + len) % history_capacity_] = item;
    ++len;
  } else {
    ring[head] = item;
    head = (head + 1) % history_capacity_;
  }

  out.resize(static_cast<std::size_t>(len));
  for (Index i = 0; i < len; ++i) {
    out[static_cast<std::size_t>(i)] = ring[(head + i) % history_capacity_];
  }
  return len;
}

Index SessionStore::history(std::uint64_t session_id,
                            std::vector<std::int32_t>& out) const {
  const std::size_t bucket = find_bucket(session_id);
  if (bucket == kAbsent) {
    out.clear();
    return 0;
  }
  const Index slot = bucket_slot_[bucket];
  const std::int32_t* ring =
      ring_.data() + static_cast<std::size_t>(slot) *
                         static_cast<std::size_t>(history_capacity_);
  const Index len = len_[static_cast<std::size_t>(slot)];
  const Index head = head_[static_cast<std::size_t>(slot)];
  out.resize(static_cast<std::size_t>(len));
  for (Index i = 0; i < len; ++i) {
    out[static_cast<std::size_t>(i)] = ring[(head + i) % history_capacity_];
  }
  return len;
}

bool SessionStore::contains(std::uint64_t session_id) const {
  return find_bucket(session_id) != kAbsent;
}

}  // namespace memcom
