#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memcom {
namespace {

TEST(Accuracy, PerfectAndZero) {
  Tensor scores({2, 3});
  scores.at2(0, 1) = 1.0f;
  scores.at2(1, 2) = 1.0f;
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 0}), 0.5);
}

TEST(RankOfLabel, PessimisticTies) {
  const Tensor scores = Tensor::from_vector({1, 4}, {0.9f, 0.5f, 0.9f, 0.1f});
  // EVERY tie counts against the label — both tying columns rank 1, so the
  // metric cannot depend on which column a scorer emitted first.
  EXPECT_EQ(rank_of_label(scores, 0, 0), 1);
  EXPECT_EQ(rank_of_label(scores, 0, 2), 1);
  EXPECT_EQ(rank_of_label(scores, 0, 1), 2);
  EXPECT_EQ(rank_of_label(scores, 0, 3), 3);
}

TEST(RankOfLabel, TieHeavyRegression) {
  // Quantized catalogs collapse many scores onto the same value. Pin the
  // pessimistic contract on an adversarial all-ties row and on a column
  // permutation of it: the ranks must be permutation-invariant.
  const Index cols = 8;
  Tensor scores({2, cols});
  for (Index c = 0; c < cols; ++c) {
    scores.at2(0, c) = 0.25f;  // all equal
    scores.at2(1, c) = c < 4 ? 1.0f : 0.25f;  // 4-way tie above a 4-way tie
  }
  for (Index c = 0; c < cols; ++c) {
    // All-equal row: every label sees the other cols-1 as ties -> rank 7.
    EXPECT_EQ(rank_of_label(scores, 0, c), cols - 1);
    // Two-level row: top-group labels rank 3 (3 ties), bottom-group labels
    // rank 7 (4 strictly better + 3 ties) — regardless of column position.
    EXPECT_EQ(rank_of_label(scores, 1, c), c < 4 ? 3 : 7);
  }
  // topk_accuracy under total ties: a label is "in the top k" only when
  // even the worst tie ordering puts it there.
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {0, 0}, cols), 1.0);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, {0, 0}, 4), 0.5);
  // ndcg/mrr stay deterministic too (no tie-order dependence).
  EXPECT_DOUBLE_EQ(mrr(scores, {0, 4}), 0.5 * (1.0 / 8.0 + 1.0 / 8.0));
}

TEST(TopK, MonotoneInK) {
  Rng rng(141);
  const Tensor scores = Tensor::randn({50, 20}, rng);
  std::vector<Index> labels(50);
  for (Index i = 0; i < 50; ++i) {
    labels[static_cast<std::size_t>(i)] = i % 20;
  }
  double prev = 0.0;
  for (const Index k : {1, 3, 5, 10, 20}) {
    const double acc = topk_accuracy(scores, labels, k);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, labels, 20), 1.0);
}

TEST(TopK, K1EqualsAccuracy) {
  Rng rng(142);
  const Tensor scores = Tensor::randn({30, 10}, rng);
  std::vector<Index> labels(30, 3);
  EXPECT_DOUBLE_EQ(topk_accuracy(scores, labels, 1),
                   accuracy(scores, labels));
}

TEST(Ndcg, PerfectRankingIsOne) {
  Tensor scores({3, 5});
  scores.at2(0, 2) = 10.0f;
  scores.at2(1, 0) = 10.0f;
  scores.at2(2, 4) = 10.0f;
  EXPECT_NEAR(ndcg_at_k(scores, {2, 0, 4}, 5), 1.0, 1e-12);
}

TEST(Ndcg, RankTwoGivesInverseLog3) {
  Tensor scores({1, 4});
  scores.at2(0, 0) = 2.0f;  // rank 0
  scores.at2(0, 1) = 1.0f;  // the label, rank 1
  EXPECT_NEAR(ndcg_at_k(scores, {1}, 4), 1.0 / std::log2(3.0), 1e-9);
}

TEST(Ndcg, LabelOutsideTopKContributesZero) {
  Tensor scores({1, 10});
  for (Index c = 0; c < 10; ++c) {
    scores.at2(0, c) = static_cast<float>(10 - c);
  }
  EXPECT_NEAR(ndcg_at_k(scores, {9}, 5), 0.0, 1e-12);  // rank 9, k=5
  EXPECT_GT(ndcg_at_k(scores, {9}, 10), 0.0);
}

TEST(Ndcg, ImprovingASwapRaisesNdcg) {
  Tensor worse({1, 3});
  worse.at2(0, 0) = 3.0f;
  worse.at2(0, 1) = 2.0f;
  worse.at2(0, 2) = 1.0f;  // label at rank 2
  Tensor better = worse;
  better.at2(0, 2) = 2.5f;  // label moves to rank 1
  EXPECT_GT(ndcg_at_k(better, {2}, 3), ndcg_at_k(worse, {2}, 3));
}

TEST(NdcgGraded, MatchesSingleRelevantSpecialCase) {
  Rng rng(143);
  const Tensor scores = Tensor::randn({10, 8}, rng);
  std::vector<Index> labels(10);
  std::vector<std::vector<std::pair<Index, double>>> graded(10);
  for (Index i = 0; i < 10; ++i) {
    labels[static_cast<std::size_t>(i)] = (i * 3) % 8;
    graded[static_cast<std::size_t>(i)] = {
        {labels[static_cast<std::size_t>(i)], 1.0}};
  }
  EXPECT_NEAR(ndcg_at_k_graded(scores, graded, 8),
              ndcg_at_k(scores, labels, 8), 1e-9);
}

TEST(NdcgGraded, IdealOrderingGivesOne) {
  Tensor scores({1, 3});
  scores.at2(0, 0) = 3.0f;
  scores.at2(0, 1) = 2.0f;
  scores.at2(0, 2) = 1.0f;
  const std::vector<std::vector<std::pair<Index, double>>> graded = {
      {{0, 3.0}, {1, 2.0}, {2, 1.0}}};
  EXPECT_NEAR(ndcg_at_k_graded(scores, graded, 3), 1.0, 1e-12);
}

TEST(NdcgGraded, ReversedOrderingBelowOne) {
  Tensor scores({1, 3});
  scores.at2(0, 0) = 1.0f;
  scores.at2(0, 1) = 2.0f;
  scores.at2(0, 2) = 3.0f;
  const std::vector<std::vector<std::pair<Index, double>>> graded = {
      {{0, 3.0}, {1, 2.0}, {2, 1.0}}};
  const double v = ndcg_at_k_graded(scores, graded, 3);
  EXPECT_LT(v, 1.0);
  EXPECT_GT(v, 0.0);
}

TEST(Mrr, ReciprocalOfRankPlusOne) {
  Tensor scores({2, 4});
  scores.at2(0, 3) = 5.0f;  // label 3 at rank 0 -> RR 1
  scores.at2(1, 0) = 5.0f;
  scores.at2(1, 1) = 4.0f;
  scores.at2(1, 2) = 3.0f;  // label 2 at rank 2 -> RR 1/3
  EXPECT_NEAR(mrr(scores, {3, 2}), (1.0 + 1.0 / 3.0) / 2.0, 1e-9);
}

TEST(RelativeLoss, PaperYAxisSemantics) {
  EXPECT_NEAR(relative_loss_percent(0.5, 0.48), 4.0, 1e-9);
  EXPECT_NEAR(relative_loss_percent(0.5, 0.5), 0.0, 1e-9);
  EXPECT_NEAR(relative_loss_percent(0.5, 0.55), -10.0, 1e-9);  // improvement
  EXPECT_THROW(relative_loss_percent(0.0, 0.1), std::runtime_error);
}

TEST(MetricsValidation, ShapeErrors) {
  const Tensor scores({2, 3});
  EXPECT_THROW(accuracy(scores, {0}), std::runtime_error);
  EXPECT_THROW(ndcg_at_k(scores, {0, 1}, 0), std::runtime_error);
  EXPECT_THROW(rank_of_label(scores, 0, 5), std::runtime_error);
}

}  // namespace
}  // namespace memcom
