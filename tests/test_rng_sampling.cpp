#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/rng.h"
#include "core/sampling.h"

namespace memcom {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(4);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0f, 0.5f);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(6);
  std::map<std::int64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.uniform_index(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    ++counts[v];
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 7.0, n * 0.012);
  }
  EXPECT_EQ(counts.size(), 7u);
}

TEST(Rng, BernoulliRate) {
  Rng rng(7);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(8);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child_a.next_u64() == child_b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(9);
  Rng b(9);
  Rng ca = a.split(5);
  Rng cb = b.split(5);
  EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Splitmix, KnownNonTrivialMixing) {
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(AliasSampler, MatchesInputDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(weights);
  EXPECT_EQ(sampler.size(), 4);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(sampler.probability(i), weights[i] / 10.0, 1e-12);
  }
  Rng rng(10);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(sampler.sample(rng))];
  }
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(i)] / static_cast<double>(n),
                sampler.probability(i), 0.01);
  }
}

TEST(AliasSampler, SingleOutcome) {
  const AliasSampler sampler({5.0});
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0);
  }
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  const AliasSampler sampler({1.0, 0.0, 1.0});
  Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(sampler.sample(rng), 1);
  }
}

TEST(AliasSampler, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler({}), std::runtime_error);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::runtime_error);
  EXPECT_THROW(AliasSampler({1.0, -1.0}), std::runtime_error);
}

TEST(Zipf, WeightsFollowPowerLaw) {
  const std::vector<double> w = zipf_weights(100, 1.0);
  EXPECT_EQ(w.size(), 100u);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
  EXPECT_NEAR(w[9], 0.1, 1e-12);
  // Monotone decreasing.
  EXPECT_TRUE(std::is_sorted(w.rbegin(), w.rend()));
}

TEST(Zipf, AlphaZeroIsUniform) {
  const std::vector<double> w = zipf_weights(10, 0.0);
  for (const double v : w) {
    EXPECT_NEAR(v, 1.0, 1e-12);
  }
}

TEST(GumbelTopK, ReturnsDistinctIndices) {
  Rng rng(13);
  const std::vector<float> scores(20, 0.0f);
  const std::vector<Index> picks = gumbel_top_k(scores, 10, rng);
  EXPECT_EQ(picks.size(), 10u);
  std::vector<Index> sorted = picks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(GumbelTopK, PrefersHighScores) {
  Rng rng(14);
  std::vector<float> scores(50, 0.0f);
  scores[7] = 20.0f;  // overwhelmingly the largest
  int hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<Index> picks = gumbel_top_k(scores, 1, rng);
    hits += picks[0] == 7 ? 1 : 0;
  }
  EXPECT_GT(hits, 190);
}

TEST(GumbelTopK, TiedKeysBreakTowardLowerIndex) {
  // Force EXACT perturbed-key ties: 1e30f absorbs any Gumbel noise in
  // float, so every key is identical and only the comparator's explicit
  // lower-index-wins tie-break (the ondevice/topk.h contract) orders the
  // output. An unstable partial_sort would emit an arbitrary permutation.
  Rng rng(77);
  const std::vector<float> scores(16, 1e30f);
  const std::vector<Index> picks = gumbel_top_k(scores, 5, rng);
  EXPECT_EQ(picks, (std::vector<Index>{0, 1, 2, 3, 4}));
  // Still deterministic when only a suffix ties: the finite entry loses to
  // the absorbed ones, and the tied block keeps index order.
  std::vector<float> mixed(8, 1e30f);
  mixed[2] = 0.0f;  // key stays ~O(1) — strictly below the absorbed keys
  Rng rng2(78);
  const std::vector<Index> mixed_picks = gumbel_top_k(mixed, 8, rng2);
  EXPECT_EQ(mixed_picks,
            (std::vector<Index>{0, 1, 3, 4, 5, 6, 7, 2}));
}

TEST(GumbelTopK, KEqualsNReturnsAll) {
  Rng rng(15);
  const std::vector<float> scores = {1.0f, 2.0f, 3.0f};
  std::vector<Index> picks = gumbel_top_k(scores, 3, rng);
  std::sort(picks.begin(), picks.end());
  EXPECT_EQ(picks, (std::vector<Index>{0, 1, 2}));
  EXPECT_THROW(gumbel_top_k(scores, 4, rng), std::runtime_error);
}

}  // namespace
}  // namespace memcom
