#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace memcom {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec s;
  s.name = "tiny";
  s.items = 200;
  s.countries = 0;
  s.output_vocab = 30;
  s.train_samples = 400;
  s.eval_samples = 100;
  s.seq_len = 16;
  s.zipf_alpha = 1.0;
  return s;
}

TEST(Table2Specs, AllSevenDatasetsPresent) {
  const auto specs = all_dataset_specs();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "newsgroup");
  EXPECT_EQ(specs[1].name, "movielens");
  EXPECT_EQ(specs[2].name, "millionsongs");
  EXPECT_EQ(specs[3].name, "google_local");
  EXPECT_EQ(specs[4].name, "netflix");
  EXPECT_EQ(specs[5].name, "games");
  EXPECT_EQ(specs[6].name, "arcade");
}

TEST(Table2Specs, GeometryMirrorsPaperRelationships) {
  // Relative relationships from Table 2 that the reproduction preserves.
  EXPECT_EQ(newsgroup_spec().output_vocab, 20);
  EXPECT_EQ(arcade_spec().output_vocab, 145);
  EXPECT_GT(games_spec().items, arcade_spec().items);          // 480K > 300K
  EXPECT_GT(games_spec().train_samples, arcade_spec().train_samples);
  EXPECT_GT(google_local_spec().items, movielens_spec().items);  // 200K > 10K
  EXPECT_GT(games_spec().countries, 0);
  EXPECT_GT(arcade_spec().countries, 0);
  EXPECT_EQ(movielens_spec().countries, 0);
  // Google Local is the flattest distribution (A.1's geographic evenness).
  for (const DatasetSpec& s : all_dataset_specs()) {
    if (s.name != "google_local") {
      EXPECT_GT(s.zipf_alpha, google_local_spec().zipf_alpha) << s.name;
    }
  }
}

TEST(Table2Specs, ScaleMultipliesVocabAndSamples) {
  const DatasetSpec base = movielens_spec(1.0);
  const DatasetSpec doubled = movielens_spec(2.0);
  EXPECT_EQ(doubled.items, 2 * base.items);
  EXPECT_EQ(doubled.train_samples, 2 * base.train_samples);
  EXPECT_EQ(doubled.output_vocab, 2 * base.output_vocab);
}

TEST(Table2Specs, LookupByName) {
  EXPECT_EQ(spec_by_name("netflix").name, "netflix");
  EXPECT_THROW(spec_by_name("imdb"), std::runtime_error);
}

TEST(Table2Specs, InputVocabIncludesPadAndCountries) {
  const DatasetSpec games = games_spec();
  EXPECT_EQ(games.input_vocab(), 1 + games.countries + games.items);
}

TEST(SyntheticData, SplitSizesMatchSpec) {
  const SyntheticDataset data(tiny_spec(), 1);
  EXPECT_EQ(data.train().size(), 400u);
  EXPECT_EQ(data.eval().size(), 100u);
  EXPECT_EQ(data.seq_len(), 16);
}

TEST(SyntheticData, DeterministicUnderSeed) {
  const SyntheticDataset a(tiny_spec(), 7);
  const SyntheticDataset b(tiny_spec(), 7);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.train()[i].history, b.train()[i].history);
    EXPECT_EQ(a.train()[i].label, b.train()[i].label);
  }
  const SyntheticDataset c(tiny_spec(), 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < 50 && !any_diff; ++i) {
    any_diff = a.train()[i].history != c.train()[i].history;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticData, IdsWithinVocabAndLabelsWithinOutput) {
  const SyntheticDataset data(tiny_spec(), 2);
  for (const Sample& s : data.train()) {
    EXPECT_EQ(s.history.size(), 16u);
    for (const std::int32_t id : s.history) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, data.input_vocab());
    }
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, data.output_vocab());
  }
}

TEST(SyntheticData, HistoriesArePaddedAtTail) {
  const SyntheticDataset data(tiny_spec(), 3);
  bool found_padding = false;
  for (const Sample& s : data.train()) {
    bool seen_pad = false;
    for (const std::int32_t id : s.history) {
      if (id == kPadId) {
        seen_pad = true;
        found_padding = true;
      } else {
        EXPECT_FALSE(seen_pad) << "non-pad id after padding started";
      }
    }
  }
  EXPECT_TRUE(found_padding);  // variable-length histories exercise padding
}

TEST(SyntheticData, NoDuplicateItemsWithinOneHistory) {
  const SyntheticDataset data(tiny_spec(), 4);
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<std::int32_t> ids;
    for (const std::int32_t id : data.train()[i].history) {
      if (id != kPadId) {
        ids.push_back(id);
      }
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  }
}

TEST(SyntheticData, FrequencySortedPopularityLowIdsMoreFrequent) {
  DatasetSpec spec = tiny_spec();
  spec.train_samples = 2000;
  spec.zipf_alpha = 1.1;
  const SyntheticDataset data(spec, 5);
  const std::vector<Index> histogram = data.train_id_histogram();
  // Aggregate head (ids 1..20) vs tail (ids 101..120) frequencies.
  Index head = 0;
  Index tail = 0;
  for (Index i = 1; i <= 20; ++i) {
    head += histogram[static_cast<std::size_t>(i)];
  }
  for (Index i = 101; i <= 120; ++i) {
    tail += histogram[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(head, 3 * tail);  // power-law head dominance
}

TEST(SyntheticData, CountriesOccupyReservedRange) {
  DatasetSpec spec = tiny_spec();
  spec.countries = 8;
  const SyntheticDataset data(spec, 6);
  // First position of each history is the country.
  for (std::size_t i = 0; i < 50; ++i) {
    const std::int32_t first = data.train()[i].history[0];
    EXPECT_GE(first, 1);
    EXPECT_LE(first, 8);
  }
}

TEST(SyntheticData, LabelsAreLearnableFromHistory) {
  // Samples sharing many history items should agree on labels more often
  // than random pairs (the latent factor structure). Weak but meaningful:
  // verify label distribution is not uniform (popularity skew + affinity).
  DatasetSpec spec = tiny_spec();
  spec.train_samples = 3000;
  const SyntheticDataset data(spec, 7);
  std::vector<Index> label_counts(static_cast<std::size_t>(spec.output_vocab),
                                  0);
  for (const Sample& s : data.train()) {
    ++label_counts[static_cast<std::size_t>(s.label)];
  }
  const Index max_count =
      *std::max_element(label_counts.begin(), label_counts.end());
  const double uniform =
      static_cast<double>(spec.train_samples) / spec.output_vocab;
  EXPECT_GT(static_cast<double>(max_count), 1.5 * uniform);
}

TEST(MakeBatch, PacksIdsAndLabels) {
  const SyntheticDataset data(tiny_spec(), 8);
  const Batch batch = make_batch(data.train(), 10, 4);
  EXPECT_EQ(batch.inputs.batch, 4);
  EXPECT_EQ(batch.inputs.length, 16);
  EXPECT_EQ(batch.labels.size(), 4u);
  for (Index l = 0; l < 16; ++l) {
    EXPECT_EQ(batch.inputs.id(0, l), data.train()[10].history[l]);
  }
  EXPECT_EQ(batch.labels[0], data.train()[10].label);
  EXPECT_THROW(make_batch(data.train(), 399, 2), std::runtime_error);
}

TEST(BatcherClass, CoversEpochExactlyOnce) {
  const SyntheticDataset data(tiny_spec(), 9);
  Rng rng(10);
  Batcher batcher(data.train(), 64, rng);
  EXPECT_EQ(batcher.batches_per_epoch(), (400 + 63) / 64);
  Batch batch;
  Index total = 0;
  Index batches = 0;
  while (batcher.next(batch)) {
    total += batch.inputs.batch;
    ++batches;
  }
  EXPECT_EQ(total, 400);
  EXPECT_EQ(batches, batcher.batches_per_epoch());
  // Exhausted until reshuffle.
  EXPECT_FALSE(batcher.next(batch));
  batcher.reshuffle();
  EXPECT_TRUE(batcher.next(batch));
}

TEST(BatcherClass, ShufflesBetweenEpochs) {
  const SyntheticDataset data(tiny_spec(), 11);
  Rng rng(12);
  Batcher batcher(data.train(), 400, rng);
  Batch first_epoch;
  batcher.next(first_epoch);
  batcher.reshuffle();
  Batch second_epoch;
  batcher.next(second_epoch);
  EXPECT_NE(first_epoch.labels, second_epoch.labels);
}

}  // namespace
}  // namespace memcom
