// Mixed-dimension embeddings (Ginart et al. 2019), evaluated in §5 of the
// paper: "Mixed dimension embeddings is a blocked extension of 'factorized
// embedding' with two additional hyperparameters ... the results were
// similar to that of the 'factorized embedding' approach."
//
// The vocabulary is partitioned by popularity (frequency-sorted ids) into
// blocks; block b stores a table of width d_b that halves as blocks get
// less popular, plus a projection back to the common output width. Head
// entities get full-width embeddings; the long tail shares narrow ones.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class MixedDimEmbedding : public EmbeddingLayer {
 public:
  // `head_block` ids go in the first (full-width) block; each subsequent
  // block covers 4x the ids at half the width, until the vocabulary is
  // exhausted (width floor 2).
  MixedDimEmbedding(Index vocab, Index head_block, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override;
  std::string name() const override { return "mixed_dim"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return embed_dim_; }

  Index block_count() const { return static_cast<Index>(blocks_.size()); }
  // [first_id, width) metadata for tests.
  Index block_of(std::int32_t id) const;
  Index block_width(Index block) const {
    return blocks_[static_cast<std::size_t>(block)].table.value.dim(1);
  }

  // Analytic parameter count for a configuration (used by the factory
  // formula and tests).
  static Index param_formula(Index vocab, Index head_block, Index embed_dim);

 private:
  struct Block {
    Index first_id = 0;  // ids [first_id, first_id + rows) live here
    Param table;         // [rows, width]
    Param projection;    // [width, e]; empty when width == e (identity)
  };

  static std::vector<std::pair<Index, Index>> block_layout(Index vocab,
                                                           Index head_block,
                                                           Index embed_dim);

  Index vocab_;
  Index embed_dim_;
  std::vector<Block> blocks_;
  IdBatch cached_input_;
  // Cached per-token narrow rows from the last forward (needed to compute
  // projection gradients).
  std::vector<std::vector<float>> cached_narrow_;
};

}  // namespace memcom
