#include "ondevice/prune.h"

#include <gtest/gtest.h>

namespace memcom {
namespace {

TEST(Prune, ZeroSparsityIsNoop) {
  Rng rng(181);
  Tensor t = Tensor::randn({10, 10}, rng);
  const Tensor before = t;
  const PruneResult result = magnitude_prune(t, 0.0);
  EXPECT_TRUE(t.equals(before));
  EXPECT_EQ(result.zeroed, 0);
  EXPECT_EQ(result.total, 100);
}

TEST(Prune, AchievesRequestedSparsityApproximately) {
  Rng rng(182);
  Tensor t = Tensor::randn({100, 50}, rng);
  const PruneResult result = magnitude_prune(t, 0.8);
  EXPECT_NEAR(result.sparsity(), 0.8, 0.01);
  EXPECT_NEAR(measured_sparsity(t), 0.8, 0.01);
}

TEST(Prune, KeepsLargestMagnitudes) {
  Tensor t = Tensor::from_vector({6}, {0.01f, -5.0f, 0.02f, 3.0f, -0.03f, 1.0f});
  magnitude_prune(t, 0.5);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], -5.0f);
  EXPECT_EQ(t[2], 0.0f);
  EXPECT_EQ(t[3], 3.0f);
  EXPECT_EQ(t[4], 0.0f);
  EXPECT_EQ(t[5], 1.0f);
}

TEST(Prune, GlobalThresholdSpansParams) {
  // One param with tiny weights, one with large: global pruning at 50%
  // should wipe out (mostly) the tiny param.
  Param small("small", Tensor::full({10}, 0.001f));
  Param large("large", Tensor::full({10}, 1.0f));
  const PruneResult result = magnitude_prune_global({&small, &large}, 0.5);
  EXPECT_NEAR(result.sparsity(), 0.5, 0.05);
  EXPECT_EQ(nonzero_count(small.value), 0);
  EXPECT_EQ(nonzero_count(large.value), 10);
}

TEST(Prune, InvalidSparsityRejected) {
  Tensor t({4});
  EXPECT_THROW(magnitude_prune(t, 1.0), std::runtime_error);
  EXPECT_THROW(magnitude_prune(t, -0.1), std::runtime_error);
}

TEST(Prune, CsrStorageShrinksWithSparsity) {
  Rng rng(183);
  Tensor dense = Tensor::randn({100, 64}, rng);
  const Index dense_csr = csr_storage_bytes(dense);
  Tensor sparse = dense;
  magnitude_prune(sparse, 0.9);
  const Index sparse_csr = csr_storage_bytes(sparse);
  EXPECT_LT(sparse_csr, dense_csr / 5);
  // CSR only wins over dense storage when sparse enough.
  EXPECT_LT(sparse_csr, dense.numel() * 4);
}

TEST(Prune, CsrStorageAccountsValueBits) {
  Rng rng(184);
  Tensor t = Tensor::randn({10, 10}, rng);
  magnitude_prune(t, 0.5);
  EXPECT_LT(csr_storage_bytes(t, 8), csr_storage_bytes(t, 32));
}

TEST(Prune, SparsityOfAllZeroTensor) {
  const Tensor t({5, 5});
  EXPECT_DOUBLE_EQ(measured_sparsity(t), 1.0);
  EXPECT_EQ(nonzero_count(t), 0);
}

}  // namespace
}  // namespace memcom
