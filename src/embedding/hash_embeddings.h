// Hashing baselines from the paper's evaluation:
//
//  * NaiveHashEmbedding  — one shared table indexed by i mod m. Entities in
//    the same bucket are indistinguishable (no unique-vector property).
//  * DoubleHashEmbedding — Zhang et al. (RecSys 2020): two independent
//    hashes into two e/2-wide tables, concatenated. Collision probability
//    drops from ~v/m to ~v/m^2 but uniqueness is still not guaranteed.
//  * WeinbergerEmbedding — Weinberger et al. (ICML 2009) feature hashing
//    with a sign hash. Mathematically a lookup of ±row(i mod m); the
//    on-device engine also implements its original one-hot compute path,
//    which is what Table 3 benchmarks against MEmCom.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class NaiveHashEmbedding : public EmbeddingLayer {
 public:
  NaiveHashEmbedding(Index vocab, Index hash_size, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&table_}; }
  std::string name() const override { return "naive_hash"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return table_.value.dim(1); }
  Index hash_size() const { return table_.value.dim(0); }

  Param& table() { return table_; }

 private:
  Index vocab_;
  Param table_;  // [m, e]
  IdBatch cached_input_;
};

class DoubleHashEmbedding : public EmbeddingLayer {
 public:
  // Each of the two tables is [m, e/2]; outputs are concatenated to width e
  // (e must be even).
  DoubleHashEmbedding(Index vocab, Index hash_size, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&table_a_, &table_b_}; }
  std::string name() const override { return "double_hash"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return 2 * table_a_.value.dim(1); }
  Index hash_size() const { return table_a_.value.dim(0); }

 private:
  Index vocab_;
  Param table_a_;  // [m, e/2], indexed by i mod m
  Param table_b_;  // [m, e/2], indexed by mixed_hash(i, m)
  IdBatch cached_input_;
};

class WeinbergerEmbedding : public EmbeddingLayer {
 public:
  WeinbergerEmbedding(Index vocab, Index hash_size, Index embed_dim, Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&table_}; }
  std::string name() const override { return "weinberger"; }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override { return table_.value.dim(1); }
  Index hash_size() const { return table_.value.dim(0); }

  Param& table() { return table_; }

 private:
  Index vocab_;
  Param table_;  // [m, e]
  IdBatch cached_input_;
};

}  // namespace memcom
