#include "nn/sequential.h"

namespace memcom {

Tensor Sequential::forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (const LayerPtr& layer : layers_) {
    cur = layer->forward(cur, training);
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

ParamRefs Sequential::params() {
  ParamRefs refs;
  for (const LayerPtr& layer : layers_) {
    for (Param* p : layer->params()) {
      refs.push_back(p);
    }
  }
  return refs;
}

}  // namespace memcom
