// Differentially-private training (Appendix A.3 style): train a ranking
// model with DP-SGD at a few noise multipliers, report the nDCG degradation
// and the (epsilon, delta) guarantee from the RDP accountant. Uses the
// MovieLens stand-in for speed; bench/fig5_privacy runs the paper's Arcade
// setup.
//
//   ./private_federated [--noise 1.0] [--clip 1.0] [--epochs 1]
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "privacy/rdp_accountant.h"
#include "repro/trainer.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double clip = flags.get_double("clip", 1.0);
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 1);
  train.batch_size = 32;
  // DP-SGD runs per-example backward passes; keep the split small here.
  train.train_fraction = 0.25;

  DatasetSpec spec = movielens_spec();
  const SyntheticDataset data(spec, /*seed=*/3);

  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 32,
                      std::max<Index>(8, data.input_vocab() / 8)};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();

  std::cout << "== private federated learning (DP-SGD + RDP accounting) ==\n";
  RecModel noiseless(config);
  const EvalResult base = train_and_evaluate(noiseless, data, train);
  std::cout << "noiseless nDCG@32 = " << format_float(base.ndcg, 4) << "\n\n";

  const double dataset_size =
      static_cast<double>(data.train().size()) * train.train_fraction;
  const double sampling_rate =
      static_cast<double>(train.batch_size) / dataset_size;
  const double delta = 1.0 / dataset_size;  // the paper's A.3 choice
  const long long steps =
      static_cast<long long>(train.epochs) *
      static_cast<long long>(dataset_size / train.batch_size);

  TextTable table({"noise multiplier", "nDCG@32", "nDCG loss", "epsilon"});
  for (const double noise : {0.5, 1.0, 2.0}) {
    RecModel model(config);
    const EvalResult eval =
        train_dp_and_evaluate(model, data, train, clip, noise);
    const RdpAccountant accountant(sampling_rate, noise);
    table.add_row(
        {format_float(noise, 2), format_float(eval.ndcg, 4),
         format_percent(relative_loss_percent(base.ndcg, eval.ndcg)),
         format_float(accountant.epsilon(steps, delta), 2)});
  }
  std::cout << table.to_string();
  std::cout << "\ndelta = 1/|train| = " << delta
            << " (paper A.3); smaller epsilon = stronger privacy.\n";
  return 0;
}
