// Quotient-remainder trick (Shi et al. 2019, Algorithm 1 in the paper):
//
//   emb(i) = U[i mod m] ∘ V[i div m]
//
// where ∘ is elementwise multiplication (both tables e-wide) or
// concatenation (both tables e/2-wide, matching the paper's two evaluated
// variants). Guarantees a unique (constrained) embedding per entity; the
// paper argues its compositional operator is harder to optimize than
// MEmCom's scalar broadcast.
#pragma once

#include "embedding/embedding.h"

namespace memcom {

enum class QrComposition { kMultiply, kConcat };

class QrEmbedding : public EmbeddingLayer {
 public:
  QrEmbedding(Index vocab, Index hash_size, Index embed_dim, Rng& rng,
              QrComposition composition);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&remainder_, &quotient_}; }
  std::string name() const override {
    return composition_ == QrComposition::kMultiply ? "qr_mult" : "qr_concat";
  }
  Index vocab_size() const override { return vocab_; }
  Index output_dim() const override;

  Index hash_size() const { return remainder_.value.dim(0); }
  Index quotient_rows() const { return quotient_.value.dim(0); }
  QrComposition composition() const { return composition_; }

 private:
  Index vocab_;
  QrComposition composition_;
  Param remainder_;  // U: [m, e or e/2], indexed by i mod m
  Param quotient_;   // V: [ceil(v/m), e or e/2], indexed by i div m
  IdBatch cached_input_;
};

}  // namespace memcom
