// Figure 2 — compression vs. nDCG tradeoff (pointwise ranking).
//
// Paper setup (§5.2): MovieLens, Million Songs, Google Local, Netflix (and
// Arcade) with the pointwise learning-to-rank network (classification
// trunk minus the dense block after pooling); softmax scores rank the
// output catalog; y = % nDCG loss vs the uncompressed model.
//
// Paper headline: ~4% nDCG loss while compressing the input embeddings of
// MovieLens/Google/MSD/Netflix by 16x/4x/12x/40x; the state of the art
// loses 16%/6%/10%/8% at those ratios.
#include "bench_common.h"

using namespace memcom;
using namespace memcom::bench;

namespace {
// The paper quotes input-embedding compression per dataset; report the
// MEmCom point nearest each quoted ratio next to the quote.
struct PaperHeadline {
  const char* dataset;
  double embedding_ratio;
  double paper_memcom_loss;
  double paper_best_other_loss;
};
constexpr PaperHeadline kHeadlines[] = {
    {"movielens", 16.0, 4.0, 16.0},
    {"google_local", 4.0, 4.0, 6.0},
    {"millionsongs", 12.0, 4.0, 10.0},
    {"netflix", 40.0, 4.0, 8.0},
};
}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const BenchScale scale = scale_from_flags(flags);
  const TrainConfig train = train_config_from(scale, flags);
  const Index embed_dim = flags.get_int("embed-dim", 64);

  print_header(
      "Figure 2: compression vs nDCG (pointwise ranking)",
      "paper: MEmCom ~4% nDCG loss at 16x/4x/12x/40x input-embedding\n"
      "       compression on MovieLens/Google/MSD/Netflix; best other\n"
      "       technique loses 16%/6%/10%/8% at the same ratios (sec 5.2)");

  for (const DatasetSpec& spec : datasets_from_flags(
           flags,
           {"movielens", "millionsongs", "google_local", "netflix"})) {
    const SyntheticDataset data(spec, /*seed=*/2000 + train.seed);
    const SweepResult result = run_compression_sweep(
        data, ModelArch::kRanking, figure_techniques(), train, embed_dim,
        scale.ladder_levels, &std::cout);
    std::cout << "\n";
    print_sweep(result, "nDCG@32", std::cout);

    for (const PaperHeadline& headline : kHeadlines) {
      if (spec.name != headline.dataset) {
        continue;
      }
      // Find MEmCom's strongest-compression point and the best competitor
      // at the same ladder level.
      const TechniqueSeries* memcom_series = nullptr;
      for (const TechniqueSeries& series : result.series) {
        if (series.kind == TechniqueKind::kMemcom) {
          memcom_series = &series;
        }
      }
      if (memcom_series == nullptr || memcom_series->points.empty()) {
        continue;
      }
      const SweepPoint& strongest = memcom_series->points.back();
      double best_other = 1e9;
      std::string best_other_name;
      for (const TechniqueSeries& series : result.series) {
        if (series.kind == TechniqueKind::kMemcom ||
            series.kind == TechniqueKind::kMemcomBias ||
            series.points.empty()) {
          continue;
        }
        const SweepPoint& point = series.points.back();
        if (point.relative_loss_pct < best_other) {
          best_other = point.relative_loss_pct;
          best_other_name = technique_name(series.kind);
        }
      }
      std::cout << "paper-vs-measured @ strongest compression point:\n"
                << "  memcom loss: measured "
                << format_percent(strongest.relative_loss_pct)
                << "  (paper ~" << format_percent(headline.paper_memcom_loss)
                << " at " << format_ratio(headline.embedding_ratio)
                << " embedding compression)\n"
                << "  best other (" << best_other_name << "): measured "
                << format_percent(best_other) << "  (paper "
                << format_percent(headline.paper_best_other_loss) << ")\n";
    }
    std::cout << "\n";
  }
  return 0;
}
