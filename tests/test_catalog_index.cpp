// Clustered pruned top-k catalog scan (ondevice/catalog_index.h): the
// deterministic k-means build, the IVF exactness anchor (nprobe ==
// num_clusters bit-identical to the exact full scan), pruned-subset score
// fidelity, scan accounting, the .mcm v4 section round trip, and the
// hardening contract — every corruption of the index section (truncation,
// checksum flip, hostile declared cluster count, permutation corruption)
// must decode as kStale with a diagnosable reason, and serving must fall
// back to the exact scan with BIT-IDENTICAL rankings. A bad index may
// never take down a loadable model, and may never perturb a score.
#include "ondevice/catalog_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/rng.h"
#include "ondevice/compiled_model.h"
#include "ondevice/engine.h"
#include "ondevice/plan.h"
#include "ondevice/quantize.h"
#include "ondevice/serving.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// Recomputes the trailing checksum of the index section at [offset,
// offset+size) so structural corruptions survive the checksum gate and
// prove the CHECKS BEHIND IT fire, not just the checksum.
void reseal_index(std::vector<std::uint8_t>& file, std::uint64_t offset,
                  std::uint64_t size) {
  const std::uint64_t sum =
      plan_checksum(file.data() + offset, static_cast<std::size_t>(size - 8));
  std::memcpy(file.data() + offset + size - 8, &sum, 8);
}

// A reproducible synthetic catalog with clusterable structure: `items`
// rows of width `dim`, drawn around a few well-separated anchors so
// k-means has real cells to find, plus noise so rows stay distinct.
Tensor synthetic_catalog(Index items, Index dim, std::uint64_t seed) {
  Tensor rows({items, dim});
  Rng rng(seed);
  const Index anchors = 7;
  std::vector<float> anchor(static_cast<std::size_t>(anchors * dim));
  for (auto& v : anchor) {
    v = rng.uniform(-2.0f, 2.0f);
  }
  for (Index i = 0; i < items; ++i) {
    const Index a = i % anchors;
    for (Index d = 0; d < dim; ++d) {
      rows.at2(i, d) =
          anchor[static_cast<std::size_t>(a * dim + d)] +
          rng.uniform(-0.25f, 0.25f);
    }
  }
  return rows;
}

std::vector<float> random_query(Index dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(static_cast<std::size_t>(dim));
  for (auto& v : q) {
    v = rng.uniform(-1.0f, 1.0f);
  }
  return q;
}

class CatalogIndexFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(const std::string& tag, bool emit_index,
                           Index clusters = 0, DType dtype = DType::kI8,
                           bool emit_plan = false,
                           TechniqueKind kind = TechniqueKind::kMemcom) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 150;
    config.embedding.embed_dim = 16;
    config.embedding.knob = 24;
    config.arch = ModelArch::kClassification;
    config.output_vocab = 48;
    config.seed = 4711;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_cidx_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string(), dtype, "cidx", 5, /*group_size=*/0,
                     emit_plan, emit_index, clusters);
    return p.string();
  }

  // Asserts the corrupted file decodes as kStale with `reason_substr`, the
  // loader records the fallback, and session serving on it is BIT-IDENTICAL
  // to an index-less export of the same model — the exact scan contract.
  void expect_stale_exact_fallback(const std::string& path,
                                   const std::string& reason_substr) {
    auto mapped = std::make_shared<const MmapModel>(path);
    const CatalogIndexDecodeResult decoded = decode_catalog_index(*mapped);
    ASSERT_EQ(decoded.status, PlanStatus::kStale) << reason_substr;
    EXPECT_NE(decoded.reason.find(reason_substr), std::string::npos)
        << "actual reason: " << decoded.reason;
    auto compiled = std::make_shared<const CompiledModel>(mapped);
    EXPECT_FALSE(compiled->has_catalog_index());
    EXPECT_NE(compiled->index_fallback_reason().find(reason_substr),
              std::string::npos)
        << compiled->index_fallback_reason();

    // Serving still ranks, exactly: a pruned request on the defective file
    // silently takes the exact path and matches the index-less reference.
    const std::string clean = export_model("fallback_ref", false);
    const MmapModel clean_model(clean);
    std::vector<SessionEvent> events;
    for (std::uint64_t s = 1; s <= 4; ++s) {
      for (std::int32_t item = 1; item <= 5; ++item) {
        events.push_back({s, item * static_cast<std::int32_t>(s)});
      }
    }
    AsyncServerConfig config;
    config.threads = 1;
    config.max_batch = 4;
    config.session_capacity = 16;
    config.nprobe = 3;  // requested pruning, unavailable on both files
    std::vector<std::vector<Index>> corrupt_topk, clean_topk;
    {
      ModelRegistry registry;
      registry.publish("m", compiled);
      AsyncServer server(registry, "m", tflite_profile(), config);
      const ServingReport report =
          server.serve_sessions(events, 5, &corrupt_topk);
      // Exact fallback: nothing was pruned.
      EXPECT_EQ(report.pruned_fraction, 0.0) << reason_substr;
      EXPECT_EQ(report.scanned_rows, report.catalog_rows) << reason_substr;
    }
    {
      AsyncServer server(clean_model, tflite_profile(), config);
      server.serve_sessions(events, 5, &clean_topk);
    }
    ASSERT_EQ(corrupt_topk.size(), clean_topk.size());
    for (std::size_t i = 0; i < corrupt_topk.size(); ++i) {
      EXPECT_EQ(corrupt_topk[i], clean_topk[i])
          << reason_substr << " event " << i;
    }
  }

  std::vector<std::filesystem::path> paths_;
};

// --- IdBuffer semantics -----------------------------------------------------

TEST(IdBufferUnit, OwnedAndViewSemantics) {
  IdBuffer owned = IdBuffer::owned({3u, 1u, 2u});
  EXPECT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[0], 3u);
  EXPECT_FALSE(owned.zero_copy());

  const std::uint32_t backing[4] = {9u, 8u, 7u, 6u};
  IdBuffer view = IdBuffer::view(backing, 4);
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(view.data(), backing);
  EXPECT_TRUE(view.zero_copy());

  IdBuffer moved = std::move(owned);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[2], 2u);
}

// --- Deterministic k-means build --------------------------------------------

TEST(CatalogIndexBuild, DefaultClustersTracksSqrt) {
  EXPECT_THROW(default_catalog_clusters(0), std::exception);
  EXPECT_EQ(default_catalog_clusters(1), 1);
  EXPECT_EQ(default_catalog_clusters(100), 10);
  EXPECT_EQ(default_catalog_clusters(50000), 224);  // lround(sqrt)
  // Never more cells than items.
  EXPECT_LE(default_catalog_clusters(3), 3);
}

TEST(CatalogIndexBuild, TwoBuildsAreByteIdentical) {
  const Tensor rows = synthetic_catalog(96, 12, 11);
  CatalogIndexConfig config;
  config.clusters = 9;
  const CatalogIndex a = build_catalog_index(rows.data(), 96, 12, config);
  const CatalogIndex b = build_catalog_index(rows.data(), 96, 12, config);
  const std::vector<std::uint8_t> bytes_a = serialize_catalog_index(a);
  const std::vector<std::uint8_t> bytes_b = serialize_catalog_index(b);
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(CatalogIndexBuild, PermutationCoversEveryItemExactlyOnce) {
  const Tensor rows = synthetic_catalog(77, 10, 23);
  CatalogIndexConfig config;
  config.clusters = 8;
  const CatalogIndex index = build_catalog_index(rows.data(), 77, 10, config);
  ASSERT_EQ(index.items, 77);
  ASSERT_EQ(index.clusters, 8);
  ASSERT_EQ(index.perm.size(), 77u);
  ASSERT_EQ(index.offsets.size(), 9u);
  EXPECT_EQ(index.offsets[0], 0u);
  EXPECT_EQ(index.offsets[8], 77u);
  std::set<std::uint32_t> seen;
  Index total = 0;
  for (Index c = 0; c < index.clusters; ++c) {
    EXPECT_LE(index.offsets[static_cast<std::size_t>(c)],
              index.offsets[static_cast<std::size_t>(c) + 1]);
    total += index.cluster_size(c);
    // Ascending ids within a cluster (the deterministic layout).
    for (std::uint32_t i = index.offsets[static_cast<std::size_t>(c)] + 1;
         i < index.offsets[static_cast<std::size_t>(c) + 1]; ++i) {
      EXPECT_LT(index.perm[i - 1], index.perm[i]) << "cluster " << c;
    }
  }
  EXPECT_EQ(total, 77);
  for (std::size_t i = 0; i < index.perm.size(); ++i) {
    EXPECT_LT(index.perm[i], 77u);
    EXPECT_TRUE(seen.insert(index.perm[i]).second)
        << "duplicate id " << index.perm[i];
  }
}

TEST(CatalogIndexBuild, ClusterCountClampedToItems) {
  const Tensor rows = synthetic_catalog(5, 6, 3);
  CatalogIndexConfig config;
  config.clusters = 50;  // more cells than items
  const CatalogIndex index = build_catalog_index(rows.data(), 5, 6, config);
  EXPECT_EQ(index.clusters, 5);
  EXPECT_EQ(index.perm.size(), 5u);
}

// --- The exactness anchor ---------------------------------------------------

class PrunedScanExactness : public ::testing::TestWithParam<DType> {};

// nprobe == num_clusters offers every item to the same bounded heap with
// the identical dot_span score — the result must be BIT-IDENTICAL to the
// exact scorer, for every dtype and both kernel families.
TEST_P(PrunedScanExactness, FullProbeBitIdenticalToExactScan) {
  const DType dtype = GetParam();
  const Index items = 120, dim = 16, k = 10;
  const Tensor rows = synthetic_catalog(items, dim, 77);
  const QuantizedTensor catalog = quantize(rows, dtype);
  CatalogIndexConfig config;
  config.clusters = 11;
  const CatalogIndex index = build_catalog_index(catalog, config);
  for (const bool scalar : {true, false}) {
    const KernelSet& kernels = scalar ? scalar_kernels() : select_kernels();
    CatalogScorer exact(catalog, kernels);
    PrunedCatalogScorer pruned(exact, index);
    for (std::uint64_t q = 0; q < 6; ++q) {
      const std::vector<float> query = random_query(dim, 100 + q);
      const std::vector<ScoredId> want = exact.top_k(query.data(), k);
      const std::vector<ScoredId> got =
          pruned.top_k(query.data(), k, index.clusters);
      ASSERT_EQ(got.size(), want.size()) << kernels.name << " q" << q;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id)
            << kernels.name << " q" << q << " pos " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << kernels.name << " q" << q << " pos " << i;
      }
    }
  }
}

// Partial probes return a SUBSET whose scores are bit-identical to the
// exact scan's scores for those ids, in a consistent best-first order —
// pruning may miss items, it may never alter a score.
TEST_P(PrunedScanExactness, PartialProbeScoresAreExactScores) {
  const DType dtype = GetParam();
  const Index items = 120, dim = 16, k = 10;
  const Tensor rows = synthetic_catalog(items, dim, 78);
  const QuantizedTensor catalog = quantize(rows, dtype);
  CatalogIndexConfig config;
  config.clusters = 11;
  const CatalogIndex index = build_catalog_index(catalog, config);
  const KernelSet& kernels = select_kernels();
  CatalogScorer exact(catalog, kernels);
  PrunedCatalogScorer pruned(exact, index);
  std::vector<float> all_scores(static_cast<std::size_t>(items));
  for (std::uint64_t q = 0; q < 4; ++q) {
    const std::vector<float> query = random_query(dim, 500 + q);
    exact.score_all(query.data(), all_scores.data());
    for (const Index nprobe : {1, 3, 6}) {
      const std::vector<ScoredId> got = pruned.top_k(query.data(), k, nprobe);
      EXPECT_LE(got.size(), static_cast<std::size_t>(k));
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].score,
                  all_scores[static_cast<std::size_t>(got[i].id)])
            << "nprobe " << nprobe << " pos " << i;
        if (i > 0) {
          EXPECT_TRUE(topk_better(got[i - 1], got[i]))
              << "nprobe " << nprobe << " pos " << i;
        }
      }
    }
  }
}

TEST_P(PrunedScanExactness, ScanStatsAccountProbedClusters) {
  const DType dtype = GetParam();
  const Index items = 120, dim = 16;
  const Tensor rows = synthetic_catalog(items, dim, 79);
  const QuantizedTensor catalog = quantize(rows, dtype);
  CatalogIndexConfig config;
  config.clusters = 11;
  const CatalogIndex index = build_catalog_index(catalog, config);
  const KernelSet& kernels = select_kernels();
  CatalogScorer exact(catalog, kernels);
  PrunedCatalogScorer pruned(exact, index);
  const std::vector<float> query = random_query(dim, 321);
  std::uint64_t last_bytes = 0;
  Index last_rows = 0;
  for (const Index nprobe : {1, 4, 11}) {
    ScanStats stats;
    pruned.top_k(query.data(), 10, nprobe, &stats);
    EXPECT_EQ(stats.probed_clusters, nprobe);
    EXPECT_GT(stats.scanned_rows, last_rows);
    EXPECT_GT(stats.scanned_bytes, last_bytes);
    EXPECT_GE(stats.scanned_bytes, index.centroid_bytes());
    last_rows = stats.scanned_rows;
    last_bytes = stats.scanned_bytes;
  }
  // Full probe scans everything.
  EXPECT_EQ(last_rows, items);
  // Clamped: an oversized nprobe behaves as a full probe.
  ScanStats clamped;
  pruned.top_k(query.data(), 10, 999, &clamped);
  EXPECT_EQ(clamped.probed_clusters, index.clusters);
  EXPECT_EQ(clamped.scanned_rows, items);
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, PrunedScanExactness,
                         ::testing::Values(DType::kF32, DType::kI8,
                                           DType::kI4G),
                         [](const ::testing::TestParamInfo<DType>& info) {
                           return std::string(dtype_name(info.param));
                         });

// --- .mcm v4 section round trip ---------------------------------------------

TEST_F(CatalogIndexFileTest, V4RoundTripAdoptsZeroCopy) {
  const std::string path = export_model("roundtrip", true, 6);
  const MmapModel model(path);
  EXPECT_EQ(model.format_version(), 4u);
  ASSERT_TRUE(model.has_index_section());
  EXPECT_GT(model.index_size(), 0u);

  const CatalogIndexDecodeResult decoded = decode_catalog_index(model);
  ASSERT_EQ(decoded.status, PlanStatus::kValid) << decoded.reason;
  const CatalogIndex& index = decoded.index;
  EXPECT_TRUE(index.zero_copy);
  EXPECT_TRUE(index.perm.zero_copy());
  EXPECT_TRUE(index.offsets.zero_copy());
  EXPECT_EQ(index.model_name, "cidx");
  EXPECT_EQ(index.model_version, 5u);
  EXPECT_EQ(index.items, 48);
  // Classification head: out.weight is [hidden, items] with hidden = e/2,
  // and the index folds the bias in as one extra lane.
  EXPECT_EQ(index.dim, 16 / 2 + 1);
  EXPECT_EQ(index.clusters, 6);

  // The adopted view must match an in-process rebuild byte-for-byte.
  const CatalogIndex rebuilt = build_catalog_index_for_model(
      model, CatalogIndexConfig{6, index.iterations, index.seed});
  EXPECT_EQ(serialize_catalog_index(rebuilt),
            std::vector<std::uint8_t>(
                model.index_data(), model.index_data() + model.index_size()));
}

TEST_F(CatalogIndexFileTest, IndexlessExportStaysPreV4) {
  const std::string path = export_model("no_index", false);
  const MmapModel model(path);
  EXPECT_LT(model.format_version(), 4u);
  EXPECT_FALSE(model.has_index_section());
  EXPECT_EQ(decode_catalog_index(model).status, PlanStatus::kAbsent);
  auto compiled = std::make_shared<const CompiledModel>(
      std::make_shared<const MmapModel>(path));
  EXPECT_FALSE(compiled->has_catalog_index());
  EXPECT_EQ(compiled->index_fallback_reason(), "no catalog index section");
}

TEST_F(CatalogIndexFileTest, PlanAndIndexSectionsCoexist) {
  const std::string path = export_model("both", true, 6, DType::kI8, true);
  const MmapModel model(path);
  EXPECT_EQ(model.format_version(), 4u);
  EXPECT_TRUE(model.has_plan_section());
  EXPECT_TRUE(model.has_index_section());
  EXPECT_EQ(decode_plan(model).status, PlanStatus::kValid);
  EXPECT_EQ(decode_catalog_index(model).status, PlanStatus::kValid);

  // Index adoption is INDEPENDENT of plan policy: a kNeverAdopt compile
  // still serves the pruned scan.
  auto compiled = std::make_shared<const CompiledModel>(
      std::make_shared<const MmapModel>(path), PlanPolicy::kNeverAdopt);
  EXPECT_FALSE(compiled->plan_adopted());
  EXPECT_TRUE(compiled->has_catalog_index());
}

// Serving-level anchor: run_batch with every cluster probed is bit-identical
// to the exact ranked batch — ids AND scores — and the scan counters agree.
TEST_F(CatalogIndexFileTest, ServingFullProbeBitIdenticalToExact) {
  for (const DType dtype : {DType::kF32, DType::kI8, DType::kI4G}) {
    const std::string path = export_model(
        std::string("serve_") + dtype_name(dtype), true, 6, dtype);
    auto compiled = std::make_shared<const CompiledModel>(
        std::make_shared<const MmapModel>(path));
    ASSERT_TRUE(compiled->has_catalog_index())
        << compiled->index_fallback_reason();
    ExecutionContext context(compiled, tflite_profile());
    const std::vector<std::vector<std::int32_t>> histories = {
        {1, 2, 3}, {}, {7, 7, 7, 7}, {42}};
    std::vector<std::vector<ScoredId>> exact_topk, pruned_topk;
    const BatchResult exact = context.run_batch(histories, 8, &exact_topk);
    const std::vector<Index> nprobes(histories.size(),
                                     compiled->catalog_index().clusters);
    const BatchResult pruned =
        context.run_batch(histories, 8, &pruned_topk, &nprobes);
    ASSERT_EQ(exact_topk.size(), pruned_topk.size());
    for (std::size_t b = 0; b < exact_topk.size(); ++b) {
      ASSERT_EQ(exact_topk[b].size(), pruned_topk[b].size()) << b;
      for (std::size_t i = 0; i < exact_topk[b].size(); ++i) {
        EXPECT_EQ(exact_topk[b][i].id, pruned_topk[b][i].id)
            << dtype_name(dtype) << " row " << b << " pos " << i;
        EXPECT_EQ(exact_topk[b][i].score, pruned_topk[b][i].score)
            << dtype_name(dtype) << " row " << b << " pos " << i;
      }
    }
    // Full probe scans every row; the analytic byte accounting differs
    // from the exact blob accounting only by the centroid-table overhead.
    EXPECT_EQ(pruned.scanned_rows, pruned.catalog_rows);
    EXPECT_EQ(pruned.ranked_rows, static_cast<std::uint64_t>(4));
    EXPECT_GT(pruned.scanned_bytes, 0u);
    EXPECT_EQ(exact.scanned_rows, exact.catalog_rows);
  }
}

// A genuinely pruned serving drain: fewer rows scanned, counters consistent.
TEST_F(CatalogIndexFileTest, PrunedDrainReportsPrunedFraction) {
  const std::string path = export_model("pruned_drain", true, 8);
  const MmapModel model(path);
  std::vector<SessionEvent> events;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    for (std::int32_t i = 1; i <= 4; ++i) {
      events.push_back({s, static_cast<std::int32_t>(s * 7 + i)});
    }
  }
  AsyncServerConfig config;
  config.threads = 2;
  config.shards = 2;
  config.max_batch = 4;
  config.session_capacity = 16;
  config.nprobe = 2;  // 2 of 8 cells
  AsyncServer server(model, tflite_profile(), config);
  std::vector<std::vector<Index>> topk;
  const ServingReport report = server.serve_sessions(events, 5, &topk);
  EXPECT_EQ(report.session_requests, events.size());
  EXPECT_GT(report.catalog_rows, 0u);
  EXPECT_LT(report.scanned_rows, report.catalog_rows);
  EXPECT_GT(report.scanned_bytes, 0u);
  EXPECT_GT(report.pruned_fraction, 0.0);
  EXPECT_LT(report.pruned_fraction, 1.0);
  for (const auto& ids : topk) {
    EXPECT_EQ(ids.size(), 5u);
  }
  // A per-request nprobe override beats the config default: full probe
  // through the same server must match an exact-scan request exactly.
  auto full = server
                  .submit_next_item(AsyncServer::kDefaultModelId, 99, 3, 5,
                                    -1.0, /*nprobe=*/8)
                  .get();
  auto exact = server
                   .submit_next_item(AsyncServer::kDefaultModelId, 98, 3, 5,
                                     -1.0, /*nprobe=*/0)
                   .get();
  ASSERT_EQ(full.top_ids.size(), exact.top_ids.size());
  EXPECT_EQ(full.top_ids, exact.top_ids);
  EXPECT_EQ(full.top_scores, exact.top_scores);
}

// --- Hardening: every defect decodes kStale and serves exact ----------------

TEST_F(CatalogIndexFileTest, TruncatedSectionFallsBack) {
  const std::string path = export_model("trunc", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  // Shrink the DECLARED section size (header locator at byte 32: magic u32,
  // version u32, plan offset/size u64s, index offset u64) below the minimum
  // a section prefix needs — an in-bounds but truncated section.
  const std::uint64_t tiny = 16;
  std::memcpy(bytes.data() + 32, &tiny, 8);
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "truncated");
}

TEST_F(CatalogIndexFileTest, ChoppedFileFallsBack) {
  const std::string path = export_model("chop", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.resize(bytes.size() - 16);  // the section now runs past EOF
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "out of file bounds");
}

TEST_F(CatalogIndexFileTest, ChecksumFlipFallsBack) {
  const std::string path = export_model("checksum", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  {
    const MmapModel model(path);
    ASSERT_TRUE(model.has_index_section());
    // Flip one centroid byte mid-section; do NOT reseal.
    bytes[static_cast<std::size_t>(model.index_offset() +
                                   model.index_size() / 2)] ^= 0x5A;
  }
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "checksum mismatch");
}

TEST_F(CatalogIndexFileTest, HostileClusterCountFallsBack) {
  const std::string path = export_model("hostile", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    ASSERT_TRUE(model.has_index_section());
    offset = model.index_offset();
    size = model.index_size();
  }
  // The clusters i64 lives after the 16-byte prefix, the model_name string
  // (u64 length + "cidx"), the version u64, and items/dim i64s.
  const std::uint64_t clusters_at = offset + 16 + 8 + 4 + 8 + 8 + 8;
  const std::int64_t hostile = 1'000'000'000;  // far beyond items
  std::memcpy(bytes.data() + clusters_at, &hostile, 8);
  reseal_index(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "cluster count out of range");
}

TEST_F(CatalogIndexFileTest, CorruptedPermutationFallsBack) {
  const std::string path = export_model("perm", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    ASSERT_TRUE(model.has_index_section());
    offset = model.index_offset();
    size = model.index_size();
    const CatalogIndexDecodeResult decoded = decode_catalog_index(model);
    ASSERT_EQ(decoded.status, PlanStatus::kValid);
    // Duplicate the first permutation entry over the second — still
    // in-bounds ids, no longer a permutation.
    const std::uint8_t* perm_bytes =
        reinterpret_cast<const std::uint8_t*>(decoded.index.perm.data());
    const std::uint64_t perm_at =
        offset + static_cast<std::uint64_t>(perm_bytes - model.index_data());
    std::memcpy(bytes.data() + perm_at + 4, bytes.data() + perm_at, 4);
  }
  reseal_index(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "not a permutation");
}

TEST_F(CatalogIndexFileTest, IdentitySkewFallsBack) {
  const std::string path = export_model("skew", true, 6);
  std::vector<std::uint8_t> bytes = read_file(path);
  std::uint64_t offset = 0, size = 0;
  {
    const MmapModel model(path);
    ASSERT_TRUE(model.has_index_section());
    offset = model.index_offset();
    size = model.index_size();
  }
  // model_version u64 sits after the prefix and the name string.
  const std::uint64_t version_at = offset + 16 + 8 + 4;
  const std::uint64_t wrong = 999;
  std::memcpy(bytes.data() + version_at, &wrong, 8);
  reseal_index(bytes, offset, size);
  write_file(path, bytes);
  expect_stale_exact_fallback(path, "model_version skew");
}

}  // namespace
}  // namespace memcom
