#include "core/ops.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <cmath>
#include <stdexcept>

namespace memcom {
namespace {

TEST(Matmul, SmallKnownResult) {
  const Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.dim(0), 2);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::runtime_error);
}

TEST(Matmul, IdentityIsNoop) {
  Rng rng(5);
  const Tensor a = Tensor::randn({4, 4}, rng);
  Tensor eye({4, 4});
  for (Index i = 0; i < 4; ++i) {
    eye.at2(i, i) = 1.0f;
  }
  EXPECT_TENSOR_NEAR(matmul(a, eye), a, 1e-6f);
  EXPECT_TENSOR_NEAR(matmul(eye, a), a, 1e-6f);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Rng rng(6);
  const Tensor a = Tensor::randn({5, 3}, rng);
  const Tensor b = Tensor::randn({5, 4}, rng);
  const Tensor via_tn = matmul_tn(a, b);
  const Tensor via_transpose = matmul(transpose(a), b);
  EXPECT_TENSOR_NEAR(via_tn, via_transpose, 1e-4f);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Rng rng(7);
  const Tensor a = Tensor::randn({5, 3}, rng);
  const Tensor b = Tensor::randn({4, 3}, rng);
  const Tensor via_nt = matmul_nt(a, b);
  const Tensor via_transpose = matmul(a, transpose(b));
  EXPECT_TENSOR_NEAR(via_nt, via_transpose, 1e-4f);
}

TEST(Matmul, AccumulateAddsIntoExisting) {
  const Tensor a = Tensor::from_vector({1, 1}, {2});
  const Tensor b = Tensor::from_vector({1, 1}, {3});
  Tensor out = Tensor::from_vector({1, 1}, {100});
  matmul_accumulate(a, b, out);
  EXPECT_EQ(out[0], 106.0f);
}

TEST(Transpose, RoundTrip) {
  Rng rng(8);
  const Tensor a = Tensor::randn({3, 7}, rng);
  EXPECT_TRUE(transpose(transpose(a)).equals(a));
}

TEST(RowBias, AddAndColumnSumsAreAdjoint) {
  Rng rng(9);
  Tensor x = Tensor::randn({4, 3}, rng);
  const Tensor x_before = x;
  const Tensor bias = Tensor::from_vector({3}, {1, -2, 3});
  add_row_bias(x, bias);
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(x.at2(r, c), x_before.at2(r, c) + bias[c]);
    }
  }
  const Tensor sums = column_sums(x);
  for (Index c = 0; c < 3; ++c) {
    float expected = 0.0f;
    for (Index r = 0; r < 4; ++r) {
      expected += x.at2(r, c);
    }
    EXPECT_NEAR(sums[c], expected, 1e-5f);
  }
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  const Tensor logits = Tensor::from_vector({2, 3}, {1, 2, 3, -1, 5, 0});
  const Tensor p = softmax_rows(logits);
  for (Index r = 0; r < 2; ++r) {
    float row_sum = 0.0f;
    for (Index c = 0; c < 3; ++c) {
      EXPECT_GT(p.at2(r, c), 0.0f);
      row_sum += p.at2(r, c);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at2(0, 2), p.at2(0, 1));
  EXPECT_GT(p.at2(0, 1), p.at2(0, 0));
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor logits = Tensor::from_vector({1, 2}, {1000.0f, 999.0f});
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
  EXPECT_GT(p[0], p[1]);
}

TEST(Softmax, ShiftInvariance) {
  const Tensor a = Tensor::from_vector({1, 3}, {1, 2, 3});
  const Tensor b = Tensor::from_vector({1, 3}, {101, 102, 103});
  EXPECT_TENSOR_NEAR(softmax_rows(a), softmax_rows(b), 1e-5f);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  const Tensor logits = Tensor::from_vector({2, 3}, {0.5f, -1, 2, 3, 3, 3});
  const Tensor lp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
  }
}

TEST(LogSumExp, KnownValuesAndStability) {
  const Tensor logits = Tensor::from_vector({1, 2}, {0.0f, 0.0f});
  EXPECT_NEAR(logsumexp_rows(logits)[0], std::log(2.0f), 1e-6f);
  const Tensor huge = Tensor::from_vector({1, 2}, {10000.0f, 10000.0f});
  EXPECT_NEAR(logsumexp_rows(huge)[0], 10000.0f + std::log(2.0f), 1e-2f);
}

TEST(SigmoidFn, SymmetryAndRange) {
  EXPECT_NEAR(sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(sigmoid(3.0f) + sigmoid(-3.0f), 1.0f, 1e-6f);
  EXPECT_GT(sigmoid(30.0f), 0.9999f);
  EXPECT_LT(sigmoid(-30.0f), 1e-4f);
}

TEST(WeightedSumMiddle, MasksAndWeights) {
  // x: [1, 3, 2]
  const Tensor x = Tensor::from_vector({1, 3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor w = Tensor::from_vector({1, 3}, {0.5f, 0.0f, 0.5f});
  const Tensor out = weighted_sum_middle(x, w);
  EXPECT_EQ(out.dim(0), 1);
  EXPECT_EQ(out.dim(1), 2);
  EXPECT_FLOAT_EQ(out.at2(0, 0), 0.5f * 1 + 0.5f * 5);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 0.5f * 2 + 0.5f * 6);
}

TEST(ElementwiseHelpers, AddSubMul) {
  const Tensor a = Tensor::from_vector({2}, {3, 4});
  const Tensor b = Tensor::from_vector({2}, {1, 2});
  EXPECT_EQ(add(a, b)[0], 4.0f);
  EXPECT_EQ(sub(a, b)[1], 2.0f);
  EXPECT_EQ(mul(a, b)[1], 8.0f);
}

}  // namespace
}  // namespace memcom
