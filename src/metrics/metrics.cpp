#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace memcom {

namespace {
void check_scores(const Tensor& scores, const std::vector<Index>& labels) {
  check(scores.ndim() == 2, "metrics: scores must be [rows, classes]");
  check_eq(scores.dim(0), static_cast<long long>(labels.size()),
           "metrics: rows vs labels");
  check(scores.dim(0) > 0, "metrics: empty scores");
}
}  // namespace

Index rank_of_label(const Tensor& scores, Index row, Index label) {
  const Index cols = scores.dim(1);
  check(label >= 0 && label < cols, "metrics: label out of range");
  const float* s = scores.data() + row * cols;
  const float target = s[static_cast<std::size_t>(label)];
  Index rank = 0;
  for (Index c = 0; c < cols; ++c) {
    if (c == label) {
      continue;
    }
    // Pessimistic ranking: EVERY column tying the label outranks it, not
    // just lower-indexed ones. Quantized catalogs tie constantly, and the
    // old column-order tie-break made topk_accuracy / ndcg@k depend on how
    // a scorer happened to order equal scores — irreproducible across
    // kernel families. Pessimistic ranks are a worst-case lower bound on
    // the metric and are invariant to tie ordering.
    if (s[c] >= target) {
      ++rank;
    }
  }
  return rank;
}

double accuracy(const Tensor& scores, const std::vector<Index>& labels) {
  check_scores(scores, labels);
  const Index rows = scores.dim(0);
  Index correct = 0;
  for (Index r = 0; r < rows; ++r) {
    if (rank_of_label(scores, r, labels[static_cast<std::size_t>(r)]) == 0) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

double topk_accuracy(const Tensor& scores, const std::vector<Index>& labels,
                     Index k) {
  check_scores(scores, labels);
  check(k > 0, "topk: k must be positive");
  const Index rows = scores.dim(0);
  Index hits = 0;
  for (Index r = 0; r < rows; ++r) {
    if (rank_of_label(scores, r, labels[static_cast<std::size_t>(r)]) < k) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(rows);
}

double ndcg_at_k(const Tensor& scores, const std::vector<Index>& labels,
                 Index k) {
  check_scores(scores, labels);
  check(k > 0, "ndcg: k must be positive");
  const Index rows = scores.dim(0);
  double acc = 0.0;
  for (Index r = 0; r < rows; ++r) {
    const Index rank =
        rank_of_label(scores, r, labels[static_cast<std::size_t>(r)]);
    if (rank < k) {
      acc += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }
  }
  return acc / static_cast<double>(rows);
}

double ndcg_at_k_graded(
    const Tensor& scores,
    const std::vector<std::vector<std::pair<Index, double>>>& relevance,
    Index k) {
  check(scores.ndim() == 2, "ndcg: scores must be 2-D");
  check_eq(scores.dim(0), static_cast<long long>(relevance.size()),
           "ndcg: rows vs relevance");
  const Index rows = scores.dim(0);
  const Index cols = scores.dim(1);
  double total = 0.0;
  for (Index r = 0; r < rows; ++r) {
    const auto& rel = relevance[static_cast<std::size_t>(r)];
    if (rel.empty()) {
      continue;
    }
    // Rank all columns by score (descending, stable by column id).
    std::vector<Index> order(static_cast<std::size_t>(cols));
    for (Index c = 0; c < cols; ++c) {
      order[static_cast<std::size_t>(c)] = c;
    }
    const float* s = scores.data() + r * cols;
    std::stable_sort(order.begin(), order.end(), [s](Index a, Index b) {
      return s[a] > s[b];
    });
    std::vector<double> gains(static_cast<std::size_t>(cols), 0.0);
    for (const auto& [col, gain] : rel) {
      check(col >= 0 && col < cols, "ndcg: relevance column out of range");
      gains[static_cast<std::size_t>(col)] = gain;
    }
    double dcg = 0.0;
    for (Index pos = 0; pos < std::min(k, cols); ++pos) {
      dcg += gains[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] /
             std::log2(static_cast<double>(pos) + 2.0);
    }
    std::vector<double> ideal = gains;
    std::sort(ideal.begin(), ideal.end(), std::greater<>());
    double idcg = 0.0;
    for (Index pos = 0; pos < std::min(k, cols); ++pos) {
      idcg += ideal[static_cast<std::size_t>(pos)] /
              std::log2(static_cast<double>(pos) + 2.0);
    }
    if (idcg > 0.0) {
      total += dcg / idcg;
    }
  }
  return total / static_cast<double>(rows);
}

double mrr(const Tensor& scores, const std::vector<Index>& labels) {
  check_scores(scores, labels);
  const Index rows = scores.dim(0);
  double acc = 0.0;
  for (Index r = 0; r < rows; ++r) {
    const Index rank =
        rank_of_label(scores, r, labels[static_cast<std::size_t>(r)]);
    acc += 1.0 / static_cast<double>(rank + 1);
  }
  return acc / static_cast<double>(rows);
}

double relative_loss_percent(double baseline, double value) {
  check(baseline != 0.0, "relative loss: zero baseline");
  return 100.0 * (baseline - value) / baseline;
}

}  // namespace memcom
