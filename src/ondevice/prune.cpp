#include "ondevice/prune.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"

namespace memcom {

namespace {
float threshold_for(const std::vector<float>& magnitudes, double sparsity) {
  if (magnitudes.empty() || sparsity <= 0.0) {
    return 0.0f;
  }
  std::vector<float> sorted = magnitudes;
  const std::size_t cut = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(sparsity * static_cast<double>(sorted.size())));
  std::nth_element(sorted.begin(), sorted.begin() + cut, sorted.end());
  return sorted[cut];
}

Index zero_below(Tensor& tensor, float threshold) {
  Index zeroed = 0;
  float* data = tensor.data();
  for (Index i = 0; i < tensor.numel(); ++i) {
    if (std::fabs(data[i]) < threshold && data[i] != 0.0f) {
      data[i] = 0.0f;
    }
    if (data[i] == 0.0f) {
      ++zeroed;
    }
  }
  return zeroed;
}
}  // namespace

PruneResult magnitude_prune(Tensor& tensor, double sparsity) {
  check(sparsity >= 0.0 && sparsity < 1.0, "prune: sparsity must be in [0,1)");
  PruneResult result;
  result.total = tensor.numel();
  std::vector<float> magnitudes(static_cast<std::size_t>(tensor.numel()));
  for (Index i = 0; i < tensor.numel(); ++i) {
    magnitudes[static_cast<std::size_t>(i)] = std::fabs(tensor[i]);
  }
  result.threshold = threshold_for(magnitudes, sparsity);
  result.zeroed = zero_below(tensor, result.threshold);
  return result;
}

PruneResult magnitude_prune_global(const ParamRefs& params, double sparsity) {
  check(sparsity >= 0.0 && sparsity < 1.0, "prune: sparsity must be in [0,1)");
  PruneResult result;
  std::vector<float> magnitudes;
  for (const Param* p : params) {
    result.total += p->numel();
    for (Index i = 0; i < p->numel(); ++i) {
      magnitudes.push_back(std::fabs(p->value[i]));
    }
  }
  result.threshold = threshold_for(magnitudes, sparsity);
  for (Param* p : params) {
    result.zeroed += zero_below(p->value, result.threshold);
  }
  return result;
}

Index nonzero_count(const Tensor& tensor) {
  Index count = 0;
  for (Index i = 0; i < tensor.numel(); ++i) {
    if (tensor[i] != 0.0f) {
      ++count;
    }
  }
  return count;
}

double measured_sparsity(const Tensor& tensor) {
  if (tensor.numel() == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(nonzero_count(tensor)) /
                   static_cast<double>(tensor.numel());
}

Index csr_storage_bytes(const Tensor& tensor, int value_bits) {
  const Index nnz = nonzero_count(tensor);
  const Index rows = tensor.ndim() >= 2 ? tensor.dim(0) : 1;
  const Index value_bytes = (nnz * value_bits + 7) / 8;
  return value_bytes + nnz * 4 + (rows + 1) * 4;
}

}  // namespace memcom
