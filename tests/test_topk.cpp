// The top-k ordering contract (src/ondevice/topk.h):
//   * topk_better is a TOTAL order — higher score first, ties (including
//     -0.0 vs +0.0) broken toward the lower id;
//   * topk_select (bounded heap) is element-for-element identical to the
//     full-sort reference for every k, including adversarial all-equal and
//     signed-zero score vectors;
//   * CatalogScorer produces the same ids/scores whether the catalog scan
//     runs through the scalar or the dispatched kernel family, for every
//     catalog dtype.
#include "ondevice/topk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.h"

namespace memcom {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

void expect_same_ranking(const std::vector<ScoredId>& a,
                         const std::vector<ScoredId>& b, const char* tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << tag << " position " << i;
    EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(float)), 0)
        << tag << " position " << i;
  }
}

// --- the comparator itself -------------------------------------------------

TEST(TopkBetter, TotalOrderWithLowerIdTieBreak) {
  EXPECT_TRUE(topk_better({2.0f, 5}, {1.0f, 0}));
  EXPECT_FALSE(topk_better({1.0f, 0}, {2.0f, 5}));
  // Equal scores: lower id wins, and the relation is asymmetric.
  EXPECT_TRUE(topk_better({1.0f, 3}, {1.0f, 7}));
  EXPECT_FALSE(topk_better({1.0f, 7}, {1.0f, 3}));
  // Irreflexive.
  EXPECT_FALSE(topk_better({1.0f, 3}, {1.0f, 3}));
  // -0.0 == 0.0 under float ==, so signed zeros tie and resolve by id.
  EXPECT_TRUE(topk_better({-0.0f, 1}, {0.0f, 2}));
  EXPECT_TRUE(topk_better({0.0f, 1}, {-0.0f, 2}));
}

// --- heap vs full sort -----------------------------------------------------

TEST(TopkSelect, MatchesFullSortOnRandomScores) {
  Rng rng(701);
  for (const Index n : {1, 2, 5, 16, 100, 257}) {
    std::vector<float> scores(static_cast<std::size_t>(n));
    for (float& s : scores) {
      s = rng.uniform(-3.0f, 3.0f);
    }
    for (const Index k : {Index{1}, Index{2}, Index{7}, n / 2, n, n + 3}) {
      if (k <= 0) {
        continue;
      }
      expect_same_ranking(topk_select(scores.data(), n, k),
                          topk_full_sort(scores.data(), n, k), "random");
    }
  }
}

TEST(TopkSelect, AdversarialAllEqualAndSignedZeroVectors) {
  // Every score identical: the ranking must be 0, 1, 2, ... by id alone.
  for (const float fill : {0.25f, 0.0f, -0.0f}) {
    const Index n = 33;
    std::vector<float> scores(static_cast<std::size_t>(n), fill);
    for (const Index k : {Index{1}, Index{8}, n}) {
      const std::vector<ScoredId> got = topk_select(scores.data(), n, k);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(std::min(k, n)));
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, static_cast<Index>(i)) << "fill=" << fill;
      }
      expect_same_ranking(got, topk_full_sort(scores.data(), n, k),
                          "all-equal");
    }
  }
  // Alternating ±0.0: all tie; ids must come back in increasing order and
  // the returned score bit patterns must match the full sort's.
  std::vector<float> mixed(16);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i] = (i % 2 == 0) ? 0.0f : -0.0f;
  }
  const Index n = static_cast<Index>(mixed.size());
  const std::vector<ScoredId> got = topk_select(mixed.data(), n, 5);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, static_cast<Index>(i));
  }
  expect_same_ranking(got, topk_full_sort(mixed.data(), n, 5), "signed-zero");
}

TEST(TopkSelect, EdgeCases) {
  const float scores[] = {1.0f, 3.0f, 2.0f};
  // k = 0: empty.
  EXPECT_TRUE(topk_select(scores, 3, 0).empty());
  // k = 1: the max.
  std::vector<ScoredId> one = topk_select(scores, 3, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].id, 1);
  EXPECT_EQ(one[0].score, 3.0f);
  // k >= n: full descending ranking.
  for (const Index k : {Index{3}, Index{10}}) {
    const std::vector<ScoredId> all = topk_select(scores, 3, k);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].id, 1);
    EXPECT_EQ(all[1].id, 2);
    EXPECT_EQ(all[2].id, 0);
  }
  // n = 0: empty regardless of k.
  EXPECT_TRUE(topk_select(scores, 0, 5).empty());
}

TEST(TopkSelect, SmallerKIsPrefixOfLargerK) {
  // The mixed-k batching in AsyncServer ranks once at the batch max and
  // truncates per request — only valid because the ordering is total.
  Rng rng(702);
  std::vector<float> scores(64);
  for (float& s : scores) {
    s = rng.uniform(-1.0f, 1.0f);
  }
  scores[10] = scores[20];  // plant a tie
  const Index n = static_cast<Index>(scores.size());
  const std::vector<ScoredId> big = topk_select(scores.data(), n, 32);
  for (const Index k : {Index{1}, Index{4}, Index{17}}) {
    const std::vector<ScoredId> small = topk_select(scores.data(), n, k);
    ASSERT_EQ(small.size(), static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small[i].id, big[i].id) << "k=" << k << " i=" << i;
    }
  }
}

// --- CatalogScorer ---------------------------------------------------------

QuantizedTensor make_catalog(Index items, Index dim, DType dtype,
                             Index group_size, Rng& rng) {
  const Tensor t = Tensor::randn({items, dim}, rng, 0.4f);
  return quantize(t, dtype, group_size);
}

TEST(CatalogScorer, ScoreAllMatchesDotSpanReference) {
  Rng rng(703);
  const Index items = 40;
  const Index dim = 24;
  const QuantizedTensor q = make_catalog(items, dim, DType::kI8, 0, rng);
  const KernelSet& ref = scalar_kernels();
  const CatalogScorer scorer(q, ref);
  EXPECT_EQ(scorer.items(), items);
  EXPECT_EQ(scorer.dim(), dim);
  EXPECT_EQ(scorer.resident_bytes(), q.payload.size());

  std::vector<float> query(static_cast<std::size_t>(dim));
  for (float& x : query) {
    x = rng.uniform(-1.0f, 1.0f);
  }
  std::vector<float> out(static_cast<std::size_t>(items), -99.0f);
  scorer.score_all(query.data(), out.data());
  const SpanSrc src = make_span_src(q);
  for (Index i = 0; i < items; ++i) {
    const float want = ref.dot_span(src, i * dim, dim, query.data());
    EXPECT_EQ(std::memcmp(&out[static_cast<std::size_t>(i)], &want,
                          sizeof(float)),
              0)
        << "row " << i;
  }
}

TEST(CatalogScorer, TopKMatchesScoreAllPlusFullSort) {
  Rng rng(704);
  const QuantizedTensor q = make_catalog(64, 16, DType::kI4G, 8, rng);
  const CatalogScorer scorer(q, scalar_kernels());
  std::vector<float> query(16);
  for (float& x : query) {
    x = rng.uniform(-1.0f, 1.0f);
  }
  std::vector<float> all(64);
  scorer.score_all(query.data(), all.data());
  for (const Index k : {Index{1}, Index{5}, Index{64}, Index{100}}) {
    expect_same_ranking(scorer.top_k(query.data(), k),
                        topk_full_sort(all.data(), 64, k), "catalog");
  }
}

TEST(CatalogScorer, ScalarAndDispatchedFamiliesAgreeForEveryDtype) {
  ScopedEnv disable("MEMCOM_DISABLE_SIMD", nullptr);
  ScopedEnv fma("MEMCOM_ENABLE_FMA", nullptr);
  const KernelSet& simd = select_kernels();
  const KernelSet& ref = scalar_kernels();
  Rng rng(705);
  struct Case {
    DType dtype;
    Index group_size;
  };
  for (const Case c : {Case{DType::kF32, 0}, Case{DType::kF16, 0},
                       Case{DType::kI8, 0}, Case{DType::kI4, 0},
                       Case{DType::kI4G, 8}, Case{DType::kI4G, 32}}) {
    const QuantizedTensor q = make_catalog(50, 32, c.dtype, c.group_size, rng);
    const CatalogScorer a(q, ref);
    const CatalogScorer b(q, simd);
    std::vector<float> query(32);
    for (float& x : query) {
      x = rng.uniform(-1.0f, 1.0f);
    }
    expect_same_ranking(a.top_k(query.data(), 10), b.top_k(query.data(), 10),
                        dtype_name(c.dtype));
  }
}

TEST(CatalogScorer, QuantizedTiesStillRankById) {
  // A constant catalog makes every item score identical — exactly the
  // degenerate case heavy quantization produces. Ids must come back
  // 0, 1, 2, ... on every family.
  Rng rng(706);
  Tensor t({20, 8});
  for (Index i = 0; i < t.numel(); ++i) {
    t.data()[i] = 0.5f;
  }
  const QuantizedTensor q = quantize(t, DType::kI4);
  const CatalogScorer scorer(q, scalar_kernels());
  std::vector<float> query(8, 1.0f);
  const std::vector<ScoredId> top = scorer.top_k(query.data(), 6);
  ASSERT_EQ(top.size(), 6u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].id, static_cast<Index>(i));
  }
}

}  // namespace
}  // namespace memcom
