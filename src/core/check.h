// Runtime invariant checking.
//
// `check(cond, msg)` throws std::runtime_error with source location on
// failure. It is always on (not compiled out in release builds): this library
// favors loud failure over silent corruption, and none of the checks sit on
// hot inner loops (per-element loops use unchecked accessors).
#pragma once

#include <source_location>
#include <string>
#include <string_view>

namespace memcom {

[[noreturn]] void check_failed(std::string_view message,
                               const std::source_location& loc);

inline void check(bool ok, std::string_view message = "check failed",
                  std::source_location loc = std::source_location::current()) {
  if (!ok) {
    check_failed(message, loc);
  }
}

// Formats "<what>: expected <expected>, got <got>" and throws.
[[noreturn]] void check_failed_eq(std::string_view what, long long expected,
                                  long long got,
                                  const std::source_location& loc);

inline void check_eq(long long expected, long long got,
                     std::string_view what = "value",
                     std::source_location loc = std::source_location::current()) {
  if (expected != got) {
    check_failed_eq(what, expected, got, loc);
  }
}

}  // namespace memcom
