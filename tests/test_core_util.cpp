// Tests for the bench-facing utilities: command-line flag parsing and
// aligned table / number formatting.
#include <gtest/gtest.h>

#include "core/flags.h"
#include "core/table.h"

namespace memcom {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = parse({"--steps=100", "--name=abc"});
  EXPECT_EQ(flags.get_int("steps", 0), 100);
  EXPECT_EQ(flags.get_string("name", ""), "abc");
}

TEST(Flags, SpaceSeparatedForm) {
  const Flags flags = parse({"--steps", "250", "--rate", "0.5"});
  EXPECT_EQ(flags.get_int("steps", 0), 250);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags flags = parse({"--full", "--verbose"});
  EXPECT_TRUE(flags.get_bool("full", false));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("full"));
  EXPECT_FALSE(flags.has("quick"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(Flags, BoolValueForms) {
  const Flags flags = parse({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"input.mcm", "second", "--stats"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.mcm");
  EXPECT_EQ(flags.positional()[1], "second");
  EXPECT_TRUE(flags.get_bool("stats", false));
}

TEST(Flags, BareFlagGreedilyConsumesNextValue) {
  // Documented behaviour: `--name value` binds the value; a positional
  // argument therefore cannot directly follow a bare switch.
  const Flags flags = parse({"--stats", "second"});
  EXPECT_EQ(flags.get_string("stats", ""), "second");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, SwitchFollowedByFlagDoesNotSwallow) {
  const Flags flags = parse({"--full", "--steps=3"});
  EXPECT_TRUE(flags.get_bool("full", false));
  EXPECT_EQ(flags.get_int("steps", 0), 3);
}

TEST(TextTableFormat, AlignmentAndSeparator) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer_name", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer_name"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  // Both data lines have equal length (alignment).
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    lines.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(TextTableFormat, RowWidthValidated) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), std::runtime_error);
  EXPECT_EQ(table.row_count(), 0u);
}

TEST(TextTableFormat, CsvQuotesCommas) {
  TextTable table({"k", "v"});
  table.add_row({"x,y", "3"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_EQ(csv.find("k,v"), 0u);
}

TEST(NumberFormat, FixedPrecision) {
  EXPECT_EQ(format_float(3.14159, 2), "3.14");
  EXPECT_EQ(format_float(-0.5, 3), "-0.500");
  EXPECT_EQ(format_float(2.0, 0), "2");
}

TEST(NumberFormat, RatioAndPercent) {
  EXPECT_EQ(format_ratio(16.04), "16.0x");
  EXPECT_EQ(format_percent(4.0), "+4.00%");
  EXPECT_EQ(format_percent(-1.25), "-1.25%");
  EXPECT_EQ(format_percent(0.0), "0.00%");
}

}  // namespace
}  // namespace memcom
