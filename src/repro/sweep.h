// Compression-vs-accuracy sweep runner — the machinery behind Figures 1-3.
//
// For one dataset it trains the uncompressed baseline, then every requested
// technique at every point of its compression-knob ladder, and reports the
// paper's coordinates: x = whole-model compression ratio ("we measure the
// number of parameters of all the layers and not just the embedding
// layers", §5.1), y = % loss in the primary metric vs the baseline.
#pragma once

#include <ostream>

#include "repro/trainer.h"

namespace memcom {

struct SweepPoint {
  Index knob = 0;
  Index model_params = 0;
  double compression_ratio = 1.0;
  double metric = 0.0;
  double relative_loss_pct = 0.0;
};

struct TechniqueSeries {
  TechniqueKind kind = TechniqueKind::kFull;
  std::vector<SweepPoint> points;
};

struct SweepResult {
  std::string dataset;
  ModelArch arch = ModelArch::kClassification;
  double baseline_metric = 0.0;
  Index baseline_params = 0;
  std::vector<TechniqueSeries> series;
};

// The per-technique ladder of compression knobs, strongest compression
// last. `levels` entries mirror the paper's hash-size ladder (100K, 50K,
// 25K, 10K, 5K, 1K scaled to vocab fractions 1/2 .. 1/64).
std::vector<Index> knob_ladder(TechniqueKind kind, Index vocab,
                               Index embed_dim, Index levels);

SweepResult run_compression_sweep(const SyntheticDataset& data, ModelArch arch,
                                  const std::vector<TechniqueKind>& techniques,
                                  const TrainConfig& train_config,
                                  Index embed_dim, Index ladder_levels,
                                  std::ostream* progress = nullptr);

// Renders the sweep in the paper's figure form (one series per technique).
void print_sweep(const SweepResult& result, const std::string& metric_name,
                 std::ostream& os);

// Model parameter count for a given embedding configuration without
// training (used by Figure 6's size budgeting).
Index model_param_count(const EmbeddingConfig& embedding, ModelArch arch,
                        Index output_vocab);

}  // namespace memcom
