// On-device engine tests: parity with the training stack's inference,
// lookup vs one-hot memory behaviour, device profiles, quantized execution.
#include "ondevice/engine.h"

#include <gtest/gtest.h>

#include "test_util.h"

#include <filesystem>

#include "data/synthetic.h"
#include "repro/model.h"

namespace memcom {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_engine_" + tag + ".mcm");
    paths_.push_back(p);
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }
  std::vector<std::filesystem::path> paths_;
};

ModelConfig small_config(TechniqueKind kind, ModelArch arch) {
  ModelConfig config;
  config.embedding.kind = kind;
  config.embedding.vocab = 120;
  config.embedding.embed_dim = 16;
  switch (kind) {
    case TechniqueKind::kFactorized:
    case TechniqueKind::kReduceDim:
      config.embedding.knob = 8;
      break;
    case TechniqueKind::kFull:
      config.embedding.knob = 0;
      break;
    default:
      config.embedding.knob = 24;
  }
  config.arch = arch;
  config.output_vocab = 40;
  config.seed = 1234;
  return config;
}

std::vector<std::int32_t> sample_history() {
  return {5, 17, 42, 100, 7, 0, 0, 0};  // padded tail
}

// The engine must produce the same logits as the training-stack forward in
// inference mode, for every lookup technique and both architectures.
struct ParityCase {
  TechniqueKind kind;
  ModelArch arch;
};

class EngineParity : public EngineTest,
                     public ::testing::WithParamInterface<ParityCase> {};

TEST_P(EngineParity, LogitsMatchTrainingStack) {
  const ParityCase param = GetParam();
  ModelConfig config = small_config(param.kind, param.arch);
  RecModel model(config);

  // Run one training batch so batchnorm has non-trivial running stats.
  Rng rng(7);
  IdBatch warm(8, 8);
  for (Index i = 0; i < warm.size(); ++i) {
    warm.ids[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(rng.uniform_index(120));
  }
  model.forward(warm, /*training=*/true);

  const std::string path =
      temp_path(technique_name(param.kind) +
                (param.arch == ModelArch::kClassification ? "_cls" : "_rank"));
  model.export_mcm(path);

  const std::vector<std::int32_t> history = sample_history();
  IdBatch input(1, static_cast<Index>(history.size()));
  input.ids = history;
  const Tensor expected = model.forward(input, /*training=*/false);

  const MmapModel mapped(path);
  InferenceEngine engine(mapped, coreml_profile("cpuOnly"));
  const InferenceResult result = engine.run(history);
  ASSERT_EQ(result.logits.numel(), 40);
  for (Index c = 0; c < 40; ++c) {
    EXPECT_NEAR(result.logits[c], expected.at2(0, c), 5e-4f)
        << technique_name(param.kind) << " logit " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TechniquesAndArchs, EngineParity,
    ::testing::Values(
        ParityCase{TechniqueKind::kFull, ModelArch::kClassification},
        ParityCase{TechniqueKind::kFull, ModelArch::kRanking},
        ParityCase{TechniqueKind::kMemcom, ModelArch::kClassification},
        ParityCase{TechniqueKind::kMemcom, ModelArch::kRanking},
        ParityCase{TechniqueKind::kMemcomBias, ModelArch::kRanking},
        ParityCase{TechniqueKind::kQrMult, ModelArch::kRanking},
        ParityCase{TechniqueKind::kQrConcat, ModelArch::kRanking},
        ParityCase{TechniqueKind::kNaiveHash, ModelArch::kClassification},
        ParityCase{TechniqueKind::kDoubleHash, ModelArch::kRanking},
        ParityCase{TechniqueKind::kFactorized, ModelArch::kRanking},
        ParityCase{TechniqueKind::kReduceDim, ModelArch::kClassification},
        ParityCase{TechniqueKind::kTruncateRare, ModelArch::kRanking}),
    [](const ::testing::TestParamInfo<ParityCase>& info) {
      return technique_name(info.param.kind) +
             std::string(info.param.arch == ModelArch::kClassification
                             ? "_cls"
                             : "_rank");
    });

TEST_F(EngineTest, WeinbergerOneHotMatchesLookupMath) {
  // The one-hot compute path must produce the same pooled embedding (and
  // logits) as the sign-lookup formulation.
  ModelConfig config = small_config(TechniqueKind::kWeinberger,
                                    ModelArch::kRanking);
  RecModel model(config);
  const std::string path = temp_path("weinberger");
  model.export_mcm(path);

  const std::vector<std::int32_t> history = sample_history();
  IdBatch input(1, static_cast<Index>(history.size()));
  input.ids = history;
  const Tensor expected = model.forward(input, /*training=*/false);

  const MmapModel mapped(path);
  InferenceEngine engine(mapped, coreml_profile("all"));
  EXPECT_TRUE(engine.uses_onehot_path());
  const InferenceResult result = engine.run(history);
  for (Index c = 0; c < 40; ++c) {
    EXPECT_NEAR(result.logits[c], expected.at2(0, c), 5e-4f);
  }
}

TEST_F(EngineTest, MemcomTouchesFarFewerPagesThanWeinberger) {
  // The Table 3 memory mechanism, end to end.
  const auto build = [&](TechniqueKind kind, const std::string& tag) {
    ModelConfig config = small_config(kind, ModelArch::kRanking);
    config.embedding.vocab = 4000;
    config.embedding.embed_dim = 64;
    config.embedding.knob = 1000;
    RecModel model(config);
    const std::string path = temp_path(tag);
    model.export_mcm(path);
    return path;
  };
  const std::string memcom_path = build(TechniqueKind::kMemcom, "m_pages");
  const std::string wein_path = build(TechniqueKind::kWeinberger, "w_pages");

  const std::vector<std::int32_t> history = sample_history();
  const MmapModel memcom_model(memcom_path);
  InferenceEngine memcom_engine(memcom_model, tflite_profile());
  memcom_engine.run(history);

  const MmapModel wein_model(wein_path);
  InferenceEngine wein_engine(wein_model, tflite_profile());
  wein_engine.run(history);

  // Weinberger streams the whole 1000 x 64 x 4B table; memcom touches only
  // the history's rows (plus trunk weights, identical for both).
  EXPECT_LT(memcom_engine.meter().weight_resident_bytes(),
            wein_engine.meter().weight_resident_bytes());
  EXPECT_GT(static_cast<double>(wein_engine.meter().weight_resident_bytes()) /
                memcom_engine.meter().weight_resident_bytes(),
            1.15);
}

TEST_F(EngineTest, RepeatRunsDoNotGrowResidency) {
  ModelConfig config = small_config(TechniqueKind::kMemcom,
                                    ModelArch::kRanking);
  RecModel model(config);
  const std::string path = temp_path("repeat");
  model.export_mcm(path);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, coreml_profile("all"));
  const std::vector<std::int32_t> history = sample_history();
  engine.run(history);
  const Index after_one = engine.meter().weight_resident_bytes();
  engine.run(history);
  engine.run(history);
  EXPECT_EQ(engine.meter().weight_resident_bytes(), after_one);
}

TEST_F(EngineTest, QuantizedModelsStayAccurate) {
  ModelConfig config = small_config(TechniqueKind::kMemcom,
                                    ModelArch::kRanking);
  RecModel model(config);
  const std::vector<std::int32_t> history = sample_history();
  IdBatch input(1, static_cast<Index>(history.size()));
  input.ids = history;
  const Tensor expected = model.forward(input, false);

  const std::string p16 = temp_path("q16");
  model.export_mcm(p16, DType::kF16);
  const MmapModel m16(p16);
  InferenceEngine e16(m16, coreml_profile("all"));
  const Tensor l16 = e16.run(history).logits;
  for (Index c = 0; c < 40; ++c) {
    EXPECT_NEAR(l16[c], expected.at2(0, c), 0.02f);
  }

  const std::string p8 = temp_path("q8");
  model.export_mcm(p8, DType::kI8);
  const MmapModel m8(p8);
  InferenceEngine e8(m8, coreml_profile("all"));
  const Tensor l8 = e8.run(history).logits;
  // int8 logits drift but the argmax ordering of the top item should
  // usually survive; assert bounded absolute drift.
  for (Index c = 0; c < 40; ++c) {
    EXPECT_NEAR(l8[c], expected.at2(0, c), 0.6f);
  }
}

TEST_F(EngineTest, QuantizationShrinksFile) {
  ModelConfig config = small_config(TechniqueKind::kFull, ModelArch::kRanking);
  RecModel model(config);
  const std::string p32 = temp_path("s32");
  const std::string p8 = temp_path("s8");
  model.export_mcm(p32, DType::kF32);
  model.export_mcm(p8, DType::kI8);
  const MmapModel m32(p32);
  const MmapModel m8(p8);
  EXPECT_GT(m32.file_size(), 3 * m8.file_size() / 2);
}

TEST_F(EngineTest, BenchmarkStatsAreConsistent) {
  ModelConfig config = small_config(TechniqueKind::kMemcom,
                                    ModelArch::kRanking);
  RecModel model(config);
  const std::string path = temp_path("bench");
  model.export_mcm(path);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, tflite_profile());
  const LatencyStats stats = engine.benchmark(sample_history(), 10);
  EXPECT_EQ(stats.runs, 10);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_LE(stats.min_ms, stats.mean_ms);
  EXPECT_GE(stats.max_ms, stats.mean_ms);
}

TEST(LatencyStats, NearestRankPercentileIsExact) {
  // 20 samples 1..20: p95 must be the 19th sample. The old float rank math
  // computed ceil(0.95 * 20) over 19.000000000000004 -> 20 and silently
  // returned the max. (p99 of 100 samples was coincidentally fine.)
  std::vector<double> samples;
  for (int i = 1; i <= 20; ++i) {
    samples.push_back(static_cast<double>(i));
  }
  const LatencyStats stats = latency_stats_from_samples(std::move(samples));
  EXPECT_EQ(stats.runs, 20);
  EXPECT_DOUBLE_EQ(stats.p50_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats.p95_ms, 19.0);
  EXPECT_DOUBLE_EQ(stats.p99_ms, 20.0);
  EXPECT_DOUBLE_EQ(stats.max_ms, 20.0);
}

TEST(LatencyStats, TinyAndEmptySampleSets) {
  // Empty: all-zero, runs 0 (the session report path hits this whenever a
  // drain carried no session traffic).
  const LatencyStats empty = latency_stats_from_samples({});
  EXPECT_EQ(empty.runs, 0);
  EXPECT_DOUBLE_EQ(empty.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99_ms, 0.0);

  // n = 1: every percentile is the single sample.
  const LatencyStats one = latency_stats_from_samples({7.5});
  EXPECT_DOUBLE_EQ(one.p50_ms, 7.5);
  EXPECT_DOUBLE_EQ(one.p95_ms, 7.5);
  EXPECT_DOUBLE_EQ(one.p99_ms, 7.5);

  // n = 2 (n < 1/(1-p) for p95/p99): nearest-rank gives the max, p50 the
  // first sample — never an out-of-range index.
  const LatencyStats two = latency_stats_from_samples({3.0, 9.0});
  EXPECT_DOUBLE_EQ(two.p50_ms, 3.0);
  EXPECT_DOUBLE_EQ(two.p95_ms, 9.0);
  EXPECT_DOUBLE_EQ(two.p99_ms, 9.0);

  // Exact-boundary n for p50: 10 samples -> rank 5 (the 5th), not the 6th.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) {
    ten.push_back(static_cast<double>(i));
  }
  const LatencyStats stats10 = latency_stats_from_samples(std::move(ten));
  EXPECT_DOUBLE_EQ(stats10.p50_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats10.p95_ms, 10.0);
}

TEST_F(EngineTest, DeviceProfilesExposeTable3Columns) {
  const auto profiles = table3_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].label(), "coreml/all");
  EXPECT_EQ(profiles[1].label(), "coreml/cpuOnly");
  EXPECT_EQ(profiles[2].label(), "coreml/cpuAndGPU");
  EXPECT_EQ(profiles[3].label(), "tflite/CPU");
  EXPECT_GT(tflite_profile().onehot_slowdown, 1.0);
  EXPECT_THROW(coreml_profile("gpuOnly"), std::runtime_error);
}

TEST_F(EngineTest, PaddedHistoryIgnoredInPooling) {
  ModelConfig config = small_config(TechniqueKind::kMemcom,
                                    ModelArch::kRanking);
  RecModel model(config);
  const std::string path = temp_path("pad");
  model.export_mcm(path);
  const MmapModel mapped(path);
  InferenceEngine engine(mapped, coreml_profile("all"));
  // Same real ids, different padding amounts -> identical logits.
  const Tensor a = engine.run({5, 9, 0, 0}).logits;
  const Tensor b = engine.run({5, 9, 0, 0, 0, 0, 0, 0}).logits;
  EXPECT_TENSOR_NEAR(a, b, 1e-5f);
}

}  // namespace
}  // namespace memcom
