// Concurrency stress tests for the async serving pipeline.
//
//   * RequestQueue under producer/consumer contention: bounded capacity is a
//     hard invariant (backpressure engages at capacity), nothing is lost or
//     duplicated, close() drains cleanly and wakes blocked producers.
//   * AsyncServer under multi-producer load with random pacing: every
//     submitted request resolves exactly once with logits bit-identical to
//     the sequential engine, regardless of micro-batch composition — i.e.
//     the run is deterministic in request CONTENT even though scheduling is
//     not (order-independent logit multiset).
//
// The CI ThreadSanitizer job runs this suite (MEMCOM_SANITIZE=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ondevice/request_queue.h"
#include "ondevice/serving.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

// --- RequestQueue --------------------------------------------------------

TEST(RequestQueueStress, NoLossNoDuplicationUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr std::size_t kCapacity = 8;
  RequestQueue<std::uint64_t> queue(kCapacity);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      std::mt19937 rng(static_cast<unsigned>(1000 + p));
      std::uniform_int_distribution<int> delay_us(0, 80);
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t token =
            (static_cast<std::uint64_t>(p) << 32) |
            static_cast<std::uint64_t>(i);
        ASSERT_TRUE(queue.push(token));
        if (const int d = delay_us(rng); d > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(d));
        }
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> received(2);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < received.size(); ++c) {
    consumers.emplace_back([&queue, &received, c] {
      std::uint64_t token = 0;
      while (queue.pop(token)) {
        received[c].push_back(token);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }

  std::vector<std::uint64_t> all;
  for (const auto& r : received) {
    all.insert(all.end(), r.begin(), r.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Sorted tokens must be exactly {p<<32|i}: any loss or duplication breaks
  // the element-wise match.
  std::size_t idx = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(all[idx++], (static_cast<std::uint64_t>(p) << 32) |
                                static_cast<std::uint64_t>(i));
    }
  }
  EXPECT_EQ(queue.total_pushed(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // The ring IS the storage: occupancy can never have exceeded capacity.
  EXPECT_LE(queue.high_water(), kCapacity);
}

TEST(RequestQueueStress, BackpressureEngagesAtCapacity) {
  RequestQueue<int> queue(3);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  // Full: non-blocking admission must fail and be counted.
  EXPECT_FALSE(queue.try_push(4));
  EXPECT_FALSE(queue.try_push(5));
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_water(), 3u);
  int out = 0;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  // One slot freed: admission resumes.
  EXPECT_TRUE(queue.try_push(6));
  EXPECT_EQ(queue.high_water(), 3u);
}

TEST(RequestQueueStress, CloseDrainsPendingThenStops) {
  RequestQueue<int> queue(4);
  ASSERT_TRUE(queue.push(10));
  ASSERT_TRUE(queue.push(11));
  queue.close();
  EXPECT_FALSE(queue.push(12));      // no admission after close...
  EXPECT_FALSE(queue.try_push(13));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));       // ...but the backlog still drains
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(queue.pop(out));      // drained: pop reports shutdown
}

TEST(RequestQueueStress, CloseWakesBlockedProducer) {
  RequestQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::promise<bool> pushed;
  std::thread producer([&] {
    pushed.set_value(queue.push(2));  // blocks: queue is full
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_FALSE(pushed.get_future().get());  // woken with a clean failure
}

TEST(RequestQueueStress, PopWaitUntilTimesOutOnEmptyQueue) {
  RequestQueue<int> queue(2);
  int out = 0;
  bool timed_out = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_FALSE(queue.pop_wait_until(out, deadline, &timed_out));
  EXPECT_TRUE(timed_out);
}

// --- AsyncServer ---------------------------------------------------------

class AsyncStressTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, const std::string& tag) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 200;
    config.embedding.embed_dim = 16;
    config.embedding.knob = 32;
    config.arch = ModelArch::kClassification;
    config.output_vocab = 20;
    config.seed = 777;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_async_stress_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string());
    return p.string();
  }

  std::vector<std::filesystem::path> paths_;
};

std::vector<std::int32_t> random_history(std::mt19937& rng) {
  std::uniform_int_distribution<int> len(1, 12);
  std::uniform_int_distribution<std::int32_t> id(1, 199);
  std::vector<std::int32_t> history(static_cast<std::size_t>(len(rng)));
  for (auto& v : history) {
    v = id(rng);
  }
  return history;
}

TEST_F(AsyncStressTest, MultiProducerNoLossNoDuplicationBitExact) {
  const std::string path = export_model(TechniqueKind::kMemcom, "producers");
  const MmapModel model(path);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  AsyncServerConfig config;
  config.threads = 3;
  config.max_batch = 4;
  config.max_delay_us = 100.0;
  config.queue_capacity = 8;  // small on purpose: submit() must block
  config.cache_budget_bytes = 16 * 1024;

  struct Submitted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<std::vector<Submitted>> per_producer(kProducers);
  {
    AsyncServer server(model, tflite_profile(), config);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&server, &per_producer, p] {
        std::mt19937 rng(static_cast<unsigned>(31 + p));
        std::uniform_int_distribution<int> delay_us(0, 120);
        for (int i = 0; i < kPerProducer; ++i) {
          Submitted s;
          s.history = random_history(rng);
          s.future = server.submit(s.history);
          per_producer[static_cast<std::size_t>(p)].push_back(std::move(s));
          if (const int d = delay_us(rng); d > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(d));
          }
        }
      });
    }
    for (auto& t : producers) {
      t.join();
    }
    // Backpressure invariant: admission never exceeded the bound.
    EXPECT_LE(server.queue_high_water(), config.queue_capacity);

    // Every request resolves exactly once, bit-identical to the sequential
    // engine — the scheduler may have packed them into any micro-batches.
    InferenceEngine reference(model, tflite_profile());
    std::uint64_t resolved = 0;
    for (auto& produced : per_producer) {
      for (Submitted& s : produced) {
        const AsyncResult result = s.future.get();
        ++resolved;
        const Tensor expected = reference.run(s.history).logits;
        ASSERT_EQ(static_cast<Index>(result.logits.size()),
                  expected.numel());
        for (Index c = 0; c < expected.numel(); ++c) {
          EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c]);
        }
        EXPECT_GE(result.batch, 1);
        EXPECT_LE(result.batch, config.max_batch);
        EXPECT_GE(result.queue_wait_ms, 0.0);
        EXPECT_GE(result.total_ms, result.service_ms);
      }
    }
    EXPECT_EQ(resolved,
              static_cast<std::uint64_t>(kProducers) * kPerProducer);
  }
}

TEST_F(AsyncStressTest, LogitMultisetIsScheduleIndependent) {
  const std::string path = export_model(TechniqueKind::kQrMult, "multiset");
  const MmapModel model(path);

  std::mt19937 rng(404);
  std::vector<std::vector<std::int32_t>> requests;
  for (int i = 0; i < 48; ++i) {
    requests.push_back(random_history(rng));
  }

  // Same request content through two very different schedules: batch-1
  // single worker vs aggressive micro-batching on 4 workers with a cache.
  auto drain = [&](AsyncServerConfig config) {
    AsyncServer server(model, tflite_profile(), config);
    Tensor logits;
    server.serve(requests, 1, 0.0, &logits);
    std::vector<std::vector<float>> rows;
    for (Index r = 0; r < logits.dim(0); ++r) {
      const float* row = &logits.at2(r, 0);
      rows.emplace_back(row, row + logits.shape()[1]);
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  AsyncServerConfig serial;
  serial.threads = 1;
  serial.max_batch = 1;
  serial.max_delay_us = 0.0;
  serial.queue_capacity = 4;
  AsyncServerConfig batched;
  batched.threads = 4;
  batched.max_batch = 16;
  batched.max_delay_us = 300.0;
  batched.queue_capacity = 32;
  batched.cache_budget_bytes = 64 * 1024;

  const auto rows_serial = drain(serial);
  const auto rows_batched = drain(batched);
  ASSERT_EQ(rows_serial.size(), rows_batched.size());
  for (std::size_t i = 0; i < rows_serial.size(); ++i) {
    EXPECT_EQ(rows_serial[i], rows_batched[i]) << "sorted row " << i;
  }
}

TEST_F(AsyncStressTest, ReportIsInternallyConsistent) {
  const std::string path = export_model(TechniqueKind::kMemcom, "report");
  const MmapModel model(path);

  std::mt19937 rng(11);
  std::vector<std::vector<std::int32_t>> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(random_history(rng));
  }

  AsyncServerConfig config;
  config.threads = 2;
  config.max_batch = 8;
  config.max_delay_us = 200.0;
  config.queue_capacity = 16;
  config.cache_budget_bytes = 32 * 1024;
  AsyncServer server(model, tflite_profile(), config);
  const ServingReport report = server.serve(requests, 3);

  EXPECT_EQ(report.threads, 2);
  EXPECT_EQ(report.requests, 72u);
  EXPECT_EQ(report.latency.runs, 72);
  EXPECT_EQ(report.queue_wait.runs, 72);
  EXPECT_EQ(report.service.runs, 72);
  EXPECT_GT(report.batches, 0u);
  EXPECT_GE(report.mean_batch, 1.0);
  EXPECT_LE(report.mean_batch, static_cast<double>(config.max_batch));
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GT(report.modeled_busy_ms, 0.0);
  EXPECT_GT(report.modeled_qps, 0.0);
  EXPECT_LE(report.latency.min_ms, report.latency.p50_ms);
  EXPECT_LE(report.latency.p50_ms, report.latency.p99_ms);
  EXPECT_LE(report.latency.p99_ms, report.latency.max_ms);
  // total = queue wait + service, so the max total bounds each part's min.
  EXPECT_GE(report.latency.max_ms, report.queue_wait.min_ms);
  EXPECT_GE(report.latency.max_ms, report.service.min_ms);
  // Cache engaged: memcom is a lookup technique and the drain repeats the
  // corpus three times, so hits are guaranteed.
  EXPECT_TRUE(report.cache.enabled);
  EXPECT_GT(report.cache.hits, 0u);
  EXPECT_GT(report.cache.resident_bytes, 0u);
  EXPECT_LE(report.cache.resident_bytes, report.cache.capacity_bytes);
  EXPECT_GT(server.max_resident_megabytes(), 0.0);

  // Cache counters in a report are the DRAIN'S delta, not lifetime totals:
  // the same corpus gathers the same row count every drain, and a warmer
  // cache can only shift misses toward hits.
  const ServingReport second = server.serve(requests, 3);
  EXPECT_EQ(second.cache.hits + second.cache.misses,
            report.cache.hits + report.cache.misses);
  EXPECT_GE(second.cache.hits, report.cache.hits);
}

TEST_F(AsyncStressTest, TrySubmitRejectsWhenQueueSaturated) {
  const std::string path = export_model(TechniqueKind::kMemcom, "reject");
  const MmapModel model(path);

  AsyncServerConfig config;
  config.threads = 1;
  config.max_batch = 2;
  config.max_delay_us = 50.0;
  config.queue_capacity = 2;
  AsyncServer server(model, tflite_profile(), config);

  // Flood the tiny queue from one thread with no pacing: with a single
  // worker some try_submit must eventually bounce (and be counted), while
  // every ACCEPTED request still resolves correctly.
  InferenceEngine reference(model, tflite_profile());
  std::mt19937 rng(8);
  struct Accepted {
    std::vector<std::int32_t> history;
    std::future<AsyncResult> future;
  };
  std::vector<Accepted> accepted;
  std::uint64_t bounced = 0;
  for (int i = 0; i < 400; ++i) {
    Accepted a;
    a.history = random_history(rng);
    if (server.try_submit(a.history, &a.future)) {
      accepted.push_back(std::move(a));
    } else {
      ++bounced;
    }
  }
  EXPECT_GT(bounced, 0u);
  EXPECT_EQ(server.rejected(), bounced);
  EXPECT_EQ(server.queue_high_water(), config.queue_capacity);
  for (Accepted& a : accepted) {
    const AsyncResult result = a.future.get();
    const Tensor expected = reference.run(a.history).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(result.logits[static_cast<std::size_t>(c)], expected[c]);
    }
  }
}

}  // namespace
}  // namespace memcom
