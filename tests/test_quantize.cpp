#include "ondevice/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memcom {
namespace {

TEST(DTypeMeta, NamesBitsAndPacking) {
  EXPECT_STREQ(dtype_name(DType::kF32), "f32");
  EXPECT_STREQ(dtype_name(DType::kI4), "i4");
  EXPECT_EQ(dtype_bits(DType::kF16), 16);
  EXPECT_EQ(dtype_from_bits(8), DType::kI8);
  EXPECT_THROW(dtype_from_bits(2), std::runtime_error);
  EXPECT_EQ(packed_byte_size(DType::kF32, 3), 12u);
  EXPECT_EQ(packed_byte_size(DType::kI4, 3), 2u);  // two nibbles per byte
  EXPECT_EQ(packed_byte_size(DType::kI4, 4), 2u);
}

TEST(Fp16, ExactForSmallPowersAndIntegers) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f}) {
    EXPECT_EQ(f16_to_f32(f32_to_f16(v)), v) << v;
  }
}

TEST(Fp16, RoundTripErrorWithinHalfUlp) {
  Rng rng(151);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-8.0f, 8.0f);
    const float back = f16_to_f32(f32_to_f16(v));
    EXPECT_NEAR(back, v, std::fabs(v) * 0x1.0p-10f + 1e-6f);
  }
}

TEST(Fp16, SpecialValues) {
  EXPECT_EQ(f16_to_f32(f32_to_f16(65504.0f)), 65504.0f);  // fp16 max
  EXPECT_TRUE(std::isinf(f16_to_f32(f32_to_f16(1e30f))));  // overflow -> inf
  EXPECT_TRUE(std::isnan(f16_to_f32(f32_to_f16(NAN))));
  // Subnormal round trip.
  const float tiny = 3.0e-7f;
  const float back = f16_to_f32(f32_to_f16(tiny));
  EXPECT_NEAR(back, tiny, 6e-8f);
}

TEST(QuantizeF32, IsBitExactCopy) {
  Rng rng(152);
  const Tensor t = Tensor::randn({16, 4}, rng);
  const QuantizedTensor q = quantize(t, DType::kF32);
  EXPECT_TRUE(dequantize(q).equals(t));
  EXPECT_EQ(q.scale, 1.0f);
}

TEST(QuantizeI8, ErrorBoundedByHalfScale) {
  Rng rng(153);
  const Tensor t = Tensor::randn({100, 8}, rng, 0.2f);
  const QuantizedTensor q = quantize(t, DType::kI8);
  const Tensor back = dequantize(q);
  const float bound = quantization_error_bound(DType::kI8, q.scale,
                                               t.abs_max());
  for (Index i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), bound) << "element " << i;
  }
}

TEST(QuantizeI4, ErrorBoundedByHalfScale) {
  Rng rng(154);
  const Tensor t = Tensor::randn({64, 4}, rng, 0.1f);
  const QuantizedTensor q = quantize(t, DType::kI4);
  const Tensor back = dequantize(q);
  const float bound =
      quantization_error_bound(DType::kI4, q.scale, t.abs_max());
  for (Index i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), bound);
  }
}

TEST(QuantizeI4, OddElementCountPacksCorrectly) {
  const Tensor t = Tensor::from_vector({3}, {0.1f, -0.2f, 0.3f});
  const QuantizedTensor q = quantize(t, DType::kI4);
  EXPECT_EQ(q.payload.size(), 2u);
  const Tensor back = dequantize(q);
  EXPECT_EQ(back.numel(), 3);
  EXPECT_NEAR(back[2], 0.3f, q.scale);
}

TEST(QuantizeI8, SymmetricScaleUsesAbsMax) {
  const Tensor t = Tensor::from_vector({4}, {-1.27f, 0.5f, 1.0f, -0.02f});
  const QuantizedTensor q = quantize(t, DType::kI8);
  EXPECT_NEAR(q.scale, 1.27f / 127.0f, 1e-6f);
  const Tensor back = dequantize(q);
  EXPECT_NEAR(back[0], -1.27f, 1e-5f);  // extreme value is exact
}

TEST(QuantizeI8, ZeroTensorSafe) {
  const Tensor t({8});
  const QuantizedTensor q = quantize(t, DType::kI8);
  const Tensor back = dequantize(q);
  for (Index i = 0; i < 8; ++i) {
    EXPECT_EQ(back[i], 0.0f);
  }
}

TEST(DequantizeSpan, OffsetReadsMatchFullDequantize) {
  Rng rng(155);
  const Tensor t = Tensor::randn({10, 6}, rng, 0.3f);
  for (const DType dtype :
       {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    const QuantizedTensor q = quantize(t, dtype);
    const Tensor full = dequantize(q);
    std::vector<float> row(6);
    for (Index r = 0; r < 10; ++r) {
      dequantize_span(dtype, q.scale, q.payload.data(), r * 6, 6, row.data());
      for (Index c = 0; c < 6; ++c) {
        EXPECT_EQ(row[static_cast<std::size_t>(c)], full.at2(r, c))
            << dtype_name(dtype) << " row " << r;
      }
    }
  }
}

TEST(QuantizePrecisionLadder, ErrorGrowsAsBitsShrink) {
  Rng rng(156);
  const Tensor t = Tensor::randn({200, 8}, rng, 0.5f);
  double prev_err = -1.0;
  for (const DType dtype :
       {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    const Tensor back = dequantize(quantize(t, dtype));
    double err = 0.0;
    for (Index i = 0; i < t.numel(); ++i) {
      err += std::fabs(back[i] - t[i]);
    }
    EXPECT_GE(err, prev_err) << dtype_name(dtype);
    prev_err = err;
  }
}

TEST(QuantizeI4, OddLengthTrailingNibbleIsZero) {
  // The packer writes a phantom ZERO high nibble for odd-length tensors.
  // Groupwise i4 builds on the same packer, so this byte-level contract is
  // pinned: 5 elements -> 3 bytes, last byte's high nibble must be 0.
  const Tensor t =
      Tensor::from_vector({5}, {0.7f, -0.7f, 0.1f, -0.1f, 0.7f});
  const QuantizedTensor q = quantize(t, DType::kI4);
  ASSERT_EQ(q.payload.size(), 3u);
  EXPECT_EQ(q.payload[2] & 0xF0, 0);
  // And the round trip neither reads nor invents a 6th element.
  const Tensor back = dequantize(q);
  ASSERT_EQ(back.numel(), 5);
  EXPECT_NEAR(back[4], 0.7f, q.scale);
  EXPECT_EQ(packed_byte_size(DType::kI4, 5), 3u);
}

TEST(QuantizeI4G, GroupMetadataAndPayloadLayout) {
  EXPECT_STREQ(dtype_name(DType::kI4G), "i4g");
  EXPECT_EQ(dtype_bits(DType::kI4G), 4);
  EXPECT_TRUE(dtype_is_grouped(DType::kI4G));
  EXPECT_FALSE(dtype_is_grouped(DType::kI4));
  // 20 elements at group 8 -> 3 groups (last partial): 12 scale bytes +
  // 10 nibble bytes.
  EXPECT_EQ(i4g_group_count(20, 8), 3u);
  EXPECT_EQ(i4g_scales_bytes(20, 8), 12u);
  EXPECT_EQ(packed_byte_size(DType::kI4G, 20, 8), 22u);
  // Invalid group sizes must throw: zero for ungrouped dtypes, positive
  // multiple of 8 for i4g.
  const Tensor t({16});
  EXPECT_THROW(quantize(t, DType::kI4G, 7), std::runtime_error);
  EXPECT_THROW(quantize(t, DType::kI8, 8), std::runtime_error);
}

TEST(QuantizeI4G, ErrorBoundedByPerGroupScale) {
  Rng rng(158);
  // Mixed magnitudes across groups: an outlier group must not poison the
  // quiet groups' precision (the whole point of per-group scales).
  Tensor t = Tensor::randn({8, 16}, rng, 0.05f);
  for (Index i = 0; i < 16; ++i) {
    t[i] *= 40.0f;  // first group (row 0) is the loud one
  }
  const QuantizedTensor q = quantize(t, DType::kI4G, /*group_size=*/16);
  EXPECT_EQ(q.group_size, 16);
  EXPECT_EQ(q.scale, 1.0f);  // per-tensor scale is meaningless for i4g
  const Tensor back = dequantize(q);
  const auto* scales = reinterpret_cast<const float*>(q.payload.data());
  for (Index i = 0; i < t.numel(); ++i) {
    const float bound = quantization_error_bound(
        DType::kI4G, scales[i / 16], 0.0f);
    EXPECT_LE(std::fabs(back[i] - t[i]), bound) << "element " << i;
  }
  // A per-tensor i4 quantization of the same tensor must be strictly worse
  // on the quiet groups.
  const Tensor flat = dequantize(quantize(t, DType::kI4));
  double grouped_err = 0.0, flat_err = 0.0;
  for (Index i = 16; i < t.numel(); ++i) {
    grouped_err += std::fabs(back[i] - t[i]);
    flat_err += std::fabs(flat[i] - t[i]);
  }
  EXPECT_LT(grouped_err, flat_err);
}

TEST(QuantizeI4G, OddLengthPartialGroupRoundTrips) {
  Rng rng(159);
  const Tensor t = Tensor::randn({21}, rng, 0.2f);  // 2 full groups + 5
  const QuantizedTensor q = quantize(t, DType::kI4G, /*group_size=*/8);
  EXPECT_EQ(q.payload.size(), packed_byte_size(DType::kI4G, 21, 8));
  const Tensor back = dequantize(q);
  ASSERT_EQ(back.numel(), 21);
  const auto* scales = reinterpret_cast<const float*>(q.payload.data());
  for (Index i = 0; i < 21; ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), scales[i / 8] * 0.5f + 1e-6f) << i;
  }
  // The trailing nibble of the odd-length packed region stays zero.
  EXPECT_EQ(q.payload.back() & 0xF0, 0);
}

TEST(QuantizeI4G, DefaultGroupSizeApplied) {
  Rng rng(160);
  const Tensor t = Tensor::randn({64}, rng);
  const QuantizedTensor q = quantize(t, DType::kI4G);
  EXPECT_EQ(q.group_size, kI4GroupDefault);
}

TEST(QuantizeI4G, SpanReadsMatchFullDequantize) {
  Rng rng(161);
  const Tensor t = Tensor::randn({10, 6}, rng, 0.3f);  // rows straddle groups
  const QuantizedTensor q = quantize(t, DType::kI4G, /*group_size=*/8);
  const Tensor full = dequantize(q);
  const auto* scales = reinterpret_cast<const float*>(q.payload.data());
  const std::uint8_t* packed =
      q.payload.data() + i4g_scales_bytes(60, 8);
  std::vector<float> row(6);
  for (Index r = 0; r < 10; ++r) {
    dequantize_span_i4g(scales, packed, 8, r * 6, 6, row.data());
    for (Index c = 0; c < 6; ++c) {
      EXPECT_EQ(row[static_cast<std::size_t>(c)], full.at2(r, c))
          << "row " << r;
    }
  }
}

TEST(QuantizedTensorStruct, ShapePreserved) {
  Rng rng(157);
  const Tensor t = Tensor::randn({3, 5, 2}, rng);
  const QuantizedTensor q = quantize(t, DType::kF16);
  EXPECT_EQ(q.shape, t.shape());
  EXPECT_EQ(q.numel(), 30);
  EXPECT_EQ(dequantize(q).shape(), t.shape());
}

}  // namespace
}  // namespace memcom
