// Frequency-sorted vocabulary builder.
//
// Every hashing technique in this library (and the paper's Algorithm 2)
// assumes ids are assigned by frequency: id 0 is padding and id 1 is the
// most frequent entity ("the most downloaded app is assigned the id n+1",
// §5.1), so that `i mod m` spreads the popular head across distinct
// buckets. The synthetic generator produces such ids directly; this class
// is the adapter a user needs to feed *real* token streams in: count
// occurrences, then freeze a vocabulary whose ids honor the convention,
// optionally with a reserved leading range (the paper's shared
// country+app vocabulary).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"

namespace memcom {

class VocabBuilder {
 public:
  // Accumulates occurrence counts.
  void add(const std::string& token, Index count = 1);

  Index distinct_tokens() const {
    return static_cast<Index>(counts_.size());
  }

  // Freezes into a frequency-sorted vocabulary. `max_tokens` (0 = all)
  // keeps only the most frequent tokens; ties broken lexicographically for
  // determinism. `reserved` ids [1, reserved] are left unassigned for a
  // separate id range (countries in the Games/Arcade setup).
  class Vocab freeze(Index max_tokens = 0, Index reserved = 0) const;

 private:
  std::unordered_map<std::string, Index> counts_;
};

class Vocab {
 public:
  Vocab() = default;

  // Total id space: 1 (pad) + reserved + tokens.
  Index size() const {
    return 1 + reserved_ + static_cast<Index>(tokens_.size());
  }
  Index reserved() const { return reserved_; }
  Index token_count() const { return static_cast<Index>(tokens_.size()); }

  // Id for a token; returns kUnknownId (-1) if not in the vocabulary (the
  // caller decides whether to drop or map to an OOV id).
  static constexpr Index kUnknownId = -1;
  Index id_of(const std::string& token) const;
  bool contains(const std::string& token) const {
    return id_of(token) != kUnknownId;
  }

  // Token for an id in [first_token_id(), size()).
  const std::string& token_of(Index id) const;
  Index first_token_id() const { return 1 + reserved_; }

  // Occurrence count recorded when the vocabulary was frozen.
  Index count_of(const std::string& token) const;

  // Encodes a token sequence to ids, dropping unknown tokens, truncating /
  // zero-padding to `length` (the paper's fixed-length featurizer).
  std::vector<std::int32_t> encode(const std::vector<std::string>& tokens,
                                   Index length) const;

  void save(std::ostream& os) const;
  static Vocab load(std::istream& is);

  bool operator==(const Vocab& other) const {
    return reserved_ == other.reserved_ && tokens_ == other.tokens_ &&
           counts_ == other.counts_;
  }

 private:
  friend class VocabBuilder;
  Index reserved_ = 0;
  std::vector<std::string> tokens_;  // index 0 -> id first_token_id()
  std::vector<Index> counts_;        // parallel to tokens_
  std::unordered_map<std::string, Index> token_to_id_;
};

}  // namespace memcom
