#include "nn/batchnorm.h"

#include <cmath>

namespace memcom {

BatchNorm1d::BatchNorm1d(Index features, double momentum, double epsilon)
    : momentum_(momentum),
      epsilon_(epsilon),
      gamma_("batchnorm.gamma", Tensor::full({features}, 1.0f)),
      beta_("batchnorm.beta", Tensor({features})),
      running_mean_({features}),
      running_var_(Tensor::full({features}, 1.0f)) {
  check(momentum >= 0.0 && momentum < 1.0, "batchnorm momentum out of range");
}

Tensor BatchNorm1d::forward(const Tensor& x, bool training) {
  check(x.ndim() == 2, "batchnorm: input must be 2-D");
  check_eq(features(), x.dim(1), "batchnorm features");
  const Index rows = x.dim(0);
  const Index cols = x.dim(1);
  last_training_ = training;

  Tensor mean({cols});
  Tensor var({cols});
  if (training) {
    check(rows > 0, "batchnorm: empty batch in training mode");
    for (Index c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (Index r = 0; r < rows; ++r) {
        acc += x.at2(r, c);
      }
      mean[c] = static_cast<float>(acc / static_cast<double>(rows));
    }
    for (Index c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (Index r = 0; r < rows; ++r) {
        const double d = x.at2(r, c) - mean[c];
        acc += d * d;
      }
      var[c] = static_cast<float>(acc / static_cast<double>(rows));
    }
    // Exponential moving average of statistics for inference.
    for (Index c = 0; c < cols; ++c) {
      running_mean_[c] = static_cast<float>(momentum_ * running_mean_[c] +
                                            (1.0 - momentum_) * mean[c]);
      running_var_[c] = static_cast<float>(momentum_ * running_var_[c] +
                                           (1.0 - momentum_) * var[c]);
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_ = Tensor({cols});
  for (Index c = 0; c < cols; ++c) {
    cached_inv_std_[c] =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(var[c]) + epsilon_));
  }

  Tensor y({rows, cols});
  cached_xhat_ = Tensor({rows, cols});
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      const float xhat = (x.at2(r, c) - mean[c]) * cached_inv_std_[c];
      cached_xhat_.at2(r, c) = xhat;
      y.at2(r, c) = gamma_.value[c] * xhat + beta_.value[c];
    }
  }
  return y;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  check(grad_out.same_shape(cached_xhat_), "batchnorm: grad shape mismatch");
  const Index rows = grad_out.dim(0);
  const Index cols = grad_out.dim(1);

  // Parameter grads.
  for (Index c = 0; c < cols; ++c) {
    double dg = 0.0;
    double db = 0.0;
    for (Index r = 0; r < rows; ++r) {
      dg += static_cast<double>(grad_out.at2(r, c)) * cached_xhat_.at2(r, c);
      db += grad_out.at2(r, c);
    }
    gamma_.grad[c] += static_cast<float>(dg);
    beta_.grad[c] += static_cast<float>(db);
  }

  if (!last_training_) {
    // Inference-mode backward (used by the gradient checker): statistics are
    // constants, so dx = g * gamma * inv_std.
    Tensor gx({rows, cols});
    for (Index r = 0; r < rows; ++r) {
      for (Index c = 0; c < cols; ++c) {
        gx.at2(r, c) =
            grad_out.at2(r, c) * gamma_.value[c] * cached_inv_std_[c];
      }
    }
    return gx;
  }

  // Training-mode backward through the batch statistics:
  // dx = (gamma * inv_std / N) * (N*g - sum(g) - xhat * sum(g*xhat))
  Tensor gx({rows, cols});
  const double n = static_cast<double>(rows);
  for (Index c = 0; c < cols; ++c) {
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (Index r = 0; r < rows; ++r) {
      sum_g += grad_out.at2(r, c);
      sum_gx += static_cast<double>(grad_out.at2(r, c)) * cached_xhat_.at2(r, c);
    }
    const double scale = gamma_.value[c] * cached_inv_std_[c] / n;
    for (Index r = 0; r < rows; ++r) {
      gx.at2(r, c) = static_cast<float>(
          scale * (n * grad_out.at2(r, c) - sum_g -
                   cached_xhat_.at2(r, c) * sum_gx));
    }
  }
  return gx;
}

}  // namespace memcom
