// Serving throughput benchmark: single-thread vs multi-thread QPS of the
// zero-allocation inference fast path, per compression technique.
//
// Unlike micro_lookup/micro_ops this does not need Google Benchmark — it is
// a plain binary driven by core/flags.h, so it builds everywhere the engine
// does. Besides the human-readable table it writes a machine-readable
// BENCH_serving.json for CI trend tracking.
//
//   ./bench_serving_throughput                  # default scale
//   ./bench_serving_throughput --smoke          # tiny model, few iterations
//   ./bench_serving_throughput --threads 8 --requests 512 --repeat 16
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/serving.h"
#include "repro/model.h"

using namespace memcom;

namespace {

struct ResultRow {
  std::string technique;
  int threads = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, mean_ms = 0;
  double resident_mb = 0;
};

void write_json(const std::string& path, unsigned hardware_threads,
                const std::vector<ResultRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"hardware_threads\": " << hardware_threads
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"technique\": \"" << r.technique << "\", "
        << "\"threads\": " << r.threads << ", "
        << "\"qps\": " << r.qps << ", "
        << "\"p50_ms\": " << r.p50_ms << ", "
        << "\"p95_ms\": " << r.p95_ms << ", "
        << "\"p99_ms\": " << r.p99_ms << ", "
        << "\"mean_ms\": " << r.mean_ms << ", "
        << "\"resident_mb\": " << r.resident_mb << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const Index vocab = flags.get_int("vocab", smoke ? 2000 : 50000);
  const Index embed_dim = flags.get_int("embed-dim", smoke ? 32 : 128);
  const Index seq_len = flags.get_int("seq-len", smoke ? 16 : 64);
  const Index hash = flags.get_int("hash", std::max<Index>(8, vocab / 16));
  const int max_threads =
      static_cast<int>(flags.get_int("threads", smoke ? 2 : 4));
  const int request_count =
      static_cast<int>(flags.get_int("requests", smoke ? 64 : 256));
  const int repeat = static_cast<int>(flags.get_int("repeat", smoke ? 4 : 8));
  const std::string json_path =
      flags.get_string("out", "BENCH_serving.json");

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::cout << "serving throughput: vocab=" << vocab << " e=" << embed_dim
            << " hash=" << hash << " L=" << seq_len
            << " requests=" << request_count << " repeat=" << repeat
            << " threads=1.." << max_threads << " (hardware threads: "
            << hw_threads << ")\n";
  if (hw_threads < static_cast<unsigned>(max_threads)) {
    std::cout << "NOTE: only " << hw_threads << " hardware thread(s) visible;"
              << " multi-thread QPS cannot exceed single-thread here.\n";
  }
  std::cout << "\n";

  // A realistic request mix: random histories with a padded tail.
  Rng rng(7);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(request_count));
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len), 0);
    const Index real = seq_len - static_cast<Index>(rng.uniform_index(
                                     static_cast<Index>(seq_len / 4 + 1)));
    for (Index t = 0; t < real; ++t) {
      history[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }

  TextTable table({"technique", "threads", "qps", "p50 ms", "p95 ms",
                   "p99 ms", "mean ms", "resident MB"});
  std::vector<ResultRow> rows;

  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kQrMult,
        TechniqueKind::kNaiveHash}) {
    ModelConfig config;
    config.embedding = {kind, vocab, embed_dim, hash};
    config.arch = ModelArch::kClassification;
    config.output_vocab = smoke ? 32 : 256;
    config.seed = 99;
    RecModel model(config);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("serving_" + std::string(technique_name(kind)) + ".mcm"))
            .string();
    model.export_mcm(path, DType::kF32);
    const MmapModel mapped(path);

    double single_qps = 0.0;
    std::vector<int> thread_counts = {1};
    if (max_threads > 1) {
      thread_counts.push_back(max_threads);
    }
    for (const int threads : thread_counts) {
      ServingHarness harness(mapped, tflite_profile(), threads);
      // Warm the page cache / branch predictors before measuring.
      harness.serve(requests, 1);
      const ServingReport report = harness.serve(requests, repeat);
      if (threads == 1) {
        single_qps = report.qps;
      }
      ResultRow row;
      row.technique = technique_name(kind);
      row.threads = threads;
      row.qps = report.qps;
      row.p50_ms = report.latency.p50_ms;
      row.p95_ms = report.latency.p95_ms;
      row.p99_ms = report.latency.p99_ms;
      row.mean_ms = report.latency.mean_ms;
      row.resident_mb = harness.max_resident_megabytes();
      rows.push_back(row);
      table.add_row({row.technique, std::to_string(threads),
                     format_float(row.qps, 0), format_float(row.p50_ms, 4),
                     format_float(row.p95_ms, 4), format_float(row.p99_ms, 4),
                     format_float(row.mean_ms, 4),
                     format_float(row.resident_mb, 2)});
    }
    if (single_qps > 0.0 && !rows.empty()) {
      std::cout << "[" << technique_name(kind) << "] scaling 1->"
                << max_threads << " threads: "
                << format_float(rows.back().qps / single_qps, 2) << "x\n";
    }
    std::filesystem::remove(path);
  }

  std::cout << "\n" << table.to_string();
  write_json(json_path, hw_threads, rows);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
