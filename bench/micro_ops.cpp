// google-benchmark microbenchmarks for the substrate: matmul, softmax,
// alias sampling, quantization round trips, serialization.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/ops.h"
#include "core/sampling.h"
#include "core/serialize.h"
#include "ondevice/quantize.h"

namespace memcom {
namespace {

void BM_Matmul(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_tn(a, b));
  }
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  const Index cols = state.range(0);
  Rng rng(3);
  const Tensor logits = Tensor::randn({64, cols}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(logits));
  }
  state.SetItemsProcessed(state.iterations() * 64 * cols);
}
BENCHMARK(BM_SoftmaxRows)->Arg(128)->Arg(1024)->Arg(8192);

void BM_AliasSamplerBuild(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<double> weights = zipf_weights(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AliasSampler(weights));
  }
}
BENCHMARK(BM_AliasSamplerBuild)->Arg(1000)->Arg(100000);

void BM_AliasSamplerSample(benchmark::State& state) {
  const AliasSampler sampler(zipf_weights(100000, 1.0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSamplerSample);

void BM_Quantize(benchmark::State& state) {
  const auto dtype = static_cast<DType>(state.range(0));
  Rng rng(5);
  const Tensor t = Tensor::randn({1000, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize(t, dtype));
  }
  state.SetBytesProcessed(state.iterations() * t.numel() * 4);
  state.SetLabel(dtype_name(dtype));
}
BENCHMARK(BM_Quantize)
    ->Arg(static_cast<long long>(DType::kF16))
    ->Arg(static_cast<long long>(DType::kI8))
    ->Arg(static_cast<long long>(DType::kI4));

void BM_DequantizeSpan(benchmark::State& state) {
  const auto dtype = static_cast<DType>(state.range(0));
  Rng rng(6);
  const Tensor t = Tensor::randn({1000, 64}, rng);
  const QuantizedTensor q = quantize(t, dtype);
  std::vector<float> row(64);
  Index cursor = 0;
  for (auto _ : state) {
    dequantize_span(q.dtype, q.scale, q.payload.data(), (cursor % 1000) * 64,
                    64, row.data());
    benchmark::DoNotOptimize(row);
    ++cursor;
  }
  state.SetLabel(dtype_name(dtype));
}
BENCHMARK(BM_DequantizeSpan)
    ->Arg(static_cast<long long>(DType::kF32))
    ->Arg(static_cast<long long>(DType::kF16))
    ->Arg(static_cast<long long>(DType::kI8))
    ->Arg(static_cast<long long>(DType::kI4));

void BM_TensorSerializeRoundTrip(benchmark::State& state) {
  Rng rng(7);
  const Tensor t = Tensor::randn({256, 64}, rng);
  for (auto _ : state) {
    std::stringstream ss;
    write_tensor(ss, t);
    benchmark::DoNotOptimize(read_tensor(ss));
  }
  state.SetBytesProcessed(state.iterations() * t.numel() * 4);
}
BENCHMARK(BM_TensorSerializeRoundTrip);

}  // namespace
}  // namespace memcom

BENCHMARK_MAIN();
