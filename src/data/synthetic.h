// Latent-factor synthetic data generator.
//
// Stands in for the paper's corpora (see spec.h). The generative story:
//
//   * every item i has a latent vector z_i and a Zipf popularity p_i
//     (frequency-sorted: smaller id => more popular);
//   * every user has a latent vector u and a country (Games/Arcade);
//   * the user's history is a popularity-biased, affinity-weighted sample
//     of items (Gumbel-top-k over a popularity-drawn candidate pool);
//   * the label is drawn from softmax(affinity · <u, y_k> + log q_k) over
//     the output vocabulary's latents y_k and popularity prior q_k.
//
// Because history and label are driven by the same user latent, a model
// that preserves item identity can learn the mapping; hash collisions
// destroy exactly the information the latents carry, which is what makes
// the compression-vs-accuracy curves separate the same way the paper's do.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/sampling.h"
#include "data/spec.h"
#include "embedding/id_batch.h"

namespace memcom {

struct Sample {
  std::vector<std::int32_t> history;  // fixed length seq_len, 0-padded tail
  std::int32_t label = 0;             // in [0, output_vocab)
};

class SyntheticDataset {
 public:
  SyntheticDataset(DatasetSpec spec, std::uint64_t seed);

  const DatasetSpec& spec() const { return spec_; }
  const std::vector<Sample>& train() const { return train_; }
  const std::vector<Sample>& eval() const { return eval_; }

  Index input_vocab() const { return spec_.input_vocab(); }
  Index output_vocab() const { return spec_.output_vocab; }
  Index seq_len() const { return spec_.seq_len; }

  // Empirical frequency of each input id over the training split (used by
  // tests to verify the frequency-sorted-vocabulary property).
  std::vector<Index> train_id_histogram() const;

 private:
  Sample generate_sample(Rng& rng);

  DatasetSpec spec_;
  std::vector<std::vector<float>> item_latents_;    // [items][latent_dim]
  std::vector<std::vector<float>> output_latents_;  // [output][latent_dim]
  AliasSampler item_popularity_;
  AliasSampler output_popularity_;
  std::vector<Sample> train_;
  std::vector<Sample> eval_;
};

// Packs samples[first, first+count) into an IdBatch plus the label vector.
struct Batch {
  IdBatch inputs;
  std::vector<Index> labels;
};
Batch make_batch(const std::vector<Sample>& samples, Index first, Index count);

// Yields shuffled mini-batches over an epoch.
class Batcher {
 public:
  Batcher(const std::vector<Sample>& samples, Index batch_size, Rng& rng);

  // Returns false when the epoch is exhausted; reshuffle() starts the next.
  bool next(Batch& out);
  void reshuffle();

  Index batches_per_epoch() const;

 private:
  const std::vector<Sample>& samples_;
  Index batch_size_;
  Rng rng_;
  std::vector<Index> order_;
  Index cursor_ = 0;
};

}  // namespace memcom
