// App-store next-purchase classification (the paper's Games/Arcade
// motivation, §5.1): a user's purchase history — previous apps plus their
// country, in one shared frequency-sorted vocabulary — predicts the next
// app they purchase. Demonstrates the classification architecture and the
// "truncate rare" baseline the paper found surprisingly strong on Arcade.
//
//   ./appstore_classification [--epochs 3]
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "repro/sweep.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 3);

  const SyntheticDataset data(arcade_spec(), /*seed=*/11);
  const Index embed_dim = 64;
  std::cout << "== Arcade app-store classification ==\n"
            << "shared vocabulary: 1 pad + " << arcade_spec().countries
            << " countries + " << arcade_spec().items << " apps = "
            << data.input_vocab() << " ids; " << data.output_vocab()
            << " output labels\n\n";

  ModelConfig config;
  config.embedding = {TechniqueKind::kFull, data.input_vocab(), embed_dim, 0};
  config.arch = ModelArch::kClassification;
  config.output_vocab = data.output_vocab();
  RecModel baseline(config);
  const EvalResult base_eval = train_and_evaluate(baseline, data, train);
  std::cout << "baseline accuracy = " << format_float(base_eval.accuracy, 4)
            << " top5 = " << format_float(base_eval.top5_accuracy, 4) << "\n\n";

  TextTable table({"technique", "compression", "accuracy", "loss"});
  struct Entry {
    TechniqueKind kind;
    Index knob;
  };
  const Index v = data.input_vocab();
  for (const Entry entry :
       {Entry{TechniqueKind::kMemcom, v / 16},
        Entry{TechniqueKind::kTruncateRare, v / 16},
        Entry{TechniqueKind::kNaiveHash, v / 16},
        Entry{TechniqueKind::kFactorized, embed_dim / 8}}) {
    ModelConfig c = config;
    c.embedding.kind = entry.kind;
    c.embedding.knob = std::max<Index>(8, entry.knob);
    RecModel model(c);
    const EvalResult eval = train_and_evaluate(model, data, train);
    const double ratio = static_cast<double>(baseline.param_count()) /
                         static_cast<double>(model.param_count());
    table.add_row({technique_name(entry.kind), format_ratio(ratio),
                   format_float(eval.accuracy, 4),
                   format_percent(relative_loss_percent(base_eval.accuracy,
                                                        eval.accuracy))});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper's observation: truncate_rare is a strong baseline on "
               "Arcade, but MEmCom beats it ~2x (§5.1).\n";
  return 0;
}
