// Forward-only inference engine over an mmap'd .mcm model.
//
// Re-implements the paper's network (embedding -> masked average pool ->
// ReLU -> BatchNorm [-> Dense+ReLU -> BatchNorm] -> Dense) directly against
// the memory-mapped weight blobs, independent of the training stack — the
// tests verify the two produce identical logits. Two embedding compute
// paths exist, matching §5.3's comparison:
//
//   * lookup path  — per-token row gather (MEmCom, QR, hashing, ...);
//     touches O(history length) table rows.
//   * one-hot path — Weinberger feature hashing as originally formulated: a
//     hashed bag-of-words vector times the full table; touches every table
//     page and costs O(m·e) regardless of history length.
//
// The hot path is built around a compile-once execution plan: construction
// resolves the technique string to an enum, every tensor name to a
// `const TensorEntry*` handle (with a direct `const float*` payload view for
// fp32 blobs that bypasses dequantize_span), pre-dequantizes the small trunk
// tensors (batchnorm parameters, dense biases, the factorized projection),
// and sizes a scratch arena from the model metadata. Steady-state `run()`
// therefore performs zero string hashing, zero map lookups, and zero heap
// allocations — see tests/test_fastpath.cpp for the enforcement.
//
// Latency is wall time of the real computation plus the device profile's
// per-op dispatch overhead (and the profile's one-hot slowdown for the
// un-fused TF-Lite path). `run_batch` amortizes the dispatch overhead over
// the batch, mirroring how the frameworks execute one fused graph per batch.
// Memory is metered page-granularly, see memory_meter.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/device_profile.h"
#include "ondevice/format.h"
#include "ondevice/hot_row_cache.h"
#include "ondevice/memory_meter.h"

namespace memcom {

// Compiled form of the "technique" metadata string; resolved once at engine
// construction so run() never compares strings.
enum class Technique : std::uint8_t {
  kUncompressed,
  kReduceDim,
  kTruncateRare,
  kNaiveHash,
  kWeinberger,
  kMemcom,
  kMemcomBias,
  kQrMult,
  kQrConcat,
  kDoubleHash,
  kFactorized,
};

struct InferenceResult {
  Tensor logits;            // [output_dim]
  double embedding_ms = 0;  // embedding stage latency (incl. overheads)
  double total_ms = 0;      // end-to-end latency (incl. overheads)
  Index op_count = 0;
};

// Allocation-free view over the engine-owned logits scratch. Valid until the
// next run on the same engine.
struct InferenceView {
  const float* logits = nullptr;
  Index dim = 0;
  double embedding_ms = 0;
  double total_ms = 0;
  Index op_count = 0;
  // Hot-row cache traffic of THIS forward (both zero when no cache is
  // attached or the technique bypasses it).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

// Batched forward: one fused-graph dispatch for the whole batch, so the
// per-op overhead is charged once instead of once per request.
struct BatchResult {
  Tensor logits;            // [batch, output_dim]
  double embedding_ms = 0;  // summed compute + one amortized dispatch
  double total_ms = 0;
  Index op_count = 0;       // fused graph ops dispatched for the batch
  Index batch = 0;
  // Hot-row cache traffic of THIS batch (zero without an attached cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct LatencyStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  int runs = 0;
};

// Nearest-rank percentiles + min/mean/max over per-run samples. Consumes the
// sample vector (sorts in place).
LatencyStats latency_stats_from_samples(std::vector<double> samples_ms);

class InferenceEngine {
 public:
  // The engine keeps a reference to `model`; it must outlive the engine.
  // Construction compiles the execution plan (all tensor-name resolution
  // happens here, never in run()).
  InferenceEngine(const MmapModel& model, DeviceProfile profile);

  // Runs a single batch-1 forward (Table 3's setting).
  InferenceResult run(const std::vector<std::int32_t>& history);

  // Zero-allocation fast path: identical computation to run(), but the
  // logits live in engine-owned scratch (valid until the next run).
  InferenceView run_view(const std::int32_t* ids, Index length);
  InferenceView run_view(const std::vector<std::int32_t>& history) {
    return run_view(history.data(), static_cast<Index>(history.size()));
  }

  // Runs every history through the forward pass, charging the per-op
  // dispatch overhead once for the whole batch. Logits are bit-identical to
  // sequential run() calls.
  BatchResult run_batch(const std::vector<std::vector<std::int32_t>>& histories);

  // Latency distribution over `runs` forwards of the same input (the paper
  // reports the average of 1000 runs; we also keep percentiles).
  LatencyStats benchmark(const std::vector<std::int32_t>& history, int runs);

  // Resident memory accounting from all runs since the last reset.
  const MemoryMeter& meter() const { return meter_; }
  void reset_meter() { meter_.reset(); }
  double resident_megabytes() const;

  // Attaches a fixed-budget HotRowCache over the lookup-path embedding
  // tensors; subsequent row gathers serve hits from the cache slab (skipping
  // the page touch and the dequantize) and fill it on misses. Returns false
  // — and attaches nothing — for the one-hot Weinberger path, which streams
  // the whole table and cannot benefit from row caching. Cached and
  // uncached forwards produce bit-identical logits.
  bool enable_row_cache(std::size_t budget_bytes);
  // Evicts every cached row and zeroes the hit/miss counters (cold cache).
  void clear_row_cache();
  bool row_cache_enabled() const { return row_cache_ != nullptr; }
  RowCacheStats row_cache_stats() const;

  const std::string& technique() const { return technique_; }
  Technique technique_kind() const { return kind_; }
  const std::string& architecture() const { return arch_; }
  Index output_dim() const { return output_dim_; }
  bool uses_onehot_path() const { return kind_ == Technique::kWeinberger; }

 private:
  // A pre-resolved tensor handle: directory entry + raw payload pointer; for
  // fp32 blobs also a direct float view that bypasses dequantize_span.
  struct TensorRef {
    const TensorEntry* entry = nullptr;
    const std::uint8_t* payload = nullptr;
    const float* f32 = nullptr;
    DType dtype = DType::kF32;
    float scale = 1.0f;
    std::size_t element_bits = 32;
    Index file_offset = 0;  // byte offset of the blob within the file
  };

  // Inference-folded batchnorm: y = x * scale + shift with
  // scale = gamma / sqrt(var + eps), shift = beta - mean * scale. The raw
  // handles are kept so the per-run metering matches the unfused reads.
  struct BatchNormPlan {
    TensorRef gamma, beta, mean, var;
    std::vector<float> scale, shift;
    Index width = 0;
  };

  struct DensePlan {
    TensorRef weight;    // [in, out] row-major
    TensorRef bias_ref;  // metered per run; values pre-dequantized below
    std::vector<float> bias;
    Index in = 0;
    Index out = 0;
  };

  // Raw (overhead-free) timings of one forward into the scratch arena.
  struct RawForward {
    double embed_compute_ms = 0;
    double compute_ms = 0;
    double onehot_extra_ms = 0;
    Index embed_ops = 0;
    Index op_count = 0;
  };

  TensorRef resolve(const std::string& name) const;
  BatchNormPlan resolve_batchnorm(const std::string& prefix, Index width);
  DensePlan resolve_dense(const std::string& prefix, Index expect_in,
                          Index expect_out);
  // Dequantizes the whole tensor behind `ref` into `out` (plan build only).
  void predequantize(const TensorRef& ref, std::vector<float>& out);

  // Meters the byte range covering `count` elements at element `offset`.
  void touch(const TensorRef& ref, Index offset, Index count);
  // Meters + returns a pointer to `count` floats at element `offset`:
  // zero-copy for fp32 tensors, dequantized into `scratch` otherwise.
  const float* fetch(const TensorRef& ref, Index offset, Index count,
                     float* scratch);
  // Row-gather hook: like fetch() for row `row` of `elems` floats, but
  // consults the hot-row cache first when one is attached. `table` selects
  // the cache partition (kCacheTableA/B/C). The returned pointer is valid
  // until the next fetch_row on the SAME table — partitions isolate the
  // per-token multi-table gathers from each other.
  const float* fetch_row(const TensorRef& ref, std::size_t table, Index row,
                         Index elems, float* scratch);

  // Number of fused graph ops the framework dispatches for the embedding
  // stage of this technique (gathers + composition).
  Index embedding_stage_ops() const;

  // Computes logits into logits_; returns raw timings. The only code path
  // behind run(), run_view(), run_batch(), and benchmark().
  RawForward forward_scratch(const std::int32_t* ids, Index length);
  // Pooled embedding into pooled_ (lookup path). Returns #real tokens.
  Index embed_pooled(const std::int32_t* ids, Index length);
  // Pooled embedding via the one-hot path (whole-table stream).
  void embed_onehot_pooled(const std::int32_t* ids, Index length);

  void apply_batchnorm(const BatchNormPlan& bn, float* x);
  // y[out] = x[in] * W[in,out] + b[out]
  void apply_dense(const DensePlan& dense, const float* x, float* y);

  const MmapModel& model_;
  DeviceProfile profile_;
  MemoryMeter meter_;
  std::string arch_;  // "classification" | "ranking"
  std::string technique_;
  Technique kind_ = Technique::kUncompressed;
  Index vocab_ = 0;
  Index embed_dim_ = 0;  // output width of the embedding stage
  Index hash_size_ = 0;  // technique knob (m / h / keep / buckets)
  Index hidden_dim_ = 0; // classification trunk width (e/2)
  Index output_dim_ = 0;
  Index embed_ops_ = 0;  // precomputed embedding_stage_ops()
  bool has_hidden_ = false;
  Index op_count_ = 0;
  Index activation_bytes_ = 0;

  // --- Execution plan (built once in the constructor) ---
  TensorRef emb_a_;  // table / shared / remainder / table_a / factors
  TensorRef emb_b_;  // multiplier / quotient / table_b / projection
  TensorRef emb_c_;  // memcom_bias bias
  // Cache partition tags for the embedding tensors above.
  static constexpr std::size_t kCacheTableA = 0;
  static constexpr std::size_t kCacheTableB = 1;
  static constexpr std::size_t kCacheTableC = 2;
  std::unique_ptr<HotRowCache> row_cache_;  // null = disabled
  std::vector<float> projection_;  // factorized: pre-dequantized [h, e]
  Index factor_dim_ = 0;           // factorized h
  BatchNormPlan bn1_, bn2_;
  DensePlan dense1_, out_;

  // --- Scratch arena (sized once; reused by every run) ---
  std::vector<float> pooled_;
  std::vector<float> row_;      // embedding-row scratch (quantized gathers)
  std::vector<float> row2_;     // second gather / dense-row scratch
  std::vector<float> hidden_;
  std::vector<float> logits_;
  std::vector<float> onehot_;   // weinberger bag-of-words, size m
};

}  // namespace memcom
