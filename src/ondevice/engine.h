// Forward-only inference engine over an mmap'd .mcm model.
//
// Re-implements the paper's network (embedding -> masked average pool ->
// ReLU -> BatchNorm [-> Dense+ReLU -> BatchNorm] -> Dense) directly against
// the memory-mapped weight blobs, independent of the training stack — the
// tests verify the two produce identical logits. Two embedding compute
// paths exist, matching §5.3's comparison:
//
//   * lookup path  — per-token row gather (MEmCom, QR, hashing, ...);
//     touches O(history length) table rows.
//   * one-hot path — Weinberger feature hashing as originally formulated: a
//     hashed bag-of-words vector times the full table; touches every table
//     page and costs O(m·e) regardless of history length.
//
// The engine is a thin façade over two layers (see compiled_model.h and
// execution_context.h):
//
//   * CompiledModel    — the immutable execution plan: technique enum,
//     pre-resolved TensorRef handles, folded batchnorm, pre-dequantized
//     trunk buffers. Compiled ONCE per .mcm and shareable by reference
//     across any number of engines/workers.
//   * ExecutionContext — the per-thread mutable state: scratch arena,
//     MemoryMeter, optional HotRowCache, dispatch accounting.
//
// An engine constructed from an MmapModel compiles a private plan (the
// PR-2 behavior); an engine constructed from a shared_ptr<CompiledModel>
// reuses an existing plan — the serving layer compiles once per model and
// fans it out to every worker. Steady-state run() performs zero string
// hashing, zero map lookups, and zero heap allocations either way — see
// tests/test_fastpath.cpp for the enforcement.
//
// Latency is wall time of the real computation plus the device profile's
// per-op dispatch overhead (and the profile's one-hot slowdown for the
// un-fused TF-Lite path). `run_batch` amortizes the dispatch overhead over
// the batch, mirroring how the frameworks execute one fused graph per
// batch. Memory is metered page-granularly, see memory_meter.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/compiled_model.h"
#include "ondevice/device_profile.h"
#include "ondevice/execution_context.h"
#include "ondevice/format.h"

namespace memcom {

struct InferenceResult {
  Tensor logits;            // [output_dim]
  double embedding_ms = 0;  // embedding stage latency (incl. overheads)
  double total_ms = 0;      // end-to-end latency (incl. overheads)
  Index op_count = 0;
};

struct LatencyStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  int runs = 0;
};

// Nearest-rank percentiles + min/mean/max over per-run samples. Consumes the
// sample vector (sorts in place). The rank is computed with exact integer
// math (ceil(p*n/100) as (p*n+99)/100), so p95 of exactly 20 samples is the
// 19th sample — not the max, which the naive double ceil() produces. Empty
// input yields all-zero stats with runs == 0.
LatencyStats latency_stats_from_samples(std::vector<double> samples_ms);

class InferenceEngine {
 public:
  // Compiles a PRIVATE execution plan against `model`; the model must
  // outlive the engine. All tensor-name resolution happens here, never in
  // run().
  InferenceEngine(const MmapModel& model, DeviceProfile profile);

  // Executes against an EXISTING plan (shared with other engines/threads);
  // no tensor resolution, no pre-dequantization — construction is cheap and
  // the plan's buffers are paid for once across all sharers.
  InferenceEngine(std::shared_ptr<const CompiledModel> compiled,
                  DeviceProfile profile);

  // Runs a single batch-1 forward (Table 3's setting).
  InferenceResult run(const std::vector<std::int32_t>& history);

  // Zero-allocation fast path: identical computation to run(), but the
  // logits live in engine-owned scratch (valid until the next run).
  InferenceView run_view(const std::int32_t* ids, Index length) {
    return context_.run_view(ids, length);
  }
  InferenceView run_view(const std::vector<std::int32_t>& history) {
    return context_.run_view(history);
  }

  // Runs every history through the forward pass, charging the per-op
  // dispatch overhead once for the whole batch. Logits are bit-identical to
  // sequential run() calls.
  BatchResult run_batch(
      const std::vector<std::vector<std::int32_t>>& histories) {
    return context_.run_batch(histories);
  }

  // Latency distribution over `runs` forwards of the same input (the paper
  // reports the average of 1000 runs; we also keep percentiles).
  LatencyStats benchmark(const std::vector<std::int32_t>& history, int runs);

  // Resident memory accounting from all runs since the last reset.
  const MemoryMeter& meter() const { return context_.meter(); }
  void reset_meter() { context_.reset_meter(); }
  double resident_megabytes() const { return context_.resident_megabytes(); }

  // Attaches a fixed-budget HotRowCache over the lookup-path embedding
  // tensors; subsequent row gathers serve hits from the cache slab (skipping
  // the page touch and the dequantize) and fill it on misses. Returns false
  // — and attaches nothing — for the one-hot Weinberger path, which streams
  // the whole table and cannot benefit from row caching. Cached and
  // uncached forwards produce bit-identical logits.
  bool enable_row_cache(std::size_t budget_bytes) {
    return context_.enable_row_cache(budget_bytes);
  }
  // Evicts every cached row and zeroes the hit/miss counters (cold cache).
  void clear_row_cache() { context_.clear_row_cache(); }
  bool row_cache_enabled() const { return context_.row_cache_enabled(); }
  RowCacheStats row_cache_stats() const { return context_.row_cache_stats(); }

  const CompiledModel& compiled() const { return *compiled_; }
  const std::shared_ptr<const CompiledModel>& compiled_ptr() const {
    return compiled_;
  }
  // Bytes of the plan's pre-dequantized buffers (shared, not per-engine,
  // when the plan has other sharers).
  std::size_t plan_resident_bytes() const {
    return compiled_->plan_resident_bytes();
  }

  const std::string& technique() const { return compiled_->technique(); }
  Technique technique_kind() const { return compiled_->technique_kind(); }
  const std::string& architecture() const {
    return compiled_->architecture();
  }
  Index output_dim() const { return compiled_->output_dim(); }
  bool uses_onehot_path() const { return compiled_->uses_onehot_path(); }

 private:
  std::shared_ptr<const CompiledModel> compiled_;
  ExecutionContext context_;
};

}  // namespace memcom
