#include "ondevice/topk.h"

#include <algorithm>

#include "core/check.h"

namespace memcom {

std::vector<ScoredId> topk_select(const float* scores, Index n, Index k) {
  check(k >= 0, "topk_select: negative k");
  const Index kept = std::min(k, n);
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<std::size_t>(kept));
  if (kept == 0) {
    return heap;
  }
  for (Index i = 0; i < n; ++i) {
    topk_offer(heap, kept, ScoredId{scores[i], i});
  }
  std::sort(heap.begin(), heap.end(), topk_better);
  return heap;
}

std::vector<ScoredId> topk_full_sort(const float* scores, Index n, Index k) {
  check(k >= 0, "topk_full_sort: negative k");
  std::vector<ScoredId> all(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    all[static_cast<std::size_t>(i)] = ScoredId{scores[i], i};
  }
  std::sort(all.begin(), all.end(), topk_better);
  all.resize(static_cast<std::size_t>(std::min(k, n)));
  return all;
}

SpanSrc make_span_src(const QuantizedTensor& q) {
  SpanSrc src;
  src.dtype = q.dtype;
  src.scale = q.scale;
  src.payload = q.payload.data();
  if (q.dtype == DType::kI4G) {
    src.group_scales = reinterpret_cast<const float*>(q.payload.data());
    src.packed = q.payload.data() +
                 i4g_scales_bytes(static_cast<std::size_t>(q.numel()),
                                  q.group_size);
    src.group_size = q.group_size;
  }
  return src;
}

CatalogScorer::CatalogScorer(const QuantizedTensor& catalog,
                             const KernelSet& kernels)
    : src_(make_span_src(catalog)),
      resident_bytes_(catalog.payload.size()),
      kernels_(&kernels) {
  check(catalog.shape.size() == 2, "CatalogScorer: catalog must be 2-D");
  items_ = catalog.shape[0];
  dim_ = catalog.shape[1];
  check(items_ > 0 && dim_ > 0, "CatalogScorer: empty catalog");
}

CatalogScorer::CatalogScorer(const SpanSrc& src, Index items, Index dim,
                             std::size_t resident_bytes,
                             const KernelSet& kernels)
    : src_(src),
      items_(items),
      dim_(dim),
      resident_bytes_(resident_bytes),
      kernels_(&kernels) {
  check(items_ > 0 && dim_ > 0, "CatalogScorer: empty catalog");
}

void CatalogScorer::score_all(const float* query, float* out) const {
  for (Index i = 0; i < items_; ++i) {
    out[i] = kernels_->dot_span(src_, i * dim_, dim_, query);
  }
}

std::vector<ScoredId> CatalogScorer::top_k(const float* query, Index k) const {
  check(k >= 0, "CatalogScorer::top_k: negative k");
  const Index kept = std::min(k, items_);
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<std::size_t>(kept));
  if (kept == 0) {
    return heap;
  }
  for (Index i = 0; i < items_; ++i) {
    topk_offer(heap, kept,
               ScoredId{kernels_->dot_span(src_, i * dim_, dim_, query), i});
  }
  std::sort(heap.begin(), heap.end(), topk_better);
  return heap;
}

}  // namespace memcom
