#include "ondevice/serving.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/check.h"

namespace memcom {

namespace {
using Clock = SteadyClock;

RowCacheStats aggregate_cache_stats(
    const std::vector<std::unique_ptr<InferenceEngine>>& engines) {
  RowCacheStats total;
  for (const auto& engine : engines) {
    const RowCacheStats s = engine->row_cache_stats();
    if (!s.enabled) {
      continue;
    }
    total.enabled = true;
    total.hits += s.hits;
    total.misses += s.misses;
    // Each worker owns a private slab, so the fleet pays the sum (unlike
    // the shared weight pages, where the footprint is the max).
    total.resident_bytes += s.resident_bytes;
    total.capacity_bytes += s.capacity_bytes;
  }
  return total;
}

// A drain's report must cover THAT drain: hit/miss counters are lifetime
// totals per engine, so subtract the pre-drain snapshot (resident/capacity
// stay absolute — they describe the slab, not the traffic).
RowCacheStats cache_stats_delta(const RowCacheStats& before,
                                const RowCacheStats& after) {
  RowCacheStats delta = after;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  return delta;
}
}  // namespace

ServingHarness::ServingHarness(const MmapModel& model,
                               const DeviceProfile& profile, int threads,
                               std::size_t cache_budget_bytes) {
  check(threads > 0, "serving: thread count must be positive");
  engines_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    engines_.push_back(std::make_unique<InferenceEngine>(model, profile));
    if (cache_budget_bytes > 0) {
      engines_.back()->enable_row_cache(cache_budget_bytes);
    }
  }
}

ServingReport ServingHarness::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    Tensor* logits_out) {
  check(repeat > 0, "serving: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  const Index dim = output_dim();
  if (logits_out != nullptr) {
    *logits_out = Tensor({static_cast<Index>(unique), dim});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  if (total == 0) {
    return report;
  }
  const RowCacheStats cache_before = aggregate_cache_stats(engines_);

  std::atomic<std::uint64_t> cursor{0};
  std::vector<std::vector<double>> samples(engines_.size());
  std::vector<double> modeled(engines_.size(), 0.0);
  // Reserve ~2× the fair share per worker: enough headroom for work-stealing
  // imbalance without pre-allocating threads×total samples on large drains.
  // A rare mid-drain realloc happens between timing windows, so it can only
  // nudge aggregate wall_ms/QPS, never an individual latency sample.
  const std::uint64_t per_worker = std::min(
      total, total / static_cast<std::uint64_t>(engines_.size()) * 2 + 64);
  for (auto& s : samples) {
    s.reserve(static_cast<std::size_t>(per_worker));
  }

  const auto run_worker = [&](std::size_t worker) {
    InferenceEngine& engine = *engines_[worker];
    std::vector<double>& lat = samples[worker];
    double busy_ms = 0.0;
    for (;;) {
      const std::uint64_t i =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) {
        break;
      }
      const std::size_t r = static_cast<std::size_t>(i % unique);
      const auto& history = requests[r];
      const auto start = Clock::now();
      const InferenceView view = engine.run_view(history);
      lat.push_back(elapsed_ms(start));
      busy_ms += view.total_ms;
      // Only the first repetition writes logits, so rows are written by
      // exactly one worker (repeat passes would produce identical bytes).
      if (logits_out != nullptr && i < unique) {
        std::memcpy(&logits_out->at2(static_cast<Index>(r), 0), view.logits,
                    static_cast<std::size_t>(dim) * sizeof(float));
      }
    }
    modeled[worker] = busy_ms;
  };

  const auto wall_start = Clock::now();
  if (engines_.size() == 1) {
    run_worker(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(engines_.size());
    for (std::size_t w = 0; w < engines_.size(); ++w) {
      workers.emplace_back(run_worker, w);
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  report.wall_ms = elapsed_ms(wall_start);

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (const auto& s : samples) {
    all.insert(all.end(), s.begin(), s.end());
  }
  report.latency = latency_stats_from_samples(std::move(all));
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;
  report.modeled_busy_ms =
      *std::max_element(modeled.begin(), modeled.end());
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  report.cache =
      cache_stats_delta(cache_before, aggregate_cache_stats(engines_));
  return report;
}

double ServingHarness::max_resident_megabytes() const {
  double max_mb = 0.0;
  for (const auto& engine : engines_) {
    max_mb = std::max(max_mb, engine->resident_megabytes());
  }
  return max_mb;
}

// ---------------------------------------------------------------------------
// AsyncServer

AsyncServer::AsyncServer(const MmapModel& model, const DeviceProfile& profile,
                         AsyncServerConfig config)
    : config_(config),
      queue_(config.queue_capacity),
      // The dispatch queue only needs to keep every worker fed plus a small
      // runway; bounding it makes scheduler -> worker backpressure propagate
      // back to the admission queue (and from there to producers).
      dispatch_(static_cast<std::size_t>(std::max(1, config.threads)) * 2) {
  check(config_.threads > 0, "AsyncServer: thread count must be positive");
  check(config_.max_batch > 0, "AsyncServer: max_batch must be positive");
  check(config_.max_delay_us >= 0.0,
        "AsyncServer: max_delay_us must be non-negative");
  engines_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i) {
    engines_.push_back(std::make_unique<InferenceEngine>(model, profile));
    if (config_.cache_budget_bytes > 0) {
      engines_.back()->enable_row_cache(config_.cache_budget_bytes);
    }
  }
  worker_stats_.resize(engines_.size());
  scheduler_ = std::thread(&AsyncServer::scheduler_loop, this);
  workers_.reserve(engines_.size());
  for (std::size_t w = 0; w < engines_.size(); ++w) {
    workers_.emplace_back(&AsyncServer::worker_loop, this, w);
  }
}

AsyncServer::~AsyncServer() {
  queue_.close();  // pops drain what was accepted, then the scheduler exits
  if (scheduler_.joinable()) {
    scheduler_.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

std::future<AsyncResult> AsyncServer::submit(
    std::vector<std::int32_t> history) {
  QueuedRequest request;
  request.history = std::move(history);
  request.enqueue_tp = Clock::now();
  std::future<AsyncResult> future = request.promise.get_future();
  check(queue_.push(std::move(request)),
        "AsyncServer: submit after shutdown");
  return future;
}

bool AsyncServer::try_submit(std::vector<std::int32_t> history,
                             std::future<AsyncResult>* out) {
  QueuedRequest request;
  request.history = std::move(history);
  request.enqueue_tp = Clock::now();
  std::future<AsyncResult> future = request.promise.get_future();
  if (!queue_.try_push(std::move(request))) {
    return false;
  }
  if (out != nullptr) {
    *out = std::move(future);
  }
  return true;
}

void AsyncServer::scheduler_loop() {
  const auto delay = std::chrono::microseconds(
      static_cast<std::int64_t>(config_.max_delay_us));
  for (;;) {
    QueuedRequest first;
    if (!queue_.pop(first)) {
      break;  // closed and drained
    }
    BatchTask task;
    task.requests.reserve(static_cast<std::size_t>(config_.max_batch));
    task.requests.push_back(std::move(first));
    // Dynamic micro-batch: keep admitting until the batch is full or the
    // first request has waited max_delay_us.
    const auto deadline = Clock::now() + delay;
    while (task.requests.size() <
           static_cast<std::size_t>(config_.max_batch)) {
      QueuedRequest next;
      if (!queue_.pop_wait_until(next, deadline)) {
        break;  // flush on timeout (or on shutdown drain)
      }
      task.requests.push_back(std::move(next));
    }
    dispatch_.push(std::move(task));  // only fails after dispatch_ close
  }
  dispatch_.close();
}

void AsyncServer::worker_loop(std::size_t worker) {
  InferenceEngine& engine = *engines_[worker];
  std::vector<std::vector<std::int32_t>> histories;
  BatchTask task;
  while (dispatch_.pop(task)) {
    const auto service_start = Clock::now();
    histories.clear();
    histories.reserve(task.requests.size());
    for (QueuedRequest& r : task.requests) {
      // The history is not read again after execution (only the promise
      // and timestamps are), so hand the buffer over instead of copying.
      histories.push_back(std::move(r.history));
    }
    BatchResult batch = engine.run_batch(histories);
    const auto service_end = Clock::now();
    const double service_ms = elapsed_ms(service_start);

    // Record stats BEFORE resolving the promises: anyone who has observed
    // every future of a drain is guaranteed to see its samples.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      WorkerStats& stats = worker_stats_[worker];
      stats.modeled_busy_ms += batch.total_ms;
      ++stats.batches;
      for (const QueuedRequest& r : task.requests) {
        const double wait_ms =
            std::chrono::duration<double, std::milli>(service_start -
                                                      r.enqueue_tp)
                .count();
        const double total_ms =
            std::chrono::duration<double, std::milli>(service_end -
                                                      r.enqueue_tp)
                .count();
        stats.queue_wait_ms.push_back(wait_ms);
        stats.service_ms.push_back(service_ms);
        stats.total_ms.push_back(total_ms);
        ++stats.requests;
      }
    }

    const Index dim = engine.output_dim();
    for (std::size_t i = 0; i < task.requests.size(); ++i) {
      QueuedRequest& r = task.requests[i];
      AsyncResult result;
      result.batch = batch.batch;
      result.service_ms = service_ms;
      result.queue_wait_ms = std::chrono::duration<double, std::milli>(
                                 service_start - r.enqueue_tp)
                                 .count();
      result.total_ms = std::chrono::duration<double, std::milli>(
                            service_end - r.enqueue_tp)
                            .count();
      const float* row = &batch.logits.at2(static_cast<Index>(i), 0);
      result.logits.assign(row, row + dim);
      r.promise.set_value(std::move(result));
    }
  }
}

void AsyncServer::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (WorkerStats& stats : worker_stats_) {
    stats.queue_wait_ms.clear();
    stats.service_ms.clear();
    stats.total_ms.clear();
    stats.modeled_busy_ms = 0;
    stats.batches = 0;
    stats.requests = 0;
  }
}

ServingReport AsyncServer::serve(
    const std::vector<std::vector<std::int32_t>>& requests, int repeat,
    double arrival_qps, Tensor* logits_out) {
  check(repeat > 0, "AsyncServer: repeat must be positive");
  const std::size_t unique = requests.size();
  const std::uint64_t total =
      static_cast<std::uint64_t>(unique) * static_cast<std::uint64_t>(repeat);
  const Index dim = output_dim();
  if (logits_out != nullptr) {
    *logits_out = Tensor({static_cast<Index>(unique), dim});
  }

  ServingReport report;
  report.threads = threads();
  report.requests = total;
  if (total == 0) {
    return report;
  }
  reset_stats();
  const RowCacheStats cache_before = cache_stats();

  // Open-loop arrivals: with a nonzero rate, request i is released at
  // i/arrival_qps seconds regardless of completions (only admission-queue
  // backpressure can stall the producer). rate 0 = as fast as admitted.
  const auto inter_arrival =
      arrival_qps > 0.0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(1.0 / arrival_qps))
          : Clock::duration::zero();

  std::vector<std::future<AsyncResult>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  const auto wall_start = Clock::now();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (inter_arrival.count() > 0) {
      std::this_thread::sleep_until(
          wall_start + inter_arrival * static_cast<std::int64_t>(i));
    }
    futures.push_back(
        submit(requests[static_cast<std::size_t>(i % unique)]));
  }
  for (std::uint64_t i = 0; i < total; ++i) {
    const AsyncResult result = futures[static_cast<std::size_t>(i)].get();
    if (logits_out != nullptr && i < unique) {
      std::memcpy(&logits_out->at2(static_cast<Index>(i), 0),
                  result.logits.data(),
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  }
  report.wall_ms = elapsed_ms(wall_start);
  report.qps = report.wall_ms > 0.0
                   ? static_cast<double>(total) / (report.wall_ms / 1000.0)
                   : 0.0;

  std::vector<double> waits, services, totals;
  waits.reserve(static_cast<std::size_t>(total));
  services.reserve(static_cast<std::size_t>(total));
  totals.reserve(static_cast<std::size_t>(total));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    for (const WorkerStats& stats : worker_stats_) {
      waits.insert(waits.end(), stats.queue_wait_ms.begin(),
                   stats.queue_wait_ms.end());
      services.insert(services.end(), stats.service_ms.begin(),
                      stats.service_ms.end());
      totals.insert(totals.end(), stats.total_ms.begin(),
                    stats.total_ms.end());
      report.batches += stats.batches;
      report.modeled_busy_ms =
          std::max(report.modeled_busy_ms, stats.modeled_busy_ms);
    }
  }
  report.latency = latency_stats_from_samples(std::move(totals));
  report.queue_wait = latency_stats_from_samples(std::move(waits));
  report.service = latency_stats_from_samples(std::move(services));
  report.mean_batch =
      report.batches > 0
          ? static_cast<double>(total) / static_cast<double>(report.batches)
          : 0.0;
  report.modeled_qps =
      report.modeled_busy_ms > 0.0
          ? static_cast<double>(total) / (report.modeled_busy_ms / 1000.0)
          : 0.0;
  report.cache = cache_stats_delta(cache_before, cache_stats());
  return report;
}

RowCacheStats AsyncServer::cache_stats() const {
  return aggregate_cache_stats(engines_);
}

double AsyncServer::max_resident_megabytes() const {
  double max_mb = 0.0;
  for (const auto& engine : engines_) {
    max_mb = std::max(max_mb, engine->resident_megabytes());
  }
  return max_mb;
}

}  // namespace memcom
