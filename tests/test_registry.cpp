// ModelRegistry tests: named refcounted CompiledModel versions with
// zero-downtime swap semantics.
//
//   * load/swap/retire lifecycle and monotonic registry versions;
//   * self-declared identity enforcement (model_name stable, model_version
//     strictly increasing across swaps);
//   * epoch/RCU draining: an acquired old version keeps serving
//     bit-identical logits after a swap and is destroyed — mmap included —
//     exactly when the last holder lets go;
//   * compile-once sharing: engines built from one acquired plan add no
//     per-worker plan bytes.
#include "ondevice/registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "ondevice/engine.h"
#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  // Exports a small model; `seed` controls the weights, so two exports with
  // different seeds are genuinely different versions of the same shape.
  std::string export_model(const std::string& tag, std::uint64_t seed,
                           const std::string& model_name = "",
                           std::uint64_t model_version = 1,
                           TechniqueKind kind = TechniqueKind::kMemcom,
                           bool emit_plan = false) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 120;
    config.embedding.embed_dim = 16;
    config.embedding.knob = kind == TechniqueKind::kFactorized ? 8 : 24;
    config.arch = ModelArch::kClassification;
    config.output_vocab = 10;
    config.seed = seed;
    RecModel model(config);
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_registry_" + tag + ".mcm");
    paths_.push_back(p);
    model.export_mcm(p.string(), DType::kF32, model_name, model_version,
                     /*group_size=*/0, emit_plan);
    return p.string();
  }

  std::vector<std::filesystem::path> paths_;
};

TEST_F(RegistryTest, LoadPublishesFirstVersion) {
  ModelRegistry registry;
  const std::string path = export_model("load", 11);
  EXPECT_EQ(registry.load("ranker", path), 1u);
  EXPECT_TRUE(registry.has_model("ranker"));
  EXPECT_EQ(registry.version("ranker"), 1u);
  EXPECT_EQ(registry.size(), 1u);

  const auto compiled = registry.acquire("ranker");
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(compiled->technique(), "memcom");
  EXPECT_EQ(compiled->output_dim(), 10);
  EXPECT_GT(registry.plan_resident_bytes(), 0u);
}

TEST_F(RegistryTest, LoadDuplicateIdRejected) {
  ModelRegistry registry;
  const std::string path = export_model("dup", 12);
  registry.load("m", path);
  EXPECT_THROW(registry.load("m", path), std::runtime_error);
}

TEST_F(RegistryTest, SwapRequiresExistingId) {
  ModelRegistry registry;
  const std::string path = export_model("noswap", 13);
  EXPECT_THROW(registry.swap("missing", path), std::runtime_error);
}

TEST_F(RegistryTest, AcquireUnknownReturnsNull) {
  ModelRegistry registry;
  EXPECT_EQ(registry.acquire("nope"), nullptr);
  EXPECT_EQ(registry.version("nope"), 0u);
}

TEST_F(RegistryTest, SwapBumpsVersionAndPublishesAtomically) {
  ModelRegistry registry;
  const std::string v1 = export_model("swap_v1", 21);
  const std::string v2 = export_model("swap_v2", 22);
  registry.load("m", v1);
  const auto before = registry.acquire("m");
  EXPECT_EQ(registry.swap("m", v2), 2u);
  EXPECT_EQ(registry.version("m"), 2u);
  const auto after = registry.acquire("m");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());
  // Swapping again keeps counting.
  EXPECT_EQ(registry.swap("m", v1), 3u);
}

TEST_F(RegistryTest, DeclaredIdentityEnforcedAcrossSwaps) {
  ModelRegistry registry;
  const std::string v1 = export_model("id_v1", 31, "sessionrec", 5);
  const std::string v2 = export_model("id_v2", 32, "sessionrec", 6);
  const std::string stale = export_model("id_stale", 33, "sessionrec", 5);
  const std::string other = export_model("id_other", 34, "otherrec", 9);

  registry.load("m", v1);
  // Pushing yesterday's artifact (same declared version) must fail loudly.
  EXPECT_THROW(registry.swap("m", stale), std::runtime_error);
  // So must an artifact of a different logical model.
  EXPECT_THROW(registry.swap("m", other), std::runtime_error);
  EXPECT_EQ(registry.version("m"), 1u);  // failed swaps publish nothing
  // A strictly newer declared version goes through.
  EXPECT_EQ(registry.swap("m", v2), 2u);
  EXPECT_EQ(registry.acquire("m")->model_version(), 6u);
}

TEST_F(RegistryTest, LegacyFilesWithoutIdentitySwapFreely) {
  ModelRegistry registry;
  const std::string v1 = export_model("legacy_v1", 41);
  const std::string v2 = export_model("legacy_v2", 42);
  registry.load("m", v1);
  EXPECT_EQ(registry.acquire("m")->model_version(), 0u);  // no identity
  EXPECT_EQ(registry.swap("m", v2), 2u);  // nothing declared, nothing enforced
}

TEST_F(RegistryTest, RetireRemovesEntryButHoldersDrain) {
  ModelRegistry registry;
  const std::string path = export_model("retire", 51);
  registry.load("m", path);
  const auto held = registry.acquire("m");
  ASSERT_NE(held, nullptr);
  EXPECT_TRUE(registry.retire("m"));
  EXPECT_FALSE(registry.retire("m"));  // already gone
  EXPECT_FALSE(registry.has_model("m"));
  EXPECT_EQ(registry.acquire("m"), nullptr);
  // The held version is untouched by retirement: it still answers queries.
  EXPECT_EQ(held->output_dim(), 10);
  EXPECT_EQ(held.use_count(), 1);  // the registry dropped its reference
}

TEST_F(RegistryTest, OldVersionServesBitIdenticalUntilDrained) {
  ModelRegistry registry;
  const std::string v1 = export_model("drain_v1", 61);
  const std::string v2 = export_model("drain_v2", 62);
  registry.load("m", v1);

  const std::vector<std::int32_t> history = {3, 17, 42, 0, 0};
  // Reference logits of v1 through a dedicated engine over its own mapping.
  Tensor expected_v1;
  {
    const MmapModel mapped(v1);
    InferenceEngine reference(mapped, tflite_profile());
    expected_v1 = reference.run(history).logits;
  }

  auto old_plan = registry.acquire("m");
  registry.swap("m", v2);

  Tensor old_logits;
  {
    // In-flight work on the old version: still bit-identical to v1 (the
    // registry owns the v1 mapping through the plan, so the mmap is alive).
    InferenceEngine old_engine(old_plan, tflite_profile());
    old_logits = old_engine.run(history).logits;
    EXPECT_TENSOR_NEAR(old_logits, expected_v1, 0.0f);
    EXPECT_GT(old_plan.use_count(), 1);  // the engine pins the old version
  }

  // New acquisitions serve v2 — different weights, different logits.
  InferenceEngine new_engine(registry.acquire("m"), tflite_profile());
  const Tensor new_logits = new_engine.run(history).logits;
  bool any_diff = false;
  for (Index c = 0; c < new_logits.numel(); ++c) {
    any_diff = any_diff || new_logits[c] != old_logits[c];
  }
  EXPECT_TRUE(any_diff);

  // Drain: the in-flight engine is gone, so this handle is the LAST
  // reference to v1 — dropping it destroys the plan and munmaps the file.
  EXPECT_EQ(old_plan.use_count(), 1);
}

TEST_F(RegistryTest, EnginesShareOnePlanWithoutDuplication) {
  ModelRegistry registry;
  const std::string path =
      export_model("share", 71, "", 1, TechniqueKind::kFactorized);
  registry.load("m", path);
  const auto plan = registry.acquire("m");
  const std::size_t plan_bytes = plan->plan_resident_bytes();
  EXPECT_GT(plan_bytes, 0u);

  // N engines over the acquired plan: the registry-wide plan footprint does
  // not grow — only per-thread context state does.
  std::vector<std::unique_ptr<InferenceEngine>> engines;
  for (int i = 0; i < 4; ++i) {
    engines.push_back(
        std::make_unique<InferenceEngine>(plan, tflite_profile()));
  }
  EXPECT_EQ(registry.plan_resident_bytes(), plan_bytes);
  for (const auto& engine : engines) {
    EXPECT_EQ(&engine->compiled(), plan.get());
    EXPECT_EQ(engine->plan_resident_bytes(), plan_bytes);
  }
}

TEST_F(RegistryTest, LoadTakesPlanFastPathAndServesIdentically) {
  // The same weights exported with and without a v3 plan section: load()
  // must adopt the plan when present (registry-visible via plan_adopted)
  // and both registrations must serve bit-identical logits.
  ModelRegistry registry;
  const std::string with_plan =
      export_model("aot_plan", 81, "aot", 2, TechniqueKind::kMemcom,
                   /*emit_plan=*/true);
  const std::string without_plan =
      export_model("aot_noplan", 81, "aot", 2, TechniqueKind::kMemcom,
                   /*emit_plan=*/false);
  registry.load("fast", with_plan);
  registry.load("slow", without_plan);
  EXPECT_TRUE(registry.plan_adopted("fast"));
  EXPECT_FALSE(registry.plan_adopted("slow"));
  EXPECT_FALSE(registry.plan_adopted("unknown"));

  InferenceEngine fast(registry.acquire("fast"), tflite_profile());
  InferenceEngine slow(registry.acquire("slow"), tflite_profile());
  for (const std::vector<std::int32_t>& history :
       {std::vector<std::int32_t>{}, {1}, {3, 17, 42, 0, 0}, {9, 9, 9}}) {
    const Tensor a = fast.run(history).logits;
    const Tensor b = slow.run(history).logits;
    EXPECT_TENSOR_NEAR(a, b, 0.0f);
  }
}

TEST_F(RegistryTest, SwapFromPlanlessToPlanBearingAdopts) {
  // A fleet rollout in miniature: v1 ships plan-less, v2 ships with a plan;
  // the hot swap lands on the fast path without the callers changing.
  ModelRegistry registry;
  const std::string v1 = export_model("roll_v1", 91, "roll", 1);
  const std::string v2 = export_model("roll_v2", 92, "roll", 2,
                                      TechniqueKind::kMemcom,
                                      /*emit_plan=*/true);
  registry.load("m", v1);
  EXPECT_FALSE(registry.plan_adopted("m"));
  registry.swap("m", v2);
  EXPECT_TRUE(registry.plan_adopted("m"));
}

}  // namespace
}  // namespace memcom
