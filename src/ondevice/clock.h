// Shared steady-clock timing helper for the on-device latency paths. Every
// reported millisecond figure (engine forward timings, serving harness wall
// clock) must come from this one clock source so they stay comparable.
#pragma once

#include <chrono>

namespace memcom {

using SteadyClock = std::chrono::steady_clock;

inline double elapsed_ms(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace memcom
