// ServingHarness tests: threaded serving over one shared MmapModel must
// produce bit-identical logits to sequential single-engine runs, and the
// report (QPS, percentiles, request counts) must be internally consistent.
#include "ondevice/serving.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_serving_" + tag + ".mcm");
    paths_.push_back(p);
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, ModelArch arch,
                           const std::string& tag) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 200;
    config.embedding.embed_dim = 16;
    config.embedding.knob =
        kind == TechniqueKind::kFactorized ? 8 : 32;
    config.arch = arch;
    config.output_vocab = 24;
    config.seed = 4321;
    RecModel model(config);
    const std::string path = temp_path(tag);
    model.export_mcm(path);
    return path;
  }

  std::vector<std::filesystem::path> paths_;
};

std::vector<std::vector<std::int32_t>> make_requests(int count) {
  std::vector<std::vector<std::int32_t>> requests;
  Rng rng(5);
  for (int i = 0; i < count; ++i) {
    std::vector<std::int32_t> history(8, 0);
    const Index real = 2 + static_cast<Index>(rng.uniform_index(6));
    for (Index t = 0; t < real; ++t) {
      history[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(1 + rng.uniform_index(199));
    }
    requests.push_back(std::move(history));
  }
  return requests;
}

TEST_F(ServingTest, ThreadedHarnessMatchesSequentialEngineBitExact) {
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kQrConcat,
        TechniqueKind::kWeinberger}) {
    const std::string path = export_model(
        kind, ModelArch::kClassification,
        "parity_" + std::string(technique_name(kind)));
    const MmapModel mapped(path);
    const auto requests = make_requests(24);

    InferenceEngine sequential(mapped, tflite_profile());
    ServingHarness harness(mapped, tflite_profile(), 4);
    Tensor served;
    const ServingReport report = harness.serve(requests, 1, &served);
    ASSERT_EQ(report.requests, 24u);
    ASSERT_EQ(served.dim(0), 24);
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const Tensor expected = sequential.run(requests[r]).logits;
      for (Index c = 0; c < expected.numel(); ++c) {
        EXPECT_EQ(served.at2(static_cast<Index>(r), c), expected[c])
            << technique_name(kind) << " request " << r << " logit " << c;
      }
    }
  }
}

TEST_F(ServingTest, SingleThreadHarnessMatchesToo) {
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kRanking, "single");
  const MmapModel mapped(path);
  const auto requests = make_requests(10);
  InferenceEngine sequential(mapped, coreml_profile("all"));
  ServingHarness harness(mapped, coreml_profile("all"), 1);
  Tensor served;
  harness.serve(requests, 1, &served);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const Tensor expected = sequential.run(requests[r]).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(served.at2(static_cast<Index>(r), c), expected[c]);
    }
  }
}

TEST_F(ServingTest, RepeatedDrainsKeepLogitsStable) {
  const std::string path =
      export_model(TechniqueKind::kNaiveHash, ModelArch::kClassification,
                   "repeat");
  const MmapModel mapped(path);
  const auto requests = make_requests(6);
  ServingHarness harness(mapped, tflite_profile(), 3);
  Tensor first, second;
  harness.serve(requests, 4, &first);
  const ServingReport report = harness.serve(requests, 4, &second);
  EXPECT_EQ(report.requests, 24u);  // 6 unique x 4 repeats
  EXPECT_TENSOR_NEAR(first, second, 0.0f);
}

TEST_F(ServingTest, ReportIsInternallyConsistent) {
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kClassification,
                   "report");
  const MmapModel mapped(path);
  const auto requests = make_requests(16);
  ServingHarness harness(mapped, tflite_profile(), 2);
  const ServingReport report = harness.serve(requests, 3);
  EXPECT_EQ(report.threads, 2);
  EXPECT_EQ(report.requests, 48u);
  EXPECT_EQ(report.latency.runs, 48);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_LE(report.latency.min_ms, report.latency.p50_ms);
  EXPECT_LE(report.latency.p50_ms, report.latency.p95_ms);
  EXPECT_LE(report.latency.p95_ms, report.latency.p99_ms);
  EXPECT_LE(report.latency.p99_ms, report.latency.max_ms);
  // The whole drain can't be faster than its slowest request.
  EXPECT_GE(report.wall_ms, report.latency.max_ms);
  EXPECT_GT(harness.max_resident_megabytes(), 0.0);
}

TEST_F(ServingTest, NonPositiveThreadCountRejectedUpFront) {
  // Both serving layers must reject a 0/negative pool at construction —
  // otherwise output_dim() would dereference an empty engine list (UB).
  // The engine split moved these checks; this pins that they still fire
  // before any thread spawns.
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kRanking, "degenerate");
  const MmapModel mapped(path);
  EXPECT_THROW(ServingHarness(mapped, tflite_profile(), 0),
               std::runtime_error);
  EXPECT_THROW(ServingHarness(mapped, tflite_profile(), -4),
               std::runtime_error);
  AsyncServerConfig config;
  config.threads = 0;
  EXPECT_THROW(AsyncServer(mapped, tflite_profile(), config),
               std::runtime_error);
  config.threads = -2;
  EXPECT_THROW(AsyncServer(mapped, tflite_profile(), config),
               std::runtime_error);
  // The checks reject before any thread spawns, so a valid construction
  // right after the failures works normally.
  ServingHarness harness(mapped, tflite_profile(), 1);
  EXPECT_EQ(harness.threads(), 1);
  EXPECT_GT(harness.output_dim(), 0);
}

TEST_F(ServingTest, PlanCompiledOnceAndSharedAcrossWorkers) {
  // Factorized has the largest plan (the pre-dequantized [h, e] projection),
  // so plan duplication would be most visible here.
  const std::string path = export_model(
      TechniqueKind::kFactorized, ModelArch::kClassification, "sharedplan");
  const MmapModel mapped(path);

  InferenceEngine single(mapped, tflite_profile());
  const std::size_t one_plan = single.plan_resident_bytes();
  ASSERT_GT(one_plan, 0u);

  // The PR-3 layout compiled one private plan per worker: N x one_plan.
  constexpr int kWorkers = 4;
  std::size_t duplicated = 0;
  for (int i = 0; i < kWorkers; ++i) {
    InferenceEngine private_engine(mapped, tflite_profile());
    duplicated += private_engine.plan_resident_bytes();
  }
  EXPECT_EQ(duplicated, static_cast<std::size_t>(kWorkers) * one_plan);

  // The harness shares ONE plan: the fleet's plan bytes equal a single
  // compile, regardless of worker count...
  ServingHarness harness(mapped, tflite_profile(), kWorkers);
  EXPECT_EQ(harness.plan_resident_bytes(), one_plan);
  EXPECT_LT(harness.plan_resident_bytes(), duplicated);
  for (int w = 0; w < harness.threads(); ++w) {
    EXPECT_EQ(&harness.engine(w).compiled(), &harness.compiled());
  }

  // ...and the shared plan still serves bit-identical logits with the
  // page-touch metering of the uncached path unchanged per worker.
  const auto requests = make_requests(12);
  InferenceEngine reference(mapped, tflite_profile());
  Tensor served;
  harness.serve(requests, 1, &served);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const Tensor expected = reference.run(requests[r]).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(served.at2(static_cast<Index>(r), c), expected[c]);
    }
  }
}

TEST_F(ServingTest, WorkersMeterIndependently) {
  // Each worker owns a private meter over the shared mapping; a worker that
  // served at least one request reports a plausible resident footprint.
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kRanking, "meters");
  const MmapModel mapped(path);
  const auto requests = make_requests(32);
  ServingHarness harness(mapped, tflite_profile(), 2);
  harness.serve(requests, 2);
  Index served_by_someone = 0;
  for (int w = 0; w < harness.threads(); ++w) {
    served_by_someone += harness.engine(w).meter().touched_pages();
  }
  EXPECT_GT(served_by_someone, 0);
}

}  // namespace
}  // namespace memcom
