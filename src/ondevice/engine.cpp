#include "ondevice/engine.h"

#include <chrono>
#include <cmath>

#include "core/check.h"
#include "embedding/hashing.h"
#include "embedding/id_batch.h"

namespace memcom {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

InferenceEngine::InferenceEngine(const MmapModel& model, DeviceProfile profile)
    : model_(model),
      profile_(std::move(profile)),
      meter_(profile_.page_size, profile_.readahead_pages) {
  arch_ = model_.metadata_value("arch");
  technique_ = model_.metadata_value("technique");
  vocab_ = model_.metadata_int("vocab");
  embed_dim_ = model_.metadata_int("embed_dim");
  hash_size_ = model_.metadata_int("knob");
  output_dim_ = model_.metadata_int("output_dim");
  hidden_dim_ =
      model_.has_metadata("hidden_dim") ? model_.metadata_int("hidden_dim") : 0;
  check(arch_ == "classification" || arch_ == "ranking",
        "engine: unknown architecture " + arch_);
}

void InferenceEngine::read_span(const TensorEntry& entry, Index offset,
                                Index count, float* out) {
  const std::size_t element_bits =
      static_cast<std::size_t>(dtype_bits(entry.dtype));
  const Index byte_offset =
      static_cast<Index>(static_cast<std::size_t>(offset) * element_bits / 8);
  const Index byte_len = static_cast<Index>(
      (static_cast<std::size_t>(count) * element_bits + 7) / 8);
  meter_.touch(static_cast<Index>(entry.offset) + byte_offset, byte_len);
  dequantize_span(entry.dtype, entry.scale, model_.payload(entry), offset,
                  count, out);
}

void InferenceEngine::embed_id(std::int32_t id, float* out) {
  const Index e = embed_dim_;
  if (technique_ == "uncompressed" || technique_ == "reduce_dim") {
    read_span(model_.entry("emb.table"), static_cast<Index>(id) * e, e, out);
  } else if (technique_ == "truncate_rare") {
    const Index keep = hash_size_;
    const Index row = static_cast<Index>(id) <= keep ? id : keep + 1;
    read_span(model_.entry("emb.table"), row * e, e, out);
  } else if (technique_ == "naive_hash") {
    read_span(model_.entry("emb.table"), mod_hash(id, hash_size_) * e, e, out);
  } else if (technique_ == "weinberger") {
    // Lookup formulation of feature hashing (±row); the canonical one-hot
    // path lives in embed_onehot_pooled.
    read_span(model_.entry("emb.table"), mod_hash(id, hash_size_) * e, e, out);
    const float sign = sign_hash(id);
    for (Index c = 0; c < e; ++c) {
      out[c] *= sign;
    }
  } else if (technique_ == "memcom" || technique_ == "memcom_bias") {
    read_span(model_.entry("emb.shared"), mod_hash(id, hash_size_) * e, e,
              out);
    float mult = 0.0f;
    read_span(model_.entry("emb.multiplier"), id, 1, &mult);
    for (Index c = 0; c < e; ++c) {
      out[c] *= mult;
    }
    if (technique_ == "memcom_bias") {
      float bias = 0.0f;
      read_span(model_.entry("emb.bias"), id, 1, &bias);
      for (Index c = 0; c < e; ++c) {
        out[c] += bias;
      }
    }
  } else if (technique_ == "qr_mult") {
    std::vector<float> quotient(static_cast<std::size_t>(e));
    read_span(model_.entry("emb.remainder"), mod_hash(id, hash_size_) * e, e,
              out);
    read_span(model_.entry("emb.quotient"),
              (static_cast<Index>(id) / hash_size_) * e, e, quotient.data());
    for (Index c = 0; c < e; ++c) {
      out[c] *= quotient[static_cast<std::size_t>(c)];
    }
  } else if (technique_ == "qr_concat") {
    const Index half = e / 2;
    read_span(model_.entry("emb.remainder"), mod_hash(id, hash_size_) * half,
              half, out);
    read_span(model_.entry("emb.quotient"),
              (static_cast<Index>(id) / hash_size_) * half, half, out + half);
  } else if (technique_ == "double_hash") {
    const Index half = e / 2;
    read_span(model_.entry("emb.table_a"), mod_hash(id, hash_size_) * half,
              half, out);
    read_span(model_.entry("emb.table_b"), mixed_hash(id, hash_size_) * half,
              half, out + half);
  } else if (technique_ == "factorized") {
    const Index h = model_.entry("emb.factors").shape[1];
    std::vector<float> factors(static_cast<std::size_t>(h));
    read_span(model_.entry("emb.factors"), static_cast<Index>(id) * h, h,
              factors.data());
    // Project: out = factors · P. Streams the whole projection (h x e, tiny).
    const TensorEntry& proj = model_.entry("emb.projection");
    std::vector<float> prow(static_cast<std::size_t>(e));
    for (Index c = 0; c < e; ++c) {
      out[c] = 0.0f;
    }
    for (Index k = 0; k < h; ++k) {
      read_span(proj, k * e, e, prow.data());
      const float f = factors[static_cast<std::size_t>(k)];
      for (Index c = 0; c < e; ++c) {
        out[c] += f * prow[static_cast<std::size_t>(c)];
      }
    }
  } else {
    check(false, "engine: unsupported technique " + technique_);
  }
}

Index InferenceEngine::embedding_stage_ops() const {
  // The frameworks execute the WHOLE batch-1 embedding stage as a handful
  // of fused graph ops (gather per table + the composition op), not one op
  // per token — dispatch overhead must be charged accordingly.
  if (technique_ == "uncompressed" || technique_ == "reduce_dim" ||
      technique_ == "naive_hash" || technique_ == "truncate_rare") {
    return 1;  // gather
  }
  if (technique_ == "memcom") {
    return 3;  // gather U, gather V, broadcast multiply
  }
  if (technique_ == "memcom_bias") {
    return 5;  // + gather W, broadcast add
  }
  if (technique_ == "qr_mult" || technique_ == "qr_concat" ||
      technique_ == "double_hash") {
    return 3;  // two gathers + compose
  }
  if (technique_ == "factorized") {
    return 2;  // gather + projection matmul
  }
  if (technique_ == "weinberger") {
    return 3;  // one_hot + matmul + reduce_sum (the un-fused §5.3 path)
  }
  return 1;
}

void InferenceEngine::embed_onehot_pooled(
    const std::vector<std::int32_t>& history, std::vector<float>& pooled) {
  const Index e = embed_dim_;
  const Index m = hash_size_;
  // Stage 1: hashed one-hot bag z in R^m (normalized so the result matches
  // the lookup path's masked average exactly).
  Index real = 0;
  for (const std::int32_t id : history) {
    if (id != kPadId) {
      ++real;
    }
  }
  std::vector<float> onehot(static_cast<std::size_t>(m), 0.0f);
  const float inv = real > 0 ? 1.0f / static_cast<float>(real) : 0.0f;
  for (const std::int32_t id : history) {
    if (id == kPadId) {
      continue;
    }
    onehot[static_cast<std::size_t>(mod_hash(id, m))] += sign_hash(id) * inv;
  }
  // Stage 2: z^T W — streams the ENTIRE table (this is the point of §5.3).
  const TensorEntry& table = model_.entry("emb.table");
  pooled.assign(static_cast<std::size_t>(e), 0.0f);
  std::vector<float> row(static_cast<std::size_t>(e));
  for (Index j = 0; j < m; ++j) {
    read_span(table, j * e, e, row.data());
    const float z = onehot[static_cast<std::size_t>(j)];
    if (z != 0.0f) {
      for (Index c = 0; c < e; ++c) {
        pooled[static_cast<std::size_t>(c)] +=
            z * row[static_cast<std::size_t>(c)];
      }
    }
  }
}

void InferenceEngine::apply_batchnorm(const std::string& prefix,
                                      std::vector<float>& x) {
  const Index n = static_cast<Index>(x.size());
  std::vector<float> gamma(x.size());
  std::vector<float> beta(x.size());
  std::vector<float> mean(x.size());
  std::vector<float> var(x.size());
  read_span(model_.entry(prefix + ".gamma"), 0, n, gamma.data());
  read_span(model_.entry(prefix + ".beta"), 0, n, beta.data());
  read_span(model_.entry(prefix + ".mean"), 0, n, mean.data());
  read_span(model_.entry(prefix + ".var"), 0, n, var.data());
  for (Index i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    x[s] = gamma[s] * (x[s] - mean[s]) /
               std::sqrt(var[s] + 1e-5f) +
           beta[s];
  }
  ++op_count_;
}

void InferenceEngine::apply_dense(const std::string& prefix,
                                  const std::vector<float>& x,
                                  std::vector<float>& y) {
  const TensorEntry& weight = model_.entry(prefix + ".weight");
  const Index in = weight.shape[0];
  const Index out = weight.shape[1];
  check_eq(in, static_cast<long long>(x.size()), prefix + " input width");
  y.assign(static_cast<std::size_t>(out), 0.0f);
  std::vector<float> row(static_cast<std::size_t>(out));
  for (Index k = 0; k < in; ++k) {
    const float xv = x[static_cast<std::size_t>(k)];
    read_span(weight, k * out, out, row.data());
    if (xv != 0.0f) {
      for (Index c = 0; c < out; ++c) {
        y[static_cast<std::size_t>(c)] += xv * row[static_cast<std::size_t>(c)];
      }
    }
  }
  std::vector<float> bias(static_cast<std::size_t>(out));
  read_span(model_.entry(prefix + ".bias"), 0, out, bias.data());
  for (Index c = 0; c < out; ++c) {
    y[static_cast<std::size_t>(c)] += bias[static_cast<std::size_t>(c)];
  }
  ++op_count_;
}

InferenceResult InferenceEngine::run(const std::vector<std::int32_t>& history) {
  op_count_ = 0;
  activation_bytes_ = 0;
  const Index e = embed_dim_;
  const Index l = static_cast<Index>(history.size());

  InferenceResult result;
  const auto start = Clock::now();

  // --- Embedding stage + masked average pooling ---
  std::vector<float> pooled(static_cast<std::size_t>(e), 0.0f);
  double onehot_extra_ms = 0.0;
  if (uses_onehot_path()) {
    const auto onehot_start = Clock::now();
    embed_onehot_pooled(history, pooled);
    // The profile's slowdown models the un-fused interpreter path.
    onehot_extra_ms =
        elapsed_ms(onehot_start) * (profile_.onehot_slowdown - 1.0);
    activation_bytes_ += hash_size_ * 4;  // the dense one-hot vector
  } else {
    std::vector<float> row(static_cast<std::size_t>(e));
    Index real = 0;
    for (const std::int32_t id : history) {
      if (id == kPadId) {
        continue;
      }
      ++real;
      embed_id(id, row.data());
      for (Index c = 0; c < e; ++c) {
        pooled[static_cast<std::size_t>(c)] += row[static_cast<std::size_t>(c)];
      }
    }
    if (real > 0) {
      const float inv = 1.0f / static_cast<float>(real);
      for (float& v : pooled) {
        v *= inv;
      }
    }
    activation_bytes_ += l * e * 4;  // the [L, E] lookup output
  }
  op_count_ += embedding_stage_ops();
  ++op_count_;  // pooling op
  const Index embed_ops = op_count_;
  result.embedding_ms = elapsed_ms(start) + onehot_extra_ms +
                        static_cast<double>(embed_ops) *
                            profile_.per_op_dispatch_us / 1000.0;

  // --- Trunk: ReLU -> BN [-> Dense(e/2)+ReLU -> BN] -> Dense(out) ---
  for (float& v : pooled) {
    v = std::max(v, 0.0f);
  }
  ++op_count_;
  apply_batchnorm("bn1", pooled);
  std::vector<float> trunk = std::move(pooled);
  if (arch_ == "classification") {
    std::vector<float> hidden;
    apply_dense("dense1", trunk, hidden);
    for (float& v : hidden) {
      v = std::max(v, 0.0f);
    }
    ++op_count_;
    apply_batchnorm("bn2", hidden);
    trunk = std::move(hidden);
    activation_bytes_ += hidden_dim_ * 4;
  }
  std::vector<float> logits;
  apply_dense("out", trunk, logits);
  activation_bytes_ += output_dim_ * 4 + e * 4;
  meter_.note_activation_bytes(activation_bytes_);

  result.total_ms = elapsed_ms(start) + onehot_extra_ms +
                    static_cast<double>(op_count_) *
                        profile_.per_op_dispatch_us / 1000.0;
  result.op_count = op_count_;
  result.logits = Tensor::from_vector(
      {static_cast<Index>(logits.size())},
      std::vector<float>(logits.begin(), logits.end()));
  return result;
}

LatencyStats InferenceEngine::benchmark(
    const std::vector<std::int32_t>& history, int runs) {
  check(runs > 0, "engine: runs must be positive");
  LatencyStats stats;
  stats.runs = runs;
  stats.min_ms = 1e30;
  double total = 0.0;
  for (int i = 0; i < runs; ++i) {
    const InferenceResult r = run(history);
    total += r.total_ms;
    stats.min_ms = std::min(stats.min_ms, r.total_ms);
    stats.max_ms = std::max(stats.max_ms, r.total_ms);
  }
  stats.mean_ms = total / runs;
  return stats;
}

double InferenceEngine::resident_megabytes() const {
  return static_cast<double>(meter_.total_resident_bytes() +
                             profile_.runtime_overhead_bytes) /
         (1024.0 * 1024.0);
}

}  // namespace memcom
