// Round-trips a .mcm written by ondevice/format through the mcm_inspect
// command-line tool and asserts on the inspector's summary output.
//
// The tool's binary path is injected by CMake via MCM_INSPECT_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "test_util.h"

#include "core/rng.h"
#include "core/tensor.h"
#include "ondevice/format.h"

namespace memcom {
namespace {

#ifndef MCM_INSPECT_PATH
#error "MCM_INSPECT_PATH must be defined by the build"
#endif

struct ToolResult {
  int exit_code = -1;
  std::string output;
};

ToolResult run_tool(const std::string& args) {
  // Quote the binary path; build trees may live under paths with spaces.
  const std::string cmd =
      "\"" + std::string(MCM_INSPECT_PATH) + "\" " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ToolResult result;
  if (pipe == nullptr) {
    return result;
  }
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class McmInspectTest : public test::SeededTest {
 protected:
  McmInspectTest()
      : path_((std::filesystem::temp_directory_path() /
               "memcom_inspect_test.mcm")
                  .string()) {}

  ~McmInspectTest() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  const std::string path_;
};

TEST_F(McmInspectTest, SummarizesRoundTrippedModel) {
  ModelWriter writer(path_);
  writer.set_metadata("technique", "memcom");
  writer.set_metadata_int("embedding_dim", 8);
  const Tensor table = Tensor::randn({16, 8}, rng_);
  const Tensor bias = Tensor::full({8}, 0.25f);
  writer.add_tensor("embedding", table, DType::kI8);
  writer.add_tensor("bias", bias, DType::kF32);
  const std::uint64_t bytes_written = writer.finish();
  ASSERT_GT(bytes_written, 0u);

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;

  // File summary line reports the on-disk size.
  EXPECT_NE(result.output.find("file: " + path_), std::string::npos);
  EXPECT_NE(result.output.find(std::to_string(bytes_written) + " bytes"),
            std::string::npos);

  // Metadata section echoes both entries.
  EXPECT_NE(result.output.find("technique = memcom"), std::string::npos);
  EXPECT_NE(result.output.find("embedding_dim = 8"), std::string::npos);

  // This writer stamped no identity: the inspector must say so (legacy
  // files keep working) rather than fail or print garbage.
  EXPECT_NE(result.output.find("legacy file"), std::string::npos);

  // Tensor directory lists both tensors with dtype and shape.
  EXPECT_NE(result.output.find("embedding"), std::string::npos);
  EXPECT_NE(result.output.find("bias"), std::string::npos);
  EXPECT_NE(result.output.find("i8"), std::string::npos);
  EXPECT_NE(result.output.find("f32"), std::string::npos);
  EXPECT_NE(result.output.find(shape_to_string({16, 8})), std::string::npos);

  // The payload total matches the directory entries read back directly.
  const MmapModel model(path_);
  const std::uint64_t payload = model.entry("embedding").byte_size +
                                model.entry("bias").byte_size;
  EXPECT_NE(
      result.output.find("total tensor payload: " + std::to_string(payload)),
      std::string::npos);
}

TEST_F(McmInspectTest, PrintsModelIdentityWhenStamped) {
  ModelWriter writer(path_);
  writer.set_model_identity("sessionrec", 12);
  writer.set_metadata("technique", "memcom");
  writer.add_tensor("bias", Tensor::full({4}, 0.5f));
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("model: sessionrec (version 12)"),
            std::string::npos);
  EXPECT_EQ(result.output.find("legacy file"), std::string::npos);
  // The identity also rides in the ordinary metadata listing.
  EXPECT_NE(result.output.find("model_name = sessionrec"), std::string::npos);
  EXPECT_NE(result.output.find("model_version = 12"), std::string::npos);
}

TEST_F(McmInspectTest, StatsFlagPrintsDequantizedStatistics) {
  ModelWriter writer(path_);
  const Tensor bias = Tensor::full({4}, 0.25f);
  writer.add_tensor("bias", bias, DType::kF32);
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\" --stats");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("per-tensor statistics"), std::string::npos);
  // f32 round-trips exactly: min == max == mean == 0.25.
  EXPECT_NE(result.output.find("0.25"), std::string::npos);

  // The f32 payload must also reload bit-exactly through the format API.
  const MmapModel model(path_);
  EXPECT_TENSOR_NEAR(model.load_tensor("bias"), bias, 0.0f);
}

TEST_F(McmInspectTest, SummarizesOutputCatalogDims) {
  ModelWriter writer(path_);
  writer.set_metadata("technique", "memcom");
  // Dense head layout is [in, items]: 16-dim item vectors, 24-item catalog.
  writer.add_tensor("out.weight", Tensor::randn({16, 24}, rng_), DType::kI8);
  writer.add_tensor("out.bias", Tensor::full({24}, 0.0f));
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("output catalog (out.weight): 24 items x 16 "
                               "dims"),
            std::string::npos);
  // The advertised compressed footprint is the directory entry's byte size.
  const MmapModel model(path_);
  EXPECT_NE(result.output.find(
                std::to_string(model.entry("out.weight").byte_size) +
                " bytes compressed"),
            std::string::npos);
}

TEST_F(McmInspectTest, NoCatalogLineWithoutOutputHead) {
  ModelWriter writer(path_);
  writer.add_tensor("bias", Tensor::full({4}, 0.5f));
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_EQ(result.output.find("output catalog"), std::string::npos);
}

namespace {
// A minimal model build_plan() can compile, so set_emit_plan can stage the
// v3 plan section the inspector reports on.
void add_plannable_model(ModelWriter& writer) {
  writer.set_metadata("arch", "ranking");
  writer.set_metadata("technique", "uncompressed");
  writer.set_metadata_int("vocab", 16);
  writer.set_metadata_int("embed_dim", 4);
  writer.set_metadata_int("knob", 0);
  writer.set_metadata_int("output_dim", 2);
  writer.add_tensor("emb.table", Tensor::full({16, 4}, 0.5f));
  writer.add_tensor("bn1.gamma", Tensor::full({4}, 1.0f));
  writer.add_tensor("bn1.beta", Tensor::full({4}, 0.0f));
  writer.add_tensor("bn1.mean", Tensor::full({4}, 0.0f));
  writer.add_tensor("bn1.var", Tensor::full({4}, 1.0f));
  writer.add_tensor("out.weight", Tensor::full({4, 2}, 0.25f));
  writer.add_tensor("out.bias", Tensor::full({2}, 0.0f));
}
}  // namespace

TEST_F(McmInspectTest, ReportsSectionsAndValidPlanVerdict) {
  ModelWriter writer(path_);
  add_plannable_model(writer);
  writer.set_emit_plan();
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("sections (format v3):"), std::string::npos);
  const MmapModel model(path_);
  EXPECT_NE(result.output.find("compiled plan: " +
                               std::to_string(model.plan_size()) + " bytes"),
            std::string::npos);
  EXPECT_NE(result.output.find(
                "plan: present (valid — loader adopts, skipping compile)"),
            std::string::npos);
}

TEST_F(McmInspectTest, ReportsAbsentPlanForPlanlessFile) {
  ModelWriter writer(path_);
  add_plannable_model(writer);
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("sections (format v1):"), std::string::npos);
  EXPECT_NE(result.output.find("compiled plan: 0 bytes"), std::string::npos);
  EXPECT_NE(result.output.find("plan: absent (loader runs a full compile)"),
            std::string::npos);
}

TEST_F(McmInspectTest, ReportsStalePlanWithReason) {
  {
    ModelWriter writer(path_);
    add_plannable_model(writer);
    writer.set_emit_plan();
    writer.finish();
  }
  // Flip one byte mid-section: the verdict must name the defect and say the
  // loader falls back, while the tool still prints the full report.
  const MmapModel model(path_);
  const std::uint64_t flip_at = model.plan_offset() + model.plan_size() / 2;
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(flip_at));
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(flip_at));
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("plan: stale"), std::string::npos);
  EXPECT_NE(result.output.find("checksum mismatch"), std::string::npos);
  EXPECT_NE(result.output.find("falls back to a full compile"),
            std::string::npos);
}

TEST_F(McmInspectTest, ReportsValidCatalogIndexVerdict) {
  ModelWriter writer(path_);
  add_plannable_model(writer);
  writer.set_emit_catalog_index(true, /*clusters=*/2);
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("sections (format v4):"), std::string::npos);
  const MmapModel model(path_);
  EXPECT_NE(result.output.find("catalog index: " +
                               std::to_string(model.index_size()) + " bytes"),
            std::string::npos);
  EXPECT_NE(result.output.find("catalog index: present (valid"),
            std::string::npos);
  EXPECT_NE(result.output.find("2 centroids over 2 items"), std::string::npos);
  EXPECT_NE(result.output.find("cluster size min/median/max"),
            std::string::npos);
  EXPECT_NE(result.output.find("pruned top-k available"), std::string::npos);
}

TEST_F(McmInspectTest, ReportsAbsentCatalogIndexForIndexlessFile) {
  ModelWriter writer(path_);
  add_plannable_model(writer);
  writer.finish();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("catalog index: 0 bytes"), std::string::npos);
  EXPECT_NE(result.output.find("catalog index: absent (session ranking "
                               "scans the full catalog)"),
            std::string::npos);
}

TEST_F(McmInspectTest, ReportsStaleCatalogIndexWithReason) {
  {
    ModelWriter writer(path_);
    add_plannable_model(writer);
    writer.set_emit_catalog_index(true, /*clusters=*/2);
    writer.finish();
  }
  // Flip one byte mid-section (payload region, past the header prefix): the
  // verdict names the defect and the tool keeps printing the full report.
  const MmapModel model(path_);
  const std::uint64_t flip_at = model.index_offset() + model.index_size() / 2;
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(flip_at));
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(flip_at));
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();

  const ToolResult result = run_tool("\"" + path_ + "\"");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("catalog index: stale"), std::string::npos);
  EXPECT_NE(result.output.find("falls back to the exact full scan"),
            std::string::npos);
}

TEST_F(McmInspectTest, MissingArgumentFailsWithUsage) {
  const ToolResult result = run_tool("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace memcom
