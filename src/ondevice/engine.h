// Forward-only inference engine over an mmap'd .mcm model.
//
// Re-implements the paper's network (embedding -> masked average pool ->
// ReLU -> BatchNorm [-> Dense+ReLU -> BatchNorm] -> Dense) directly against
// the memory-mapped weight blobs, independent of the training stack — the
// tests verify the two produce identical logits. Two embedding compute
// paths exist, matching §5.3's comparison:
//
//   * lookup path  — per-token row gather (MEmCom, QR, hashing, ...);
//     touches O(history length) table rows.
//   * one-hot path — Weinberger feature hashing as originally formulated: a
//     hashed bag-of-words vector times the full table; touches every table
//     page and costs O(m·e) regardless of history length.
//
// Latency is wall time of the real computation plus the device profile's
// per-op dispatch overhead (and the profile's one-hot slowdown for the
// un-fused TF-Lite path). Memory is metered page-granularly, see
// memory_meter.h.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/device_profile.h"
#include "ondevice/format.h"
#include "ondevice/memory_meter.h"

namespace memcom {

struct InferenceResult {
  Tensor logits;            // [output_dim]
  double embedding_ms = 0;  // embedding stage latency (incl. overheads)
  double total_ms = 0;      // end-to-end latency (incl. overheads)
  Index op_count = 0;
};

struct LatencyStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  int runs = 0;
};

class InferenceEngine {
 public:
  // The engine keeps a reference to `model`; it must outlive the engine.
  InferenceEngine(const MmapModel& model, DeviceProfile profile);

  // Runs a single batch-1 forward (Table 3's setting).
  InferenceResult run(const std::vector<std::int32_t>& history);

  // Mean latency over `runs` forwards of the same input (the paper reports
  // the average of 1000 runs).
  LatencyStats benchmark(const std::vector<std::int32_t>& history, int runs);

  // Resident memory accounting from all runs since the last reset.
  const MemoryMeter& meter() const { return meter_; }
  void reset_meter() { meter_.reset(); }
  double resident_megabytes() const;

  const std::string& technique() const { return technique_; }
  const std::string& architecture() const { return arch_; }
  Index output_dim() const { return output_dim_; }
  bool uses_onehot_path() const { return technique_ == "weinberger"; }

 private:
  // Dequantizes `count` elements starting at element `offset` of `entry`,
  // metering the touched byte range.
  void read_span(const TensorEntry& entry, Index offset, Index count,
                 float* out);
  // Number of fused graph ops the framework dispatches for the embedding
  // stage of this technique (gathers + composition).
  Index embedding_stage_ops() const;
  // Gathers one embedding row for id into `out` (lookup path).
  void embed_id(std::int32_t id, float* out);
  // Pooled embedding via the one-hot path (whole-table stream).
  void embed_onehot_pooled(const std::vector<std::int32_t>& history,
                           std::vector<float>& pooled);

  void apply_batchnorm(const std::string& prefix, std::vector<float>& x);
  // y[out] = x[in] * W[in,out] + b[out]
  void apply_dense(const std::string& prefix, const std::vector<float>& x,
                   std::vector<float>& y);

  const MmapModel& model_;
  DeviceProfile profile_;
  MemoryMeter meter_;
  std::string arch_;       // "classification" | "ranking"
  std::string technique_;
  Index vocab_ = 0;
  Index embed_dim_ = 0;    // output width of the embedding stage
  Index hash_size_ = 0;    // technique knob (m / h / keep / buckets)
  Index hidden_dim_ = 0;   // classification trunk width (e/2)
  Index output_dim_ = 0;
  Index op_count_ = 0;
  Index activation_bytes_ = 0;
};

}  // namespace memcom
