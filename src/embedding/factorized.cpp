#include "embedding/factorized.h"

#include "core/ops.h"

namespace memcom {

FactorizedEmbedding::FactorizedEmbedding(Index vocab, Index hidden_dim,
                                         Index embed_dim, Rng& rng)
    : factors_("factorized.factors", embedding_init(vocab, hidden_dim, rng)),
      projection_("factorized.projection",
                  Tensor::glorot(hidden_dim, embed_dim, rng)) {
  check(hidden_dim > 0 && hidden_dim <= embed_dim,
        "factorized: hidden dim must be in (0, embed_dim]");
  factors_.sparse = true;
}

Tensor FactorizedEmbedding::forward(const IdBatch& input, bool /*training*/) {
  input.validate(vocab_size());
  cached_input_ = input;
  const Index h = hidden_dim();
  const Index e = output_dim();
  const Index n = input.size();

  // Gather factor rows into [n, h], then one dense projection matmul.
  cached_hidden_ = Tensor({n, h});
  const float* factors = factors_.value.data();
  for (Index i = 0; i < n; ++i) {
    const Index row = static_cast<Index>(input.ids[static_cast<std::size_t>(i)]);
    const float* src = factors + row * h;
    float* dst = cached_hidden_.data() + i * h;
    for (Index c = 0; c < h; ++c) {
      dst[c] = src[c];
    }
  }
  Tensor out = matmul(cached_hidden_, projection_.value);
  out.reshape({input.batch, input.length, e});
  return out;
}

void FactorizedEmbedding::backward(const Tensor& grad_out) {
  check(grad_out.ndim() == 3 && grad_out.dim(2) == output_dim(),
        "factorized: bad grad shape");
  const Index h = hidden_dim();
  const Index n = cached_input_.size();
  const Tensor grad_flat =
      grad_out.reshaped({n, output_dim()});

  // dP = hidden^T g (dense); dHidden = g P^T, scattered into factor rows.
  projection_.grad.add_(matmul_tn(cached_hidden_, grad_flat));
  const Tensor grad_hidden = matmul_nt(grad_flat, projection_.value);
  float* g_factors = factors_.grad.data();
  for (Index i = 0; i < n; ++i) {
    const Index row =
        static_cast<Index>(cached_input_.ids[static_cast<std::size_t>(i)]);
    factors_.mark_touched(row);
    const float* src = grad_hidden.data() + i * h;
    float* dst = g_factors + row * h;
    for (Index c = 0; c < h; ++c) {
      dst[c] += src[c];
    }
  }
}

}  // namespace memcom
