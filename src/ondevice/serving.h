// Serving harnesses over the on-device inference engine.
//
// Both execution models share compiled plans instead of recompiling per
// worker: a CompiledModel is built ONCE per model file and every worker
// executes it through a private ExecutionContext (scratch arena, memory
// meter, optional hot-row cache). The plan's pre-dequantized buffers are
// therefore paid for once per model version, not once per thread — see
// plan_resident_bytes().
//
//   * ServingHarness — CLOSED-LOOP drain over ONE model: workers pull
//     requests off a lock-free atomic cursor as fast as they complete them.
//     Measures the peak batch-1 throughput of the fast path.
//
//   * AsyncServer — OPEN-LOOP multi-tenant pipeline, SHARDED: producers
//     enqueue requests (each optionally routed to a `model_id`) into one of
//     `shards` bounded RequestQueues (shard = hash(model_id), so a model's
//     traffic forms dense micro-batches on one shard), a per-shard batch
//     former turns them into PER-MODEL dynamic micro-batches, and worker
//     threads execute each micro-batch through the fused run_batch path.
//     A worker is pinned to a primary shard but STEALS formed batches from
//     other shards whenever its own dispatch queue is empty, so a skewed
//     model mix cannot strand capacity on an idle shard.
//
//     Deadline awareness runs end to end: every request carries a deadline
//     (default `deadline_us` after enqueue; 0 = none). A shard flushes a
//     micro-batch EARLY once the oldest member's remaining slack drops
//     below the shard's projected service time (SLO-driven flush — the
//     fixed `max_delay_us` stays as an upper bound), and completions past
//     their deadline are counted as misses. With `shed` enabled the front
//     door applies admission control: once a shard's queue-wait p99
//     estimate exceeds a request's deadline (and real backlog confirms
//     it), `try_submit` rejects and `submit` fails fast with a future that
//     resolves to RequestStatus::kShed — bounded-latency goodput instead
//     of unbounded queueing.
//
//     Models live in a ModelRegistry; a `swap()` there is
//     zero-downtime: micro-batches pin their model version at formation,
//     in-flight work finishes on the old version, new batches pick up the
//     new one, and the old plan (plus its mmap) is destroyed when its
//     refcount drains. Worker-side hot-row caches are rebuilt cold on the
//     first batch of a new version so stale rows can never serve.
//
// Both report real wall-clock QPS and a modeled-device QPS derived from the
// engines' simulated per-forward latency (which includes the profile's
// dispatch overhead — this is where micro-batching visibly wins; real wall
// clock on a shared host measures mostly the simulator itself). The async
// report additionally breaks requests/latency/cache down per model id.
//
// Logits are bit-identical to sequential InferenceEngine::run() on every
// path — direct, registry-served, and post-swap — cache cold or warm;
// tests/test_serving.cpp and tests/test_differential.cpp enforce this.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/tensor.h"
#include "ondevice/clock.h"
#include "ondevice/engine.h"
#include "ondevice/registry.h"
#include "ondevice/request_queue.h"
#include "ondevice/session.h"

namespace memcom {

// Per-model slice of a drain (async pipeline only).
struct ModelReport {
  std::string model_id;
  std::uint64_t version = 0;   // latest registry version that served traffic
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;   // micro-batches dispatched for THIS model
  double mean_batch = 0;       // requests / batches
  LatencyStats latency;        // end-to-end wall latency of this model's reqs
  double modeled_busy_ms = 0;  // max over workers of this model's busy time
  double modeled_qps = 0;
  // Peak per-worker context footprint of this model plus its shared plan —
  // what THIS tenant adds to the device, not the whole server's figure.
  double resident_mb = 0;
  RowCacheStats cache;
};

struct ServingReport {
  int threads = 0;
  std::uint64_t requests = 0;  // total forwards executed
  double wall_ms = 0;          // wall clock of the whole drain
  double qps = 0;              // requests / wall seconds (real clock)
  LatencyStats latency;        // per-request end-to-end wall latency (ms)

  // Modeled-device throughput: each worker engine is one simulated device;
  // its busy time is the sum of the simulated latencies (compute + per-op
  // dispatch) of the forwards it executed. The fleet finishes when the
  // busiest device does.
  double modeled_busy_ms = 0;  // max over workers of summed simulated ms
  double modeled_qps = 0;      // requests / modeled busy seconds

  // Async pipeline only (runs == 0 for the closed-loop harness):
  LatencyStats queue_wait;  // enqueue -> micro-batch picked up by a worker
  LatencyStats service;     // micro-batch execution wall time
  std::uint64_t batches = 0;   // micro-batches dispatched
  double mean_batch = 0;       // requests / batches
  int shards = 0;              // scheduler shards the drain ran with
  std::uint64_t steals = 0;    // batches executed by a non-primary worker

  // Deadline / admission-control accounting (async pipeline only).
  // `requests` counts everything submitted; shed requests never execute,
  // so executed = requests - shed and the latency stats cover executed
  // requests only.
  std::uint64_t shed = 0;             // rejected at the front door
  double shed_rate = 0;               // shed / requests
  std::uint64_t deadline_misses = 0;  // executed but completed past deadline
  double deadline_miss_rate = 0;      // misses / executed
  // Goodput under the SLO: completions that met their deadline per wall
  // second. With no deadline configured this equals `qps`.
  double goodput_qps = 0;
  // Open-loop pacer honesty: arrivals the driver released more than one
  // inter-arrival period behind their absolute schedule (a slow/blocked
  // submit lowers TRUE offered load; this counts by how many).
  std::uint64_t late_arrivals = 0;

  // Session workload slice (submit_next_item traffic; all zero when the
  // drain carried none). session_latency reuses the same nearest-rank
  // percentile math as `latency` — see latency_stats_from_samples.
  std::uint64_t session_requests = 0;
  LatencyStats session_latency;        // end-to-end wall latency (ms)
  Index active_sessions = 0;           // live sessions at report assembly
  std::uint64_t session_evictions = 0; // lifetime LRU evictions, all shards

  // Catalog-scan accounting over the drain's RANKED rows (top_k > 0; all
  // zero when the drain carried none). scanned_rows counts catalog items
  // actually scored; catalog_rows counts what an exact scan would have
  // scored (ranked rows x catalog size); scanned_bytes is the analytic
  // compressed payload read (probed columns + centroid table on the pruned
  // path, the full weight/bias blobs per row on the exact path).
  // pruned_fraction = 1 - scanned_rows / catalog_rows (0 when every ranked
  // row scanned exact).
  std::uint64_t catalog_rows = 0;
  std::uint64_t scanned_rows = 0;
  std::uint64_t scanned_bytes = 0;
  double pruned_fraction = 0;

  // Hot-row cache totals across workers (enabled=false when no cache).
  RowCacheStats cache;

  // Cold-start accounting for the plan the drain served (the default model
  // in the async pipeline): whether load took the v3 plan-section fast
  // path, the wall time of that adopt-or-compile step, and — when adoption
  // was skipped — why (empty when adopted). Fleet story: this is the
  // per-device boot tax the serialized plan removes.
  bool plan_adopted = false;
  double plan_compile_ms = 0;
  std::string plan_fallback_reason;

  // Per-model breakdown, sorted by model id (async pipeline only; empty for
  // the single-model closed-loop harness).
  std::vector<ModelReport> per_model;
};

class ServingHarness {
 public:
  // Compiles the plan ONCE and shares it across `threads` worker engines;
  // the model must outlive the harness. A nonzero `cache_budget_bytes`
  // attaches a per-worker HotRowCache (bypassed for one-hot techniques).
  ServingHarness(const MmapModel& model, const DeviceProfile& profile,
                 int threads, std::size_t cache_budget_bytes = 0);
  // Shares an EXISTING plan (e.g. one acquired from a ModelRegistry).
  ServingHarness(std::shared_ptr<const CompiledModel> compiled,
                 const DeviceProfile& profile, int threads,
                 std::size_t cache_budget_bytes = 0);

  // Drains `requests` (repeated `repeat` times) across the worker pool.
  // When `logits_out` is non-null it is resized to [requests, output_dim]
  // and filled with each request's logits (first repetition).
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, Tensor* logits_out = nullptr);

  int threads() const { return static_cast<int>(engines_.size()); }
  // Plan-derived (safe even on a degenerate pool — never dereferences a
  // worker engine).
  Index output_dim() const { return compiled_->output_dim(); }
  const CompiledModel& compiled() const { return *compiled_; }
  const InferenceEngine& engine(int i) const { return *engines_[i]; }

  // Peak resident footprint across workers (each worker meters its own
  // touches; the weight pages are shared, so the fleet-wide footprint is
  // the max, not the sum) plus the shared plan, which is resident exactly
  // once no matter how many workers reference it.
  double max_resident_megabytes() const;

  // Bytes of the shared plan's pre-dequantized buffers. Compiled once:
  // this does NOT scale with threads() (the PR-3 layer paid it per worker).
  std::size_t plan_resident_bytes() const {
    return compiled_->plan_resident_bytes();
  }

 private:
  std::shared_ptr<const CompiledModel> compiled_;
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
};

// ---------------------------------------------------------------------------
// Asynchronous multi-tenant micro-batching pipeline:
//   queue -> per-model scheduler -> workers (one ExecutionContext per
//   (worker, model id), re-bound on version swap).

struct AsyncServerConfig {
  int threads = 2;
  // Scheduler shards: per-shard admission queue + batch former + dispatch
  // queue. Requests route by hash(model_id); workers steal formed batches
  // across shards. Must satisfy 1 <= shards <= threads (every shard needs
  // a primary worker or a loaded shard could starve between steal scans).
  int shards = 1;
  Index max_batch = 8;          // flush a micro-batch at this size...
  double max_delay_us = 200.0;  // ...or this long after its first request
  // Default per-request deadline, measured from enqueue. 0 disables
  // deadline handling (no SLO flush, no miss accounting, no shedding).
  double deadline_us = 0.0;
  // Admission control: shed at submit()/try_submit() once the target
  // shard's queue-wait p99 estimate exceeds the request's deadline AND the
  // shard has a real backlog (>= max_batch queued). Requires deadline_us
  // (or a per-request deadline) to have any effect.
  bool shed = false;
  std::size_t queue_capacity = 1024;  // admission bound, TOTAL across shards
  std::size_t cache_budget_bytes = 0;  // per-context hot-row cache; 0 = off
  // Session workload (submit_next_item). `session_capacity` is the TOTAL
  // number of live sessions, split across shards like queue_capacity
  // (remainder to the first shards); beyond it the least-recently-used
  // session on the arriving shard is evicted. Each session keeps its last
  // `session_history` item ids. Both knobs only size the per-shard
  // SessionStores — plain submit() traffic never touches them.
  Index session_capacity = 1024;
  Index session_history = 32;
  // Default clusters-to-probe for session ranking (submit_next_item): 0 =
  // exact full-catalog scan; > 0 = pruned scan through the model's adopted
  // catalog index (see ondevice/catalog_index.h). A model without a valid
  // index serves exact regardless — the pruned path is an optimization,
  // never an availability risk. Per-request override on submit_next_item.
  Index nprobe = 0;
};

// How a submitted request left the server.
enum class RequestStatus {
  kOk = 0,    // executed; logits valid
  kShed = 1,  // rejected by admission control; logits empty, never executed
};

// What a request's future resolves to.
struct AsyncResult {
  RequestStatus status = RequestStatus::kOk;
  std::vector<float> logits;  // [output_dim of the serving model]
  std::string model_id;       // which registry entry served the request
  std::uint64_t model_version = 0;  // which version of it (swap audit trail)
  double queue_wait_ms = 0;   // enqueue -> worker picked the batch up
  double service_ms = 0;      // fused micro-batch execution (wall)
  double total_ms = 0;        // enqueue -> completion
  Index batch = 0;            // size of the micro-batch this request rode in
  // True when the request carried a deadline and completed after it (only
  // meaningful for kOk — shed requests never execute).
  bool deadline_missed = false;
  // Top-k ranking over the logits row, filled only for submit_next_item
  // requests with k > 0: item ids best-first with the deterministic
  // tie-break of ondevice/topk.h (equal scores -> lower id), plus their
  // scores. Bit-identical across kernel families and shard counts
  // (tests/test_differential.cpp enforces it).
  std::vector<Index> top_ids;
  std::vector<float> top_scores;
};

// A request explicitly routed to a registry model (the serve() overload
// that drives mixed multi-model traffic).
struct RoutedRequest {
  std::string model_id;
  std::vector<std::int32_t> history;
};

// One session interaction for the serve_sessions() driver: "session
// `session_id` just touched item `item`".
struct SessionEvent {
  std::uint64_t session_id = 0;
  std::int32_t item = 0;
};

class AsyncServer {
 public:
  // Model id used by the single-model convenience constructor and by the
  // submit()/serve() overloads that do not name a model.
  static constexpr const char* kDefaultModelId = "default";

  // Single-model convenience: wraps `model` in a private registry under
  // kDefaultModelId. The model must outlive the server.
  AsyncServer(const MmapModel& model, const DeviceProfile& profile,
              AsyncServerConfig config);

  // Multi-tenant: serves every model in `registry`, which must outlive the
  // server. `default_model_id` (which must be registered) answers the
  // un-routed submit()/serve() calls and output_dim().
  AsyncServer(ModelRegistry& registry, std::string default_model_id,
              const DeviceProfile& profile, AsyncServerConfig config);

  // Closes the queue, drains every accepted request, joins all threads.
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  // Enqueues a request; BLOCKS while its shard's queue is at capacity
  // (backpressure). The future resolves once a worker completed the
  // request's micro-batch. The routed overload fails (check) for a model id
  // the registry does not currently hold.
  //
  // `deadline_us` overrides the config default for THIS request (< 0 = use
  // the config; 0 = explicitly no deadline). When shedding is enabled and
  // the target shard's queue-wait p99 estimate exceeds the deadline,
  // submit() does NOT block: it fails fast with a future already resolved
  // to RequestStatus::kShed.
  std::future<AsyncResult> submit(std::vector<std::int32_t> history);
  std::future<AsyncResult> submit(std::string model_id,
                                  std::vector<std::int32_t> history,
                                  double deadline_us = -1.0);

  // Non-blocking admission: false (and no future) when the shard queue is
  // full, the request was shed (counted separately — see shed_total()),
  // the server is shutting down, or the model id is unknown.
  bool try_submit(std::vector<std::int32_t> history,
                  std::future<AsyncResult>* out);
  bool try_submit(std::string model_id, std::vector<std::int32_t> history,
                  std::future<AsyncResult>* out, double deadline_us = -1.0);

  // Session-based next-item serving: appends `new_item` to the session's
  // bounded history ring (evicting the LRU session if the store is full),
  // runs `model_id` on the post-append history, and resolves the future
  // with the request's logits PLUS the top-`k` item ids/scores over them —
  // the full-catalog scan, executed against the model's compressed output
  // table by the normal dense path.
  //
  // Routing is SESSION-affine, not model-affine: hash(session_id) picks
  // the shard, so one session's updates all land on one former thread in
  // submission order — the history append needs no lock and two updates of
  // a session can never reorder. Deadlines and admission control behave
  // exactly like submit() (a shed request does NOT append its item).
  // `nprobe` < 0 uses the config default; 0 forces the exact full scan;
  // > 0 probes that many clusters through the model's catalog index (exact
  // scan when the model carries no valid index).
  std::future<AsyncResult> submit_next_item(std::string model_id,
                                            std::uint64_t session_id,
                                            std::int32_t new_item, Index k,
                                            double deadline_us = -1.0,
                                            Index nprobe = -1);

  // Convenience driver: submits `requests` (repeated `repeat` times) from
  // this thread — paced at `arrival_qps` when nonzero (open-loop arrivals),
  // as fast as backpressure admits otherwise — waits for every completion,
  // and aggregates the report. When `logits_out` is non-null it is filled
  // with the first repetition's logits, row r = requests[r]. All requests
  // go to the default model.
  ServingReport serve(const std::vector<std::vector<std::int32_t>>& requests,
                      int repeat = 1, double arrival_qps = 0.0,
                      Tensor* logits_out = nullptr);

  // Mixed-traffic driver: like serve(), but each request names its model.
  // Output dims may differ per model, so first-repetition logits (when
  // requested) come back as one vector per request instead of a Tensor.
  ServingReport serve(const std::vector<RoutedRequest>& requests,
                      int repeat = 1, double arrival_qps = 0.0,
                      std::vector<std::vector<float>>* logits_out = nullptr);

  // Session-traffic driver: submits `events` in order through
  // submit_next_item (default model, top-`k` per request), waits for every
  // completion, and aggregates the report — including its session slice
  // (session_requests, session_latency, active_sessions,
  // session_evictions). When `topk_out` is non-null it is filled with each
  // event's ranked item ids (empty for shed events).
  ServingReport serve_sessions(
      const std::vector<SessionEvent>& events, Index k,
      std::vector<std::vector<Index>>* topk_out = nullptr);

  const AsyncServerConfig& config() const { return config_; }
  int threads() const { return config_.threads; }
  const ModelRegistry& registry() const { return *registry_; }
  const std::string& default_model_id() const { return default_model_; }
  // Default model's output width (plan-derived; never touches a worker).
  Index output_dim() const;

  // Lifetime count of requests whose futures have been resolved (including
  // failed ones). Lets external observers — e.g. a deploy driver deciding
  // when to swap() — watch progress without joining the drain.
  std::uint64_t completed_requests() const {
    return completed_.load(std::memory_order_relaxed);
  }

  // Backpressure / admission observability (lifetime totals, summed over
  // shards). high_water sums per-shard peaks — they need not have been
  // simultaneous, but each shard's peak is bounded by its slice of
  // queue_capacity, so the sum never exceeds queue_capacity().
  std::size_t queue_capacity() const;
  std::size_t queue_high_water() const;
  std::uint64_t rejected() const;
  // Requests rejected by admission control (distinct from full-queue
  // rejections above): the estimated queue wait exceeded their deadline.
  std::uint64_t shed_total() const;
  // Formed batches executed by a worker whose primary shard is not the
  // batch's origin shard (lifetime).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  int shards() const { return static_cast<int>(shards_.size()); }

  // Session-store observability, summed over shards (atomic counters — safe
  // to read while the pipeline runs).
  Index active_sessions() const;
  std::uint64_t evicted_sessions() const;

  // Aggregated hot-row cache counters across worker contexts since the
  // last serve() began (all counters flow through the stats mutex, so this
  // is safe to call whenever the caller holds no in-flight futures).
  RowCacheStats cache_stats() const;
  double max_resident_megabytes() const;

 private:
  struct QueuedRequest {
    std::string model_id;
    std::vector<std::int32_t> history;
    std::promise<AsyncResult> promise;
    SteadyClock::time_point enqueue_tp;
    // time_point::max() when the request carries no deadline.
    SteadyClock::time_point deadline_tp;
    // Session workload (submit_next_item): `history` starts empty and is
    // filled by the owning shard's former from its SessionStore.
    bool is_session = false;
    std::uint64_t session_id = 0;
    std::int32_t new_item = 0;
    Index top_k = 0;  // rank the logits when > 0
    Index nprobe = 0;  // pruned scan when > 0 and the model has an index
  };
  struct BatchTask {
    std::string model_id;
    // Pinned at micro-batch formation: a concurrent swap() cannot retarget
    // an in-flight batch.
    std::shared_ptr<const CompiledModel> compiled;
    std::uint64_t version = 0;
    std::size_t shard = 0;  // origin shard (estimator feedback + stealing)
    std::vector<QueuedRequest> requests;
  };
  // One scheduler shard: its own admission queue, batch-former thread, and
  // dispatch queue of formed micro-batches, plus the two online estimators
  // the deadline machinery feeds on. The estimators are plain atomics
  // updated by workers with racy read-modify-write — a lost update skews an
  // ESTIMATE, never correctness.
  struct Shard {
    Shard(std::size_t queue_cap, std::size_t dispatch_cap)
        : queue(queue_cap), dispatch(dispatch_cap) {}
    RequestQueue<QueuedRequest> queue;
    RequestQueue<BatchTask> dispatch;
    // Peak-decay queue-wait p99 estimate (µs): jumps to any new maximum,
    // decays 1/8 toward each smaller sample. Admission control compares
    // this against a request's deadline.
    std::atomic<std::int64_t> wait_p99_est_us{0};
    // EWMA of micro-batch service wall time (µs): the projected cost of
    // flushing a batch now — the SLO-driven flush triggers once a batch's
    // oldest deadline is closer than this.
    std::atomic<std::int64_t> service_est_us{0};
    std::atomic<std::uint64_t> shed{0};  // admission-control rejections
    // Per-shard session state, owned and written ONLY by this shard's
    // former thread (session-affine routing makes that single-writer by
    // construction); its counters are atomics for cross-thread observers.
    std::unique_ptr<SessionStore> sessions;
    std::thread former;
  };
  // Per-(worker, model) slice of the per-batch accounting below.
  struct ModelLane {
    std::uint64_t version = 0;
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    std::vector<double> total_ms;
    double modeled_busy_ms = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    bool cache_enabled = false;
    std::size_t cache_resident_bytes = 0;  // post-batch snapshot
    std::size_t cache_capacity_bytes = 0;  // post-batch snapshot
    double resident_mb = 0;                // post-batch snapshot
    std::size_t plan_bytes = 0;            // served plan (shared, not per worker)
  };
  // Per-batch accounting a worker appends under stats_mutex_; serve()
  // snapshots these after every future it waits on has resolved.
  struct WorkerStats {
    std::vector<double> queue_wait_ms;
    std::vector<double> service_ms;
    std::vector<double> total_ms;
    double modeled_busy_ms = 0;
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;
    // Session slice: submit_next_item requests this worker completed and
    // their end-to-end latencies (feeds ServingReport::session_latency).
    std::uint64_t session_requests = 0;
    std::vector<double> session_total_ms;
    // Catalog-scan slice (ranked rows only; see ServingReport).
    std::uint64_t ranked_rows = 0;
    std::uint64_t catalog_rows = 0;
    std::uint64_t scanned_rows = 0;
    std::uint64_t scanned_bytes = 0;
    std::map<std::string, ModelLane> models;
  };

  QueuedRequest make_request(std::string model_id,
                             std::vector<std::int32_t> history,
                             double deadline_us) const;
  // Validates config + default model and spawns the pipeline threads; the
  // shared tail of both constructors.
  void start();
  // Model-affine shard routing: one model's requests land on one shard so
  // its micro-batches stay dense; stealing rebalances execution.
  std::size_t shard_for(const std::string& model_id) const;
  // Session-affine routing for submit_next_item: a session's updates must
  // all reach the shard that owns its history ring, in order.
  std::size_t shard_for_session(std::uint64_t session_id) const;
  // True when admission control should reject a request with this deadline
  // on this shard right now.
  bool should_shed(const Shard& shard,
                   SteadyClock::time_point enqueue_tp,
                   SteadyClock::time_point deadline_tp) const;
  std::future<AsyncResult> resolve_shed(QueuedRequest request, Shard& shard);
  void former_loop(std::size_t shard_index);
  void worker_loop(std::size_t worker);
  // Thread-local state a worker threads through execute_batch: one
  // ExecutionContext per model id (re-bound on version swap) plus a reused
  // history scratch buffer.
  struct WorkerState {
    std::unordered_map<std::string, std::unique_ptr<ExecutionContext>>
        contexts;
    std::vector<std::vector<std::int32_t>> histories;
  };
  void execute_batch(std::size_t worker, BatchTask& task, WorkerState& state);
  void reset_stats();
  // Non-owning view of one request of a serve() corpus: both serve()
  // overloads flatten to these so the un-routed one does not have to copy
  // every history into a temporary RoutedRequest just to attach the
  // default model id (submit() copies per repetition anyway).
  struct RequestRef {
    const std::string* model_id = nullptr;
    const std::vector<std::int32_t>* history = nullptr;
  };
  ServingReport drive(const std::vector<RequestRef>& requests, int repeat,
                      double arrival_qps,
                      std::vector<std::vector<float>>* logits_out);
  // Shared report-assembly tail of drive()/serve_sessions(): folds the
  // worker stats accumulated since the last reset_stats() into `report`
  // (latency/batch/per-model/cache columns plus the session slice).
  void collect_stats(ServingReport& report, std::uint64_t total);

  AsyncServerConfig config_;
  DeviceProfile profile_;
  // Single-model mode owns its registry; multi-tenant mode points at the
  // caller's.
  std::unique_ptr<ModelRegistry> owned_registry_;
  ModelRegistry* registry_ = nullptr;
  std::string default_model_;
  // One entry per scheduler shard (producers -> former -> workers).
  // unique_ptr: Shard holds queues with const members and a thread, so the
  // vector needs stable, non-movable storage.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<WorkerStats> worker_stats_;
  mutable std::mutex stats_mutex_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::vector<std::thread> workers_;
};

}  // namespace memcom
