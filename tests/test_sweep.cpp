#include "repro/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

namespace memcom {
namespace {

DatasetSpec micro_spec() {
  DatasetSpec s;
  s.name = "micro";
  s.items = 120;
  s.output_vocab = 20;
  s.train_samples = 500;
  s.eval_samples = 120;
  s.seq_len = 10;
  s.affinity = 6.0;
  s.latent_dim = 8;
  return s;
}

TEST(KnobLadder, HashTechniquesFollowPaperDivisors) {
  const std::vector<Index> ladder =
      knob_ladder(TechniqueKind::kMemcom, 1000, 64, 3);
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0], 500);   // vocab/2
  EXPECT_EQ(ladder[1], 125);   // vocab/8
  EXPECT_EQ(ladder[2], 31);    // vocab/32
}

TEST(KnobLadder, ClampsToMinimumEight) {
  const std::vector<Index> ladder =
      knob_ladder(TechniqueKind::kNaiveHash, 20, 64, 4);
  for (const Index knob : ladder) {
    EXPECT_GE(knob, 8);
  }
}

TEST(KnobLadder, FactorizedAndReduceDimHalveDimensions) {
  const std::vector<Index> fact =
      knob_ladder(TechniqueKind::kFactorized, 1000, 64, 4);
  EXPECT_EQ(fact, (std::vector<Index>{32, 16, 8, 4}));
  const std::vector<Index> reduce =
      knob_ladder(TechniqueKind::kReduceDim, 1000, 16, 10);
  EXPECT_EQ(reduce, (std::vector<Index>{8, 4, 2}));  // stops at 2
}

TEST(KnobLadder, DeduplicatesCollapsedRungs) {
  const std::vector<Index> ladder =
      knob_ladder(TechniqueKind::kMemcom, 30, 64, 5);
  std::vector<Index> sorted = ladder;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ModelParamCount, MatchesConstructedModel) {
  EmbeddingConfig emb = {TechniqueKind::kMemcom, 500, 32, 50};
  const Index count = model_param_count(emb, ModelArch::kRanking, 40);
  ModelConfig config;
  config.embedding = emb;
  config.arch = ModelArch::kRanking;
  config.output_vocab = 40;
  RecModel model(config);
  EXPECT_EQ(count, model.param_count());
}

TEST(Sweep, ProducesMonotoneCompressionAndSanePoints) {
  const SyntheticDataset data(micro_spec(), 31);
  TrainConfig train;
  train.epochs = 3;
  train.batch_size = 32;
  const SweepResult result = run_compression_sweep(
      data, ModelArch::kClassification,
      {TechniqueKind::kMemcom, TechniqueKind::kNaiveHash}, train,
      /*embed_dim=*/16, /*ladder_levels=*/2);

  EXPECT_EQ(result.dataset, "micro");
  EXPECT_GT(result.baseline_metric, 0.0);
  EXPECT_GT(result.baseline_params, 0);
  ASSERT_EQ(result.series.size(), 2u);
  for (const TechniqueSeries& series : result.series) {
    ASSERT_FALSE(series.points.empty());
    double prev_ratio = 0.0;
    for (const SweepPoint& point : series.points) {
      EXPECT_GT(point.compression_ratio, 1.0)
          << technique_name(series.kind);
      EXPECT_GT(point.compression_ratio, prev_ratio);  // ladder shrinks knob
      prev_ratio = point.compression_ratio;
      EXPECT_GE(point.metric, 0.0);
      EXPECT_LE(point.metric, 1.0);
      if (result.baseline_metric > 0.0) {
        EXPECT_NEAR(point.relative_loss_pct,
                    100.0 * (result.baseline_metric - point.metric) /
                        result.baseline_metric,
                    1e-9);
      }
    }
  }
}

TEST(Sweep, MemcomCompressesMoreThanFactorizedAtSameLadder) {
  // MEmCom removes the v x e table entirely; factorized keeps v x h.
  EmbeddingConfig memcom = {TechniqueKind::kMemcom, 2000, 64, 125};
  EmbeddingConfig fact = {TechniqueKind::kFactorized, 2000, 64, 32};
  EXPECT_LT(embedding_param_formula(memcom), embedding_param_formula(fact));
}

TEST(Sweep, PrinterEmitsEveryPoint) {
  const SyntheticDataset data(micro_spec(), 32);
  TrainConfig train;
  train.epochs = 1;
  const SweepResult result =
      run_compression_sweep(data, ModelArch::kClassification,
                            {TechniqueKind::kMemcom}, train, 16, 2);
  std::ostringstream os;
  print_sweep(result, "accuracy", os);
  const std::string text = os.str();
  EXPECT_NE(text.find("memcom"), std::string::npos);
  EXPECT_NE(text.find("baseline"), std::string::npos);
  EXPECT_NE(text.find("micro"), std::string::npos);
}

}  // namespace
}  // namespace memcom
