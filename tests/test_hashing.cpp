#include "embedding/hashing.h"

#include <gtest/gtest.h>

#include <cmath>

namespace memcom {
namespace {

TEST(ModHash, BasicProperties) {
  EXPECT_EQ(mod_hash(0, 10), 0);
  EXPECT_EQ(mod_hash(7, 10), 7);
  EXPECT_EQ(mod_hash(17, 10), 7);
  for (std::int64_t id = 0; id < 100; ++id) {
    const Index h = mod_hash(id, 13);
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 13);
  }
}

TEST(MixedHash, InRangeAndDifferentFromMod) {
  Index differs = 0;
  for (std::int64_t id = 0; id < 200; ++id) {
    const Index h = mixed_hash(id, 13);
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 13);
    if (h != mod_hash(id, 13)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 150);  // independent-looking second hash
}

TEST(MixedHash, SaltChangesMapping) {
  Index differs = 0;
  for (std::int64_t id = 0; id < 100; ++id) {
    if (mixed_hash(id, 64, 1) != mixed_hash(id, 64, 2)) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 80);
}

TEST(SignHash, BalancedAndDeterministic) {
  Index positives = 0;
  for (std::int64_t id = 0; id < 10000; ++id) {
    const float s = sign_hash(id);
    EXPECT_TRUE(s == 1.0f || s == -1.0f);
    EXPECT_EQ(s, sign_hash(id));
    positives += s > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(positives) / 10000.0, 0.5, 0.02);
}

TEST(CollisionRate, PaperFormulaSection4) {
  // §4: naive hashing collision rate = v/m - 1 + (1 - 1/m)^v.
  const double rate = expected_collision_rate(100000, 10000);
  EXPECT_NEAR(rate, 100000.0 / 10000.0 - 1.0 +
                        std::pow(1.0 - 1.0 / 10000.0, 100000.0),
              1e-9);
  EXPECT_GT(rate, 9.0 - 1.0);  // ≈ 9.0000454
}

TEST(CollisionRate, DoubleHashingQuadraticallyBetter) {
  const double naive = expected_collision_rate(100000, 1000);
  const double dbl = expected_double_hash_collision_rate(100000, 1000);
  EXPECT_GT(naive, 90.0);
  EXPECT_LT(dbl, 1.0);  // v/m^2 = 0.1 regime
}

TEST(CollisionRate, VanishesWhenBucketsDominateVocab) {
  // With m >> v almost nothing collides.
  EXPECT_LT(expected_collision_rate(100, 100000), 0.001);
}

TEST(CollisionRate, EmpiricalMatchesAnalyticOccupancy) {
  // The analytic formula counts expected collisions per bucket; compare the
  // derived expected-occupied count with the mod-hash empirical count. For
  // sequential ids mod m fills buckets as evenly as possible, so we check
  // the analytic value against a uniform random assignment instead via the
  // empirical fraction bound: with v >> m both approach "everything
  // collides".
  const double fraction = empirical_collision_fraction(10000, 100, false);
  EXPECT_GT(fraction, 0.999);
  const double roomy = empirical_collision_fraction(50, 4096, false);
  EXPECT_LT(roomy, 0.05);
}

TEST(CollisionRate, PairHashReducesEmpiricalCollisions) {
  const double single = empirical_collision_fraction(3000, 60, false);
  const double pair = empirical_collision_fraction(3000, 60, true);
  EXPECT_LT(pair, single);
  EXPECT_GT(single, 0.95);
  EXPECT_LT(pair, 0.85);
}

TEST(CollisionRate, InvalidArgumentsThrow) {
  EXPECT_THROW(expected_collision_rate(0, 10), std::runtime_error);
  EXPECT_THROW(expected_collision_rate(10, 0), std::runtime_error);
  EXPECT_THROW(empirical_collision_fraction(1, 10), std::runtime_error);
}

}  // namespace
}  // namespace memcom
