// ServingHarness tests: threaded serving over one shared MmapModel must
// produce bit-identical logits to sequential single-engine runs, and the
// report (QPS, percentiles, request counts) must be internally consistent.
#include "ondevice/serving.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "repro/model.h"
#include "test_util.h"

namespace memcom {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    auto p = std::filesystem::temp_directory_path() /
             ("memcom_serving_" + tag + ".mcm");
    paths_.push_back(p);
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : paths_) {
      std::filesystem::remove(p);
    }
  }

  std::string export_model(TechniqueKind kind, ModelArch arch,
                           const std::string& tag) {
    ModelConfig config;
    config.embedding.kind = kind;
    config.embedding.vocab = 200;
    config.embedding.embed_dim = 16;
    config.embedding.knob =
        kind == TechniqueKind::kFactorized ? 8 : 32;
    config.arch = arch;
    config.output_vocab = 24;
    config.seed = 4321;
    RecModel model(config);
    const std::string path = temp_path(tag);
    model.export_mcm(path);
    return path;
  }

  std::vector<std::filesystem::path> paths_;
};

std::vector<std::vector<std::int32_t>> make_requests(int count) {
  std::vector<std::vector<std::int32_t>> requests;
  Rng rng(5);
  for (int i = 0; i < count; ++i) {
    std::vector<std::int32_t> history(8, 0);
    const Index real = 2 + static_cast<Index>(rng.uniform_index(6));
    for (Index t = 0; t < real; ++t) {
      history[static_cast<std::size_t>(t)] =
          static_cast<std::int32_t>(1 + rng.uniform_index(199));
    }
    requests.push_back(std::move(history));
  }
  return requests;
}

TEST_F(ServingTest, ThreadedHarnessMatchesSequentialEngineBitExact) {
  for (const TechniqueKind kind :
       {TechniqueKind::kMemcom, TechniqueKind::kQrConcat,
        TechniqueKind::kWeinberger}) {
    const std::string path = export_model(
        kind, ModelArch::kClassification,
        "parity_" + std::string(technique_name(kind)));
    const MmapModel mapped(path);
    const auto requests = make_requests(24);

    InferenceEngine sequential(mapped, tflite_profile());
    ServingHarness harness(mapped, tflite_profile(), 4);
    Tensor served;
    const ServingReport report = harness.serve(requests, 1, &served);
    ASSERT_EQ(report.requests, 24u);
    ASSERT_EQ(served.dim(0), 24);
    for (std::size_t r = 0; r < requests.size(); ++r) {
      const Tensor expected = sequential.run(requests[r]).logits;
      for (Index c = 0; c < expected.numel(); ++c) {
        EXPECT_EQ(served.at2(static_cast<Index>(r), c), expected[c])
            << technique_name(kind) << " request " << r << " logit " << c;
      }
    }
  }
}

TEST_F(ServingTest, SingleThreadHarnessMatchesToo) {
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kRanking, "single");
  const MmapModel mapped(path);
  const auto requests = make_requests(10);
  InferenceEngine sequential(mapped, coreml_profile("all"));
  ServingHarness harness(mapped, coreml_profile("all"), 1);
  Tensor served;
  harness.serve(requests, 1, &served);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const Tensor expected = sequential.run(requests[r]).logits;
    for (Index c = 0; c < expected.numel(); ++c) {
      EXPECT_EQ(served.at2(static_cast<Index>(r), c), expected[c]);
    }
  }
}

TEST_F(ServingTest, RepeatedDrainsKeepLogitsStable) {
  const std::string path =
      export_model(TechniqueKind::kNaiveHash, ModelArch::kClassification,
                   "repeat");
  const MmapModel mapped(path);
  const auto requests = make_requests(6);
  ServingHarness harness(mapped, tflite_profile(), 3);
  Tensor first, second;
  harness.serve(requests, 4, &first);
  const ServingReport report = harness.serve(requests, 4, &second);
  EXPECT_EQ(report.requests, 24u);  // 6 unique x 4 repeats
  EXPECT_TENSOR_NEAR(first, second, 0.0f);
}

TEST_F(ServingTest, ReportIsInternallyConsistent) {
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kClassification,
                   "report");
  const MmapModel mapped(path);
  const auto requests = make_requests(16);
  ServingHarness harness(mapped, tflite_profile(), 2);
  const ServingReport report = harness.serve(requests, 3);
  EXPECT_EQ(report.threads, 2);
  EXPECT_EQ(report.requests, 48u);
  EXPECT_EQ(report.latency.runs, 48);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_LE(report.latency.min_ms, report.latency.p50_ms);
  EXPECT_LE(report.latency.p50_ms, report.latency.p95_ms);
  EXPECT_LE(report.latency.p95_ms, report.latency.p99_ms);
  EXPECT_LE(report.latency.p99_ms, report.latency.max_ms);
  // The whole drain can't be faster than its slowest request.
  EXPECT_GE(report.wall_ms, report.latency.max_ms);
  EXPECT_GT(harness.max_resident_megabytes(), 0.0);
}

TEST_F(ServingTest, WorkersMeterIndependently) {
  // Each worker owns a private meter over the shared mapping; a worker that
  // served at least one request reports a plausible resident footprint.
  const std::string path =
      export_model(TechniqueKind::kMemcom, ModelArch::kRanking, "meters");
  const MmapModel mapped(path);
  const auto requests = make_requests(32);
  ServingHarness harness(mapped, tflite_profile(), 2);
  harness.serve(requests, 2);
  Index served_by_someone = 0;
  for (int w = 0; w < harness.threads(); ++w) {
    served_by_someone += harness.engine(w).meter().touched_pages();
  }
  EXPECT_GT(served_by_someone, 0);
}

}  // namespace
}  // namespace memcom
