// mcm_bench — latency + serving-throughput benchmark for an exported .mcm
// model, driven through the zero-allocation inference fast path.
//
//   ./mcm_bench model.mcm [--runs 1000] [--threads 4] [--requests 256]
//               [--repeat 8] [--seq-len 32] [--profile coreml|tflite]
//               [--async] [--max-batch 8] [--max-delay-us 200]
//               [--queue-cap 256] [--cache-kb 0] [--arrival-qps 0]
//
// Prints the single-input latency distribution (mean/min/p50/p95/p99/max,
// the paper's §5.3 metric) and the multi-threaded serving report (QPS,
// per-request wall latency percentiles). With --async it also drives the
// open-loop micro-batching pipeline and reports the queue-wait vs
// service-time split, modeled-device QPS, and the hot-row cache hit rate.
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/rng.h"
#include "core/table.h"
#include "ondevice/serving.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: mcm_bench <model.mcm> [--runs N] [--threads N] "
                 "[--requests N] [--repeat N] [--seq-len L] "
                 "[--profile coreml|tflite] [--async] [--max-batch N] "
                 "[--max-delay-us U] [--queue-cap N] [--cache-kb K] "
                 "[--arrival-qps Q]\n";
    return 2;
  }
  const std::string path = flags.positional()[0];
  const int runs = static_cast<int>(flags.get_int("runs", 1000));
  const int threads = static_cast<int>(flags.get_int("threads", 4));
  const int request_count = static_cast<int>(flags.get_int("requests", 256));
  const int repeat = static_cast<int>(flags.get_int("repeat", 8));
  const Index seq_len = flags.get_int("seq-len", 32);
  const bool async = flags.get_bool("async", false);
  const Index max_batch = flags.get_int("max-batch", 8);
  const double max_delay_us = flags.get_double("max-delay-us", 200.0);
  const Index queue_cap = flags.get_int("queue-cap", 256);
  const Index cache_kb = flags.get_int("cache-kb", 0);
  const double arrival_qps = flags.get_double("arrival-qps", 0.0);
  if (runs < 1 || threads < 1 || request_count < 1 || repeat < 1 ||
      seq_len < 1) {
    std::cerr << "mcm_bench: --runs/--threads/--requests/--repeat/--seq-len "
                 "must all be positive\n";
    return 2;
  }
  if (max_batch < 1 || queue_cap < 1 || max_delay_us < 0.0 || cache_kb < 0 ||
      arrival_qps < 0.0) {
    std::cerr << "mcm_bench: --max-batch/--queue-cap must be positive; "
                 "--max-delay-us/--cache-kb/--arrival-qps non-negative\n";
    return 2;
  }
  const std::string profile_name = flags.get_string("profile", "tflite");
  if (profile_name != "tflite" && profile_name != "coreml") {
    std::cerr << "mcm_bench: unknown --profile " << profile_name
              << " (expected coreml|tflite)\n";
    return 2;
  }
  const DeviceProfile profile =
      profile_name == "tflite" ? tflite_profile() : coreml_profile("all");

  const MmapModel model(path);
  const Index vocab = model.metadata_int("vocab");
  std::cout << "model: " << path << "  technique="
            << model.metadata_value("technique")
            << " arch=" << model.metadata_value("arch") << " vocab=" << vocab
            << " e=" << model.metadata_int("embed_dim")
            << "  profile=" << profile.label() << "\n\n";

  Rng rng(17);
  std::vector<std::vector<std::int32_t>> requests;
  requests.reserve(static_cast<std::size_t>(request_count));
  for (int i = 0; i < request_count; ++i) {
    std::vector<std::int32_t> history(static_cast<std::size_t>(seq_len));
    for (auto& id : history) {
      id = static_cast<std::int32_t>(1 + rng.uniform_index(vocab - 1));
    }
    requests.push_back(std::move(history));
  }

  // Single-input latency (the paper's Table 3 metric).
  InferenceEngine engine(model, profile);
  const LatencyStats stats = engine.benchmark(requests.front(), runs);
  TextTable latency({"runs", "mean ms", "min ms", "p50 ms", "p95 ms",
                     "p99 ms", "max ms", "resident MB"});
  latency.add_row({std::to_string(stats.runs), format_float(stats.mean_ms, 4),
                   format_float(stats.min_ms, 4),
                   format_float(stats.p50_ms, 4),
                   format_float(stats.p95_ms, 4),
                   format_float(stats.p99_ms, 4),
                   format_float(stats.max_ms, 4),
                   format_float(engine.resident_megabytes(), 2)});
  std::cout << "single-input latency (" << runs << " runs):\n"
            << latency.to_string() << "\n";

  // Threaded serving throughput.
  TextTable serving({"threads", "requests", "qps", "p50 ms", "p95 ms",
                     "p99 ms", "wall ms"});
  std::vector<int> thread_counts = {1};
  if (threads > 1) {
    thread_counts.push_back(threads);
  }
  for (const int t : thread_counts) {
    ServingHarness harness(model, profile, t);
    harness.serve(requests, 1);  // warm-up
    const ServingReport report = harness.serve(requests, repeat);
    serving.add_row({std::to_string(report.threads),
                     std::to_string(report.requests),
                     format_float(report.qps, 0),
                     format_float(report.latency.p50_ms, 4),
                     format_float(report.latency.p95_ms, 4),
                     format_float(report.latency.p99_ms, 4),
                     format_float(report.wall_ms, 1)});
  }
  std::cout << "serving throughput:\n" << serving.to_string();

  if (async) {
    AsyncServerConfig config;
    config.threads = threads;
    config.max_batch = max_batch;
    config.max_delay_us = max_delay_us;
    config.queue_capacity = static_cast<std::size_t>(queue_cap);
    config.cache_budget_bytes = static_cast<std::size_t>(cache_kb) * 1024;
    AsyncServer server(model, profile, config);
    server.serve(requests, 1);  // warm-up (also warms the row cache)
    const ServingReport report = server.serve(requests, repeat, arrival_qps);
    TextTable table({"threads", "batch<=", "offered", "qps", "modeled qps",
                     "p50 ms", "wait p50 ms", "wait p95 ms", "svc p50 ms",
                     "mean batch", "hit%"});
    table.add_row(
        {std::to_string(report.threads), std::to_string(max_batch),
         arrival_qps > 0 ? format_float(arrival_qps, 0) : "max",
         format_float(report.qps, 0), format_float(report.modeled_qps, 0),
         format_float(report.latency.p50_ms, 4),
         format_float(report.queue_wait.p50_ms, 4),
         format_float(report.queue_wait.p95_ms, 4),
         format_float(report.service.p50_ms, 4),
         format_float(report.mean_batch, 1),
         report.cache.enabled
             ? format_float(report.cache.hit_rate() * 100.0, 1)
             : "off"});
    std::cout << "\nasync micro-batching pipeline:\n" << table.to_string();
  }
  return 0;
}
