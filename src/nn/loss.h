// Loss functions.
//
// SoftmaxCrossEntropy fuses softmax with the negative log-likelihood so both
// the loss value and the gradient are numerically stable. RankNetLoss is the
// pairwise logistic loss of Burges et al. (2005), used by the paper's
// pairwise Arcade ranking experiment (Figure 3).
#pragma once

#include <vector>

#include "core/tensor.h"

namespace memcom {

class SoftmaxCrossEntropy {
 public:
  // logits: [B, C]; labels: B class indices. Returns mean NLL over the
  // batch.
  float forward(const Tensor& logits, const std::vector<Index>& labels);

  // d(meanNLL)/dlogits, shape [B, C] (already includes the 1/B factor).
  Tensor backward() const;

  // Softmax probabilities from the last forward (used for ranking scores).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<Index> labels_;
};

class RankNetLoss {
 public:
  // scores_preferred / scores_other: [B] scores where element i of
  // `scores_preferred` should outrank element i of `scores_other`.
  // Loss = mean_i log(1 + exp(-(s_p - s_o))).
  float forward(const Tensor& scores_preferred, const Tensor& scores_other);

  // Gradients w.r.t. both score vectors (each [B], includes the 1/B factor).
  // grad_other == -grad_preferred.
  Tensor backward_preferred() const;
  Tensor backward_other() const;

  // Fraction of pairs currently ordered correctly (s_p > s_o).
  float pairwise_accuracy() const;

 private:
  Tensor sigmoids_;  // sigmoid(-(s_p - s_o)) per pair
  Tensor diffs_;
};

}  // namespace memcom
