// Semantics of each compression technique: the exact composition formulas
// from the paper's Algorithms 1-3, collision structure, and the unique-
// vector property the paper's Table in §4 claims per technique.
#include <gtest/gtest.h>

#include <set>

#include "embedding/factorized.h"
#include "embedding/hash_embeddings.h"
#include "embedding/hashed_nets.h"
#include "embedding/hashing.h"
#include "embedding/memcom.h"
#include "embedding/mixed_dim.h"
#include "embedding/qr.h"
#include "embedding/truncate_rare.h"
#include "embedding/tt_rec.h"

namespace memcom {
namespace {

IdBatch single(std::int32_t id) {
  IdBatch b(1, 1);
  b.id(0, 0) = id;
  return b;
}

TEST(Memcom, Algorithm2FormulaExact) {
  Rng rng(91);
  MemcomEmbedding emb(20, 4, 6, rng, /*with_bias=*/false);
  // Set recognizable values.
  emb.shared_table().value = Tensor::from_vector(
      {4, 6}, std::vector<float>(24, 0.0f));
  for (Index j = 0; j < 4; ++j) {
    for (Index c = 0; c < 6; ++c) {
      emb.shared_table().value.at2(j, c) = static_cast<float>(10 * j + c);
    }
  }
  emb.multiplier().value.at(13) = 2.5f;  // id 13 -> bucket 13 % 4 = 1
  const Tensor out = emb.forward(single(13), false);
  for (Index c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c), (10.0f + static_cast<float>(c)) * 2.5f);
  }
}

TEST(Memcom, Algorithm3AddsBroadcastBias) {
  Rng rng(92);
  MemcomEmbedding emb(20, 4, 6, rng, /*with_bias=*/true);
  emb.multiplier().value.at(9) = 3.0f;
  emb.bias().value.at(9) = -1.25f;
  const Tensor no_bias_part = emb.shared_table().value;
  const Tensor out = emb.forward(single(9), false);
  for (Index c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c),
                    no_bias_part.at2(9 % 4, c) * 3.0f - 1.25f);
  }
}

TEST(Memcom, FreshModelBehavesLikeNaiveHashing) {
  // V initialized to 1 and W to 0 => emb(i) == U[i mod m].
  Rng rng(93);
  MemcomEmbedding emb(20, 4, 6, rng, /*with_bias=*/true);
  for (std::int32_t id = 0; id < 20; ++id) {
    const Tensor out = emb.forward(single(id), false);
    for (Index c = 0; c < 6; ++c) {
      EXPECT_FLOAT_EQ(out.at3(0, 0, c),
                      emb.shared_table().value.at2(id % 4, c));
    }
  }
}

TEST(Memcom, DistinctMultipliersSeparateBucketCollisions) {
  Rng rng(94);
  MemcomEmbedding emb(10, 2, 4, rng, false);
  // ids 3 and 5 share bucket 1 (3%2 == 5%2 == 1).
  emb.multiplier().value.at(3) = 1.5f;
  emb.multiplier().value.at(5) = -0.5f;
  const Tensor e3 = emb.forward(single(3), false);
  const Tensor e5 = emb.forward(single(5), false);
  bool any_difference = false;
  for (Index c = 0; c < 4; ++c) {
    if (e3.at3(0, 0, c) != e5.at3(0, 0, c)) {
      any_difference = true;
    }
    EXPECT_FLOAT_EQ(e3.at3(0, 0, c) * (-0.5f / 1.5f), e5.at3(0, 0, c));
  }
  EXPECT_TRUE(any_difference);
}

TEST(Memcom, ParamCountsForBothAlgorithms) {
  Rng rng(95);
  MemcomEmbedding no_bias(100, 10, 8, rng, false);
  EXPECT_EQ(no_bias.param_count(), 10 * 8 + 100);
  MemcomEmbedding with_bias(100, 10, 8, rng, true);
  EXPECT_EQ(with_bias.param_count(), 10 * 8 + 200);
}

TEST(Memcom, HashSizeBoundsChecked) {
  Rng rng(96);
  EXPECT_THROW(MemcomEmbedding(10, 0, 4, rng, false), std::runtime_error);
  EXPECT_THROW(MemcomEmbedding(10, 11, 4, rng, false), std::runtime_error);
  EXPECT_NO_THROW(MemcomEmbedding(10, 10, 4, rng, false));
}

TEST(Memcom, MultiplierGradIsDotProductOfUpstreamAndSharedRow) {
  Rng rng(97);
  MemcomEmbedding emb(10, 5, 3, rng, false);
  const IdBatch input = single(7);
  emb.forward(input, true);
  Tensor grad({1, 1, 3});
  grad[0] = 1.0f;
  grad[1] = 2.0f;
  grad[2] = 3.0f;
  emb.backward(grad);
  float expected = 0.0f;
  for (Index c = 0; c < 3; ++c) {
    expected += grad[c] * emb.shared_table().value.at2(7 % 5, c);
  }
  EXPECT_NEAR(emb.multiplier().grad.at2(7, 0), expected, 1e-5f);
}

TEST(Qr, Algorithm1MultiplyFormulaExact) {
  Rng rng(98);
  QrEmbedding emb(20, 4, 6, rng, QrComposition::kMultiply);
  const std::int32_t id = 14;  // j = 14 % 4 = 2, k = 14 / 4 = 3
  const Tensor out = emb.forward(single(id), false);
  ParamRefs params = emb.params();
  const Tensor& remainder = params[0]->value;
  const Tensor& quotient = params[1]->value;
  for (Index c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c),
                    remainder.at2(2, c) * quotient.at2(3, c));
  }
}

TEST(Qr, ConcatVariantLayout) {
  Rng rng(99);
  QrEmbedding emb(20, 4, 6, rng, QrComposition::kConcat);
  EXPECT_EQ(emb.output_dim(), 6);
  const std::int32_t id = 9;  // j = 1, k = 2
  const Tensor out = emb.forward(single(id), false);
  ParamRefs params = emb.params();
  for (Index c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c), params[0]->value.at2(1, c));
    EXPECT_FLOAT_EQ(out.at3(0, 0, 3 + c), params[1]->value.at2(2, c));
  }
}

TEST(Qr, UniqueJKPairPerId) {
  // The quotient-remainder pair (i mod m, i div m) is unique per id < v.
  const Index m = 7;
  const Index v = 50;
  std::set<std::pair<Index, Index>> seen;
  for (Index i = 0; i < v; ++i) {
    seen.emplace(i % m, i / m);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(v));
}

TEST(Qr, QuotientTableSizedCeilVOverM) {
  Rng rng(100);
  QrEmbedding emb(21, 4, 6, rng, QrComposition::kMultiply);
  EXPECT_EQ(emb.quotient_rows(), 6);  // ceil(21/4)
  EXPECT_EQ(emb.param_count(), 4 * 6 + 6 * 6);
}

TEST(Qr, MultiplicativeQuotientInitNearOne) {
  Rng rng(101);
  QrEmbedding emb(100, 10, 8, rng, QrComposition::kMultiply);
  const Tensor& quotient = emb.params()[1]->value;
  EXPECT_NEAR(quotient.mean(), 1.0f, 0.05f);
}

TEST(NaiveHash, CollidingIdsShareEmbeddingExactly) {
  Rng rng(102);
  NaiveHashEmbedding emb(20, 4, 6, rng);
  const Tensor a = emb.forward(single(3), false);
  const Tensor b = emb.forward(single(7), false);   // 7 % 4 == 3 % 4
  const Tensor c = emb.forward(single(11), false);  // same bucket again
  EXPECT_TRUE(a.equals(b));
  EXPECT_TRUE(a.equals(c));
  const Tensor d = emb.forward(single(4), false);  // different bucket
  EXPECT_FALSE(a.equals(d));
}

TEST(DoubleHash, ConcatHalvesFromTwoTables) {
  Rng rng(103);
  DoubleHashEmbedding emb(50, 8, 6, rng);
  EXPECT_EQ(emb.output_dim(), 6);
  EXPECT_EQ(emb.param_count(), 2 * 8 * 3);
  const std::int32_t id = 13;
  const Tensor out = emb.forward(single(id), false);
  ParamRefs params = emb.params();
  const Index ja = mod_hash(id, 8);
  const Index jb = mixed_hash(id, 8);
  for (Index c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c), params[0]->value.at2(ja, c));
    EXPECT_FLOAT_EQ(out.at3(0, 0, 3 + c), params[1]->value.at2(jb, c));
  }
}

TEST(DoubleHash, FewerFullCollisionsThanNaive) {
  // Count ids that are *fully* indistinguishable under each scheme.
  const Index v = 2000;
  const Index m = 40;
  const double naive = empirical_collision_fraction(v, m, false);
  const double dbl = empirical_collision_fraction(v, m, true);
  EXPECT_GT(naive, 0.9);  // nearly everything collides at v/m = 50
  EXPECT_LT(dbl, naive);
}

TEST(DoubleHash, OddEmbedDimRejected) {
  Rng rng(104);
  EXPECT_THROW(DoubleHashEmbedding(50, 8, 7, rng), std::runtime_error);
}

TEST(Weinberger, SignHashFlipsRows) {
  Rng rng(105);
  WeinbergerEmbedding emb(100, 10, 4, rng);
  // Find two ids in the same bucket with opposite signs.
  std::int32_t pos_id = -1;
  std::int32_t neg_id = -1;
  for (std::int32_t id = 0; id < 100; ++id) {
    if (mod_hash(id, 10) != 3) {
      continue;
    }
    if (sign_hash(id) > 0 && pos_id < 0) {
      pos_id = id;
    }
    if (sign_hash(id) < 0 && neg_id < 0) {
      neg_id = id;
    }
  }
  ASSERT_GE(pos_id, 0);
  ASSERT_GE(neg_id, 0);
  const Tensor p = emb.forward(single(pos_id), false);
  const Tensor n = emb.forward(single(neg_id), false);
  for (Index c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(p.at3(0, 0, c), -n.at3(0, 0, c));
  }
}

TEST(TruncateRare, PopularKeptRareShareOov) {
  Rng rng(106);
  TruncateRareEmbedding emb(100, 10, 4, rng);
  EXPECT_EQ(emb.param_count(), 12 * 4);  // pad + 10 kept + OOV
  const Tensor kept_a = emb.forward(single(3), false);
  const Tensor kept_b = emb.forward(single(10), false);
  EXPECT_FALSE(kept_a.equals(kept_b));
  const Tensor rare_a = emb.forward(single(55), false);
  const Tensor rare_b = emb.forward(single(99), false);
  EXPECT_TRUE(rare_a.equals(rare_b));  // both mapped to the OOV row
  EXPECT_FALSE(rare_a.equals(kept_a));
}

TEST(TruncateRare, BoundaryIds) {
  Rng rng(107);
  TruncateRareEmbedding emb(100, 10, 4, rng);
  const Tensor last_kept = emb.forward(single(10), false);
  const Tensor first_rare = emb.forward(single(11), false);
  EXPECT_FALSE(last_kept.equals(first_rare));
}

TEST(Factorized, RankDecompositionExact) {
  Rng rng(108);
  FactorizedEmbedding emb(30, 3, 8, rng);
  EXPECT_EQ(emb.param_count(), 30 * 3 + 3 * 8);
  const std::int32_t id = 17;
  const Tensor out = emb.forward(single(id), false);
  ParamRefs params = emb.params();
  const Tensor& factors = params[0]->value;
  const Tensor& projection = params[1]->value;
  for (Index c = 0; c < 8; ++c) {
    float expected = 0.0f;
    for (Index k = 0; k < 3; ++k) {
      expected += factors.at2(id, k) * projection.at2(k, c);
    }
    EXPECT_NEAR(out.at3(0, 0, c), expected, 1e-5f);
  }
}

TEST(Factorized, UniqueEmbeddingsAlmostSurely) {
  Rng rng(109);
  FactorizedEmbedding emb(40, 4, 8, rng);
  std::set<std::vector<float>> seen;
  for (std::int32_t id = 0; id < 40; ++id) {
    const Tensor e = emb.lookup_single(id);
    seen.insert(std::vector<float>(e.data(), e.data() + e.numel()));
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(ReducedDim, IsNarrowFullTable) {
  Rng rng(110);
  ReducedDimEmbedding emb(50, 4, rng);
  EXPECT_EQ(emb.output_dim(), 4);
  EXPECT_EQ(emb.param_count(), 200);
  EXPECT_EQ(emb.name(), "reduce_dim");
}

TEST(HashedNets, VirtualWeightsAliasBuckets) {
  Rng rng(111);
  HashedNetsEmbedding emb(50, 16, 8, rng);
  EXPECT_EQ(emb.param_count(), 16);
  // Forward values must come from the bucket vector.
  const Tensor out = emb.forward(single(23), false);
  const Tensor& buckets = emb.params()[0]->value;
  std::set<float> bucket_values(buckets.data(),
                                buckets.data() + buckets.numel());
  for (Index c = 0; c < 8; ++c) {
    EXPECT_TRUE(bucket_values.count(out.at3(0, 0, c)) > 0);
    EXPECT_EQ(emb.bucket_of(23, c), emb.bucket_of(23, c));  // stable
  }
}

TEST(HashedNets, GradientAccumulatesThroughAliases) {
  Rng rng(112);
  HashedNetsEmbedding emb(10, 2, 8, rng);  // 2 buckets: heavy aliasing
  emb.forward(single(5), true);
  emb.backward(Tensor::full({1, 1, 8}, 1.0f));
  // All 8 upstream units map to the 2 buckets: grads must sum to 8.
  EXPECT_FLOAT_EQ(emb.params()[0]->grad.sum(), 8.0f);
}


TEST(MixedDim, BlockLayoutAndWidths) {
  Rng rng(113);
  MixedDimEmbedding emb(100, 8, 16, rng);
  // Blocks: 8 ids @16, 32 ids @8, 60 ids @4 (capped by vocab).
  EXPECT_EQ(emb.block_count(), 3);
  EXPECT_EQ(emb.block_width(0), 16);
  EXPECT_EQ(emb.block_width(1), 8);
  EXPECT_EQ(emb.block_width(2), 4);
  EXPECT_EQ(emb.block_of(0), 0);
  EXPECT_EQ(emb.block_of(7), 0);
  EXPECT_EQ(emb.block_of(8), 1);
  EXPECT_EQ(emb.block_of(39), 1);
  EXPECT_EQ(emb.block_of(40), 2);
  EXPECT_EQ(emb.block_of(99), 2);
  EXPECT_EQ(emb.output_dim(), 16);
}

TEST(MixedDim, ParamFormulaMatchesStorage) {
  Rng rng(114);
  MixedDimEmbedding emb(100, 8, 16, rng);
  EXPECT_EQ(emb.param_count(),
            MixedDimEmbedding::param_formula(100, 8, 16));
  // 8*16 + (32*8 + 8*16) + (60*4 + 4*16)
  EXPECT_EQ(emb.param_count(), 128 + 256 + 128 + 240 + 64);
}

TEST(MixedDim, HeadBlockIsIdentityProjection) {
  Rng rng(115);
  MixedDimEmbedding emb(100, 8, 16, rng);
  IdBatch head(1, 1);
  head.id(0, 0) = 3;
  const Tensor out = emb.forward(head, false);
  // Head ids read their full-width row directly.
  const Tensor& table = emb.params()[0]->value;
  for (Index c = 0; c < 16; ++c) {
    EXPECT_FLOAT_EQ(out.at3(0, 0, c), table.at2(3, c));
  }
}

TEST(MixedDim, TailBlockProjectsToFullWidth) {
  Rng rng(116);
  MixedDimEmbedding emb(100, 8, 16, rng);
  const Tensor tail = emb.lookup_single(99);
  EXPECT_EQ(tail.shape(), (Shape{16}));
  // Tail embeddings live in a rank<=4 subspace, so they are generically
  // nonzero but constrained; check simple finiteness + nonzero.
  EXPECT_GT(tail.l2_norm(), 0.0f);
}

TEST(MixedDim, TailNarrowerThanHeadInParams) {
  // More vocabulary in narrow blocks => fewer parameters.
  EXPECT_LT(MixedDimEmbedding::param_formula(1000, 16, 32),
            MixedDimEmbedding::param_formula(1000, 512, 32));
}

TEST(TtRec, FactorsCoverVocabAndDims) {
  Rng rng(117);
  TtRecEmbedding emb(100, 4, 16, rng);
  EXPECT_GE(emb.v1() * emb.v2(), 100);
  EXPECT_GE(emb.e1() * emb.e2(), 16);
  EXPECT_EQ(emb.output_dim(), emb.e1() * emb.e2());
  EXPECT_EQ(emb.rank(), 4);
}

TEST(TtRec, ProductFormulaExact) {
  Rng rng(118);
  TtRecEmbedding emb(100, 3, 16, rng);
  const std::int32_t id = 57;
  const Index i1 = id / emb.v2();
  const Index i2 = id % emb.v2();
  const Tensor out = emb.lookup_single(id);
  const Tensor& c1 = emb.params()[0]->value;  // [v1, e1*r]
  const Tensor& c2 = emb.params()[1]->value;  // [v2, r*e2]
  for (Index a = 0; a < emb.e1(); ++a) {
    for (Index b = 0; b < emb.e2(); ++b) {
      float expected = 0.0f;
      for (Index r = 0; r < emb.rank(); ++r) {
        expected += c1.at2(i1, a * emb.rank() + r) *
                    c2.at2(i2, r * emb.e2() + b);
      }
      EXPECT_NEAR(out[a * emb.e2() + b], expected, 1e-5f);
    }
  }
}

TEST(TtRec, ParamFormulaMatchesStorage) {
  Rng rng(119);
  TtRecEmbedding emb(100, 4, 16, rng);
  EXPECT_EQ(emb.param_count(), TtRecEmbedding::param_formula(100, 4, 16));
  // Far smaller than the full 100*16 table at rank 4? v1=v2=10, e1=e2=4:
  // 10*4*4 * 2 = 320 vs 1600.
  EXPECT_LT(emb.param_count(), 100 * 16 / 2);
}

TEST(TtRec, DistinctIdsGetDistinctEmbeddings) {
  Rng rng(120);
  TtRecEmbedding emb(50, 4, 16, rng);
  std::set<std::vector<float>> seen;
  for (std::int32_t id = 0; id < 50; ++id) {
    const Tensor e = emb.lookup_single(id);
    seen.insert(std::vector<float>(e.data(), e.data() + e.numel()));
  }
  EXPECT_EQ(seen.size(), 50u);
}

}  // namespace
}  // namespace memcom
