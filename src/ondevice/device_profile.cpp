#include "ondevice/device_profile.h"

#include "core/check.h"

namespace memcom {

DeviceProfile coreml_profile(const std::string& compute_unit) {
  check(compute_unit == "all" || compute_unit == "cpuOnly" ||
            compute_unit == "cpuAndGPU",
        "coreml compute unit must be all|cpuOnly|cpuAndGPU");
  DeviceProfile p;
  p.framework = "coreml";
  p.compute_unit = compute_unit;
  p.page_size = 16384;      // Apple Silicon page size
  p.readahead_pages = 1;
  p.runtime_overhead_bytes = 2 * 1024 * 1024;
  // Scheduling across ANE/GPU adds dispatch latency per op; Table 3 shows
  // cpuAndGPU slightly slower than cpuOnly for these tiny models.
  if (compute_unit == "all") {
    p.per_op_dispatch_us = 8.0;
  } else if (compute_unit == "cpuOnly") {
    p.per_op_dispatch_us = 6.0;
  } else {
    p.per_op_dispatch_us = 14.0;
  }
  p.onehot_slowdown = 1.0;  // CoreML fuses the one-hot matmul reasonably well
  return p;
}

DeviceProfile tflite_profile() {
  DeviceProfile p;
  p.framework = "tflite";
  p.compute_unit = "CPU";
  p.page_size = 4096;        // Linux/Android page size
  p.readahead_pages = 0;     // tuned for low footprint (§5.3)
  p.runtime_overhead_bytes = 768 * 1024;
  p.per_op_dispatch_us = 3.0;
  // The interpreter executes one_hot + matmul + reduce_sum un-fused; the
  // paper measures ~30 ms vs CoreML's ~1 ms on the same Weinberger model.
  p.onehot_slowdown = 24.0;
  return p;
}

std::vector<DeviceProfile> table3_profiles() {
  return {coreml_profile("all"), coreml_profile("cpuOnly"),
          coreml_profile("cpuAndGPU"), tflite_profile()};
}

}  // namespace memcom
