#include "core/rng.h"

#include <cmath>

namespace memcom {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. Guard u1 away from 0 so log() is finite.
  double u1 = next_double();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(radius * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(radius * std::cos(theta));
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless method, 64x64->128 bit.
  while (true) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * n;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
    // Rare slow path: reject to remove bias.
    const std::uint64_t threshold = (0ULL - n) % n;
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

Rng Rng::split(std::uint64_t stream) {
  const std::uint64_t base = engine_();
  return Rng(splitmix64(base ^ splitmix64(stream)));
}

}  // namespace memcom
