// mcm_inspect — print the contents of an exported .mcm on-device model:
// metadata, tensor directory (name / dtype / shape / quantization scale /
// blob offset / size), and summary statistics per tensor.
//
//   ./mcm_inspect model.mcm [--stats]
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "ondevice/format.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: mcm_inspect <model.mcm> [--stats]\n";
    return 2;
  }
  const std::string path = flags.positional()[0];
  const MmapModel model(path);

  std::cout << "file: " << path << " (" << model.file_size() << " bytes)\n";
  if (model.has_model_identity()) {
    std::cout << "model: " << model.model_name() << " (version "
              << model.model_version() << ")\n\n";
  } else {
    std::cout << "model: (legacy file — no name/version metadata)\n\n";
  }
  std::cout << "metadata:\n";
  for (const auto& [key, value] : model.metadata()) {
    std::cout << "  " << key << " = " << value << "\n";
  }

  TextTable table({"tensor", "dtype", "shape", "scale", "offset", "bytes"});
  std::uint64_t total_bytes = 0;
  for (const std::string& name : model.tensor_names()) {
    const TensorEntry& entry = model.entry(name);
    // Grouped dtypes print their group size inline ("i4g/32"): the group
    // size changes the payload layout, so it belongs in the dtype column.
    std::string dtype = dtype_name(entry.dtype);
    if (dtype_is_grouped(entry.dtype)) {
      dtype += "/" + std::to_string(entry.group_size);
    }
    table.add_row({name, dtype,
                   shape_to_string(entry.shape),
                   format_float(entry.scale, 6),
                   std::to_string(entry.offset),
                   std::to_string(entry.byte_size)});
    total_bytes += entry.byte_size;
  }
  std::cout << "\n" << table.to_string();
  std::cout << "total tensor payload: " << total_bytes << " bytes ("
            << format_float(static_cast<double>(total_bytes) / 1024.0 / 1024.0,
                            2)
            << " MB)\n";

  // Output-table summary: the dense head "out.weight" ([in, items], each
  // column one catalog item) is what session-based next-item serving scans
  // for its full-catalog top-k — surface its dims and compressed footprint.
  if (model.has_tensor("out.weight")) {
    const TensorEntry& head = model.entry("out.weight");
    if (head.shape.size() == 2) {
      std::cout << "output catalog (out.weight): " << head.shape[1]
                << " items x " << head.shape[0] << " dims, "
                << head.byte_size << " bytes compressed\n";
    }
  }

  if (flags.get_bool("stats", false)) {
    std::cout << "\nper-tensor statistics (dequantized):\n";
    TextTable stats({"tensor", "min", "max", "mean", "l2"});
    for (const std::string& name : model.tensor_names()) {
      const Tensor t = model.load_tensor(name);
      if (t.empty()) {
        continue;
      }
      stats.add_row({name, format_float(t.min(), 4), format_float(t.max(), 4),
                     format_float(t.mean(), 5), format_float(t.l2_norm(), 3)});
    }
    std::cout << stats.to_string();
  }
  return 0;
}
