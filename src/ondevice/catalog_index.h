// Clustered pruned top-k catalog scan — an inverted-file (IVF) index over
// the COMPRESSED item catalog.
//
// PR 8's session workload ranks a query vector against every compressed
// catalog row: O(items·dim) per request. This module makes that sweep a
// recall-controlled fraction: a deterministic k-means partitions the
// catalog into `clusters` cells, the query is first scored against the
// small f32 centroid table, and only the `nprobe` best cells' rows are
// streamed through the SAME KernelSet dot_span path the exact scan uses.
//
// Exactness contract (the differential anchor): every probed row's score
// is produced by the identical dot_span call the exact scan would make, so
// per-row scores are bit-identical; ranking uses the same topk_better
// strict total order, whose bounded-heap result is independent of offer
// order. Therefore `nprobe == num_clusters` — where every item is offered
// exactly once — is PROVABLY bit-identical to CatalogScorer::top_k, across
// kernel families and shard counts. Smaller nprobe trades recall for
// scanned bytes; it never changes a returned item's score.
//
// Determinism contract (what makes the index reproducible and the .mcm
// section stable): k-means runs from a fixed seed for a fixed iteration
// count, reads rows through the SCALAR reference dequantizer, iterates
// items in ascending id order, accumulates in double, resolves assignment
// ties to the LOWER cluster id, and keeps an empty cluster's previous
// centroid. Two builds from the same catalog + config are byte-identical.
//
// Persistence: serialize_catalog_index() emits the index as the optional
// .mcm v4 section (same self-validating shape as the v3 plan section —
// prefix magic/format/endianness/flags, 64-byte-aligned regions, trailing
// length-bound FNV-1a checksum). decode_catalog_index() NEVER throws for a
// bad section: any defect — truncation, checksum mismatch, hostile
// declared cluster count, non-permutation id table, identity/dim skew —
// comes back as kStale with a reason, and every consumer falls back to the
// exact full scan. Index-less files stay byte-identical v1–v3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.h"
#include "ondevice/format.h"
#include "ondevice/kernels.h"
#include "ondevice/plan.h"
#include "ondevice/topk.h"

namespace memcom {

// An id table that either OWNS its storage (built in-process) or VIEWS the
// serialized index section inside the file mapping (adopted, zero-copy) —
// the u32 analogue of PlanBuffer. Move-only for the same dangling-view
// reason.
class IdBuffer {
 public:
  IdBuffer() = default;
  IdBuffer(IdBuffer&&) = default;
  IdBuffer& operator=(IdBuffer&&) = default;
  IdBuffer(const IdBuffer&) = delete;
  IdBuffer& operator=(const IdBuffer&) = delete;

  static IdBuffer owned(std::vector<std::uint32_t> values);
  // `data` must stay mapped for the buffer's lifetime.
  static IdBuffer view(const std::uint32_t* data, std::size_t count);

  const std::uint32_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t operator[](std::size_t i) const { return data_[i]; }
  bool zero_copy() const { return data_ != nullptr && storage_.empty(); }

 private:
  std::vector<std::uint32_t> storage_;
  const std::uint32_t* data_ = nullptr;
  std::size_t size_ = 0;
};

struct CatalogIndexConfig {
  Index clusters = 0;    // 0 → ~sqrt(items), clamped to [1, items]
  Index iterations = 6;  // fixed k-means refinement passes
  std::uint64_t seed = 0xC1D5EEDULL;
};

// The index itself: centroid table + cluster-major permutation of item
// ids. Like CompiledPlan, this is position-independent data with a few
// convenience members; buffers are owned (built) or zero-copy views
// (adopted from a v4 section).
struct CatalogIndex {
  // Identity of the model the index was built for (empty/0 for standalone
  // catalog indices that never hit disk, e.g. the bench's).
  std::string model_name;
  std::uint64_t model_version = 0;

  Index items = 0;
  Index dim = 0;       // centroid width — for a model index this is
                       // out.weight rows + 1 (bias folded as last lane)
  Index clusters = 0;
  std::uint64_t seed = 0;
  Index iterations = 0;

  PlanBuffer centroids;  // [clusters, dim] f32, 64-byte-aligned on disk
  IdBuffer perm;         // [items] item ids, cluster-major, ascending
                         // within each cluster
  IdBuffer offsets;      // [clusters + 1] prefix offsets into perm
  bool zero_copy = false;

  const float* centroid(Index c) const { return centroids.data() + c * dim; }
  Index cluster_size(Index c) const {
    return static_cast<Index>(offsets[static_cast<std::size_t>(c) + 1]) -
           static_cast<Index>(offsets[static_cast<std::size_t>(c)]);
  }
  // Bytes the centroid sweep reads per query (the pruning overhead).
  std::uint64_t centroid_bytes() const {
    return static_cast<std::uint64_t>(clusters) *
           static_cast<std::uint64_t>(dim) * sizeof(float);
  }

  // The `nprobe` best clusters for `query`, best-first under topk_better
  // on (centroid dot, cluster id) — deterministic across kernel families
  // because KernelSet::dot is bit-identical scalar vs AVX2.
  std::vector<ScoredId> probe(const KernelSet& kernels, const float* query,
                              Index nprobe) const;
};

// Default cell count: ~sqrt(items), the classic IVF heuristic.
Index default_catalog_clusters(Index items);

// Materializes an item-major [items, dim] compressed catalog as f32 rows
// via the SCALAR reference dequantizer (build-time only; the serving path
// never does this).
std::vector<float> dequantize_catalog_rows(const SpanSrc& src, Index items,
                                           Index dim);

// Deterministic k-means over f32 rows [items, dim]. Training runs on a
// seeded sample (capped at clusters·32 rows) with centroids initialized
// evenly over the sorted sample; the final assignment pass covers every
// item. See the determinism contract above.
CatalogIndex build_catalog_index(const float* rows, Index items, Index dim,
                                 const CatalogIndexConfig& config = {});

// Convenience over an item-major compressed catalog (bench/test path).
CatalogIndex build_catalog_index(const QuantizedTensor& catalog,
                                 const CatalogIndexConfig& config = {});

// Builds the index a .mcm model embeds: rows are the output catalog's
// COLUMNS with the bias folded in — row j = [out.weight[:, j]; out.bias[j]],
// dim = in + 1 — so serving can probe with [trunk; 1.0] and the centroid
// ordering sees exactly the logit geometry. Throws on a model without an
// output catalog.
CatalogIndex build_catalog_index_for_model(const MmapModel& model,
                                           const CatalogIndexConfig& config = {});

// Scans centroids first, then scores only the probed clusters' rows
// through the wrapped CatalogScorer's dot_span path. Borrows both; they
// must outlive the scorer.
struct ScanStats {
  Index probed_clusters = 0;
  Index scanned_rows = 0;
  // Analytic compressed bytes read: probed rows' stored payload (i4g
  // includes the touched scale groups) + the centroid table.
  std::uint64_t scanned_bytes = 0;
};

class PrunedCatalogScorer {
 public:
  PrunedCatalogScorer(const CatalogScorer& exact, const CatalogIndex& index);

  Index items() const { return exact_->items(); }
  Index dim() const { return exact_->dim(); }
  const CatalogIndex& index() const { return *index_; }

  // nprobe is clamped to [1, clusters]; nprobe == clusters is bit-identical
  // to exact.top_k(query, k).
  std::vector<ScoredId> top_k(const float* query, Index k, Index nprobe,
                              ScanStats* stats = nullptr) const;

 private:
  const CatalogScorer* exact_;
  const CatalogIndex* index_;
};

// Stored bytes dot_span reads for one row [offset, offset+count) of `src`
// — packed payload plus, for i4g, the overlapped scale groups. Shared by
// ScanStats and the serving counters.
std::uint64_t span_scan_bytes(const SpanSrc& src, Index offset, Index count);

// Serializes `index` into the byte section ModelWriter appends for v4
// files (regions 64-byte-aligned, trailing plan_checksum).
std::vector<std::uint8_t> serialize_catalog_index(const CatalogIndex& index);

struct CatalogIndexDecodeResult {
  PlanStatus status = PlanStatus::kAbsent;
  std::string reason;  // non-empty exactly when status == kStale
  CatalogIndex index;  // populated exactly when status == kValid
};

// Validates and decodes `model`'s catalog-index section. NEVER throws for
// a bad section: every defect comes back as kStale with a reason, and the
// caller falls back to the exact full scan.
CatalogIndexDecodeResult decode_catalog_index(const MmapModel& model);

}  // namespace memcom
