#include "nn/param.h"

#include <algorithm>
#include <cmath>

namespace memcom {

void Param::zero_grad() {
  if (sparse && !touched_rows.empty() && value.ndim() == 2) {
    const Index cols = value.dim(1);
    for (const Index r : touched_rows) {
      float* row = grad.data() + r * cols;
      std::fill(row, row + cols, 0.0f);
    }
    touched_rows.clear();
    return;
  }
  grad.zero();
  touched_rows.clear();
}

void Param::finalize_touched() {
  std::sort(touched_rows.begin(), touched_rows.end());
  touched_rows.erase(std::unique(touched_rows.begin(), touched_rows.end()),
                     touched_rows.end());
}

Index total_param_count(const ParamRefs& params) {
  Index n = 0;
  for (const Param* p : params) {
    n += p->numel();
  }
  return n;
}

float global_grad_norm(const ParamRefs& params) {
  double acc = 0.0;
  for (const Param* p : params) {
    const float n = p->grad.l2_norm();
    acc += static_cast<double>(n) * static_cast<double>(n);
  }
  return static_cast<float>(std::sqrt(acc));
}

void scale_all_grads(const ParamRefs& params, float factor) {
  for (Param* p : params) {
    p->grad.scale_(factor);
  }
}

}  // namespace memcom
