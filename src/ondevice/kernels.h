// SIMD kernel layer for the inference hot path.
//
// Every inner loop the forward pass executes per token or per dense row —
// gather/dequantize a packed span, accumulate it into the pooled vector,
// multiply-accumulate a dense weight row — is expressed as a function
// pointer in a `KernelSet`. Three families implement the set:
//
//   * scalar — the reference implementation; byte-for-byte the loops the
//     engine ran before this layer existed. Always available, and what the
//     differential harness compares everything else against.
//   * avx2   — x86-64 runtime-dispatched (checked via cpuid, never assumed
//     at compile time). Element-wise kernels are BIT-IDENTICAL to scalar:
//     they perform the same mul/add per element, just eight lanes at a
//     time, and never contract mul+add into an FMA. The only kernel allowed
//     to diverge is `axpy_fma` (the fused dense MAC), which is opt-in via
//     MEMCOM_ENABLE_FMA=1 and carries a documented tolerance instead of the
//     bit-exactness contract (fused rounding differs from mul-then-add).
//   * neon   — aarch64 placeholder registered behind the same dispatch
//     table; its entries currently forward to the scalar reference so the
//     selection machinery is exercised on ARM builds before tuned NEON
//     bodies land.
//
// Selection happens ONCE per CompiledModel compile (select_kernels()):
// MEMCOM_DISABLE_SIMD=1 forces the scalar reference (the CI matrix leg that
// keeps both families green under sanitizers), otherwise the widest family
// the CPU supports wins. tests/test_kernels.cpp and the differential
// harness enforce the bit-exactness contract.
#pragma once

#include <cstdint>

#include "core/tensor.h"
#include "ondevice/quantize.h"

namespace memcom {

// Codec view of one packed tensor blob, resolved once at plan compile time
// (see TensorRef in compiled_model.h). For grouped dtypes the two payload
// regions — the per-group f32 scales header and the packed nibbles — are
// pre-split so the span kernels never re-derive layout per call.
struct SpanSrc {
  DType dtype = DType::kF32;
  float scale = 1.0f;                     // per-tensor scale (ungrouped)
  const std::uint8_t* payload = nullptr;  // full blob (scales header incl.)
  const float* group_scales = nullptr;    // i4g: per-group scales region
  const std::uint8_t* packed = nullptr;   // i4g: nibble region
  Index group_size = 0;                   // i4g: elements per scale group
};

struct KernelSet {
  const char* name = "scalar";
  // out[0..count) = dequantized elements [offset, offset+count) of src.
  void (*dequant_span)(const SpanSrc& src, Index offset, Index count,
                       float* out) = nullptr;
  // acc[i] += row[i]
  void (*acc_add)(float* acc, const float* row, Index n) = nullptr;
  // acc[i] += row[i] * m        (memcom multiplier)
  void (*acc_scale_add)(float* acc, const float* row, float m,
                        Index n) = nullptr;
  // acc[i] += row[i] * m + b    (memcom_bias)
  void (*acc_scale_bias_add)(float* acc, const float* row, float m, float b,
                             Index n) = nullptr;
  // acc[i] += a[i] * b[i]       (qr_mult compose)
  void (*acc_mult_add)(float* acc, const float* a, const float* b,
                       Index n) = nullptr;
  // y[i] += a * x[i]            (dense MAC row, factorized projection row,
  //                              one-hot z*row accumulate)
  void (*axpy)(float* y, float a, const float* x, Index n) = nullptr;
  // sum_i a[i]*b[i]             (f32 catalog row · session vector)
  //
  // Bit-exactness contract for both dot kernels: 8-lane STRIPED
  // accumulation — element i is multiplied and added into lane (i mod 8),
  // each lane in increasing-i order — followed by the pinned reduction
  // ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). That is exactly what an 8-wide
  // vector accumulator computes, so the scalar reference reproduces the
  // AVX2 result bit-for-bit (no FMA contraction, same as the element-wise
  // kernels). tests/test_kernels.cpp enforces it across families.
  float (*dot)(const float* a, const float* b, Index n) = nullptr;
  // sum_i dequant(src[offset+i]) * vec[i] for i in [0, count) — one
  // COMPRESSED catalog row scored against a float query without ever
  // materializing the row outside a small fixed stack buffer. Same striped
  // contract as `dot`; the per-element products go through the family's
  // bit-identical dequant_span, so scalar and AVX2 agree bit-for-bit for
  // every dtype (f32/f16/i8/i4/i4g).
  float (*dot_span)(const SpanSrc& src, Index offset, Index count,
                    const float* vec) = nullptr;
};

// The scalar reference set (always available).
const KernelSet& scalar_kernels();

// Runtime dispatch: scalar when MEMCOM_DISABLE_SIMD=1, else the widest
// family the CPU reports. With MEMCOM_ENABLE_FMA=1 (and FMA hardware) the
// returned set's axpy is the FUSED dense MAC — faster, but only tolerance-
// accurate vs scalar; everything else stays bit-exact. Environment is read
// per call so a test (or the CI matrix) can flip it between plan compiles.
const KernelSet& select_kernels();

// Byte interval of a packed element span, sub-byte aware: covers bits
// [offset*bits, (offset+count)*bits) rounded OUT to whole bytes. The naive
// `ceil(count*bits/8)` undercounts when a 4-bit span starts mid-byte (e.g.
// offset=1, count=2 straddles two bytes); MemoryMeter page accounting goes
// through here so sub-byte rows meter every byte they actually touch.
struct ByteSpan {
  Index offset = 0;  // first byte touched, relative to the blob start
  Index length = 0;  // bytes touched
};
ByteSpan packed_byte_span(Index offset, Index count, int bits);

}  // namespace memcom
