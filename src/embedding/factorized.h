// Low-rank techniques:
//
//  * FactorizedEmbedding — factorized embedding parameterization (Lan et
//    al., ALBERT): E ≈ A[v,h] · P[h,e] with h ≪ e. Unique vector per
//    entity, but ignores the category popularity distribution (the paper's
//    property 3).
//  * ReducedDimEmbedding — simply a narrower full table ("reduce embedding
//    dim" baseline); the downstream network adapts to output_dim().
#pragma once

#include "embedding/embedding.h"

namespace memcom {

class FactorizedEmbedding : public EmbeddingLayer {
 public:
  FactorizedEmbedding(Index vocab, Index hidden_dim, Index embed_dim,
                      Rng& rng);

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&factors_, &projection_}; }
  std::string name() const override { return "factorized"; }
  Index vocab_size() const override { return factors_.value.dim(0); }
  Index output_dim() const override { return projection_.value.dim(1); }
  Index hidden_dim() const { return factors_.value.dim(1); }

 private:
  Param factors_;     // A: [v, h] (sparse rows)
  Param projection_;  // P: [h, e] (dense)
  IdBatch cached_input_;
  Tensor cached_hidden_;  // [B*L, h] activations from the last forward
};

class ReducedDimEmbedding : public FullEmbedding {
 public:
  ReducedDimEmbedding(Index vocab, Index reduced_dim, Rng& rng)
      : FullEmbedding(vocab, reduced_dim, rng, "reduce_dim") {}
};

}  // namespace memcom
