// CLI coverage for tools/mcm_bench: export a real model, invoke the binary,
// and assert on the latency + serving-throughput report it prints.
//
// The tool's binary path is injected by CMake via MCM_BENCH_PATH.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "test_util.h"

#include "repro/model.h"

namespace memcom {
namespace {

#ifndef MCM_BENCH_PATH
#error "MCM_BENCH_PATH must be defined by the build"
#endif

struct ToolResult {
  int exit_code = -1;
  std::string output;
};

ToolResult run_tool(const std::string& args) {
  const std::string cmd =
      "\"" + std::string(MCM_BENCH_PATH) + "\" " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ToolResult result;
  if (pipe == nullptr) {
    return result;
  }
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    result.output += buf;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class McmBenchTest : public ::testing::Test {
 protected:
  McmBenchTest()
      : path_((std::filesystem::temp_directory_path() /
               "memcom_bench_tool_test.mcm")
                  .string()) {}

  ~McmBenchTest() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  const std::string path_;
};

TEST_F(McmBenchTest, ReportsLatencyAndServingThroughput) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 7;
  RecModel model(config);
  model.export_mcm(path_);

  const ToolResult result = run_tool(
      "\"" + path_ + "\" --runs 20 --threads 2 --requests 16 --repeat 2");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("technique=memcom"), std::string::npos);
  EXPECT_NE(result.output.find("single-input latency"), std::string::npos);
  EXPECT_NE(result.output.find("p99 ms"), std::string::npos);
  EXPECT_NE(result.output.find("serving throughput"), std::string::npos);
  EXPECT_NE(result.output.find("qps"), std::string::npos);
}

TEST_F(McmBenchTest, AsyncModeReportsPipelineColumns) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kQrMult, 300, 16, 32};
  config.arch = ModelArch::kRanking;
  config.output_vocab = 8;
  config.seed = 8;
  RecModel model(config);
  model.export_mcm(path_);

  const ToolResult result = run_tool(
      "\"" + path_ +
      "\" --runs 10 --threads 2 --requests 16 --repeat 2 --async "
      "--max-batch 4 --max-delay-us 100 --cache-kb 32");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("async micro-batching pipeline"),
            std::string::npos);
  EXPECT_NE(result.output.find("modeled qps"), std::string::npos);
  EXPECT_NE(result.output.find("wait p95 ms"), std::string::npos);
  EXPECT_NE(result.output.find("mean batch"), std::string::npos);
  EXPECT_NE(result.output.find("hit%"), std::string::npos);
}

TEST_F(McmBenchTest, MultiModelModeReportsPerModelAndHotSwaps) {
  const std::string path_b =
      (std::filesystem::temp_directory_path() /
       "memcom_bench_tool_test_b.mcm")
          .string();
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 7;
  RecModel model_a(config);
  model_a.export_mcm(path_);
  config.embedding.kind = TechniqueKind::kQrMult;
  config.seed = 9;
  RecModel model_b(config);
  model_b.export_mcm(path_b);

  const ToolResult result = run_tool(
      "--models \"" + path_ + "," + path_b +
      "\" --threads 2 --requests 12 --repeat 2 --max-batch 4 "
      "--cache-kb 32 --swap-after 8");
  std::error_code ec;
  std::filesystem::remove(path_b, ec);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("technique=memcom"), std::string::npos);
  EXPECT_NE(result.output.find("technique=qr_mult"), std::string::npos);
  EXPECT_NE(result.output.find("multi-tenant serving (2 models"),
            std::string::npos);
  EXPECT_NE(result.output.find("per-model breakdown"), std::string::npos);
  // The exports carry no identity metadata, so the same-file republish is
  // a legal version bump and the swap must land mid-drain or right at its
  // end — either way the tool reports it.
  EXPECT_NE(result.output.find("hot-swapped"), std::string::npos);
  EXPECT_NE(result.output.find("to v2"), std::string::npos);
}

TEST_F(McmBenchTest, ShardedAsyncModeReportsSchedulerColumns) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 11;
  RecModel model(config);
  model.export_mcm(path_);

  const ToolResult result = run_tool(
      "\"" + path_ +
      "\" --runs 10 --threads 2 --requests 16 --repeat 2 --async "
      "--shards 2 --max-batch 4 --deadline-us 500000 --shed");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("async micro-batching pipeline"),
            std::string::npos);
  EXPECT_NE(result.output.find("shards"), std::string::npos);
  EXPECT_NE(result.output.find("goodput"), std::string::npos);
  EXPECT_NE(result.output.find("shed%"), std::string::npos);
  EXPECT_NE(result.output.find("miss%"), std::string::npos);
}

TEST_F(McmBenchTest, SessionModeReportsTopKTable) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 13;
  RecModel model(config);
  model.export_mcm(path_);

  const ToolResult result = run_tool(
      "\"" + path_ +
      "\" --runs 10 --threads 2 --requests 16 --repeat 2 --session --topk 5");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("session next-item serving"),
            std::string::npos);
  EXPECT_NE(result.output.find("full-catalog top-5"), std::string::npos);
  EXPECT_NE(result.output.find("top-k"), std::string::npos);
  EXPECT_NE(result.output.find("active"), std::string::npos);
  EXPECT_NE(result.output.find("evicted"), std::string::npos);
}

TEST_F(McmBenchTest, PrunedSessionModeReportsScanAndRecallColumns) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 13;
  RecModel model(config);
  model.export_mcm(path_);

  // Index built in process over the exported catalog (--clusters), then a
  // pruned drain plus the exact recall-reference replay.
  const ToolResult result = run_tool(
      "\"" + path_ +
      "\" --runs 10 --threads 2 --requests 16 --repeat 2 --session --topk 5 "
      "--nprobe 2 --clusters 4");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("catalog index: built in-process (4 clusters)"),
            std::string::npos);
  EXPECT_NE(result.output.find("nprobe"), std::string::npos);
  EXPECT_NE(result.output.find("scan MB"), std::string::npos);
  EXPECT_NE(result.output.find("pruned%"), std::string::npos);
  EXPECT_NE(result.output.find("recall@k"), std::string::npos);
}

TEST_F(McmBenchTest, PrunedSessionModeAdoptsFileIndex) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 13;
  RecModel model(config);
  model.export_mcm(path_, DType::kI8, "bench", 1, /*group_size=*/0,
                   /*emit_plan=*/false, /*emit_index=*/true,
                   /*index_clusters=*/4);

  const ToolResult result = run_tool(
      "\"" + path_ +
      "\" --runs 10 --threads 2 --requests 16 --repeat 2 --session --topk 5 "
      "--nprobe 2");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("catalog index: file-adopted (4 clusters)"),
            std::string::npos);
}

TEST_F(McmBenchTest, NprobeWithoutSessionFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --nprobe 2");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--session"), std::string::npos);
}

TEST_F(McmBenchTest, NonPositiveNprobeFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --session --topk 5 --nprobe 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--nprobe"), std::string::npos);
}

TEST_F(McmBenchTest, ClustersWithoutNprobeFailsCleanly) {
  const ToolResult result =
      run_tool("model.mcm --session --topk 5 --clusters 4");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--nprobe"), std::string::npos);
}

TEST_F(McmBenchTest, NprobeExceedingClustersFailsCleanly) {
  const ToolResult result =
      run_tool("model.mcm --session --topk 5 --nprobe 8 --clusters 4");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--nprobe must not exceed --clusters"),
            std::string::npos);
}

TEST_F(McmBenchTest, TopkWithoutSessionFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --topk 5");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--session"), std::string::npos);
}

TEST_F(McmBenchTest, NonPositiveTopkFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --session --topk 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--topk"), std::string::npos);
}

TEST_F(McmBenchTest, SessionWithModelsModeFailsCleanly) {
  const ToolResult result = run_tool("--models a.mcm,b.mcm --session");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--session"), std::string::npos);
}

TEST_F(McmBenchTest, InvalidShardCountFailsCleanly) {
  const ToolResult zero = run_tool("model.mcm --shards 0");
  EXPECT_EQ(zero.exit_code, 2);
  EXPECT_NE(zero.output.find("--shards"), std::string::npos);
  // More shards than workers is rejected too (every shard needs a primary).
  const ToolResult over = run_tool("model.mcm --threads 2 --shards 4");
  EXPECT_EQ(over.exit_code, 2);
  EXPECT_NE(over.output.find("--shards"), std::string::npos);
}

TEST_F(McmBenchTest, ShedWithoutDeadlineFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --shed");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--deadline-us"), std::string::npos);
}

TEST_F(McmBenchTest, ColdStartReportsBothLegsForPlanBearingFile) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 17;
  RecModel model(config);
  model.export_mcm(path_, DType::kI8, "cold", 1, /*group_size=*/0,
                   /*emit_plan=*/true);

  const ToolResult result = run_tool("\"" + path_ + "\" --cold-start 5");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("cold start (5 iterations): plan section "
                               "present and valid"),
            std::string::npos);
  EXPECT_NE(result.output.find("load -> first-inference phases"),
            std::string::npos);
  // Phase split columns plus one row per leg with its plan verdict.
  EXPECT_NE(result.output.find("adopt-or-compile p50"), std::string::npos);
  EXPECT_NE(result.output.find("first-infer p50"), std::string::npos);
  EXPECT_NE(result.output.find("plan-adopt"), std::string::npos);
  EXPECT_NE(result.output.find("full-compile"), std::string::npos);
  EXPECT_NE(result.output.find("adopted"), std::string::npos);
  EXPECT_NE(result.output.find("plan adoption disabled"), std::string::npos);
}

TEST_F(McmBenchTest, ColdStartReportsSingleLegForPlanlessFile) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 300, 16, 32};
  config.arch = ModelArch::kClassification;
  config.output_vocab = 24;
  config.seed = 19;
  RecModel model(config);
  model.export_mcm(path_);

  const ToolResult result = run_tool("\"" + path_ + "\" --cold-start 3");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("cold start (3 iterations): no plan section"),
            std::string::npos);
  EXPECT_NE(result.output.find("full-compile"), std::string::npos);
  // No adoption leg to report without a plan.
  EXPECT_EQ(result.output.find("plan-adopt"), std::string::npos);
}

TEST_F(McmBenchTest, NonPositiveColdStartFailsCleanly) {
  const ToolResult result = run_tool("model.mcm --cold-start 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--cold-start"), std::string::npos);
}

TEST_F(McmBenchTest, ColdStartWithModelsModeFailsCleanly) {
  const ToolResult result = run_tool("--models a.mcm,b.mcm --cold-start 3");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--cold-start"), std::string::npos);
}

TEST_F(McmBenchTest, MissingArgumentFailsWithUsage) {
  const ToolResult result = run_tool("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(McmBenchTest, InvalidAsyncFlagsFailCleanly) {
  const ToolResult result = run_tool("model.mcm --max-batch 0");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--max-batch"), std::string::npos);
}

}  // namespace
}  // namespace memcom
