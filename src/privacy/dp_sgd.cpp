#include "privacy/dp_sgd.h"

#include <algorithm>

#include "core/check.h"

namespace memcom {

DpSgdAggregator::DpSgdAggregator(double clip_norm, double noise_multiplier,
                                 Rng rng)
    : clip_norm_(clip_norm), noise_multiplier_(noise_multiplier), rng_(rng) {
  check(clip_norm > 0.0, "dp-sgd: clip norm must be positive");
  check(noise_multiplier >= 0.0, "dp-sgd: negative noise multiplier");
}

void DpSgdAggregator::begin_batch(const ParamRefs& params) {
  for (Param* p : params) {
    auto [it, inserted] = accum_.try_emplace(p);
    if (inserted || !it->second.same_shape(p->value)) {
      it->second = Tensor(p->value.shape());
    } else {
      it->second.zero();
    }
  }
  example_count_ = 0;
}

void DpSgdAggregator::accumulate_example(const ParamRefs& params) {
  const float norm = global_grad_norm(params);
  last_example_norm_ = norm;
  const float factor =
      norm > clip_norm_ ? static_cast<float>(clip_norm_) / norm : 1.0f;
  for (Param* p : params) {
    auto it = accum_.find(p);
    check(it != accum_.end(), "dp-sgd: accumulate before begin_batch");
    it->second.axpy_(factor, p->grad);
  }
  ++example_count_;
}

void DpSgdAggregator::finalize_into_grads(const ParamRefs& params) {
  check(example_count_ > 0, "dp-sgd: no examples accumulated");
  const float stddev =
      static_cast<float>(noise_multiplier_ * clip_norm_);
  const float inv_count = 1.0f / static_cast<float>(example_count_);
  for (Param* p : params) {
    auto it = accum_.find(p);
    check(it != accum_.end(), "dp-sgd: finalize before begin_batch");
    Tensor& acc = it->second;
    float* g = p->grad.data();
    const float* a = acc.data();
    const Index n = p->numel();
    for (Index i = 0; i < n; ++i) {
      const float noise =
          stddev > 0.0f ? rng_.normal(0.0f, stddev) : 0.0f;
      g[i] = (a[i] + noise) * inv_count;
    }
    // The noisy gradient is dense in every coordinate, so the sparse-row
    // optimizer fast path no longer applies this step.
    p->touched_rows.clear();
    if (stddev > 0.0f) {
      p->sparse = false;
    }
  }
}

}  // namespace memcom
