// google-benchmark microbenchmarks: embedding forward/backward throughput
// per compression technique, and the lookup vs one-hot compute paths that
// drive Table 3.
#include <benchmark/benchmark.h>

#include "embedding/factory.h"
#include "embedding/hashing.h"

namespace memcom {
namespace {

constexpr Index kVocab = 50000;
constexpr Index kEmbedDim = 64;
constexpr Index kBatch = 32;
constexpr Index kSeqLen = 32;

EmbeddingConfig config_for(TechniqueKind kind) {
  EmbeddingConfig config;
  config.kind = kind;
  config.vocab = kVocab;
  config.embed_dim = kEmbedDim;
  switch (kind) {
    case TechniqueKind::kFactorized:
      config.knob = kEmbedDim / 4;
      break;
    case TechniqueKind::kReduceDim:
      config.knob = kEmbedDim / 4;
      break;
    case TechniqueKind::kTruncateRare:
      config.knob = kVocab / 16;
      break;
    case TechniqueKind::kHashedNets:
      config.knob = kVocab;
      break;
    case TechniqueKind::kFull:
      config.knob = 0;
      break;
    default:
      config.knob = kVocab / 16;
  }
  return config;
}

IdBatch make_input(Rng& rng) {
  IdBatch input(kBatch, kSeqLen);
  for (Index i = 0; i < input.size(); ++i) {
    input.ids[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(1 + rng.uniform_index(kVocab - 1));
  }
  return input;
}

void BM_EmbeddingForward(benchmark::State& state) {
  const auto kind = static_cast<TechniqueKind>(state.range(0));
  Rng rng(1);
  const EmbeddingPtr emb = make_embedding(config_for(kind), rng);
  const IdBatch input = make_input(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emb->forward(input, false));
  }
  state.SetItemsProcessed(state.iterations() * input.size());
  state.SetLabel(technique_name(kind));
}

void BM_EmbeddingForwardBackward(benchmark::State& state) {
  const auto kind = static_cast<TechniqueKind>(state.range(0));
  Rng rng(2);
  const EmbeddingPtr emb = make_embedding(config_for(kind), rng);
  const IdBatch input = make_input(rng);
  for (auto _ : state) {
    const Tensor out = emb->forward(input, true);
    emb->backward(out);
    for (Param* p : emb->params()) {
      p->zero_grad();
    }
  }
  state.SetItemsProcessed(state.iterations() * input.size());
  state.SetLabel(technique_name(kind));
}

void RegisterTechniqueArgs(benchmark::internal::Benchmark* bench) {
  for (const TechniqueKind kind :
       {TechniqueKind::kFull, TechniqueKind::kMemcom,
        TechniqueKind::kMemcomBias, TechniqueKind::kQrMult,
        TechniqueKind::kQrConcat, TechniqueKind::kNaiveHash,
        TechniqueKind::kDoubleHash, TechniqueKind::kFactorized,
        TechniqueKind::kTruncateRare, TechniqueKind::kWeinberger}) {
    bench->Arg(static_cast<long long>(kind));
  }
}

BENCHMARK(BM_EmbeddingForward)->Apply(RegisterTechniqueArgs);
BENCHMARK(BM_EmbeddingForwardBackward)->Apply(RegisterTechniqueArgs);

// The Table 3 compute contrast in isolation: per-token row gather vs the
// full m x e one-hot matvec.
void BM_LookupPath(benchmark::State& state) {
  const Index m = state.range(0);
  Rng rng(3);
  const Tensor table = Tensor::randn({m, kEmbedDim}, rng);
  std::vector<std::int32_t> history(kSeqLen);
  for (auto& id : history) {
    id = static_cast<std::int32_t>(rng.uniform_index(kVocab));
  }
  std::vector<float> pooled(kEmbedDim);
  for (auto _ : state) {
    std::fill(pooled.begin(), pooled.end(), 0.0f);
    for (const std::int32_t id : history) {
      const float* row = table.data() + mod_hash(id, m) * kEmbedDim;
      for (Index c = 0; c < kEmbedDim; ++c) {
        pooled[static_cast<std::size_t>(c)] += row[c];
      }
    }
    benchmark::DoNotOptimize(pooled);
  }
  state.SetLabel("lookup m=" + std::to_string(m));
}

void BM_OneHotPath(benchmark::State& state) {
  const Index m = state.range(0);
  Rng rng(4);
  const Tensor table = Tensor::randn({m, kEmbedDim}, rng);
  std::vector<std::int32_t> history(kSeqLen);
  for (auto& id : history) {
    id = static_cast<std::int32_t>(rng.uniform_index(kVocab));
  }
  std::vector<float> onehot(static_cast<std::size_t>(m));
  std::vector<float> pooled(kEmbedDim);
  for (auto _ : state) {
    std::fill(onehot.begin(), onehot.end(), 0.0f);
    for (const std::int32_t id : history) {
      onehot[static_cast<std::size_t>(mod_hash(id, m))] += sign_hash(id);
    }
    std::fill(pooled.begin(), pooled.end(), 0.0f);
    for (Index j = 0; j < m; ++j) {
      const float z = onehot[static_cast<std::size_t>(j)];
      const float* row = table.data() + j * kEmbedDim;
      for (Index c = 0; c < kEmbedDim; ++c) {
        pooled[static_cast<std::size_t>(c)] += z * row[c];
      }
    }
    benchmark::DoNotOptimize(pooled);
  }
  state.SetLabel("one-hot m=" + std::to_string(m));
}

BENCHMARK(BM_LookupPath)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OneHotPath)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace memcom

BENCHMARK_MAIN();
