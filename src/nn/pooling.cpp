#include "nn/pooling.h"

#include "core/check.h"
#include "core/ops.h"

namespace memcom {

Tensor MaskedAveragePool::forward(const Tensor& x, const Tensor& mask) {
  check(x.ndim() == 3, "pool: x must be [B,L,E]");
  check(mask.ndim() == 2, "pool: mask must be [B,L]");
  const Index b = x.dim(0);
  const Index l = x.dim(1);
  embed_dim_ = x.dim(2);
  check_eq(b, mask.dim(0), "pool batch");
  check_eq(l, mask.dim(1), "pool length");

  weights_ = Tensor({b, l});
  for (Index bi = 0; bi < b; ++bi) {
    double count = 0.0;
    for (Index li = 0; li < l; ++li) {
      count += mask.at2(bi, li);
    }
    const float w = count > 0.0 ? static_cast<float>(1.0 / count) : 0.0f;
    for (Index li = 0; li < l; ++li) {
      weights_.at2(bi, li) = mask.at2(bi, li) > 0.0f ? w : 0.0f;
    }
  }
  return weighted_sum_middle(x, weights_);
}

Tensor MaskedAveragePool::backward(const Tensor& grad_out) const {
  check(!weights_.empty(), "pool: backward before forward");
  const Index b = weights_.dim(0);
  const Index l = weights_.dim(1);
  check(grad_out.ndim() == 2 && grad_out.dim(0) == b &&
            grad_out.dim(1) == embed_dim_,
        "pool: bad grad shape");
  Tensor gx({b, l, embed_dim_});
  for (Index bi = 0; bi < b; ++bi) {
    const float* grow = grad_out.data() + bi * embed_dim_;
    for (Index li = 0; li < l; ++li) {
      const float w = weights_.at2(bi, li);
      if (w == 0.0f) {
        continue;
      }
      float* xrow = gx.data() + (bi * l + li) * embed_dim_;
      for (Index ei = 0; ei < embed_dim_; ++ei) {
        xrow[ei] = w * grow[ei];
      }
    }
  }
  return gx;
}

Tensor mask_from_ids(const std::vector<std::int32_t>& ids, Index batch,
                     Index length, std::int32_t pad_id) {
  check_eq(batch * length, static_cast<long long>(ids.size()),
           "mask_from_ids element count");
  Tensor mask({batch, length});
  for (Index i = 0; i < batch * length; ++i) {
    mask[i] = ids[static_cast<std::size_t>(i)] == pad_id ? 0.0f : 1.0f;
  }
  return mask;
}

}  // namespace memcom
