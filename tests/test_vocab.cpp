#include "data/vocab.h"

#include <gtest/gtest.h>

#include <sstream>

namespace memcom {
namespace {

Vocab sample_vocab(Index reserved = 0) {
  VocabBuilder builder;
  builder.add("common", 100);
  builder.add("frequent", 50);
  builder.add("occasional", 10);
  builder.add("rare", 1);
  return builder.freeze(0, reserved);
}

TEST(Vocab, FrequencySortedIdAssignment) {
  const Vocab vocab = sample_vocab();
  // id 0 = pad; most frequent token gets id 1.
  EXPECT_EQ(vocab.id_of("common"), 1);
  EXPECT_EQ(vocab.id_of("frequent"), 2);
  EXPECT_EQ(vocab.id_of("occasional"), 3);
  EXPECT_EQ(vocab.id_of("rare"), 4);
  EXPECT_EQ(vocab.size(), 5);
  EXPECT_EQ(vocab.token_count(), 4);
}

TEST(Vocab, ReservedRangeShiftsTokenIds) {
  // The paper's Games/Arcade setup: countries get ids 1..n, apps n+1...
  const Vocab vocab = sample_vocab(/*reserved=*/24);
  EXPECT_EQ(vocab.first_token_id(), 25);
  EXPECT_EQ(vocab.id_of("common"), 25);
  EXPECT_EQ(vocab.size(), 1 + 24 + 4);
}

TEST(Vocab, CountsAccumulateAcrossAdds) {
  VocabBuilder builder;
  builder.add("x");
  builder.add("x", 4);
  builder.add("y", 3);
  const Vocab vocab = builder.freeze();
  EXPECT_EQ(vocab.id_of("x"), 1);  // 5 occurrences beats 3
  EXPECT_EQ(vocab.count_of("x"), 5);
  EXPECT_EQ(vocab.count_of("y"), 3);
  EXPECT_EQ(vocab.count_of("z"), 0);
}

TEST(Vocab, TiesBrokenLexicographically) {
  VocabBuilder builder;
  builder.add("beta", 7);
  builder.add("alpha", 7);
  const Vocab vocab = builder.freeze();
  EXPECT_EQ(vocab.id_of("alpha"), 1);
  EXPECT_EQ(vocab.id_of("beta"), 2);
}

TEST(Vocab, MaxTokensKeepsHead) {
  VocabBuilder builder;
  builder.add("a", 10);
  builder.add("b", 5);
  builder.add("c", 1);
  const Vocab vocab = builder.freeze(/*max_tokens=*/2);
  EXPECT_TRUE(vocab.contains("a"));
  EXPECT_TRUE(vocab.contains("b"));
  EXPECT_FALSE(vocab.contains("c"));
  EXPECT_EQ(vocab.id_of("c"), Vocab::kUnknownId);
}

TEST(Vocab, TokenOfRoundTrip) {
  const Vocab vocab = sample_vocab();
  for (Index id = vocab.first_token_id(); id < vocab.size(); ++id) {
    EXPECT_EQ(vocab.id_of(vocab.token_of(id)), id);
  }
  EXPECT_THROW(vocab.token_of(0), std::runtime_error);
  EXPECT_THROW(vocab.token_of(vocab.size()), std::runtime_error);
}

TEST(Vocab, EncodePadsAndTruncates) {
  const Vocab vocab = sample_vocab();
  const auto padded = vocab.encode({"common", "rare"}, 4);
  EXPECT_EQ(padded, (std::vector<std::int32_t>{1, 4, 0, 0}));
  const auto truncated =
      vocab.encode({"common", "frequent", "occasional", "rare"}, 2);
  EXPECT_EQ(truncated, (std::vector<std::int32_t>{1, 2}));
}

TEST(Vocab, EncodeDropsUnknownTokens) {
  const Vocab vocab = sample_vocab();
  const auto ids = vocab.encode({"unknown", "common", "???", "rare"}, 4);
  EXPECT_EQ(ids, (std::vector<std::int32_t>{1, 4, 0, 0}));
}

TEST(Vocab, SaveLoadRoundTrip) {
  const Vocab vocab = sample_vocab(/*reserved=*/3);
  std::stringstream ss;
  vocab.save(ss);
  const Vocab loaded = Vocab::load(ss);
  EXPECT_TRUE(loaded == vocab);
  EXPECT_EQ(loaded.id_of("occasional"), vocab.id_of("occasional"));
  EXPECT_EQ(loaded.count_of("common"), 100);
}

TEST(Vocab, LoadRejectsBadTag) {
  std::stringstream ss;
  ss.write("garbagegarbage", 14);
  EXPECT_THROW(Vocab::load(ss), std::runtime_error);
}

TEST(Vocab, BuilderValidation) {
  VocabBuilder builder;
  EXPECT_THROW(builder.add("", 1), std::runtime_error);
  EXPECT_THROW(builder.add("x", 0), std::runtime_error);
  EXPECT_THROW(builder.freeze(0, -1), std::runtime_error);
}

TEST(Vocab, EmptyVocabIsJustPad) {
  VocabBuilder builder;
  const Vocab vocab = builder.freeze();
  EXPECT_EQ(vocab.size(), 1);
  EXPECT_EQ(vocab.token_count(), 0);
}

}  // namespace
}  // namespace memcom
