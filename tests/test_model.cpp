#include "repro/model.h"

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace memcom {
namespace {

ModelConfig base_config(ModelArch arch) {
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, 60, 16, 12};
  config.arch = arch;
  config.output_vocab = 10;
  config.dropout = 0.0;  // deterministic for gradient checks
  config.seed = 5;
  return config;
}

IdBatch toy_batch() {
  IdBatch input(3, 5);
  input.ids = {1, 2, 3, 0, 0, 7, 8, 9, 10, 11, 30, 40, 50, 59, 0};
  return input;
}

TEST(RecModel, ClassificationForwardShape) {
  RecModel model(base_config(ModelArch::kClassification));
  const Tensor logits = model.forward(toy_batch(), false);
  EXPECT_EQ(logits.shape(), (Shape{3, 10}));
}

TEST(RecModel, RankingForwardShape) {
  RecModel model(base_config(ModelArch::kRanking));
  const Tensor logits = model.forward(toy_batch(), false);
  EXPECT_EQ(logits.shape(), (Shape{3, 10}));
}

TEST(RecModel, RankingHasFewerParamsThanClassificationWithSmallHead) {
  // Ranking drops the hidden dense block; with a small output vocab the
  // dense(e/2) block dominates, so ranking < classification.
  ModelConfig cls = base_config(ModelArch::kClassification);
  cls.output_vocab = 4;
  ModelConfig rank = base_config(ModelArch::kRanking);
  rank.output_vocab = 4;
  RecModel cls_model(cls);
  RecModel rank_model(rank);
  EXPECT_NE(cls_model.param_count(), rank_model.param_count());
}

TEST(RecModel, ParamCountDecomposition) {
  ModelConfig config = base_config(ModelArch::kRanking);
  RecModel model(config);
  // embedding (12*16 + 60) + bn1 (2*16) + out (16*10 + 10)
  EXPECT_EQ(model.param_count(), (12 * 16 + 60) + 32 + 170);
}

TEST(RecModel, EndToEndGradientsMatchFiniteDifference) {
  ModelConfig config = base_config(ModelArch::kClassification);
  RecModel model(config);
  const IdBatch input = toy_batch();
  const std::vector<Index> labels = {1, 5, 9};
  SoftmaxCrossEntropy loss;

  // BatchNorm in training mode uses batch statistics that shift under FD
  // perturbation; evaluate FD in inference mode after priming stats, and
  // take analytic grads in the same mode for consistency.
  model.forward(input, true);  // prime running stats
  const Tensor logits = model.forward(input, false);
  loss.forward(logits, labels);
  model.backward(loss.backward());

  auto loss_fn = [&]() {
    SoftmaxCrossEntropy fresh;
    return fresh.forward(model.forward(input, false), labels);
  };
  for (Param* p : model.params()) {
    if (p->numel() == 0) {
      continue;
    }
    // Small epsilon keeps central differences away from ReLU kink
    // crossings (the init-time activations are ~1e-2); the fraction
    // criterion tolerates the rare remaining crossing.
    const GradCheckResult result =
        check_param_gradient(*p, loss_fn, 3e-4f, 32);
    EXPECT_GE(result.fraction_within(5e-2f), 0.8f)
        << p->name << " max rel err " << result.max_rel_error;
  }
}

TEST(RecModel, TrainingReducesLoss) {
  ModelConfig config = base_config(ModelArch::kClassification);
  config.dropout = 0.0;
  RecModel model(config);
  SoftmaxCrossEntropy loss;
  const IdBatch input = toy_batch();
  const std::vector<Index> labels = {1, 5, 9};
  auto optimizer = make_optimizer("adam", 5e-3);
  const ParamRefs params = model.params();
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 40; ++step) {
    const Tensor logits = model.forward(input, true);
    const float value = loss.forward(logits, labels);
    if (step == 0) {
      first_loss = value;
    }
    last_loss = value;
    model.backward(loss.backward());
    optimizer->step(params);
    Optimizer::zero_grad(params);
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

TEST(RecModel, DropoutOnlyAffectsTraining) {
  ModelConfig config = base_config(ModelArch::kRanking);
  config.dropout = 0.5;
  RecModel model(config);
  const IdBatch input = toy_batch();
  const Tensor a = model.forward(input, false);
  const Tensor b = model.forward(input, false);
  EXPECT_TRUE(a.equals(b));  // inference is deterministic
}

TEST(RecModel, SeedReproducibility) {
  RecModel a(base_config(ModelArch::kClassification));
  RecModel b(base_config(ModelArch::kClassification));
  const IdBatch input = toy_batch();
  EXPECT_TRUE(a.forward(input, false).equals(b.forward(input, false)));
}

TEST(PairwiseModel, ScoreShapesAndDeterminism) {
  EmbeddingConfig emb = {TechniqueKind::kMemcom, 60, 16, 12};
  PairwiseRankModel model(emb, /*item_count=*/25, /*dropout=*/0.0, 3);
  IdBatch histories(2, 4);
  histories.ids = {1, 2, 3, 0, 9, 8, 7, 6};
  const Tensor scores = model.score(histories, {3, 17}, false);
  EXPECT_EQ(scores.shape(), (Shape{2}));
  const Tensor again = model.score(histories, {3, 17}, false);
  EXPECT_TRUE(scores.equals(again));
}

TEST(PairwiseModel, ScoreAllRanksWholeCatalog) {
  EmbeddingConfig emb = {TechniqueKind::kFull, 60, 16, 0};
  PairwiseRankModel model(emb, 25, 0.0, 4);
  IdBatch history(1, 4);
  history.ids = {5, 6, 7, 8};
  const Tensor all = model.score_all(history);
  EXPECT_EQ(all.shape(), (Shape{1, 25}));
  // score_all must agree with score() per item.
  const Tensor individual = model.score(history, {11}, false);
  EXPECT_NEAR(all.at2(0, 11), individual[0], 1e-5f);
}

TEST(PairwiseModel, TrainingImprovesPairwiseAccuracy) {
  EmbeddingConfig emb = {TechniqueKind::kMemcom, 60, 16, 12};
  PairwiseRankModel model(emb, 25, 0.0, 5);
  auto optimizer = make_optimizer("adam", 5e-3);
  const ParamRefs params = model.params();

  IdBatch histories(8, 4);
  Rng rng(6);
  for (Index i = 0; i < histories.size(); ++i) {
    histories.ids[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(1 + rng.uniform_index(59));
  }
  std::vector<Index> preferred(8);
  std::vector<Index> other(8);
  for (Index i = 0; i < 8; ++i) {
    preferred[static_cast<std::size_t>(i)] = i;          // fixed preference
    other[static_cast<std::size_t>(i)] = 24 - i;
  }
  float first_acc = 0.0f;
  float acc = 0.0f;
  for (int step = 0; step < 60; ++step) {
    model.train_pair_batch(histories, preferred, other, &acc);
    if (step == 0) {
      first_acc = acc;
    }
    optimizer->step(params);
    Optimizer::zero_grad(params);
  }
  EXPECT_GT(acc, 0.9f);
  EXPECT_GE(acc, first_acc);
}

TEST(PairwiseModel, ParamCountIncludesItemTower) {
  EmbeddingConfig emb = {TechniqueKind::kFull, 60, 16, 0};
  PairwiseRankModel model(emb, 25, 0.0, 7);
  // embedding 60*16 + bn 32 + proj (16*16+16) + items (25*16 + 25)
  EXPECT_EQ(model.param_count(), 960 + 32 + 272 + 425);
}

TEST(PairwiseModel, InvalidItemRejected) {
  EmbeddingConfig emb = {TechniqueKind::kFull, 60, 16, 0};
  PairwiseRankModel model(emb, 25, 0.0, 8);
  IdBatch history(1, 2);
  history.ids = {1, 2};
  EXPECT_THROW(model.score(history, {25}, false), std::runtime_error);
}


TEST(RecModel, McmRoundTripRestoresExactInference) {
  ModelConfig config = base_config(ModelArch::kClassification);
  RecModel model(config);
  // Perturb away from init so the round trip is non-trivial, and prime the
  // batchnorm running stats.
  model.forward(toy_batch(), true);
  for (Param* p : model.params()) {
    if (p->numel() > 0) {
      p->value.scale_(1.25f);
    }
  }
  const Tensor expected = model.forward(toy_batch(), false);

  const std::string path = "/tmp/memcom_roundtrip_test.mcm";
  model.export_mcm(path);
  RecModel fresh(config);
  fresh.load_mcm(path);
  const Tensor restored = fresh.forward(toy_batch(), false);
  EXPECT_TRUE(restored.equals(expected));
  std::remove(path.c_str());
}

TEST(RecModel, McmLoadRejectsMismatchedConfig) {
  ModelConfig config = base_config(ModelArch::kRanking);
  RecModel model(config);
  const std::string path = "/tmp/memcom_mismatch_test.mcm";
  model.export_mcm(path);
  ModelConfig other = config;
  other.embedding.kind = TechniqueKind::kNaiveHash;
  RecModel wrong(other);
  EXPECT_THROW(wrong.load_mcm(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memcom
