#include "data/spec.h"

#include <cmath>

#include "core/check.h"

namespace memcom {

namespace {
Index scaled(Index base, double scale) {
  return static_cast<Index>(std::llround(static_cast<double>(base) * scale));
}
}  // namespace

DatasetSpec newsgroup_spec(double scale) {
  DatasetSpec s;
  s.name = "newsgroup";
  s.items = scaled(4000, scale);  // paper: 105K token vocabulary
  s.countries = 0;
  s.output_vocab = 20;            // paper: 20 topics (unscaled)
  // The paper's 11.3K documents contain ~1.4M token occurrences, so every
  // frequent word is seen many times; give the stand-in the same
  // tokens-per-vocab-entry density.
  s.train_samples = scaled(8000, scale);
  s.eval_samples = scaled(1500, scale);
  s.zipf_alpha = 1.05;            // word frequencies are strongly Zipfian
  s.output_alpha = 0.3;           // topics are roughly balanced
  // Words are strongly topic-indicative, and 20 topics live in a low-dim
  // space: strongest affinity / smallest latent space of the seven specs.
  s.affinity = 6.0;
  s.latent_dim = 8;
  s.paper_input_vocab = 105000;
  s.paper_output_vocab = 20;
  return s;
}

DatasetSpec movielens_spec(double scale) {
  DatasetSpec s;
  s.name = "movielens";
  s.items = scaled(1000, scale);  // paper: 10K
  s.output_vocab = scaled(500, scale);  // paper: 5K
  s.train_samples = scaled(4000, scale);
  s.eval_samples = scaled(900, scale);
  s.zipf_alpha = 0.9;
  s.paper_input_vocab = 10000;
  s.paper_output_vocab = 5000;
  return s;
}

DatasetSpec millionsongs_spec(double scale) {
  DatasetSpec s;
  s.name = "millionsongs";
  s.items = scaled(2500, scale);  // paper: 50K
  s.output_vocab = scaled(1000, scale);  // paper: 20K
  s.train_samples = scaled(6000, scale);
  s.eval_samples = scaled(1000, scale);
  s.zipf_alpha = 1.0;
  s.paper_input_vocab = 50000;
  s.paper_output_vocab = 20000;
  return s;
}

DatasetSpec google_local_spec(double scale) {
  DatasetSpec s;
  s.name = "google_local";
  s.items = scaled(6000, scale);  // paper: 200K
  s.output_vocab = scaled(800, scale);  // paper: 20K
  s.train_samples = scaled(8000, scale);
  s.eval_samples = scaled(1000, scale);
  // §A.1: "the distribution of reviews is more even across all entities due
  // to geographical constraints" — the flattest catalog of the seven.
  s.zipf_alpha = 0.35;
  s.output_alpha = 0.3;
  s.paper_input_vocab = 200000;
  s.paper_output_vocab = 20000;
  return s;
}

DatasetSpec netflix_spec(double scale) {
  DatasetSpec s;
  s.name = "netflix";
  s.items = scaled(1700, scale);  // paper: 17K
  s.output_vocab = scaled(800, scale);  // paper: 16K
  s.train_samples = scaled(5000, scale);
  s.eval_samples = scaled(1000, scale);
  s.zipf_alpha = 0.9;
  s.paper_input_vocab = 17000;
  s.paper_output_vocab = 16000;
  return s;
}

DatasetSpec games_spec(double scale) {
  DatasetSpec s;
  s.name = "games";
  s.items = scaled(12000, scale);  // paper: 480K apps
  s.countries = 24;                // shared country+app vocabulary (§5.1)
  s.output_vocab = scaled(3000, scale);  // paper: 119K
  s.train_samples = scaled(8000, scale); // paper: 78M (largest corpus)
  s.eval_samples = scaled(800, scale);
  s.zipf_alpha = 1.1;  // app downloads are heavily head-dominated
  s.paper_input_vocab = 480000;
  s.paper_output_vocab = 119000;
  return s;
}

DatasetSpec arcade_spec(double scale) {
  DatasetSpec s;
  s.name = "arcade";
  s.items = scaled(9000, scale);  // paper: 300K
  s.countries = 24;
  s.output_vocab = 145;           // paper: 145 (unscaled — tiny by design)
  s.train_samples = scaled(6000, scale);  // paper: 7.5M
  s.eval_samples = scaled(800, scale);
  s.zipf_alpha = 1.1;
  s.paper_input_vocab = 300000;
  s.paper_output_vocab = 145;
  return s;
}

std::vector<DatasetSpec> all_dataset_specs(double scale) {
  return {newsgroup_spec(scale),   movielens_spec(scale),
          millionsongs_spec(scale), google_local_spec(scale),
          netflix_spec(scale),     games_spec(scale),
          arcade_spec(scale)};
}

DatasetSpec spec_by_name(const std::string& name, double scale) {
  for (DatasetSpec& s : all_dataset_specs(scale)) {
    if (s.name == name) {
      return s;
    }
  }
  check(false, "unknown dataset: " + name);
  return {};  // unreachable
}

}  // namespace memcom
