// On-device deployment walkthrough (§3 + §5.3): train a compressed model,
// export it to the mmap-able .mcm format (optionally quantized, A.2), load
// it with the on-device inference engine under a CoreML-like and a
// TF-Lite-like device profile, and report latency + resident memory.
//
//   ./ondevice_deploy [--bits 32|16|8|4] [--epochs 2]
#include <cstdio>
#include <iostream>

#include "core/flags.h"
#include "core/table.h"
#include "data/synthetic.h"
#include "ondevice/engine.h"
#include "repro/trainer.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int bits = static_cast<int>(flags.get_int("bits", 32));
  TrainConfig train;
  train.epochs = flags.get_int("epochs", 2);

  const SyntheticDataset data(movielens_spec(), /*seed=*/5);
  ModelConfig config;
  config.embedding = {TechniqueKind::kMemcom, data.input_vocab(), 64,
                      std::max<Index>(8, data.input_vocab() / 16)};
  config.arch = ModelArch::kRanking;
  config.output_vocab = data.output_vocab();
  RecModel model(config);

  std::cout << "== on-device deployment ==\n";
  std::cout << "training memcom model (" << model.param_count()
            << " params)...\n";
  const EvalResult eval = train_and_evaluate(model, data, train);
  std::cout << "eval nDCG@32 = " << format_float(eval.ndcg, 4) << "\n";

  const std::string path = "/tmp/memcom_quickstart.mcm";
  model.export_mcm(path, dtype_from_bits(bits));
  std::cout << "exported " << path << " at " << bits << "-bit weights\n\n";

  const MmapModel mapped(path);
  std::cout << "model file: " << mapped.file_size() / 1024 << " KiB, "
            << mapped.tensor_names().size() << " tensors\n\n";

  // One realistic history from the eval split.
  const Batch sample = make_batch(data.eval(), 0, 1);

  TextTable table(
      {"device profile", "latency (ms)", "resident memory (MB)"});
  for (const DeviceProfile& profile :
       {coreml_profile("all"), coreml_profile("cpuOnly"), tflite_profile()}) {
    InferenceEngine engine(mapped, profile);
    const LatencyStats stats = engine.benchmark(sample.inputs.ids, 100);
    table.add_row({profile.label(), format_float(stats.mean_ms, 3),
                   format_float(engine.resident_megabytes(), 2)});
  }
  std::cout << table.to_string();
  std::cout << "\nLookup-path models touch O(history) table rows; see "
               "bench/table3_ondevice for the Weinberger one-hot contrast.\n";
  std::remove(path.c_str());
  return 0;
}
