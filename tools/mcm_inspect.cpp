// mcm_inspect — print the contents of an exported .mcm on-device model:
// metadata, tensor directory (name / dtype / shape / quantization scale /
// blob offset / size), per-section byte accounting, the v3 compiled-plan
// verdict (present / absent / stale-with-reason), the v4 catalog-index
// verdict (format version, centroid count, cluster-size spread), and
// summary statistics per tensor.
//
//   ./mcm_inspect model.mcm [--stats]
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/flags.h"
#include "core/table.h"
#include "ondevice/catalog_index.h"
#include "ondevice/format.h"
#include "ondevice/plan.h"

using namespace memcom;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: mcm_inspect <model.mcm> [--stats]\n";
    return 2;
  }
  const std::string path = flags.positional()[0];
  const MmapModel model(path);

  std::cout << "file: " << path << " (" << model.file_size() << " bytes)\n";
  if (model.has_model_identity()) {
    std::cout << "model: " << model.model_name() << " (version "
              << model.model_version() << ")\n\n";
  } else {
    std::cout << "model: (legacy file — no name/version metadata)\n\n";
  }
  std::cout << "metadata:\n";
  for (const auto& [key, value] : model.metadata()) {
    std::cout << "  " << key << " = " << value << "\n";
  }

  TextTable table({"tensor", "dtype", "shape", "scale", "offset", "bytes"});
  std::uint64_t total_bytes = 0;
  for (const std::string& name : model.tensor_names()) {
    const TensorEntry& entry = model.entry(name);
    // Grouped dtypes print their group size inline ("i4g/32"): the group
    // size changes the payload layout, so it belongs in the dtype column.
    std::string dtype = dtype_name(entry.dtype);
    if (dtype_is_grouped(entry.dtype)) {
      dtype += "/" + std::to_string(entry.group_size);
    }
    table.add_row({name, dtype,
                   shape_to_string(entry.shape),
                   format_float(entry.scale, 6),
                   std::to_string(entry.offset),
                   std::to_string(entry.byte_size)});
    total_bytes += entry.byte_size;
  }
  std::cout << "\n" << table.to_string();
  std::cout << "total tensor payload: " << total_bytes << " bytes ("
            << format_float(static_cast<double>(total_bytes) / 1024.0 / 1024.0,
                            2)
            << " MB)\n";

  // Per-section byte accounting. The front section runs up to the first
  // blob (or the plan section / end of file when there are no tensors);
  // whatever the named sections don't cover is inter-blob alignment pad.
  std::uint64_t first_blob = model.file_size();
  for (const std::string& name : model.tensor_names()) {
    first_blob = std::min(first_blob, model.entry(name).offset);
  }
  const std::uint64_t plan_bytes =
      model.has_plan_section() ? model.plan_size() : 0;
  if (model.has_plan_section()) {
    first_blob = std::min(first_blob, model.plan_offset());
  }
  const std::uint64_t index_bytes =
      model.has_index_section() ? model.index_size() : 0;
  if (model.has_index_section()) {
    first_blob = std::min(first_blob, model.index_offset());
  }
  // Saturate: a stale v3/v4 header may declare a section size larger than
  // the file, and the inspector must keep printing, not wrap.
  const std::uint64_t covered =
      first_blob + total_bytes + plan_bytes + index_bytes;
  const std::uint64_t padding =
      covered <= model.file_size() ? model.file_size() - covered : 0;
  std::cout << "\nsections (format v" << model.format_version() << "):\n";
  std::cout << "  header + metadata + directory: " << first_blob
            << " bytes\n";
  std::cout << "  tensor payload: " << total_bytes << " bytes (+ " << padding
            << " alignment)\n";
  std::cout << "  compiled plan: " << plan_bytes << " bytes\n";
  std::cout << "  catalog index: " << index_bytes << " bytes\n";

  // Plan verdict: what a loader on this file would do.
  const PlanDecodeResult plan = decode_plan(model);
  switch (plan.status) {
    case PlanStatus::kValid:
      std::cout << "plan: present (valid — loader adopts, skipping compile)"
                << "\n";
      break;
    case PlanStatus::kAbsent:
      std::cout << "plan: absent (loader runs a full compile)\n";
      break;
    case PlanStatus::kStale:
      std::cout << "plan: stale — " << plan.reason
                << " (loader falls back to a full compile)\n";
      break;
  }

  // Catalog-index verdict: whether session ranking on this file can take
  // the clustered pruned scan, and the cluster-size spread when it can.
  const CatalogIndexDecodeResult index = decode_catalog_index(model);
  switch (index.status) {
    case PlanStatus::kValid: {
      // Section format word straight off the prefix (magic, format,
      // endian, flags — decode already validated it).
      const std::uint32_t section_format =
          index_bytes >= 16
              ? *reinterpret_cast<const std::uint32_t*>(model.index_data() + 4)
              : 0;
      std::vector<Index> sizes;
      sizes.reserve(static_cast<std::size_t>(index.index.clusters));
      for (Index c = 0; c < index.index.clusters; ++c) {
        sizes.push_back(index.index.cluster_size(c));
      }
      std::sort(sizes.begin(), sizes.end());
      std::cout << "catalog index: present (valid — section format v"
                << section_format << ", " << index.index.clusters
                << " centroids over " << index.index.items << " items x "
                << index.index.dim << " dims, cluster size min/median/max "
                << sizes.front() << "/" << sizes[sizes.size() / 2] << "/"
                << sizes.back() << ", " << index_bytes
                << " section bytes — pruned top-k available)\n";
      break;
    }
    case PlanStatus::kAbsent:
      std::cout << "catalog index: absent (session ranking scans the full "
                   "catalog)\n";
      break;
    case PlanStatus::kStale:
      std::cout << "catalog index: stale — " << index.reason
                << " (loader falls back to the exact full scan)\n";
      break;
  }

  // Output-table summary: the dense head "out.weight" ([in, items], each
  // column one catalog item) is what session-based next-item serving scans
  // for its full-catalog top-k — surface its dims and compressed footprint.
  if (model.has_tensor("out.weight")) {
    const TensorEntry& head = model.entry("out.weight");
    if (head.shape.size() == 2) {
      std::cout << "output catalog (out.weight): " << head.shape[1]
                << " items x " << head.shape[0] << " dims, "
                << head.byte_size << " bytes compressed\n";
    }
  }

  if (flags.get_bool("stats", false)) {
    std::cout << "\nper-tensor statistics (dequantized):\n";
    TextTable stats({"tensor", "min", "max", "mean", "l2"});
    for (const std::string& name : model.tensor_names()) {
      const Tensor t = model.load_tensor(name);
      if (t.empty()) {
        continue;
      }
      stats.add_row({name, format_float(t.min(), 4), format_float(t.max(), 4),
                     format_float(t.mean(), 5), format_float(t.l2_norm(), 3)});
    }
    std::cout << stats.to_string();
  }
  return 0;
}
