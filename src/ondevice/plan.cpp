#include "ondevice/plan.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "core/check.h"
#include "core/serialize.h"
#include "embedding/factory.h"

namespace memcom {

namespace {
constexpr std::uint32_t kPlanMagic = 0x4E414C50U;  // "PLAN" little-endian
constexpr std::uint32_t kPlanFormatVersion = 1;
constexpr std::uint32_t kPlanEndianCheck = 0x01020304U;
// Plan buffers were produced by the scalar reference dequantizer, so the
// plan is valid for every kernel dispatch family. A future writer that
// drops the guarantee must clear the bit, and this reader will refuse.
constexpr std::uint32_t kPlanFlagScalarPredequant = 1U << 0;
constexpr std::uint64_t kPlanAlignment = 64;
// Fixed-size prefix (magic, format, endian, flags) + trailing checksum: the
// least a section can hold before structural parsing is even attempted.
constexpr std::uint64_t kPlanMinBytes = 4 * sizeof(std::uint32_t) + 8;
constexpr std::size_t kPlanBufferCount = 7;

std::uint64_t align_up(std::uint64_t offset, std::uint64_t alignment) {
  return (offset + alignment - 1) / alignment * alignment;
}

// The seven buffer slots, in serialization order. Unused slots (e.g. bn2 on
// a ranking trunk) serialize as count 0 so the layout never branches.
std::vector<const PlanBuffer*> buffer_slots(const CompiledPlan& plan) {
  return {&plan.bn1_scale,   &plan.bn1_shift, &plan.bn2_scale,
          &plan.bn2_shift,   &plan.dense1_bias, &plan.out_bias,
          &plan.projection};
}

std::vector<PlanBuffer*> buffer_slots(CompiledPlan& plan) {
  return {&plan.bn1_scale,   &plan.bn1_shift, &plan.bn2_scale,
          &plan.bn2_shift,   &plan.dense1_bias, &plan.out_bias,
          &plan.projection};
}

PlanDecodeResult stale(std::string reason) {
  PlanDecodeResult result;
  result.status = PlanStatus::kStale;
  result.reason = std::move(reason);
  return result;
}
}  // namespace

Technique technique_from_metadata(const std::string& name) {
  // The engine supports the lookup/one-hot subset of the technique
  // registry; going through embedding/factory's TechniqueKind keeps the
  // metadata-string mapping in one place, and this exhaustive switch forces
  // an explicit supported/unsupported decision whenever the registry grows.
  switch (technique_from_string(name)) {
    case TechniqueKind::kFull: return Technique::kUncompressed;
    case TechniqueKind::kReduceDim: return Technique::kReduceDim;
    case TechniqueKind::kTruncateRare: return Technique::kTruncateRare;
    case TechniqueKind::kNaiveHash: return Technique::kNaiveHash;
    case TechniqueKind::kWeinberger: return Technique::kWeinberger;
    case TechniqueKind::kMemcom: return Technique::kMemcom;
    case TechniqueKind::kMemcomBias: return Technique::kMemcomBias;
    case TechniqueKind::kQrMult: return Technique::kQrMult;
    case TechniqueKind::kQrConcat: return Technique::kQrConcat;
    case TechniqueKind::kDoubleHash: return Technique::kDoubleHash;
    case TechniqueKind::kFactorized: return Technique::kFactorized;
    case TechniqueKind::kHashedNets:
    case TechniqueKind::kMixedDim:
    case TechniqueKind::kTtRec:
      break;
  }
  check(false, "engine: unsupported technique " + name);
  return Technique::kUncompressed;
}

Index embedding_stage_ops(Technique kind) {
  // The frameworks execute the WHOLE batch-1 embedding stage as a handful
  // of fused graph ops (gather per table + the composition op), not one op
  // per token — dispatch overhead must be charged accordingly.
  switch (kind) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kNaiveHash:
    case Technique::kTruncateRare:
      return 1;  // gather
    case Technique::kMemcom:
      return 3;  // gather U, gather V, broadcast multiply
    case Technique::kMemcomBias:
      return 5;  // + gather W, broadcast add
    case Technique::kQrMult:
    case Technique::kQrConcat:
    case Technique::kDoubleHash:
      return 3;  // two gathers + compose
    case Technique::kFactorized:
      return 2;  // gather + projection matmul
    case Technique::kWeinberger:
      return 3;  // one_hot + matmul + reduce_sum (the un-fused §5.3 path)
  }
  return 1;
}

PlanBuffer PlanBuffer::owned(std::vector<float> values) {
  PlanBuffer buffer;
  buffer.storage_ = std::move(values);
  buffer.data_ = buffer.storage_.data();
  buffer.size_ = buffer.storage_.size();
  return buffer;
}

PlanBuffer PlanBuffer::view(const float* data, std::size_t count) {
  PlanBuffer buffer;
  buffer.data_ = data;
  buffer.size_ = count;
  return buffer;
}

SpanSrc make_span_src(const TensorEntry& entry, const std::uint8_t* payload) {
  SpanSrc src;
  src.dtype = entry.dtype;
  src.scale = entry.scale;
  src.payload = payload;
  if (entry.dtype == DType::kI4G) {
    // Split the blob once: [f32 scales header][packed nibbles].
    src.group_scales = reinterpret_cast<const float*>(payload);
    src.packed =
        payload + i4g_scales_bytes(static_cast<std::size_t>(entry.numel()),
                                   entry.group_size);
    src.group_size = entry.group_size;
  }
  return src;
}

std::vector<std::string> plan_tensor_roles(Technique kind, bool has_hidden) {
  std::vector<std::string> names;
  switch (kind) {
    case Technique::kUncompressed:
    case Technique::kReduceDim:
    case Technique::kTruncateRare:
    case Technique::kNaiveHash:
    case Technique::kWeinberger:
      names = {"emb.table"};
      break;
    case Technique::kMemcom:
      names = {"emb.shared", "emb.multiplier"};
      break;
    case Technique::kMemcomBias:
      names = {"emb.shared", "emb.multiplier", "emb.bias"};
      break;
    case Technique::kQrMult:
    case Technique::kQrConcat:
      names = {"emb.remainder", "emb.quotient"};
      break;
    case Technique::kDoubleHash:
      names = {"emb.table_a", "emb.table_b"};
      break;
    case Technique::kFactorized:
      names = {"emb.factors", "emb.projection"};
      break;
  }
  for (const char* suffix : {".gamma", ".beta", ".mean", ".var"}) {
    names.push_back(std::string("bn1") + suffix);
  }
  if (has_hidden) {
    names.push_back("dense1.weight");
    names.push_back("dense1.bias");
    for (const char* suffix : {".gamma", ".beta", ".mean", ".var"}) {
      names.push_back(std::string("bn2") + suffix);
    }
  }
  names.push_back("out.weight");
  names.push_back("out.bias");
  return names;
}

CompiledPlan build_plan(const MmapModel& model) {
  CompiledPlan plan;
  plan.model_name = model.model_name();
  plan.model_version = model.model_version();
  plan.arch = model.metadata_value("arch");
  plan.technique = model.metadata_value("technique");
  check(plan.arch == "classification" || plan.arch == "ranking",
        "engine: unknown architecture " + plan.arch);
  plan.kind = technique_from_metadata(plan.technique);
  plan.has_hidden = plan.arch == "classification";
  plan.vocab = model.metadata_int("vocab");
  plan.embed_dim = model.metadata_int("embed_dim");
  plan.hash_size = model.metadata_int("knob");
  plan.output_dim = model.metadata_int("output_dim");
  plan.hidden_dim =
      model.has_metadata("hidden_dim") ? model.metadata_int("hidden_dim") : 0;

  for (const std::string& name : plan_tensor_roles(plan.kind, plan.has_hidden)) {
    plan.handles.push_back(
        PlanHandle{name, static_cast<std::uint64_t>(model.entry_index(name))});
  }

  // Always the scalar reference: pre-dequantized buffers feed every kernel
  // family, so their contents must not depend on the dispatch decision.
  auto dequantize = [&model](const std::string& name) {
    const TensorEntry& entry = model.entry(name);
    std::vector<float> out(static_cast<std::size_t>(entry.numel()));
    scalar_kernels().dequant_span(make_span_src(entry, model.payload(entry)),
                                  0, entry.numel(), out.data());
    return out;
  };
  auto fold_batchnorm = [&](const std::string& prefix, Index width,
                            PlanBuffer& scale_out, PlanBuffer& shift_out) {
    const std::vector<float> gamma = dequantize(prefix + ".gamma");
    const std::vector<float> beta = dequantize(prefix + ".beta");
    const std::vector<float> mean = dequantize(prefix + ".mean");
    const std::vector<float> var = dequantize(prefix + ".var");
    std::vector<float> scale(static_cast<std::size_t>(width));
    std::vector<float> shift(static_cast<std::size_t>(width));
    for (Index i = 0; i < width; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      scale[s] = gamma[s] / std::sqrt(var[s] + 1e-5f);
      shift[s] = beta[s] - mean[s] * scale[s];
    }
    scale_out = PlanBuffer::owned(std::move(scale));
    shift_out = PlanBuffer::owned(std::move(shift));
  };

  if (plan.kind == Technique::kFactorized) {
    plan.factor_dim = model.entry("emb.factors").shape[1];
    plan.projection = PlanBuffer::owned(dequantize("emb.projection"));
  }
  fold_batchnorm("bn1", plan.embed_dim, plan.bn1_scale, plan.bn1_shift);
  if (plan.has_hidden) {
    plan.dense1_bias = PlanBuffer::owned(dequantize("dense1.bias"));
    fold_batchnorm("bn2", plan.hidden_dim, plan.bn2_scale, plan.bn2_shift);
  }
  plan.out_bias = PlanBuffer::owned(dequantize("out.bias"));
  return plan;
}

std::uint64_t plan_checksum(const std::uint8_t* data, std::size_t size) {
  // FNV-1a over 8-byte little-endian words (tail zero-padded), length
  // bound: one multiply per word instead of per byte keeps validating a
  // plan cheap next to the dequantization work adoption replaces.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = 14695981039346656037ULL;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    hash = (hash ^ word) * kPrime;
  }
  if (i < size) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    hash = (hash ^ word) * kPrime;
  }
  return (hash ^ static_cast<std::uint64_t>(size)) * kPrime;
}

std::vector<std::uint8_t> serialize_plan(const CompiledPlan& plan) {
  const std::vector<const PlanBuffer*> slots = buffer_slots(plan);
  // Offsets are fixed-width u64s, so the header size does not depend on
  // their values: serialize once with zeros to measure, lay the buffer
  // regions out 64-byte-aligned behind it, then serialize for real.
  auto emit_header = [&](std::ostream& os,
                         const std::vector<std::uint64_t>& offsets) {
    write_u32(os, kPlanMagic);
    write_u32(os, kPlanFormatVersion);
    write_u32(os, kPlanEndianCheck);
    write_u32(os, kPlanFlagScalarPredequant);
    write_string(os, plan.model_name);
    write_u64(os, plan.model_version);
    write_string(os, plan.arch);
    write_string(os, plan.technique);
    write_i64(os, plan.vocab);
    write_i64(os, plan.embed_dim);
    write_i64(os, plan.hash_size);
    write_i64(os, plan.hidden_dim);
    write_i64(os, plan.output_dim);
    write_i64(os, plan.factor_dim);
    write_u64(os, plan.handles.size());
    for (const PlanHandle& handle : plan.handles) {
      write_string(os, handle.name);
      write_u64(os, handle.index);
    }
    write_u64(os, slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      write_u64(os, slots[i]->size());
      write_u64(os, offsets[i]);
    }
  };

  std::ostringstream probe;
  emit_header(probe, std::vector<std::uint64_t>(slots.size(), 0));
  const std::uint64_t header_size =
      static_cast<std::uint64_t>(probe.str().size());

  std::vector<std::uint64_t> offsets(slots.size(), 0);
  std::uint64_t cursor = header_size;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]->empty()) {
      continue;
    }
    cursor = align_up(cursor, kPlanAlignment);
    offsets[i] = cursor;
    cursor += slots[i]->byte_size();
  }

  std::ostringstream os;
  emit_header(os, offsets);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]->empty()) {
      continue;
    }
    for (std::uint64_t p = static_cast<std::uint64_t>(os.tellp());
         p < offsets[i]; ++p) {
      os.put('\0');
    }
    write_f32_array(os, slots[i]->data(), slots[i]->size());
  }
  const std::string body = os.str();
  const std::uint64_t checksum = plan_checksum(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
  write_u64(os, checksum);

  const std::string full = os.str();
  return std::vector<std::uint8_t>(full.begin(), full.end());
}

PlanDecodeResult decode_plan(const MmapModel& model) {
  if (!model.has_plan_section()) {
    return PlanDecodeResult{};  // kAbsent
  }
  // A declared-but-unreachable section (out of file bounds, misaligned) was
  // flagged at open; stale, not fatal — the tensors themselves are intact.
  if (model.plan_data() == nullptr) {
    return stale(model.plan_bounds_error());
  }
  const std::uint8_t* base = model.plan_data();
  const std::uint64_t size = model.plan_size();
  if (size < kPlanMinBytes) {
    return stale("plan section truncated (" + std::to_string(size) +
                 " bytes)");
  }

  // Fixed-prefix compatibility gate first, checksum second, structure
  // third, semantics last — each layer only reads what the previous one
  // vouched for.
  std::uint32_t magic = 0, format = 0, endian = 0, flags = 0;
  std::memcpy(&magic, base, 4);
  std::memcpy(&format, base + 4, 4);
  std::memcpy(&endian, base + 8, 4);
  std::memcpy(&flags, base + 12, 4);
  if (magic != kPlanMagic) {
    return stale("bad plan magic");
  }
  if (format != kPlanFormatVersion) {
    return stale("unsupported plan format version " + std::to_string(format));
  }
  if (endian != kPlanEndianCheck) {
    return stale("plan endianness mismatch");
  }
  if ((flags & kPlanFlagScalarPredequant) == 0) {
    return stale("plan buffers not scalar-predequantized");
  }
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, base + size - 8, 8);
  if (plan_checksum(base, static_cast<std::size_t>(size - 8)) !=
      stored_checksum) {
    return stale("plan checksum mismatch");
  }
  const std::uint64_t payload_limit = size - 8;  // bytes before the checksum

  try {
    // Structural parse of the header region. The buffer data regions are
    // never copied — only the strings/ints front, which is tiny; cap the
    // copy so a pathological header cannot balloon it (reads past the cap
    // fail the stream and land in the catch below).
    const std::size_t header_cap = static_cast<std::size_t>(
        std::min<std::uint64_t>(size, 1ULL << 16));
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(base), header_cap));
    is.ignore(16);  // fixed prefix, validated above

    CompiledPlan plan;
    plan.model_name = read_string(is);
    plan.model_version = read_u64(is);
    plan.arch = read_string(is);
    plan.technique = read_string(is);
    plan.vocab = read_i64(is);
    plan.embed_dim = read_i64(is);
    plan.hash_size = read_i64(is);
    plan.hidden_dim = read_i64(is);
    plan.output_dim = read_i64(is);
    plan.factor_dim = read_i64(is);
    const std::uint64_t handle_count = read_u64(is);
    if (handle_count > model.entry_count()) {
      return stale("plan declares more handles than the directory has");
    }
    for (std::uint64_t i = 0; i < handle_count; ++i) {
      PlanHandle handle;
      handle.name = read_string(is);
      handle.index = read_u64(is);
      plan.handles.push_back(std::move(handle));
    }
    const std::uint64_t buffer_count = read_u64(is);
    if (buffer_count != kPlanBufferCount) {
      return stale("unexpected plan buffer count " +
                   std::to_string(buffer_count));
    }
    std::vector<PlanBuffer*> slots = buffer_slots(plan);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::uint64_t count = read_u64(is);
      const std::uint64_t offset = read_u64(is);
      if (count == 0) {
        continue;
      }
      // Overflow-safe bounds: a hostile header can declare sizes whose
      // byte count wraps back into range.
      if (count > payload_limit / sizeof(float) ||
          offset > payload_limit - count * sizeof(float)) {
        return stale("plan buffer out of section bounds");
      }
      if (offset % kPlanAlignment != 0) {
        return stale("plan buffer misaligned");
      }
      *slots[i] = PlanBuffer::view(
          reinterpret_cast<const float*>(base + offset),
          static_cast<std::size_t>(count));
    }

    // Semantic agreement with the file the plan rides in: identity,
    // metadata dims, directory handles, buffer widths. Any skew means the
    // section belongs to a different refresh of the model — recompile.
    if (plan.model_name != model.model_name()) {
      return stale("plan model_name skew (plan '" + plan.model_name +
                   "' vs file '" + model.model_name() + "')");
    }
    if (plan.model_version != model.model_version()) {
      return stale("plan model_version skew (plan " +
                   std::to_string(plan.model_version) + " vs file " +
                   std::to_string(model.model_version()) + ")");
    }
    if (plan.arch != model.metadata_value("arch") ||
        plan.technique != model.metadata_value("technique")) {
      return stale("plan arch/technique skew");
    }
    plan.kind = technique_from_metadata(plan.technique);
    plan.has_hidden = plan.arch == "classification";
    const Index file_hidden = model.has_metadata("hidden_dim")
                                  ? model.metadata_int("hidden_dim")
                                  : 0;
    if (plan.vocab != model.metadata_int("vocab") ||
        plan.embed_dim != model.metadata_int("embed_dim") ||
        plan.hash_size != model.metadata_int("knob") ||
        plan.output_dim != model.metadata_int("output_dim") ||
        plan.hidden_dim != file_hidden) {
      return stale("plan dimension skew");
    }
    const std::vector<std::string> roles =
        plan_tensor_roles(plan.kind, plan.has_hidden);
    if (plan.handles.size() != roles.size()) {
      return stale("plan handle count skew");
    }
    for (std::size_t i = 0; i < roles.size(); ++i) {
      const PlanHandle& handle = plan.handles[i];
      if (handle.name != roles[i] || handle.index >= model.entry_count() ||
          model.entry_at(static_cast<std::size_t>(handle.index)).name !=
              handle.name) {
        return stale("plan handle skew for " + roles[i]);
      }
    }
    if (plan.kind == Technique::kFactorized &&
        plan.factor_dim != model.entry("emb.factors").shape[1]) {
      return stale("plan factor_dim skew");
    }
    const Index projection_count =
        plan.kind == Technique::kFactorized ? plan.factor_dim * plan.embed_dim
                                            : 0;
    const struct { const PlanBuffer* buffer; Index expect; } widths[] = {
        {&plan.bn1_scale, plan.embed_dim},
        {&plan.bn1_shift, plan.embed_dim},
        {&plan.bn2_scale, plan.has_hidden ? plan.hidden_dim : 0},
        {&plan.bn2_shift, plan.has_hidden ? plan.hidden_dim : 0},
        {&plan.dense1_bias, plan.has_hidden ? plan.hidden_dim : 0},
        {&plan.out_bias, plan.output_dim},
        {&plan.projection, projection_count},
    };
    for (const auto& [buffer, expect] : widths) {
      if (buffer->size() != static_cast<std::size_t>(expect)) {
        return stale("plan buffer width skew");
      }
    }

    plan.zero_copy = true;
    PlanDecodeResult result;
    result.status = PlanStatus::kValid;
    result.plan = std::move(plan);
    return result;
  } catch (const std::exception& e) {
    // Truncated/garbled header: the stream readers throw; report, fall
    // back. A bad plan section must never take down a loadable model.
    return stale(std::string("plan section unreadable: ") + e.what());
  }
}

}  // namespace memcom
