// EmbeddingLayer: the common interface for all compression techniques the
// paper evaluates, plus the uncompressed baseline (FullEmbedding).
//
// forward() maps a [B, L] id batch to [B, L, output_dim] float activations;
// backward() scatters the incoming gradient into the technique's tables
// (marking touched rows so the optimizers' sparse path applies).
#pragma once

#include <memory>
#include <string>

#include "core/tensor.h"
#include "embedding/id_batch.h"
#include "nn/param.h"

namespace memcom {

class EmbeddingLayer {
 public:
  virtual ~EmbeddingLayer() = default;

  virtual Tensor forward(const IdBatch& input, bool training) = 0;
  // Uses the IdBatch cached by the preceding forward().
  virtual void backward(const Tensor& grad_out) = 0;

  virtual ParamRefs params() = 0;
  virtual std::string name() const = 0;
  virtual Index vocab_size() const = 0;
  // Width of the produced embedding vectors.
  virtual Index output_dim() const = 0;

  // Total trainable parameters (== sum of params() numel; overridable only
  // for techniques with virtual/shared weights like HashedNets).
  virtual Index param_count();

  // Embedding vector for a single id (inference path; used by the A.4
  // uniqueness check and by model export verification).
  Tensor lookup_single(std::int32_t id);
};

using EmbeddingPtr = std::unique_ptr<EmbeddingLayer>;

// The uncompressed baseline: one row per vocabulary entry.
class FullEmbedding : public EmbeddingLayer {
 public:
  FullEmbedding(Index vocab, Index embed_dim, Rng& rng,
                std::string layer_name = "full_embedding");

  Tensor forward(const IdBatch& input, bool training) override;
  void backward(const Tensor& grad_out) override;
  ParamRefs params() override { return {&table_}; }
  std::string name() const override { return name_; }
  Index vocab_size() const override { return table_.value.dim(0); }
  Index output_dim() const override { return table_.value.dim(1); }

  Param& table() { return table_; }

 private:
  std::string name_;
  Param table_;  // [v, e]
  IdBatch cached_input_;
};

// Keras-style default embedding initializer: U[-0.05, 0.05).
Tensor embedding_init(Index rows, Index cols, Rng& rng);

}  // namespace memcom
