#include "embedding/hashing.h"

#include <cmath>
#include <unordered_map>

#include "core/check.h"
#include "core/rng.h"

namespace memcom {

Index mixed_hash(std::int64_t id, Index m, std::uint64_t salt) {
  const std::uint64_t mixed =
      splitmix64(static_cast<std::uint64_t>(id) ^ salt);
  return static_cast<Index>(mixed % static_cast<std::uint64_t>(m));
}

float sign_hash(std::int64_t id, std::uint64_t salt) {
  const std::uint64_t mixed =
      splitmix64(static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL ^ salt);
  return (mixed & 1ULL) != 0 ? 1.0f : -1.0f;
}

double expected_collision_rate(Index vocab_size, Index buckets) {
  check(vocab_size > 0 && buckets > 0, "collision rate: bad arguments");
  const double v = static_cast<double>(vocab_size);
  const double m = static_cast<double>(buckets);
  return v / m - 1.0 + std::pow(1.0 - 1.0 / m, v);
}

double expected_double_hash_collision_rate(Index vocab_size, Index buckets) {
  check(vocab_size > 0 && buckets > 0, "collision rate: bad arguments");
  const double v = static_cast<double>(vocab_size);
  const double m2 = static_cast<double>(buckets) * static_cast<double>(buckets);
  return v / m2 - 1.0 + std::pow(1.0 - 1.0 / m2, v);
}

double empirical_collision_fraction(Index vocab_size, Index buckets,
                                    bool pair_hash) {
  check(vocab_size > 1, "empirical collision: vocab too small");
  std::unordered_map<std::uint64_t, Index> bucket_count;
  bucket_count.reserve(static_cast<std::size_t>(vocab_size));
  for (Index i = 1; i < vocab_size; ++i) {
    std::uint64_t key = static_cast<std::uint64_t>(mod_hash(i, buckets));
    if (pair_hash) {
      key = key * static_cast<std::uint64_t>(buckets) +
            static_cast<std::uint64_t>(mixed_hash(i, buckets));
    }
    ++bucket_count[key];
  }
  Index colliding = 0;
  for (Index i = 1; i < vocab_size; ++i) {
    std::uint64_t key = static_cast<std::uint64_t>(mod_hash(i, buckets));
    if (pair_hash) {
      key = key * static_cast<std::uint64_t>(buckets) +
            static_cast<std::uint64_t>(mixed_hash(i, buckets));
    }
    if (bucket_count[key] > 1) {
      ++colliding;
    }
  }
  return static_cast<double>(colliding) / static_cast<double>(vocab_size - 1);
}

}  // namespace memcom
