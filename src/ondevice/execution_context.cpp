#include "ondevice/execution_context.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "embedding/hashing.h"
#include "embedding/id_batch.h"
#include "ondevice/clock.h"

namespace memcom {

namespace {
using Clock = SteadyClock;
}  // namespace

ExecutionContext::ExecutionContext(
    std::shared_ptr<const CompiledModel> compiled, DeviceProfile profile)
    : compiled_(std::move(compiled)),
      profile_(std::move(profile)),
      meter_(profile_.page_size, profile_.readahead_pages) {
  check(compiled_ != nullptr, "ExecutionContext: null compiled model");
  resize_scratch();
}

void ExecutionContext::bind(std::shared_ptr<const CompiledModel> compiled) {
  check(compiled != nullptr, "ExecutionContext: bind to null model");
  if (compiled.get() == compiled_.get()) {
    return;
  }
  compiled_ = std::move(compiled);
  resize_scratch();
  // The old version's page set is meaningless against the new mapping.
  meter_.reset();
  // Cached rows hold the OLD version's weights: rebuild the cache cold so a
  // swap can never serve stale floats (and partition widths follow the new
  // plan's technique).
  if (cache_budget_bytes_ > 0) {
    attach_row_cache();
  } else {
    row_cache_.reset();
  }
}

void ExecutionContext::resize_scratch() {
  const CompiledModel& plan = *compiled_;
  const Index e = plan.embed_dim();
  // Exact sizes per plan: the arena loops iterate whole vectors, so a
  // larger-than-needed buffer would change the simulated compute time.
  // resize() keeps capacity, so steady state on one plan never reallocates
  // and alternating plans settle to the high-water capacity.
  pooled_.resize(static_cast<std::size_t>(e));
  std::fill(pooled_.begin(), pooled_.end(), 0.0f);
  row_.resize(static_cast<std::size_t>(std::max(e, plan.factor_dim())), 0.0f);
  row2_.resize(static_cast<std::size_t>(
                   std::max({e, plan.hidden_dim(), plan.output_dim()})),
               0.0f);
  hidden_.resize(static_cast<std::size_t>(plan.hidden_dim()), 0.0f);
  logits_.resize(static_cast<std::size_t>(plan.output_dim()), 0.0f);
  onehot_.resize(plan.uses_onehot_path()
                     ? static_cast<std::size_t>(plan.hash_size())
                     : 0,
                 0.0f);
  query_.resize(plan.has_catalog_index()
                    ? static_cast<std::size_t>(plan.out().in) + 1
                    : 0,
                0.0f);
}

bool ExecutionContext::attach_row_cache() {
  std::vector<Index> widths = compiled_->cache_row_widths();
  if (widths.empty()) {
    row_cache_.reset();
    return false;
  }
  row_cache_ =
      std::make_unique<HotRowCache>(cache_budget_bytes_, std::move(widths));
  return true;
}

bool ExecutionContext::enable_row_cache(std::size_t budget_bytes) {
  cache_budget_bytes_ = budget_bytes;
  return attach_row_cache();
}

void ExecutionContext::clear_row_cache() {
  if (row_cache_ != nullptr) {
    row_cache_->clear();
  }
}

RowCacheStats ExecutionContext::row_cache_stats() const {
  return row_cache_ != nullptr ? row_cache_->stats() : RowCacheStats{};
}

void ExecutionContext::touch(const TensorRef& ref, Index offset,
                             Index count) {
  if (ref.dtype == DType::kI4G) {
    // Grouped blobs are two regions; a span read touches both. Scales: the
    // f32 entries of every group the span overlaps. Nibbles: the sub-byte
    // span itself, shifted past the scales header.
    const Index g = ref.entry->group_size;
    const Index first_group = offset / g;
    const Index last_group = (offset + count + g - 1) / g;
    meter_.touch(ref.file_offset + first_group * 4,
                 (last_group - first_group) * 4);
    const Index scales_bytes =
        static_cast<Index>(ref.src.packed - ref.src.payload);
    const ByteSpan span = packed_byte_span(offset, count, 4);
    meter_.touch(ref.file_offset + scales_bytes + span.offset, span.length);
    return;
  }
  // Sub-byte aware: the naive ceil(count*bits/8) undercounts a 4-bit span
  // starting mid-byte (the satellite bug this PR fixes); packed_byte_span
  // rounds the bit interval OUT to whole bytes.
  const ByteSpan span =
      packed_byte_span(offset, count, static_cast<int>(ref.element_bits));
  meter_.touch(ref.file_offset + span.offset, span.length);
}

const float* ExecutionContext::fetch(const TensorRef& ref, Index offset,
                                     Index count, float* scratch) {
  touch(ref, offset, count);
  if (ref.f32 != nullptr) {
    return ref.f32 + offset;
  }
  compiled_->kernels().dequant_span(ref.src, offset, count, scratch);
  return scratch;
}

const float* ExecutionContext::fetch_row(const TensorRef& ref,
                                         std::size_t table, Index row,
                                         Index elems, float* scratch) {
  if (row_cache_ == nullptr) {
    return fetch(ref, row * elems, elems, scratch);
  }
  if (const float* hit = row_cache_->lookup(table, row)) {
    // Served from the cache slab: no page touch, no dequantize. The slab
    // holds exactly the floats the mmap read would have produced, so the
    // logits stay bit-identical either way.
    return hit;
  }
  touch(ref, row * elems, elems);
  float* slot = row_cache_->fill(table, row);
  if (slot == nullptr) {
    // Partition has zero slots (its rows are wider than the per-table
    // budget share): serve straight from the mapping, never the slab.
    return fetch_uncached(ref, row * elems, elems, scratch);
  }
  if (ref.f32 != nullptr) {
    std::memcpy(slot, ref.f32 + row * elems,
                static_cast<std::size_t>(elems) * sizeof(float));
  } else {
    compiled_->kernels().dequant_span(ref.src, row * elems, elems, slot);
  }
  return slot;
}

const float* ExecutionContext::fetch_uncached(const TensorRef& ref,
                                              Index offset, Index count,
                                              float* scratch) {
  // Like fetch() minus the touch (the caller already metered the read).
  if (ref.f32 != nullptr) {
    return ref.f32 + offset;
  }
  compiled_->kernels().dequant_span(ref.src, offset, count, scratch);
  return scratch;
}

Index ExecutionContext::embed_pooled(const std::int32_t* ids, Index length) {
  const CompiledModel& plan = *compiled_;
  const KernelSet& ker = plan.kernels();
  const Technique kind = plan.technique_kind();
  const Index e = plan.embed_dim();
  const Index hash_size = plan.hash_size();
  std::fill(pooled_.begin(), pooled_.end(), 0.0f);
  float* pooled = pooled_.data();
  Index real = 0;
  for (Index t = 0; t < length; ++t) {
    const std::int32_t id = ids[t];
    if (id == kPadId) {
      continue;
    }
    ++real;
    switch (kind) {
      case Technique::kUncompressed:
      case Technique::kReduceDim: {
        const float* row =
            fetch_row(plan.emb_a(), kCacheTableA, id, e, row_.data());
        ker.acc_add(pooled, row, e);
        break;
      }
      case Technique::kTruncateRare: {
        const Index keep = hash_size;
        const Index r = static_cast<Index>(id) <= keep ? id : keep + 1;
        const float* row =
            fetch_row(plan.emb_a(), kCacheTableA, r, e, row_.data());
        ker.acc_add(pooled, row, e);
        break;
      }
      case Technique::kNaiveHash: {
        const float* row = fetch_row(plan.emb_a(), kCacheTableA,
                                     mod_hash(id, hash_size), e, row_.data());
        ker.acc_add(pooled, row, e);
        break;
      }
      case Technique::kMemcom:
      case Technique::kMemcomBias: {
        const float* row = fetch_row(plan.emb_a(), kCacheTableA,
                                     mod_hash(id, hash_size), e, row_.data());
        float mult = 0.0f;
        const float* mult_ptr =
            fetch_row(plan.emb_b(), kCacheTableB, id, 1, &mult);
        const float m = *mult_ptr;
        if (kind == Technique::kMemcomBias) {
          float bias = 0.0f;
          const float* bias_ptr =
              fetch_row(plan.emb_c(), kCacheTableC, id, 1, &bias);
          const float b = *bias_ptr;
          // Distinct kernel from the plain scale-add: `row*m + b` rounds
          // differently than `row*m` followed by `+ b` would, and the
          // bit-exactness contract pins the original expression.
          ker.acc_scale_bias_add(pooled, row, m, b, e);
        } else {
          ker.acc_scale_add(pooled, row, m, e);
        }
        break;
      }
      case Technique::kQrMult: {
        const float* rem = fetch_row(plan.emb_a(), kCacheTableA,
                                     mod_hash(id, hash_size), e, row_.data());
        const float* quo =
            fetch_row(plan.emb_b(), kCacheTableB,
                      static_cast<Index>(id) / hash_size, e, row2_.data());
        ker.acc_mult_add(pooled, rem, quo, e);
        break;
      }
      case Technique::kQrConcat: {
        const Index half = e / 2;
        const float* rem =
            fetch_row(plan.emb_a(), kCacheTableA, mod_hash(id, hash_size),
                      half, row_.data());
        const float* quo =
            fetch_row(plan.emb_b(), kCacheTableB,
                      static_cast<Index>(id) / hash_size, half, row2_.data());
        ker.acc_add(pooled, rem, half);
        ker.acc_add(pooled + half, quo, half);
        break;
      }
      case Technique::kDoubleHash: {
        const Index half = e / 2;
        const float* a =
            fetch_row(plan.emb_a(), kCacheTableA, mod_hash(id, hash_size),
                      half, row_.data());
        const float* b =
            fetch_row(plan.emb_b(), kCacheTableB, mixed_hash(id, hash_size),
                      half, row2_.data());
        ker.acc_add(pooled, a, half);
        ker.acc_add(pooled + half, b, half);
        break;
      }
      case Technique::kFactorized: {
        const Index h = plan.factor_dim();
        const float* factors =
            fetch_row(plan.emb_a(), kCacheTableA, id, h, row_.data());
        // Project: row2 = factors · P using the pre-dequantized projection;
        // the mmap range is still metered exactly like the streaming read.
        touch(plan.emb_b(), 0, h * e);
        float* acc = row2_.data();
        std::fill(acc, acc + e, 0.0f);
        const float* proj = plan.projection().data();
        for (Index k = 0; k < h; ++k) {
          ker.axpy(acc, factors[k], proj + k * e, e);
        }
        ker.acc_add(pooled, acc, e);
        break;
      }
      case Technique::kWeinberger:
        // forward_scratch routes weinberger through embed_onehot_pooled;
        // keeping a shadow lookup formulation here would silently diverge.
        check(false, "engine: weinberger uses the one-hot path");
        break;
    }
  }
  return real;
}

void ExecutionContext::embed_onehot_pooled(const std::int32_t* ids,
                                           Index length) {
  const CompiledModel& plan = *compiled_;
  const Index e = plan.embed_dim();
  const Index m = plan.hash_size();
  // Stage 1: hashed one-hot bag z in R^m (normalized so the result matches
  // the lookup path's masked average exactly).
  Index real = 0;
  for (Index t = 0; t < length; ++t) {
    if (ids[t] != kPadId) {
      ++real;
    }
  }
  std::fill(onehot_.begin(), onehot_.end(), 0.0f);
  const float inv = real > 0 ? 1.0f / static_cast<float>(real) : 0.0f;
  for (Index t = 0; t < length; ++t) {
    const std::int32_t id = ids[t];
    if (id == kPadId) {
      continue;
    }
    onehot_[static_cast<std::size_t>(mod_hash(id, m))] += sign_hash(id) * inv;
  }
  // Stage 2: z^T W — streams the ENTIRE table (this is the point of §5.3):
  // every row is read/dequantized regardless of z, so the simulated wall
  // time stays O(m·e) like the real un-fused one_hot->matmul, not O(nnz·e).
  // One full-range touch covers the same page set as the row-by-row reads.
  touch(plan.emb_a(), 0, m * e);
  std::fill(pooled_.begin(), pooled_.end(), 0.0f);
  const KernelSet& ker = plan.kernels();
  float* pooled = pooled_.data();
  float* row = row_.data();
  const TensorRef& table = plan.emb_a();
  for (Index j = 0; j < m; ++j) {
    ker.dequant_span(table.src, j * e, e, row);
    const float z = onehot_[static_cast<std::size_t>(j)];
    if (z != 0.0f) {
      ker.axpy(pooled, z, row, e);
    }
  }
}

void ExecutionContext::apply_batchnorm(const BatchNormPlan& bn, float* x) {
  const Index n = bn.width;
  touch(bn.gamma, 0, n);
  touch(bn.beta, 0, n);
  touch(bn.mean, 0, n);
  touch(bn.var, 0, n);
  const float* scale = bn.scale.data();
  const float* shift = bn.shift.data();
  for (Index i = 0; i < n; ++i) {
    x[i] = x[i] * scale[static_cast<std::size_t>(i)] +
           shift[static_cast<std::size_t>(i)];
  }
  ++op_count_;
}

void ExecutionContext::apply_dense(const DensePlan& dense, const float* x,
                                   float* y) {
  const Index in = dense.in;
  const Index out = dense.out;
  // One full-range touch covers the same pages as streaming every row.
  touch(dense.weight, 0, in * out);
  std::fill(y, y + out, 0.0f);
  const KernelSet& ker = compiled_->kernels();
  if (dense.weight.f32 != nullptr) {
    // Unconditional MAC over every row: a real dense matmul kernel pays the
    // full in·out cost, so the modeled latency must not scale with post-ReLU
    // sparsity of x (zero rows contribute ±0 and leave y unchanged).
    const float* weight = dense.weight.f32;
    for (Index k = 0; k < in; ++k) {
      ker.axpy(y, x[k], weight + k * out, out);
    }
  } else {
    // Every weight row is dequantized regardless of activation sparsity, so
    // the modeled int8/f16 dense latency stays that of a real streaming
    // matmul kernel rather than scaling with post-ReLU zeros.
    for (Index k = 0; k < in; ++k) {
      ker.dequant_span(dense.weight.src, k * out, out, row2_.data());
      const float xv = x[k];
      if (xv != 0.0f) {
        ker.axpy(y, xv, row2_.data(), out);
      }
    }
  }
  touch(dense.bias_ref, 0, out);
  ker.acc_add(y, dense.bias.data(), out);
  ++op_count_;
}

const float* ExecutionContext::forward_trunk(const std::int32_t* ids,
                                             Index length, RawForward& raw) {
  const CompiledModel& plan = *compiled_;
  op_count_ = 0;
  activation_bytes_ = 0;
  const Index e = plan.embed_dim();

  const auto start = Clock::now();

  // --- Embedding stage + masked average pooling ---
  if (plan.uses_onehot_path()) {
    const auto onehot_start = Clock::now();
    embed_onehot_pooled(ids, length);
    // The profile's slowdown models the un-fused interpreter path.
    raw.onehot_extra_ms =
        elapsed_ms(onehot_start) * (profile_.onehot_slowdown - 1.0);
    activation_bytes_ += plan.hash_size() * 4;  // the dense one-hot vector
  } else {
    const Index real = embed_pooled(ids, length);
    if (real > 0) {
      const float inv = 1.0f / static_cast<float>(real);
      for (float& v : pooled_) {
        v *= inv;
      }
    }
    activation_bytes_ += length * e * 4;  // the [L, E] lookup output
  }
  op_count_ += plan.embedding_stage_ops();
  ++op_count_;  // pooling op
  raw.embed_ops = op_count_;
  raw.embed_compute_ms = elapsed_ms(start);

  // --- Trunk: ReLU -> BN [-> Dense(e/2)+ReLU -> BN] -> Dense(out) ---
  for (float& v : pooled_) {
    v = std::max(v, 0.0f);
  }
  ++op_count_;
  apply_batchnorm(plan.bn1(), pooled_.data());
  const float* trunk = pooled_.data();
  if (plan.has_hidden()) {
    apply_dense(plan.dense1(), trunk, hidden_.data());
    for (float& v : hidden_) {
      v = std::max(v, 0.0f);
    }
    ++op_count_;
    apply_batchnorm(plan.bn2(), hidden_.data());
    trunk = hidden_.data();
    activation_bytes_ += plan.hidden_dim() * 4;
  }
  raw.compute_ms = elapsed_ms(start);
  return trunk;
}

ExecutionContext::RawForward ExecutionContext::forward_scratch(
    const std::int32_t* ids, Index length) {
  const CompiledModel& plan = *compiled_;
  RawForward raw;
  const float* trunk = forward_trunk(ids, length, raw);
  const auto out_start = Clock::now();
  apply_dense(plan.out(), trunk, logits_.data());
  raw.compute_ms += elapsed_ms(out_start);
  activation_bytes_ += plan.output_dim() * 4 + plan.embed_dim() * 4;
  meter_.note_activation_bytes(activation_bytes_);
  raw.op_count = op_count_;
  return raw;
}

ExecutionContext::RawForward ExecutionContext::forward_pruned(
    const std::int32_t* ids, Index length, Index nprobe, Index top_k,
    std::vector<ScoredId>* ranked, std::uint64_t* scanned_rows,
    std::uint64_t* scanned_bytes) {
  const CompiledModel& plan = *compiled_;
  const CatalogIndex& index = plan.catalog_index();
  const DensePlan& dense = plan.out();
  const Index in = dense.in;
  const Index out = dense.out;

  RawForward raw;
  const float* trunk = forward_trunk(ids, length, raw);
  const auto out_start = Clock::now();

  // Metering: the SAME full-range touches as the exact scan. out.weight is
  // [in, items] row-major, so a probed COLUMN strides the whole blob one
  // element per page-sized row region — page-granular residency is the
  // full table either way. The pruning win lives in the analytic
  // scanned_bytes counters and the measured scan time, not in pages.
  touch(dense.weight, 0, in * out);
  touch(dense.bias_ref, 0, out);

  // Probe query [trunk; 1.0] against centroids built over [W[:,j]; b_j].
  const KernelSet& ker = plan.kernels();
  std::copy(trunk, trunk + in, query_.begin());
  query_[static_cast<std::size_t>(in)] = 1.0f;
  const std::vector<ScoredId> probed = index.probe(ker, query_.data(), nprobe);

  // Unprobed logits stay 0 — pruned consumers read the ranked list.
  std::fill(logits_.begin(), logits_.end(), 0.0f);

  // Per-column replay of apply_dense for probed items only. Bit-exactness
  // vs the exact path: axpy (scalar AND AVX2, the non-fused contract) does
  // y[j] += x[k] * w[k,j] per element with no horizontal reduction, so
  // accumulating column j in the same increasing-k order reproduces y[j]
  // exactly; the f32 path MACs every k unconditionally while the quantized
  // path skips x[k] == 0 rows — both mirrored below — and the bias lands
  // last, matching acc_add. When the family's axpy is the opt-in FUSED MAC
  // ("fma" in the kernel-set name) the replay fuses with std::fma too.
  const bool fused = std::strstr(ker.name, "fma") != nullptr;
  const DType wt = dense.weight.dtype;
  const std::uint64_t elem_bytes = wt == DType::kF32 ? 4
                                   : wt == DType::kF16 ? 2
                                                       : 1;
  const DType bt = dense.bias_ref.dtype;
  const std::uint64_t bias_elem_bytes = bt == DType::kF32 ? 4
                                        : bt == DType::kF16 ? 2
                                                            : 1;
  const Index group = dense.weight.src.group_size;

  const Index kept = std::min(top_k, out);
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<std::size_t>(kept));
  std::uint64_t rows = 0;
  std::uint64_t bytes = index.centroid_bytes();
  for (const ScoredId& cluster : probed) {
    const std::size_t begin =
        index.offsets[static_cast<std::size_t>(cluster.id)];
    const std::size_t end =
        index.offsets[static_cast<std::size_t>(cluster.id) + 1];
    for (std::size_t pos = begin; pos < end; ++pos) {
      const Index j = static_cast<Index>(index.perm[pos]);
      float acc = 0.0f;
      if (dense.weight.f32 != nullptr) {
        const float* w = dense.weight.f32;
        if (fused) {
          for (Index k = 0; k < in; ++k) {
            acc = std::fma(trunk[k], w[k * out + j], acc);
          }
        } else {
          for (Index k = 0; k < in; ++k) {
            acc += trunk[k] * w[k * out + j];
          }
        }
      } else {
        for (Index k = 0; k < in; ++k) {
          const float xv = trunk[k];
          if (xv == 0.0f) {
            continue;
          }
          float wv = 0.0f;
          ker.dequant_span(dense.weight.src, k * out + j, 1, &wv);
          acc = fused ? std::fma(xv, wv, acc) : acc + xv * wv;
        }
      }
      acc += dense.bias[static_cast<std::size_t>(j)];
      logits_[static_cast<std::size_t>(j)] = acc;
      if (kept > 0) {
        topk_offer(heap, kept, ScoredId{acc, j});
      }
      // Analytic column bytes: one stored element per weight row, plus the
      // distinct i4g scale groups the strided walk crosses, plus the bias
      // element.
      bytes += static_cast<std::uint64_t>(in) * elem_bytes + bias_elem_bytes;
      if (wt == DType::kI4G) {
        const Index span_groups =
            (j + (in - 1) * out) / group - j / group + 1;
        bytes += static_cast<std::uint64_t>(std::min(in, span_groups)) * 4;
      }
    }
    rows += static_cast<std::uint64_t>(end - begin);
  }
  std::sort(heap.begin(), heap.end(), topk_better);
  *ranked = std::move(heap);
  *scanned_rows += rows;
  *scanned_bytes += bytes;

  op_count_ += 2;  // centroid probe + pruned gather-scan
  activation_bytes_ += plan.output_dim() * 4 + plan.embed_dim() * 4;
  meter_.note_activation_bytes(activation_bytes_);
  raw.compute_ms += elapsed_ms(out_start);
  raw.op_count = op_count_;
  return raw;
}

InferenceView ExecutionContext::run_view(const std::int32_t* ids,
                                         Index length) {
  const RowCacheStats before = row_cache_stats();
  const RawForward raw = forward_scratch(ids, length);
  InferenceView view;
  view.logits = logits_.data();
  view.dim = compiled_->output_dim();
  view.op_count = raw.op_count;
  if (before.enabled) {
    const RowCacheStats after = row_cache_stats();
    view.cache_hits = after.hits - before.hits;
    view.cache_misses = after.misses - before.misses;
  }
  view.embedding_ms = raw.embed_compute_ms + raw.onehot_extra_ms +
                      static_cast<double>(raw.embed_ops) *
                          profile_.per_op_dispatch_us / 1000.0;
  view.total_ms = raw.compute_ms + raw.onehot_extra_ms +
                  static_cast<double>(raw.op_count) *
                      profile_.per_op_dispatch_us / 1000.0;
  return view;
}

BatchResult ExecutionContext::run_batch(
    const std::vector<std::vector<std::int32_t>>& histories) {
  return run_batch(histories, 0, nullptr);
}

BatchResult ExecutionContext::run_batch(
    const std::vector<std::vector<std::int32_t>>& histories, Index top_k,
    std::vector<std::vector<ScoredId>>* topk_out,
    const std::vector<Index>* nprobes) {
  const RowCacheStats before = row_cache_stats();
  BatchResult result;
  result.batch = static_cast<Index>(histories.size());
  const Index dim = compiled_->output_dim();
  result.logits = Tensor({result.batch, dim});
  double compute = 0.0;
  double embed_compute = 0.0;
  double onehot_extra = 0.0;
  Index embed_ops = 0;
  Index ops = 0;
  if (top_k > 0) {
    check(topk_out != nullptr, "run_batch: top_k > 0 needs topk_out");
    topk_out->resize(static_cast<std::size_t>(result.batch));
  }
  check(nprobes == nullptr ||
            static_cast<Index>(nprobes->size()) == result.batch,
        "run_batch: nprobes size mismatch");
  // Exact ranked rows scan the whole stored catalog (weight + bias blobs);
  // computed once, charged per exact ranked row below.
  const std::uint64_t exact_scan_bytes =
      compiled_->out().weight.entry->byte_size +
      compiled_->out().bias_ref.entry->byte_size;
  for (Index b = 0; b < result.batch; ++b) {
    const auto& history = histories[static_cast<std::size_t>(b)];
    const Index nprobe =
        nprobes != nullptr ? (*nprobes)[static_cast<std::size_t>(b)] : 0;
    const bool pruned =
        top_k > 0 && nprobe > 0 && compiled_->has_catalog_index();
    RawForward raw;
    if (pruned) {
      raw = forward_pruned(history.data(), static_cast<Index>(history.size()),
                           nprobe, top_k,
                           &(*topk_out)[static_cast<std::size_t>(b)],
                           &result.scanned_rows, &result.scanned_bytes);
    } else {
      raw =
          forward_scratch(history.data(), static_cast<Index>(history.size()));
      if (top_k > 0) {
        (*topk_out)[static_cast<std::size_t>(b)] =
            topk_select(logits_.data(), dim, top_k);
        result.scanned_rows += static_cast<std::uint64_t>(dim);
        result.scanned_bytes += exact_scan_bytes;
      }
    }
    if (top_k > 0) {
      ++result.ranked_rows;
      result.catalog_rows += static_cast<std::uint64_t>(dim);
    }
    std::memcpy(&result.logits.at2(b, 0), logits_.data(),
                static_cast<std::size_t>(dim) * sizeof(float));
    compute += raw.compute_ms;
    embed_compute += raw.embed_compute_ms;
    onehot_extra += raw.onehot_extra_ms;
    embed_ops = raw.embed_ops;
    ops = raw.op_count;
  }
  // The frameworks dispatch ONE fused graph for the whole batch, so the
  // per-op overhead is charged once — this is the batching win.
  result.op_count = ops;
  result.embedding_ms = embed_compute + onehot_extra +
                        static_cast<double>(embed_ops) *
                            profile_.per_op_dispatch_us / 1000.0;
  result.total_ms = compute + onehot_extra +
                    static_cast<double>(ops) * profile_.per_op_dispatch_us /
                        1000.0;
  if (before.enabled) {
    const RowCacheStats after = row_cache_stats();
    result.cache_hits = after.hits - before.hits;
    result.cache_misses = after.misses - before.misses;
  }
  return result;
}

double ExecutionContext::resident_megabytes() const {
  // The cache slab is extra runtime memory the device pays for; its filled
  // bytes join the weight pages and activation peak in the footprint.
  const std::size_t cache_bytes =
      row_cache_ != nullptr ? row_cache_->stats().resident_bytes : 0;
  return static_cast<double>(meter_.total_resident_bytes() +
                             profile_.runtime_overhead_bytes +
                             static_cast<Index>(cache_bytes)) /
         (1024.0 * 1024.0);
}

}  // namespace memcom
