#include "ondevice/catalog_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "core/check.h"
#include "core/rng.h"
#include "core/serialize.h"

namespace memcom {

namespace {

// Section prefix constants — the v4 analogue of the plan section's.
constexpr std::uint32_t kIndexMagic = 0x58444943;  // "CIDX" little-endian
constexpr std::uint32_t kIndexFormatVersion = 1;
constexpr std::uint32_t kIndexEndianCheck = 0x01020304;
// Centroids were built from scalar-dequantized rows, so one serialized
// index serves every kernel dispatch family.
constexpr std::uint32_t kIndexFlagScalarBuilt = 1u << 0;
constexpr std::size_t kIndexAlignment = 64;
// Smallest decodable section: 16-byte prefix + trailing checksum.
constexpr std::size_t kIndexMinBytes = 4 * sizeof(std::uint32_t) + 8;
// Structural header fields all live well under this; regions may lie
// beyond (they are addressed by offset, not parsed from the stream).
constexpr std::size_t kIndexHeaderCap = std::size_t{1} << 16;
// k-means trains on at most clusters * kTrainRowsPerCluster sampled rows
// (the final assignment pass still covers every item) so build time stays
// bounded at bench scale.
constexpr Index kTrainRowsPerCluster = 32;

std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

void write_u32_array(std::ostream& os, const std::uint32_t* data,
                     std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    write_u32(os, data[i]);
  }
}

const TensorEntry* find_entry(const MmapModel& model, const std::string& name) {
  for (std::size_t i = 0; i < model.entry_count(); ++i) {
    const TensorEntry& e = model.entry_at(i);
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace

IdBuffer IdBuffer::owned(std::vector<std::uint32_t> values) {
  IdBuffer b;
  b.storage_ = std::move(values);
  b.data_ = b.storage_.data();
  b.size_ = b.storage_.size();
  return b;
}

IdBuffer IdBuffer::view(const std::uint32_t* data, std::size_t count) {
  IdBuffer b;
  b.data_ = data;
  b.size_ = count;
  return b;
}

Index default_catalog_clusters(Index items) {
  check(items > 0, "default_catalog_clusters: empty catalog");
  const Index c = static_cast<Index>(
      std::lround(std::sqrt(static_cast<double>(items))));
  return std::max<Index>(1, std::min(items, c));
}

std::vector<float> dequantize_catalog_rows(const SpanSrc& src, Index items,
                                           Index dim) {
  check(items > 0 && dim > 0, "dequantize_catalog_rows: empty catalog");
  std::vector<float> rows(static_cast<std::size_t>(items) *
                          static_cast<std::size_t>(dim));
  // Elementwise, so one whole-range call equals per-row calls bit-for-bit.
  scalar_kernels().dequant_span(src, 0, items * dim, rows.data());
  return rows;
}

std::vector<ScoredId> CatalogIndex::probe(const KernelSet& kernels,
                                          const float* query,
                                          Index nprobe) const {
  const Index kept = std::min(std::max<Index>(nprobe, 0), clusters);
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<std::size_t>(kept));
  if (kept == 0) {
    return heap;
  }
  for (Index c = 0; c < clusters; ++c) {
    topk_offer(heap, kept, ScoredId{kernels.dot(query, centroid(c), dim), c});
  }
  std::sort(heap.begin(), heap.end(), topk_better);
  return heap;
}

CatalogIndex build_catalog_index(const float* rows, Index items, Index dim,
                                 const CatalogIndexConfig& config) {
  check(rows != nullptr && items > 0 && dim > 0,
        "build_catalog_index: empty catalog");
  check(config.iterations >= 0, "build_catalog_index: negative iterations");
  const Index clusters =
      config.clusters > 0 ? std::min(config.clusters, items)
                          : default_catalog_clusters(items);

  // Seeded training sample, ascending ids so iteration order (and hence the
  // double accumulation order) is deterministic.
  const Index cap = std::min(items, clusters * kTrainRowsPerCluster);
  Rng rng(config.seed);
  std::vector<Index> sample;
  sample.reserve(static_cast<std::size_t>(cap));
  if (cap == items) {
    for (Index i = 0; i < items; ++i) {
      sample.push_back(i);
    }
  } else {
    std::vector<char> used(static_cast<std::size_t>(items), 0);
    while (static_cast<Index>(sample.size()) < cap) {
      const Index id = rng.uniform_index(items);
      if (!used[static_cast<std::size_t>(id)]) {
        used[static_cast<std::size_t>(id)] = 1;
        sample.push_back(id);
      }
    }
    std::sort(sample.begin(), sample.end());
  }

  // Init: centroids evenly spaced over the sorted sample — distinct ids by
  // construction (cap >= clusters).
  std::vector<float> cent(static_cast<std::size_t>(clusters) *
                          static_cast<std::size_t>(dim));
  for (Index c = 0; c < clusters; ++c) {
    const Index id = sample[static_cast<std::size_t>(c * cap / clusters)];
    std::memcpy(cent.data() + c * dim, rows + id * dim,
                static_cast<std::size_t>(dim) * sizeof(float));
  }

  // Nearest centroid by squared L2 via the expansion argmax(<x,c> - |c|²/2),
  // all in double; strict > keeps the LOWER cluster id on ties.
  std::vector<double> half_norm(static_cast<std::size_t>(clusters));
  auto refresh_norms = [&]() {
    for (Index c = 0; c < clusters; ++c) {
      double s = 0.0;
      const float* cc = cent.data() + c * dim;
      for (Index k = 0; k < dim; ++k) {
        s += static_cast<double>(cc[k]) * static_cast<double>(cc[k]);
      }
      half_norm[static_cast<std::size_t>(c)] = 0.5 * s;
    }
  };
  auto assign_one = [&](const float* x) {
    Index best_c = 0;
    double best = -std::numeric_limits<double>::infinity();
    for (Index c = 0; c < clusters; ++c) {
      const float* cc = cent.data() + c * dim;
      double s = 0.0;
      for (Index k = 0; k < dim; ++k) {
        s += static_cast<double>(x[k]) * static_cast<double>(cc[k]);
      }
      s -= half_norm[static_cast<std::size_t>(c)];
      if (s > best) {
        best = s;
        best_c = c;
      }
    }
    return best_c;
  };

  std::vector<double> sums(cent.size());
  std::vector<Index> counts(static_cast<std::size_t>(clusters));
  for (Index it = 0; it < config.iterations; ++it) {
    refresh_norms();
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), Index{0});
    for (const Index id : sample) {
      const float* x = rows + id * dim;
      const Index c = assign_one(x);
      double* acc = sums.data() + c * dim;
      for (Index k = 0; k < dim; ++k) {
        acc[k] += static_cast<double>(x[k]);
      }
      ++counts[static_cast<std::size_t>(c)];
    }
    for (Index c = 0; c < clusters; ++c) {
      const Index n = counts[static_cast<std::size_t>(c)];
      if (n == 0) {
        continue;  // empty cluster keeps its previous centroid
      }
      float* cc = cent.data() + c * dim;
      const double* acc = sums.data() + c * dim;
      for (Index k = 0; k < dim; ++k) {
        cc[k] = static_cast<float>(acc[k] / static_cast<double>(n));
      }
    }
  }

  // Final assignment covers EVERY item against the final centroids.
  refresh_norms();
  std::vector<Index> assign(static_cast<std::size_t>(items));
  for (Index i = 0; i < items; ++i) {
    assign[static_cast<std::size_t>(i)] = assign_one(rows + i * dim);
  }

  std::vector<std::uint32_t> offsets(static_cast<std::size_t>(clusters) + 1, 0);
  for (Index i = 0; i < items; ++i) {
    ++offsets[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)]) + 1];
  }
  for (std::size_t c = 1; c < offsets.size(); ++c) {
    offsets[c] += offsets[c - 1];
  }
  std::vector<std::uint32_t> perm(static_cast<std::size_t>(items));
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (Index i = 0; i < items; ++i) {
    const std::size_t c =
        static_cast<std::size_t>(assign[static_cast<std::size_t>(i)]);
    perm[cursor[c]++] = static_cast<std::uint32_t>(i);
  }

  CatalogIndex index;
  index.items = items;
  index.dim = dim;
  index.clusters = clusters;
  index.seed = config.seed;
  index.iterations = config.iterations;
  index.centroids = PlanBuffer::owned(std::move(cent));
  index.perm = IdBuffer::owned(std::move(perm));
  index.offsets = IdBuffer::owned(std::move(offsets));
  return index;
}

CatalogIndex build_catalog_index(const QuantizedTensor& catalog,
                                 const CatalogIndexConfig& config) {
  check(catalog.shape.size() == 2, "build_catalog_index: catalog must be 2-D");
  const Index items = catalog.shape[0];
  const Index dim = catalog.shape[1];
  const std::vector<float> rows =
      dequantize_catalog_rows(make_span_src(catalog), items, dim);
  return build_catalog_index(rows.data(), items, dim, config);
}

CatalogIndex build_catalog_index_for_model(const MmapModel& model,
                                           const CatalogIndexConfig& config) {
  const TensorEntry* weight = find_entry(model, "out.weight");
  const TensorEntry* bias = find_entry(model, "out.bias");
  check(weight != nullptr && bias != nullptr,
        "build_catalog_index_for_model: model has no output catalog");
  check(weight->shape.size() == 2 && bias->shape.size() == 1 &&
            bias->shape[0] == weight->shape[1],
        "build_catalog_index_for_model: malformed output catalog");
  const Index in = weight->shape[0];
  const Index items = weight->shape[1];

  // out.weight is [in, items] — each COLUMN is an item. Scalar-dequantize
  // the whole table once, then gather rows [W[:, j]; bias_j].
  const std::vector<float> dense = dequantize_catalog_rows(
      make_span_src(*weight, model.payload(*weight)), in, items);
  std::vector<float> bias_f(static_cast<std::size_t>(items));
  scalar_kernels().dequant_span(make_span_src(*bias, model.payload(*bias)), 0,
                                items, bias_f.data());

  const Index dim = in + 1;
  std::vector<float> rows(static_cast<std::size_t>(items) *
                          static_cast<std::size_t>(dim));
  for (Index j = 0; j < items; ++j) {
    float* r = rows.data() + j * dim;
    for (Index k = 0; k < in; ++k) {
      r[k] = dense[static_cast<std::size_t>(k) * items + j];
    }
    r[in] = bias_f[static_cast<std::size_t>(j)];
  }

  CatalogIndex index = build_catalog_index(rows.data(), items, dim, config);
  index.model_name = model.has_model_identity() ? model.model_name() : "";
  index.model_version = model.has_model_identity() ? model.model_version() : 0;
  return index;
}

std::uint64_t span_scan_bytes(const SpanSrc& src, Index offset, Index count) {
  if (count <= 0) {
    return 0;
  }
  if (src.dtype == DType::kI4G) {
    const Index g = src.group_size;
    const Index g0 = offset / g;
    const Index g1 = (offset + count - 1) / g;
    const ByteSpan nibbles = packed_byte_span(offset, count, 4);
    return static_cast<std::uint64_t>(g1 - g0 + 1) * sizeof(float) +
           static_cast<std::uint64_t>(nibbles.length);
  }
  const ByteSpan span = packed_byte_span(offset, count, dtype_bits(src.dtype));
  return static_cast<std::uint64_t>(span.length);
}

PrunedCatalogScorer::PrunedCatalogScorer(const CatalogScorer& exact,
                                         const CatalogIndex& index)
    : exact_(&exact), index_(&index) {
  check(exact.items() == index.items && exact.dim() == index.dim,
        "PrunedCatalogScorer: index does not match catalog");
}

std::vector<ScoredId> PrunedCatalogScorer::top_k(const float* query, Index k,
                                                 Index nprobe,
                                                 ScanStats* stats) const {
  check(k >= 0, "PrunedCatalogScorer::top_k: negative k");
  const Index clusters = index_->clusters;
  const Index probes = std::min(std::max<Index>(nprobe, 1), clusters);
  const KernelSet& ker = exact_->kernels();
  const SpanSrc& src = exact_->src();
  const Index dim = exact_->dim();

  const std::vector<ScoredId> probed = index_->probe(ker, query, probes);

  const Index kept = std::min(k, exact_->items());
  std::vector<ScoredId> heap;
  heap.reserve(static_cast<std::size_t>(kept));
  Index scanned_rows = 0;
  std::uint64_t scanned_bytes = index_->centroid_bytes();
  for (const ScoredId& cluster : probed) {
    const std::size_t begin = index_->offsets[static_cast<std::size_t>(cluster.id)];
    const std::size_t end =
        index_->offsets[static_cast<std::size_t>(cluster.id) + 1];
    for (std::size_t pos = begin; pos < end; ++pos) {
      const Index id = static_cast<Index>(index_->perm[pos]);
      if (kept > 0) {
        topk_offer(heap, kept,
                   ScoredId{ker.dot_span(src, id * dim, dim, query), id});
      }
      scanned_bytes += span_scan_bytes(src, id * dim, dim);
    }
    scanned_rows += static_cast<Index>(end - begin);
  }
  std::sort(heap.begin(), heap.end(), topk_better);
  if (stats != nullptr) {
    stats->probed_clusters = probes;
    stats->scanned_rows = scanned_rows;
    stats->scanned_bytes = scanned_bytes;
  }
  return heap;
}

std::vector<std::uint8_t> serialize_catalog_index(const CatalogIndex& index) {
  check(index.items > 0 && index.dim > 0 && index.clusters > 0,
        "serialize_catalog_index: empty index");
  const std::size_t cent_count = index.centroids.size();
  const std::size_t perm_count = index.perm.size();
  const std::size_t offs_count = index.offsets.size();
  check(cent_count == static_cast<std::size_t>(index.clusters) *
                          static_cast<std::size_t>(index.dim) &&
            perm_count == static_cast<std::size_t>(index.items) &&
            offs_count == static_cast<std::size_t>(index.clusters) + 1,
        "serialize_catalog_index: inconsistent buffers");

  auto emit_header = [&](std::ostream& os, std::uint64_t cent_off,
                         std::uint64_t perm_off, std::uint64_t offs_off) {
    write_u32(os, kIndexMagic);
    write_u32(os, kIndexFormatVersion);
    write_u32(os, kIndexEndianCheck);
    write_u32(os, kIndexFlagScalarBuilt);
    write_string(os, index.model_name);
    write_u64(os, index.model_version);
    write_i64(os, index.items);
    write_i64(os, index.dim);
    write_i64(os, index.clusters);
    write_u64(os, index.seed);
    write_i64(os, index.iterations);
    write_u64(os, cent_count);
    write_u64(os, cent_off);
    write_u64(os, perm_count);
    write_u64(os, perm_off);
    write_u64(os, offs_count);
    write_u64(os, offs_off);
  };

  // Pass 1: probe the header size with zeroed offsets (same length — all
  // offset fields are fixed-width u64).
  std::ostringstream probe;
  emit_header(probe, 0, 0, 0);
  const std::size_t header_size = probe.str().size();

  std::size_t cursor = align_up(header_size, kIndexAlignment);
  const std::uint64_t cent_off = cursor;
  cursor = align_up(cursor + cent_count * sizeof(float), kIndexAlignment);
  const std::uint64_t perm_off = cursor;
  cursor = align_up(cursor + perm_count * sizeof(std::uint32_t),
                    kIndexAlignment);
  const std::uint64_t offs_off = cursor;
  cursor += offs_count * sizeof(std::uint32_t);

  std::ostringstream body;
  emit_header(body, cent_off, perm_off, offs_off);
  auto pad_to = [&](std::uint64_t target) {
    std::string s = body.str();
    check(s.size() <= target, "serialize_catalog_index: layout overflow");
    body.write(std::string(static_cast<std::size_t>(target) - s.size(), '\0')
                   .data(),
               static_cast<std::streamsize>(target - s.size()));
  };
  pad_to(cent_off);
  write_f32_array(body, index.centroids.data(), cent_count);
  pad_to(perm_off);
  write_u32_array(body, index.perm.data(), perm_count);
  pad_to(offs_off);
  write_u32_array(body, index.offsets.data(), offs_count);

  const std::string payload = body.str();
  std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
  const std::uint64_t checksum = plan_checksum(bytes.data(), bytes.size());
  std::ostringstream tail;
  write_u64(tail, checksum);
  const std::string tail_s = tail.str();
  bytes.insert(bytes.end(), tail_s.begin(), tail_s.end());
  return bytes;
}

CatalogIndexDecodeResult decode_catalog_index(const MmapModel& model) {
  CatalogIndexDecodeResult out;
  auto stale = [&out](std::string reason) -> CatalogIndexDecodeResult {
    out.status = PlanStatus::kStale;
    out.reason = std::move(reason);
    return std::move(out);
  };

  if (!model.has_index_section()) {
    return out;  // kAbsent
  }
  const std::uint8_t* data = model.index_data();
  if (data == nullptr) {
    return stale(model.index_bounds_error());
  }
  const std::size_t size = static_cast<std::size_t>(model.index_size());
  if (size < kIndexMinBytes) {
    return stale("catalog index section truncated (" + std::to_string(size) +
                 " bytes)");
  }
  std::uint32_t prefix[4];
  std::memcpy(prefix, data, sizeof(prefix));
  if (prefix[0] != kIndexMagic) {
    return stale("bad catalog index magic");
  }
  if (prefix[1] != kIndexFormatVersion) {
    return stale("unsupported catalog index format version " +
                 std::to_string(prefix[1]));
  }
  if (prefix[2] != kIndexEndianCheck) {
    return stale("catalog index endianness mismatch");
  }
  if ((prefix[3] & kIndexFlagScalarBuilt) == 0) {
    return stale("catalog index not built from scalar dequantization");
  }
  std::uint64_t declared = 0;
  std::memcpy(&declared, data + size - 8, sizeof(declared));
  if (plan_checksum(data, size - 8) != declared) {
    return stale("catalog index checksum mismatch");
  }
  const std::size_t payload_limit = size - 8;

  try {
    std::istringstream is(std::string(
        reinterpret_cast<const char*>(data), std::min(size, kIndexHeaderCap)));
    is.exceptions(std::ios::failbit | std::ios::badbit | std::ios::eofbit);
    is.ignore(16);

    CatalogIndex& index = out.index;
    index.model_name = read_string(is);
    index.model_version = read_u64(is);
    index.items = read_i64(is);
    index.dim = read_i64(is);
    index.clusters = read_i64(is);
    index.seed = read_u64(is);
    index.iterations = read_i64(is);
    const std::uint64_t cent_count = read_u64(is);
    const std::uint64_t cent_off = read_u64(is);
    const std::uint64_t perm_count = read_u64(is);
    const std::uint64_t perm_off = read_u64(is);
    const std::uint64_t offs_count = read_u64(is);
    const std::uint64_t offs_off = read_u64(is);

    // Identity first: a section from a different model refresh is stale no
    // matter how well-formed it is.
    const std::string file_name =
        model.has_model_identity() ? model.model_name() : "";
    const std::uint64_t file_version =
        model.has_model_identity() ? model.model_version() : 0;
    if (index.model_name != file_name) {
      return stale("catalog index model_name skew (index '" +
                   index.model_name + "' vs file '" + file_name + "')");
    }
    if (index.model_version != file_version) {
      return stale("catalog index model_version skew (index " +
                   std::to_string(index.model_version) + " vs file " +
                   std::to_string(file_version) + ")");
    }

    // Geometry must agree with the file's own output catalog.
    const TensorEntry* weight = find_entry(model, "out.weight");
    const TensorEntry* bias = find_entry(model, "out.bias");
    if (weight == nullptr || bias == nullptr || weight->shape.size() != 2) {
      return stale("catalog index for a model without an output catalog");
    }
    if (index.items != weight->shape[1] ||
        index.dim != weight->shape[0] + 1) {
      return stale("catalog index catalog shape skew");
    }
    // Hostile declared cluster count: bound it BEFORE any arithmetic that
    // could overflow or size an allocation from it.
    if (index.clusters < 1 || index.clusters > index.items) {
      return stale("catalog index cluster count out of range");
    }
    if (index.iterations < 0) {
      return stale("catalog index header fields out of range");
    }
    if (cent_count != static_cast<std::uint64_t>(index.clusters) *
                          static_cast<std::uint64_t>(index.dim) ||
        perm_count != static_cast<std::uint64_t>(index.items) ||
        offs_count != static_cast<std::uint64_t>(index.clusters) + 1) {
      return stale("catalog index region counts inconsistent");
    }
    auto region_ok = [&](std::uint64_t count, std::uint64_t offset,
                         std::size_t elem) {
      return count <= payload_limit / elem &&
             offset <= payload_limit - count * elem;
    };
    if (!region_ok(cent_count, cent_off, sizeof(float)) ||
        !region_ok(perm_count, perm_off, sizeof(std::uint32_t)) ||
        !region_ok(offs_count, offs_off, sizeof(std::uint32_t))) {
      return stale("catalog index region out of section bounds");
    }
    if (cent_off % kIndexAlignment != 0 || perm_off % kIndexAlignment != 0 ||
        offs_off % kIndexAlignment != 0) {
      return stale("catalog index region misaligned");
    }

    index.centroids = PlanBuffer::view(
        reinterpret_cast<const float*>(data + cent_off),
        static_cast<std::size_t>(cent_count));
    index.perm =
        IdBuffer::view(reinterpret_cast<const std::uint32_t*>(data + perm_off),
                       static_cast<std::size_t>(perm_count));
    index.offsets =
        IdBuffer::view(reinterpret_cast<const std::uint32_t*>(data + offs_off),
                       static_cast<std::size_t>(offs_count));

    // Offsets must be a non-decreasing prefix chain covering [0, items].
    if (index.offsets[0] != 0 ||
        index.offsets[static_cast<std::size_t>(index.clusters)] !=
            static_cast<std::uint32_t>(index.items)) {
      return stale("catalog index cluster offsets malformed");
    }
    for (Index c = 0; c < index.clusters; ++c) {
      if (index.offsets[static_cast<std::size_t>(c)] >
          index.offsets[static_cast<std::size_t>(c) + 1]) {
        return stale("catalog index cluster offsets malformed");
      }
    }
    // The id table must be an exact permutation of [0, items): a pruned
    // scan over anything else would silently drop or double-score items.
    std::vector<char> seen(static_cast<std::size_t>(index.items), 0);
    for (std::size_t i = 0; i < index.perm.size(); ++i) {
      const std::uint32_t id = index.perm[i];
      if (id >= static_cast<std::uint32_t>(index.items) || seen[id]) {
        return stale("catalog index id table is not a permutation");
      }
      seen[id] = 1;
    }
    index.zero_copy = true;
  } catch (const std::exception& e) {
    return stale(std::string("catalog index section unreadable: ") + e.what());
  }

  out.status = PlanStatus::kValid;
  return out;
}

}  // namespace memcom
