// Bounded multi-producer blocking queue for the async serving pipeline.
//
// This is the admission-control stage of AsyncServer: producers enqueue
// requests (blocking `push` or non-blocking `try_push`), the scheduler pops
// them to form micro-batches. Capacity is a hard bound — when the queue is
// full, `push` blocks and `try_push` fails, which is how backpressure
// propagates from saturated workers all the way back to request producers.
//
// Implemented with a mutex + two condition variables over a fixed ring
// buffer; simple, fair enough, and clean under ThreadSanitizer (the CI tsan
// job runs the serving suites against it). The hot inference path never
// touches this queue — only the request hand-off does.
//
// close() semantics: after close(), pushes fail immediately, but pops keep
// draining whatever was already enqueued and only then return false. That
// lets AsyncServer's destructor finish every accepted request.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/check.h"

namespace memcom {

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {
    check(capacity > 0, "RequestQueue: capacity must be positive");
  }

  // Blocks while the queue is full. Returns false (item not enqueued) only
  // if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    enqueue_locked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when the queue is full (backpressure) or
  // closed. A full-queue rejection is counted in rejected().
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      if (size_ == capacity_) {
        ++rejected_;
        return false;
      }
      enqueue_locked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available. Returns false once the queue is
  // closed AND fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) {
      return false;  // closed and drained
    }
    dequeue_locked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop: false when the queue is currently empty (whether or
  // not it is closed). This is the work-stealing probe — a worker scanning
  // OTHER shards' dispatch queues must never park on them.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0) {
      return false;
    }
    dequeue_locked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Like pop(), but gives up at `deadline`. Returns false on timeout or on
  // closed-and-drained; `timed_out` (optional) distinguishes the two.
  template <typename TimePoint>
  bool pop_wait_until(T& out, TimePoint deadline, bool* timed_out = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_empty_.wait_until(
        lock, deadline, [&] { return size_ > 0 || closed_; });
    if (timed_out != nullptr) {
      *timed_out = !ready;
    }
    if (size_ == 0) {
      return false;
    }
    dequeue_locked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  // Deepest occupancy ever observed; never exceeds capacity() because the
  // ring is the storage — there is nowhere for an excess item to live.
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  std::uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_pushed_;
  }

  // try_push calls that failed because the queue was at capacity.
  std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }

 private:
  void enqueue_locked(T item) {
    ring_[tail_] = std::move(item);
    tail_ = (tail_ + 1) % capacity_;
    ++size_;
    ++total_pushed_;
    if (size_ > high_water_) {
      high_water_ = size_;
    }
  }

  void dequeue_locked(T& out) {
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t rejected_ = 0;
  bool closed_ = false;
};

}  // namespace memcom
