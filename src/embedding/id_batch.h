// A [batch, length] matrix of integer category ids — the input to every
// embedding layer. Ids follow the paper's convention (§5.1): 0 is padding
// and real entities are numbered 1..v-1 sorted by descending frequency
// ("the most downloaded app is assigned the id n+1").
#pragma once

#include <cstdint>
#include <vector>

#include "core/check.h"
#include "core/tensor.h"

namespace memcom {

inline constexpr std::int32_t kPadId = 0;

struct IdBatch {
  std::vector<std::int32_t> ids;  // row-major [batch, length]
  Index batch = 0;
  Index length = 0;

  IdBatch() = default;
  IdBatch(Index batch_size, Index seq_length)
      : ids(static_cast<std::size_t>(batch_size * seq_length), kPadId),
        batch(batch_size),
        length(seq_length) {}

  std::int32_t id(Index b, Index l) const {
    return ids[static_cast<std::size_t>(b * length + l)];
  }
  std::int32_t& id(Index b, Index l) {
    return ids[static_cast<std::size_t>(b * length + l)];
  }

  Index size() const { return batch * length; }

  void validate(Index vocab_size) const {
    check_eq(batch * length, static_cast<long long>(ids.size()),
             "IdBatch element count");
    for (const std::int32_t v : ids) {
      check(v >= 0 && v < vocab_size, "IdBatch: id out of vocabulary range");
    }
  }
};

}  // namespace memcom
