// §4 collision analytics — the quantities behind the paper's argument that
// naive hashing cannot give unique vectors while double hashing only
// reduces (not eliminates) collisions.
//
// Prints the paper's analytic collision rates (v/m - 1 + (1-1/m)^v and the
// m^2 variant) next to empirically measured collision fractions.
#include "bench_common.h"
#include "embedding/hashing.h"

using namespace memcom;
using namespace memcom::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  (void)flags;
  print_header(
      "Collision rates: analytic (sec 4 formulas) vs empirical",
      "paper: naive collision rate = v/m - 1 + (1-1/m)^v;\n"
      "       double hashing = v/m^2 - 1 + (1-1/m^2)^v");

  TextTable table({"vocab v", "buckets m", "naive analytic",
                   "naive empirical frac", "double analytic",
                   "double empirical frac"});
  const Index vocabs[] = {1000, 10000, 100000};
  const Index divisors[] = {2, 10, 50};
  for (const Index v : vocabs) {
    for (const Index divisor : divisors) {
      const Index m = v / divisor;
      table.add_row({std::to_string(v), std::to_string(m),
                     format_float(expected_collision_rate(v, m), 4),
                     format_float(empirical_collision_fraction(v, m, false), 4),
                     format_float(expected_double_hash_collision_rate(v, m), 6),
                     format_float(empirical_collision_fraction(v, m, true), 4)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nMEmCom sidesteps this entirely: every id keeps a unique\n"
               "(U[i mod m], V[i]) pair, so its collision rate is zero by\n"
               "construction (see bench/a4_uniqueness for the trained check).\n";
  return 0;
}
